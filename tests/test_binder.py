"""Binder tests: resolution, scoping, contextual rules, async restrictions."""

import pytest

from repro.lang import ast, parse
from repro.lang.errors import AsyncError, BindError
from repro.sema import bind


class TestEventResolution:
    def test_await_resolves_input(self):
        bound = bind(parse("input int X;\nint v = await X;"))
        awaits = [n for n in bound.program.walk()
                  if isinstance(n, ast.AwaitExt)]
        assert bound.event_of[awaits[0].nid].name == "X"

    def test_await_undeclared_event(self):
        with pytest.raises(BindError):
            bind(parse("await X;"))

    def test_await_output_event_refused(self):
        with pytest.raises(BindError):
            bind(parse("output int O;\nawait O;"))

    def test_event_redeclaration(self):
        with pytest.raises(BindError):
            bind(parse("input void A;\ninput int A;"))

    def test_emit_undeclared_internal(self):
        with pytest.raises(BindError):
            bind(parse("emit nope;"))

    def test_emit_value_on_void_event(self):
        with pytest.raises(BindError):
            bind(parse("internal void e;\nemit e = 3;"))

    def test_emit_input_outside_async_refused(self):
        with pytest.raises(BindError):
            bind(parse("input void A;\nemit A;"))

    def test_emit_time_outside_async_refused(self):
        with pytest.raises(BindError):
            bind(parse("emit 10ms;"))

    def test_output_event_emitted_outside_async(self):
        bound = bind(parse("output int O;\nasync do\nemit O = 1;\nend"))
        assert bound.events["O"].kind == "output"


class TestVariableScoping:
    def test_use_before_declaration_refused(self):
        with pytest.raises(BindError):
            bind(parse("v = 1;\nint v;"))

    def test_initializer_cannot_see_itself(self):
        with pytest.raises(BindError):
            bind(parse("int v = v + 1;"))

    def test_initializer_sees_earlier_declarator(self):
        bound = bind(parse("int a = 1, b = a + 1;"))
        assert len(bound.variables) == 2

    def test_shadowing_in_nested_block(self):
        bound = bind(parse("""
            int v = 1;
            do
               int v = 2;
               v = 3;
            end
            v = 4;
        """))
        assigns = [n for n in bound.program.walk()
                   if isinstance(n, ast.Assign)]
        inner, outer = assigns
        assert bound.var_of[inner.target.nid] is not \
            bound.var_of[outer.target.nid]

    def test_block_scope_ends(self):
        with pytest.raises(BindError):
            bind(parse("do\nint v;\nend\nv = 1;"))

    def test_par_branches_are_scopes(self):
        with pytest.raises(BindError):
            bind(parse("par/and do\nint v;\nwith\nv = 1;\nend"))

    def test_redeclaration_same_block(self):
        with pytest.raises(BindError):
            bind(parse("int v;\nint v;"))

    def test_vector_size_must_be_literal(self):
        with pytest.raises(BindError):
            bind(parse("int n = 3;\nint[n] xs;"))

    def test_vector_size_positive(self):
        with pytest.raises(BindError):
            bind(parse("int[0] xs;"))

    def test_sym_of_decl_mapping(self):
        bound = bind(parse("int a, b;"))
        decl = bound.program.body.stmts[0]
        assert [bound.sym_of_decl[d.nid].name for d in decl.decls] == \
            ["a", "b"]


class TestBreakReturnBinding:
    def test_break_outside_loop(self):
        with pytest.raises(BindError):
            bind(parse("break;"))

    def test_break_binds_innermost_loop(self):
        bound = bind(parse("""
            loop do
               loop do
                  break;
               end
               break;
            end
        """))
        breaks = [n for n in bound.program.walk() if isinstance(n, ast.Break)]
        loops = [n for n in bound.program.walk() if isinstance(n, ast.Loop)]
        assert bound.break_target[breaks[0].nid] is loops[1]
        assert bound.break_target[breaks[1].nid] is loops[0]

    def test_return_at_top_level_has_no_boundary(self):
        bound = bind(parse("return 1;"))
        ret = bound.program.body.stmts[0]
        assert bound.ret_boundary[ret.nid] is None

    def test_return_binds_value_par(self):
        bound = bind(parse("""
            int v;
            v = par do
               return 1;
            with
               return 0;
            end;
        """))
        rets = [n for n in bound.program.walk() if isinstance(n, ast.Return)]
        par = next(n for n in bound.program.walk()
                   if isinstance(n, ast.ParStmt))
        assert all(bound.ret_boundary[r.nid] is par for r in rets)
        assert par.nid in bound.value_boundaries

    def test_return_binds_value_do(self):
        bound = bind(parse("int v;\nv = do\nreturn 5;\nend;"))
        ret = next(n for n in bound.program.walk()
                   if isinstance(n, ast.Return))
        assert isinstance(bound.ret_boundary[ret.nid], ast.DoBlock)

    def test_plain_do_is_not_a_boundary(self):
        bound = bind(parse("do\nreturn 5;\nend"))
        ret = next(n for n in bound.program.walk()
                   if isinstance(n, ast.Return))
        assert bound.ret_boundary[ret.nid] is None


class TestAsyncRestrictions:
    def test_no_await_inside_async(self):
        with pytest.raises(AsyncError):
            bind(parse("input void A;\nasync do\nawait A;\nend"))

    def test_no_par_inside_async(self):
        with pytest.raises(AsyncError):
            bind(parse("async do\npar do\nnothing;\nwith\nnothing;"
                       "\nend\nend"))

    def test_no_internal_emit_inside_async(self):
        with pytest.raises(AsyncError):
            bind(parse("internal void e;\nasync do\nemit e;\nend"))

    def test_no_outer_assignment_inside_async(self):
        with pytest.raises(AsyncError):
            bind(parse("int v;\nasync do\nv = 1;\nend"))

    def test_local_assignment_inside_async_ok(self):
        bind(parse("async do\nint v;\nv = 1;\nend"))

    def test_outer_read_inside_async_ok(self):
        bind(parse("int v = 3;\nasync do\nint w = v + 1;\nend"))

    def test_nested_async_refused(self):
        with pytest.raises(AsyncError):
            bind(parse("async do\nasync do\nnothing;\nend\nend"))

    def test_no_event_decl_inside_async(self):
        with pytest.raises(AsyncError):
            bind(parse("async do\ninput void A;\nend"))

    def test_return_inside_async_binds_async(self):
        bound = bind(parse("int r;\nr = async do\nreturn 7;\nend;"))
        ret = next(n for n in bound.program.walk()
                   if isinstance(n, ast.Return))
        assert isinstance(bound.ret_boundary[ret.nid], ast.AsyncBlock)

    def test_statement_async_return_also_binds_async(self):
        bound = bind(parse("async do\nreturn 7;\nend"))
        ret = next(n for n in bound.program.walk()
                   if isinstance(n, ast.Return))
        assert isinstance(bound.ret_boundary[ret.nid], ast.AsyncBlock)


class TestLvalues:
    def test_deref_assignment(self):
        bind(parse("input int* P;\nint* p = await P;\n*p = 3;"))

    def test_index_assignment(self):
        bind(parse("int[4] xs;\nxs[2] = 1;"))

    def test_c_global_assignment(self):
        bind(parse("_G = 3;"))

    def test_literal_not_lvalue(self):
        with pytest.raises(BindError):
            bind(parse("3 = 4;"))

    def test_annotations_collected(self):
        bound = bind(parse("pure _abs;\ndeterministic _a, _b;"))
        assert bound.annotations.compatible("abs", "anything")
        assert bound.annotations.compatible("a", "b")
        assert not bound.annotations.compatible("a", "c")
