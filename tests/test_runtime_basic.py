"""Reference-VM basics: reactions, awaits, values, expressions, C env."""

import pytest

from helpers import run_program
from repro.lang.errors import RuntimeCeuError
from repro.runtime import CAssertionError, Program


class TestReactions:
    def test_boot_runs_to_first_await(self):
        p = run_program("input void A;\n_printf(\"boot\\n\");\nawait A;"
                        "\n_printf(\"after\\n\");")
        assert p.output() == "boot\n"
        assert not p.done

    def test_event_resumes(self):
        p = run_program("input void A;\nawait A;\nreturn 7;", ("ev", "A"))
        assert p.done and p.result == 7

    def test_event_value_received(self):
        p = run_program("input int X;\nint v = await X;\nreturn v * 2;",
                        ("ev", "X", 21))
        assert p.result == 42

    def test_event_discarded_when_nobody_awaits(self):
        p = run_program("""
        input void A, B;
        await B;
        await A;
        return 1;
        """, ("ev", "A"), ("ev", "B"), ("ev", "A"))
        assert p.done and p.result == 1

    def test_one_event_per_reaction(self):
        # a trail awaiting A twice needs two occurrences
        p = run_program("input void A;\nawait A;\nawait A;\nreturn 1;",
                        ("ev", "A"))
        assert not p.done

    def test_program_terminates_when_no_trails_await(self):
        p = run_program("int v = 1;\nv = v + 1;")
        assert p.done and p.result is None

    def test_explicit_return_terminates(self):
        p = run_program("return 5;")
        assert p.done and p.result == 5

    def test_termination_freezes_api(self):
        p = run_program("return 1;")
        assert p.send("A") == "terminated" or p.done  # no crash

    def test_undeclared_event_raises(self):
        p = Program("input void A;\nawait A;")
        p.start()
        with pytest.raises(RuntimeCeuError):
            p.send("Nope")


class TestExpressions:
    def _eval(self, expr: str, setup: str = ""):
        p = run_program(f"{setup}\nreturn {expr};")
        assert p.done
        return p.result

    def test_c_division_truncates_toward_zero(self):
        assert self._eval("(0 - 7) / 2") == -3
        assert self._eval("7 / 2") == 3

    def test_c_modulo(self):
        assert self._eval("(0 - 7) % 2") == -1

    def test_temperature_formula(self):
        assert self._eval("9 * 100 / 5 + 32") == 212
        assert self._eval("5 * (212 - 32) / 9") == 100

    def test_logical_ops_short_circuit(self):
        p = run_program("""
        int hits = 0;
        int r = 0 && _count();
        int s = 1 || _count();
        return hits;
        """)
        # _count is undefined: short-circuiting must avoid calling it
        assert p.result == 0

    def test_comparisons_yield_ints(self):
        assert self._eval("3 < 5") == 1
        assert self._eval("3 > 5") == 0

    def test_bitwise(self):
        assert self._eval("(5 << 2) | 1") == 21
        assert self._eval("~0 & 15") == 15
        assert self._eval("6 ^ 3") == 5

    def test_unary_not(self):
        assert self._eval("!0") == 1
        assert self._eval("!42") == 0

    def test_char_comparison(self):
        assert self._eval("'#' == 35") == 1

    def test_division_by_zero(self):
        with pytest.raises(RuntimeCeuError):
            self._eval("1 / 0")

    def test_cast_is_transparent(self):
        assert self._eval("<int> 300") == 300

    def test_null_is_zero(self):
        assert self._eval("null == 0") == 1


class TestVariablesAndVectors:
    def test_vector_elements(self):
        p = run_program("""
        int[4] xs;
        xs[0] = 10;
        xs[3] = 40;
        return xs[0] + xs[3];
        """)
        assert p.result == 50

    def test_vector_out_of_range(self):
        with pytest.raises(RuntimeCeuError):
            run_program("int[2] xs;\nxs[5] = 1;")

    def test_pointer_roundtrip(self):
        p = run_program("""
        int v = 5;
        int* p = &v;
        *p = *p + 10;
        return v;
        """)
        assert p.result == 15

    def test_pointer_into_vector(self):
        p = run_program("""
        int[3] xs;
        int* p = &xs[1];
        *p = 9;
        return xs[1];
        """)
        assert p.result == 9

    def test_loop_redeclaration_reinitialises(self):
        p = run_program("""
        input void A;
        int total = 0;
        loop do
           int local = 0;
           local = local + 1;
           total = total + local;
           if total == 3 then
              break;
           end
           await A;
        end
        return total;
        """, ("ev", "A"), ("ev", "A"))
        assert p.result == 3


class TestCEnvironment:
    def test_printf_formats(self):
        p = run_program('_printf("%d %s %c %x%%\\n", 42, "hi", 65, 255);')
        assert p.output() == "42 hi A ff%\n"

    def test_assert_pass_and_fail(self):
        run_program("_assert(1 + 1 == 2);")
        with pytest.raises(CAssertionError):
            run_program("_assert(0);")

    def test_rand_deterministic(self):
        src = """
        _srand(7);
        int a = _rand();
        int b = _rand();
        return a * 100000 + b;
        """
        assert run_program(src).result == run_program(src).result

    def test_custom_c_function(self):
        p = Program("int v = _double(21);\nreturn v;")
        p.cenv.define("double", lambda x: 2 * x)
        p.start()
        assert p.result == 42

    def test_c_global_read_write(self):
        p = Program("_G = _G + 1;\nreturn _G;")
        p.cenv.define("G", 10)
        p.start()
        assert p.result == 11

    def test_object_method_call(self):
        class Dev:
            def __init__(self):
                self.log = []

            def write(self, x):
                self.log.append(x)
                return 0

        dev = Dev()
        p = Program("_dev.write(3);\n_dev.write(4);")
        p.cenv.define("dev", dev)
        p.start()
        assert dev.log == [3, 4]

    def test_undefined_c_symbol(self):
        with pytest.raises(RuntimeCeuError):
            run_program("_undefined_fn();")

    def test_string_indexing_gives_char_code(self):
        p = Program("return _S[1];")
        p.cenv.define("S", "a#c")
        p.start()
        assert p.result == ord("#")
