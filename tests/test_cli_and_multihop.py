"""The CLI (`python -m repro`) and the multi-hop collection protocol."""

import itertools

import pytest

from repro.apps import load
from repro.cli import main
from repro.eval import loc
from repro.platforms import TinyOsWorld

GOOD = """
input int X;
int v = await X;
_printf("got %d\\n", v);
return v;
"""

BAD = "int v;\npar/and do\nv = 1;\nwith\nv = 2;\nend"


@pytest.fixture()
def ceu_file(tmp_path):
    def write(source: str, name: str = "prog.ceu") -> str:
        path = tmp_path / name
        path.write_text(source)
        return str(path)
    return write


class TestCli:
    def test_check_ok(self, ceu_file, capsys):
        assert main(["check", ceu_file(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "deterministic" in out and "dfa" in out

    def test_check_refuses(self, ceu_file, capsys):
        assert main(["check", ceu_file(BAD)]) == 1
        assert "nondeterminism" in capsys.readouterr().err

    def test_run_with_inputs(self, ceu_file, capsys):
        assert main(["run", ceu_file(GOOD), "X=7"]) == 0
        captured = capsys.readouterr()
        assert captured.out == "got 7\n"
        assert "result = 7" in captured.err

    def test_run_with_time_marker(self, ceu_file, capsys):
        src = "int n = 0;\npar/or do\nloop do\nawait 10ms;\nn = n + 1;" \
              "\nend\nwith\nawait 95ms;\nend\nreturn n;"
        assert main(["run", ceu_file(src), "@1s"]) == 0
        assert "result = 9" in capsys.readouterr().err

    def test_emit_c(self, ceu_file, capsys):
        assert main(["c", ceu_file(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "ceu_go_event" in out and "switch (track)" in out

    def test_emit_c_to_file(self, ceu_file, tmp_path):
        out_path = tmp_path / "out.c"
        assert main(["c", ceu_file(GOOD), "-o", str(out_path)]) == 0
        assert "ceu_go_init" in out_path.read_text()

    def test_dot_dfa(self, ceu_file, capsys):
        assert main(["dot", ceu_file(GOOD)]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_dot_flow(self, ceu_file, capsys):
        assert main(["dot", "--flow", ceu_file(GOOD)]) == 0
        assert "await X" in capsys.readouterr().out

    def test_dot_nondeterministic_warns(self, ceu_file, capsys):
        assert main(["dot", ceu_file(BAD)]) == 1
        assert "witness" in capsys.readouterr().err

    def test_layout(self, ceu_file, capsys):
        assert main(["layout", ceu_file(GOOD)]) == 0
        out = capsys.readouterr().out
        assert "memory vector" in out and "gates" in out

    def test_parse_error_reported(self, ceu_file, capsys):
        assert main(["check", ceu_file("loop do")]) == 1
        assert "error" in capsys.readouterr().err


EMITTER = """
input int X;
internal void e;
int v = 0;
par/or do
   loop do
      v = await X;
      emit e;
   end
with
   await 1s;
end
return v;
"""


class TestCliObservability:
    def test_run_trace_prints_reactions(self, ceu_file, capsys):
        assert main(["run", ceu_file(GOOD), "X=7", "--trace"]) == 0
        err = capsys.readouterr().err
        assert "--- trace ---" in err
        assert "#0 boot" in err and "event:X" in err

    def test_run_trace_json_is_loadable(self, ceu_file, tmp_path, capsys):
        import json
        out = tmp_path / "trace.json"
        assert main(["run", ceu_file(EMITTER), "X=1", "X=2",
                     "--trace-json", str(out)]) == 0
        assert "ui.perfetto.dev" in capsys.readouterr().err
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        # "s"/"f" are the causal flow arrows (docs/OBSERVABILITY.md)
        assert {e["ph"] for e in events} <= {"B", "E", "i", "M", "s", "f"}
        # every B has its E: the file loads with balanced slices
        per_tid: dict = {}
        for ev in events:
            if ev["ph"] in ("B", "E"):
                tid = ev["tid"]
                per_tid[tid] = per_tid.get(tid, 0) + \
                    (1 if ev["ph"] == "B" else -1)
                assert per_tid[tid] >= 0
        assert set(per_tid.values()) == {0}

    def test_run_trace_jsonl(self, ceu_file, tmp_path, capsys):
        import json
        out = tmp_path / "trace.jsonl"
        assert main(["run", ceu_file(EMITTER), "X=3",
                     "--trace-jsonl", str(out)]) == 0
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert any(r["ev"] == "emit_internal" and r["name"] == "e"
                   for r in records)

    def test_run_stats(self, ceu_file, capsys):
        assert main(["run", ceu_file(EMITTER), "X=1", "X=2", "@1s",
                     "--stats"]) == 0
        err = capsys.readouterr().err
        assert "--- stats ---" in err
        assert "reactions_total" in err and "emits_internal_total" in err

    def test_profile_prints_report(self, ceu_file, capsys):
        assert main(["profile", ceu_file(EMITTER), "X=4", "@1s"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out and "histograms" in out
        assert "steps_per_reaction" in out

    def test_profile_json_snapshot(self, ceu_file, tmp_path, capsys):
        import json
        out = tmp_path / "stats.json"
        assert main(["profile", ceu_file(EMITTER), "X=4",
                     "--json", str(out)]) == 0
        stats = json.loads(out.read_text())
        assert stats["counters"]["reactions_total"] == 2
        assert stats["counters"]["emits_by_event.e"] == 1
        assert stats["runtime"]["observed"] is True


def build_chain(length: int = 4, latency_us: int = 3_000) -> TinyOsWorld:
    """A linear collection tree: node k forwards to k-1; node 0 sinks."""
    world = TinyOsWorld(latency_us=latency_us)
    for node in range(length):
        world.add_mote(node, load("multihop"),
                       extra_env={"PARENT_ID": max(node - 1, 0),
                                  "Sensor_read": lambda: 0})
    for mote in world.motes.values():
        counter = itertools.count(100)

        def read(mote=mote, counter=counter):
            def respond():
                if mote.up and not mote.program.done:
                    mote.sync_time()
                    mote.program.send("ReadDone", next(counter) % 1024)
                    world.arm_timer(mote)
            world.sim.after(1_000, respond)
            return 0

        mote.cenv.define("Sensor_read", read)
    world.boot()
    return world


class TestMultihop:
    def test_readings_reach_the_sink(self):
        world = build_chain(4)
        world.run_until(30_000_000)
        sink = world.motes[0].program.sched.memory.snapshot()
        # 3 sources × ~14 sampling rounds, minus in-flight stragglers
        assert sink["delivered"] >= 36

    def test_relay_counts_decrease_toward_leaves(self):
        world = build_chain(4)
        world.run_until(30_000_000)
        relayed = [world.motes[n].program.sched.memory.snapshot()["relayed"]
                   for n in (1, 2, 3)]
        assert relayed[0] > relayed[1] > relayed[2] == 0

    def test_duplicate_suppression(self):
        world = build_chain(3)
        world.run_until(10_000_000)
        sink_mote = world.motes[0]
        # replay an already-delivered message: it must be dropped
        before = sink_mote.program.sched.memory.snapshot()["delivered"]
        _, old = sink_mote.received[0]
        sink_mote.receive(old.copy())
        after = sink_mote.program.sched.memory.snapshot()["delivered"]
        assert after == before

    def test_dead_relay_cuts_the_stream(self):
        world = build_chain(4)
        world.run_until(10_000_000)
        mid = world.motes[1].program.sched.memory.snapshot()["relayed"]
        world.motes[1].fail()
        world.run_until(20_000_000)
        sink = world.motes[0].program.sched.memory.snapshot()
        # only the direct child (node 1 is dead; node 0 has no sensor)
        # keeps nothing flowing: delivered stops growing
        grown = world.motes[0].program.sched.memory.snapshot()["delivered"]
        world.run_until(30_000_000)
        final = world.motes[0].program.sched.memory.snapshot()["delivered"]
        assert final == grown


class TestLocExperiment:
    def test_totals_match_paper_claim(self):
        rows = loc.loc_table()
        total_ceu = sum(r.ceu for r in rows)
        total_nesc = sum(r.nesc for r in rows)
        assert 0.3 < total_ceu / total_nesc < 0.75

    def test_every_app_counted(self):
        rows = loc.loc_table()
        assert [r.app for r in rows] == ["Blink", "Sense", "Client",
                                         "Server"]
        assert all(r.ceu > 0 and r.nesc > 0 for r in rows)

    def test_comment_lines_ignored(self):
        assert loc.count_ceu_loc("// only comments\n\n// more\n") == 0
        assert loc.count_ceu_loc("int v;\n// note\nv = 1;") == 2
