"""Continuous profiling and coverage maps (ISSUE 4 tentpole,
``repro.obs.profile`` / ``repro.obs.coverage``)."""

from repro.dfa import build_dfa
from repro.lang import parse
from repro.obs import (CoverageMap, DfaEdgeCoverage, Profiler,
                       collect_coverage, coverage_signature)
from repro.obs.coverage import feature_id
from repro.runtime import Program
from repro.sema import bind

SRC = """
input int A, B;
int n = 0;
par/or do
   loop do
      int v = await A;
      n = n + v;
   end
with
   await B;
end
return n;
"""


def profiled(src, *sends):
    program = Program(src, observe=True)
    profiler = program.observe(Profiler(source=src))
    program.start()
    for name, value in sends:
        program.send(name, value)
    return program, profiler


# ---------------------------------------------------------------- profiler
class TestProfiler:
    def test_step_attribution_adds_up(self):
        _, prof = profiled(SRC, ("A", 1), ("A", 2), ("B", 0))
        assert prof.total_steps == sum(prof.line_cost.values())
        assert prof.total_steps == sum(prof.trail_cost.values())
        assert prof.total_steps == sum(prof.stacks.values())
        assert prof.reactions == 4          # boot + 3 events

    def test_hot_lines_rank_the_loop_body(self):
        _, prof = profiled(SRC, *[("A", i) for i in range(20)])
        hot = prof.hot_lines(2)
        # the await and the accumulation dominate a 20-iteration run
        assert {line for line, _ in hot} == {6, 7}
        assert hot[0][1] >= hot[1][1]

    def test_hot_trails_and_k_limit(self):
        _, prof = profiled(SRC, ("A", 1))
        assert len(prof.hot_trails(1)) == 1
        all_trails = prof.hot_trails(100)
        assert sum(c for _, c in all_trails) == prof.total_steps

    def test_per_trigger_latency_histograms(self):
        _, prof = profiled(SRC, ("A", 1), ("A", 2), ("B", 0))
        assert set(prof.latency) == {"boot", "event:A", "event:B"}
        assert prof.latency["event:A"].count == 2
        p = prof.latency["event:A"].percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]
        assert prof.steps["event:A"].count == 2

    def test_async_triggers_collapse_to_one_family(self):
        prof = Profiler()
        for i in range(5):
            prof.on_reaction_begin(i, f"async:{i}", None, 0)
            prof.on_reaction_end(i, f"async:{i}", 1, 1000)
        assert set(prof.latency) == {"async"}
        assert prof.latency["async"].count == 5

    def test_report_mentions_the_load_bearing_parts(self):
        _, prof = profiled(SRC, ("A", 1), ("B", 0))
        report = prof.report(k=3)
        assert "per-trigger reaction latency" in report
        assert "hot lines (top 3)" in report
        assert "hot trails (top 3)" in report
        # with source attached, hot lines quote the code
        assert "await A" in report

    def test_collapsed_stack_format(self, tmp_path):
        _, prof = profiled(SRC, ("A", 1))
        lines = prof.collapsed()
        assert lines == sorted(lines)
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            trigger, trail, frame = stack.split(";")
            kind, lineno = frame.rsplit(":", 1)
            assert int(count) > 0 and int(lineno) > 0
            assert trigger in ("boot", "event:A")
        path = tmp_path / "stacks.txt"
        assert prof.write_collapsed(path) == len(lines)
        assert path.read_text().splitlines() == lines


# ------------------------------------------------------------ coverage map
class TestCoverageMap:
    def run_cov(self, script, context=""):
        cov = CoverageMap(context=context)
        program = Program(SRC)
        program.observe(cov)
        program.start()
        for name, value in script:
            program.send(name, value)
        return cov

    def test_statements_and_edges_collected(self):
        cov = self.run_cov([("A", 1)])
        assert cov.stmts and cov.edges
        assert cov.ids() == cov.stmts | cov.edges
        assert len(cov) == len(cov.stmts) + len(cov.edges)

    def test_coverage_is_deterministic(self):
        a = self.run_cov([("A", 1), ("B", 0)])
        b = self.run_cov([("A", 1), ("B", 0)])
        assert a.ids() == b.ids()
        assert a.signature() == b.signature()

    def test_different_paths_differ(self):
        shallow = self.run_cov([("B", 0)])
        deep = self.run_cov([("A", 1), ("B", 0)])
        assert shallow.ids() != deep.ids()
        assert shallow.signature() != deep.signature()
        # the loop-body statements only appear on the deep path
        assert deep.stmts - shallow.stmts

    def test_merge_accumulates(self):
        a = self.run_cov([("A", 1)])
        b = self.run_cov([("B", 0)])
        union = a.ids() | b.ids()
        a.merge(b)
        assert a.ids() == union

    def test_context_namespaces_features(self):
        a = self.run_cov([("A", 1)], context="prog-a")
        b = self.run_cov([("A", 1)], context="prog-b")
        assert a.ids().isdisjoint(b.ids()) or a.ids() != b.ids()
        assert feature_id("x", "s", 7) != feature_id("y", "s", 7)

    def test_signature_is_stable_text(self):
        assert coverage_signature([3, 1, 2]) == \
            coverage_signature([1, 2, 3])
        assert len(coverage_signature([1])) == 40   # sha1 hex

    def test_collect_coverage_helper(self):
        ids = collect_coverage(Program, SRC,
                               [("E", "A", 1), ("E", "B", 0)])
        assert ids
        assert collect_coverage(Program, "not a program ;;;", []) is None


# ------------------------------------------------------- DFA edge coverage
class TestDfaEdgeCoverage:
    def make(self, src=SRC):
        bound = bind(parse(src))
        return build_dfa(bound), bound

    def test_boot_covers_boot_edges_only(self):
        dfa, _ = self.make()
        cov = DfaEdgeCoverage(dfa)
        program = Program(SRC)
        program.observe(cov)
        program.start()
        labels = {dfa.edges[i][1] for i in cov.covered}
        assert labels == {"boot"}

    def test_events_advance_the_frontier(self):
        dfa, _ = self.make()
        cov = DfaEdgeCoverage(dfa)
        program = Program(SRC)
        program.observe(cov)
        program.start()
        after_boot = len(cov.covered)
        program.send("A", 1)
        assert len(cov.covered) > after_boot
        labels = {dfa.edges[i][1] for i in cov.covered}
        assert "event A" in labels

    def test_more_stimuli_strictly_more_edges(self):
        dfa, _ = self.make()

        def run(script):
            cov = DfaEdgeCoverage(dfa)
            program = Program(SRC)
            program.observe(cov)
            program.start()
            for name in script:
                program.send(name, 1)
            return cov.covered

        assert run(["A"]) < run(["A", "A", "B"])

    def test_merge_and_ids(self):
        dfa, _ = self.make()
        a, b = DfaEdgeCoverage(dfa), DfaEdgeCoverage(dfa)
        a.covered = {0}
        b.covered = {1}
        a.merge(b)
        assert a.covered == {0, 1}
        assert len(a.ids()) == 2
        assert a.signature() != b.signature()

    def test_unknown_trigger_keeps_frontier(self):
        dfa, _ = self.make()
        cov = DfaEdgeCoverage(dfa)
        frontier = set(cov._frontier)
        cov.on_reaction_begin(0, "event:NOPE", None, 0)
        assert cov._frontier == frontier    # no match → stay put
