"""Temporal analysis (§2.6): the paper's acceptance/refusal suite for
variables, internal events and C calls, plus DFA structure checks."""

import pytest

from repro.dfa import build_dfa, check_determinism
from repro.lang import parse
from repro.lang.errors import NondeterminismError
from repro.sema import bind


def dfa_of(src: str, **kw):
    return build_dfa(bind(parse(src)), **kw)


def refuse(src: str, fragment: str = ""):
    dfa = dfa_of(src)
    assert dfa.conflicts, "expected nondeterminism"
    message = dfa.conflicts[0].message()
    assert fragment in message, message
    return dfa


def accept(src: str):
    dfa = dfa_of(src)
    assert not dfa.conflicts, dfa.conflicts[0].message()
    return dfa


class TestVariableConflicts:
    def test_immediate_concurrent_writes(self):
        refuse("int v;\npar/and do\nv = 1;\nwith\nv = 2;\nend\nreturn v;",
               "variable `v`")

    def test_false_positive_same_value_still_refused(self):
        # §2.6: detection ignores the values being written
        refuse("int v;\npar/and do\nv = 1;\nwith\nv = 1;\nend\nreturn v;")

    def test_write_vs_read(self):
        refuse("""
        input void A;
        int v, w;
        par/and do
           await A;
           v = 1;
        with
           await A;
           w = v;
        end
        """, "variable `v`")

    def test_concurrent_reads_allowed(self):
        accept("""
        input void A;
        int v = 3;
        int a, b;
        par/and do
           await A;
           a = v;
        with
           await A;
           b = v;
        end
        """)

    def test_different_events_no_concurrency(self):
        accept("""
        input void A, B;
        int v;
        par/and do
           await A;
           v = 1;
        with
           await B;
           v = 2;
        end
        """)

    def test_fig_dfa_example_sixth_occurrence(self):
        dfa = refuse("""
        input void A;
        int v;
        par do
           loop do
              await A;
              await A;
              v = 1;
           end
        with
           loop do
              await A;
              await A;
              await A;
              v = 2;
           end
        end
        """, "variable `v`")
        # 2-cycle × 3-cycle: the race fires when both loops complete
        # simultaneously — on the 6th A (lcm(2,3) = 6), paper fig. 2
        assert all("event A" in c.trigger for c in dfa.conflicts)

    def test_sequenced_writes_in_one_trail_fine(self):
        accept("input void A;\nint v;\nloop do\nawait A;\nv = 1;\nv = 2;"
               "\nend")

    def test_address_taken_counts_as_write(self):
        refuse("""
        input void A;
        int v;
        int w;
        par/and do
           await A;
           _poll(&v);
        with
           await A;
           w = v;
        end
        """, "variable `v`")

    def test_spawning_parent_ordered_before_children(self):
        accept("""
        input void A;
        int v;
        loop do
           await A;
           v = 1;
           par/and do
              nothing;
           with
              nothing;
           end
        end
        """)

    def test_check_determinism_raises(self):
        with pytest.raises(NondeterminismError) as err:
            check_determinism(bind(parse(
                "int v;\npar/and do\nv = 1;\nwith\nv = 2;\nend")))
        assert err.value.witness is not None


class TestInternalEventConflicts:
    def test_concurrent_emits(self):
        refuse("""
        input void A;
        internal void e;
        par/and do
           await A;
           emit e;
        with
           await A;
           emit e;
        end
        """, "event `e`")

    def test_emit_vs_concurrent_arming(self):
        refuse("""
        input void A;
        internal void e;
        int v;
        par do
           loop do
              await A;
              emit e;
           end
        with
           loop do
              await A;
              await e;
           end
        end
        """, "event `e`")

    def test_emit_to_already_armed_await_fine(self):
        accept("""
        input void A;
        internal void e;
        par do
           loop do
              await e;
           end
        with
           loop do
              await A;
              emit e;
           end
        end
        """)

    def test_stack_policy_chains_are_ordered(self):
        # the §2.2 dataflow network: emitter and awakened trails interleave
        # deterministically, so all the shared variables are fine
        accept("""
        input int Set;
        int v1, v2, v3;
        internal void v1_evt, v2_evt;
        par do
           loop do
              await v1_evt;
              v2 = v1 + 1;
              emit v2_evt;
           end
        with
           loop do
              await v2_evt;
              v3 = v2 * 2;
           end
        with
           loop do
              v1 = await Set;
              emit v1_evt;
           end
        end
        """)

    def test_mutual_dependency_no_cycle(self):
        accept("""
        input int SetC, SetF;
        int tc, tf;
        internal void tc_evt, tf_evt;
        par do
           loop do
              await tc_evt;
              tf = 9 * tc / 5 + 32;
              emit tf_evt;
           end
        with
           loop do
              await tf_evt;
              tc = 5 * (tf - 32) / 9;
              emit tc_evt;
           end
        with
           loop do
              tc = await SetC;
              emit tc_evt;
           end
        end
        """)

    def test_two_trails_awakened_by_same_emit_conflict(self):
        refuse("""
        input void A;
        internal void e;
        int v;
        par do
           loop do
              await e;
              v = 1;
           end
        with
           loop do
              await e;
              v = 2;
           end
        with
           loop do
              await A;
              emit e;
           end
        end
        """, "variable `v`")


class TestCCallConflicts:
    def test_concurrent_calls_refused_by_default(self):
        refuse("par/and do\n_led1On();\nwith\n_led2On();\nend",
               "C function")

    def test_deterministic_annotation_accepts(self):
        accept("deterministic _led1On, _led2On;\npar/and do\n_led1On();"
               "\nwith\n_led2On();\nend")

    def test_pure_runs_with_anything(self):
        accept("pure _abs;\nint a, b;\npar/and do\na = _abs(1);\nwith"
               "\nb = _abs(2);\nend")

    def test_pure_with_unannotated_other(self):
        accept("pure _abs;\nint a;\npar/and do\na = _abs(1);\nwith"
               "\n_led1On();\nend")

    def test_same_function_twice_needs_annotation(self):
        refuse("par/and do\n_beep();\nwith\n_beep();\nend", "C function")

    def test_groups_do_not_leak(self):
        refuse("deterministic _a, _b;\ndeterministic _c, _d;\npar/and do"
               "\n_a();\nwith\n_c();\nend")

    def test_method_style_call_names(self):
        refuse("par/and do\n_lcd.write(1);\nwith\n_lcd.write(2);\nend",
               "lcd.write")

    def test_ship_annotations(self):
        accept("""
        pure _analog2key;
        deterministic _analogRead, _map_generate;
        par/and do
           _map_generate();
        with
           int k = _analog2key(_analogRead(0));
        end
        """)


class TestGalsBoundary:
    def test_async_vs_timer_accepted(self):
        # §2.9: nondeterminism from asyncs is allowed (locally deterministic)
        accept("""
        int ret;
        par/or do
           async do
              int i = 0;
              loop do
                 i = i + 1;
                 if i == 10 then
                    break;
                 end
              end
              return i;
           end
           ret = 1;
        with
           await 1s;
           ret = 2;
        end
        return ret;
        """)


class TestDfaStructure:
    def test_terminal_state(self):
        dfa = accept("input int X;\nint v = await X;\nreturn v;")
        assert any(s.terminal for s in dfa.states)

    def test_boot_edge_present(self):
        dfa = accept("input void A;\nloop do\nawait A;\nend")
        assert any(src == -1 and lbl == "boot" for src, lbl, _ in dfa.edges)

    def test_loop_states_cycle(self):
        dfa = accept("input void A, B;\nloop do\nawait A;\nawait B;\nend")
        # two awaiting configurations, cycling A→B→A
        assert dfa.state_count() == 2

    def test_dot_output(self):
        dfa = accept("input void A;\nloop do\nawait A;\nend")
        dot = dfa.to_dot()
        assert dot.startswith("digraph")
        assert 's-1 -> s0 [label="boot"]' in dot

    def test_conflicting_state_marked_in_dot(self):
        dfa = refuse("int v;\npar/and do\nv = 1;\nwith\nv = 2;\nend")
        dot = dfa.to_dot()
        assert "color=red" in dot or dfa.conflicts[0].state_index == 0

    def test_guiding_example_deterministic(self):
        dfa = accept("""
        input int A, B, C;
        int ret;
        loop do
           par/or do
              int a = await A;
              int b = await B;
              ret = a + b;
              break;
           with
              par/and do
                 await C;
              with
                 await A;
              end
           end
        end
        """)
        assert dfa.state_count() >= 3
        assert dfa.transition_count() >= dfa.state_count()
