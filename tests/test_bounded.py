"""Bounded-execution analysis (§2.5): the paper's five examples and the
outcome-lattice corners."""

import pytest

from repro.lang import parse
from repro.lang.errors import BoundedError
from repro.sema import bind, check_bounded


def ok(src: str) -> None:
    check_bounded(bind(parse(src)))


def refuse(src: str) -> None:
    with pytest.raises(BoundedError):
        check_bounded(bind(parse(src)))


class TestPaperExamples:
    def test_ex1_tight_loop_refused(self):
        refuse("int v;\nloop do\nv = v + 1;\nend")

    def test_ex2_if_without_awaiting_else_refused(self):
        refuse("input void A;\nint v;\nloop do\nif v then\nawait A;"
               "\nend\nend")

    def test_ex3_par_or_with_instant_branch_refused(self):
        refuse("input void A;\nint v;\nloop do\npar/or do\nawait A;"
               "\nwith\nv = 1;\nend\nend")

    def test_ex4_await_accepted(self):
        ok("input void A;\nloop do\nawait A;\nend")

    def test_ex5_par_and_accepted(self):
        ok("input void A;\nint v;\nloop do\npar/and do\nawait A;"
           "\nwith\nv = 1;\nend\nend")


class TestAwaitForms:
    def test_time_await_counts(self):
        ok("loop do\nawait 1s;\nend")

    def test_computed_timeout_counts(self):
        ok("int dt = 5;\nloop do\nawait (dt * 1000);\nend")

    def test_internal_await_counts(self):
        ok("internal void e;\nloop do\nawait e;\nend")

    def test_await_forever_never_completes(self):
        # the loop body can never complete, which is fine
        ok("loop do\nawait forever;\nend")

    def test_setexp_await_counts(self):
        ok("input int X;\nint v;\nloop do\nv = await X;\nend")

    def test_decl_await_counts(self):
        ok("input int X;\nloop do\nint v = await X;\nend")


class TestBreakAndReturn:
    def test_break_makes_loop_bounded(self):
        ok("int v;\nloop do\nv = 1;\nbreak;\nend")

    def test_conditional_break_both_paths_covered(self):
        ok("input void A;\nint c;\nloop do\nif c then\nbreak;"
           "\nelse\nawait A;\nend\nend")

    def test_conditional_break_with_zero_path_refused(self):
        refuse("int c;\nloop do\nif c then\nbreak;\nend\nend")

    def test_return_escapes(self):
        ok("int v;\nloop do\nreturn 1;\nend")

    def test_break_through_nested_if(self):
        ok("int a, b;\nloop do\nif a then\nif b then\nbreak;\nelse"
           "\nbreak;\nend\nelse\nbreak;\nend\nend")

    def test_inner_loop_breaking_is_still_zero_time(self):
        # inner loop exits via break without awaiting → outer is tight
        refuse("""
        int v;
        loop do
           loop do
              v = 1;
              break;
           end
        end
        """)

    def test_inner_loop_awaiting_before_break_bounds_outer(self):
        ok("""
        input void A;
        loop do
           loop do
              await A;
              break;
           end
        end
        """)


class TestParallelCompositions:
    def test_plain_par_never_rejoins(self):
        # the loop can never iterate: accepted
        ok("input void A;\nloop do\npar do\nawait A;\nwith\nawait A;"
           "\nend\nend")

    def test_par_and_all_instant_refused(self):
        refuse("int a, b;\nloop do\npar/and do\na = 1;\nwith\nb = 2;"
               "\nend\nend")

    def test_par_or_all_awaiting_accepted(self):
        ok("input void A, B;\nloop do\npar/or do\nawait A;\nwith"
           "\nawait B;\nend\nend")

    def test_nested_par_or_instant_leak_refused(self):
        refuse("""
        input void A;
        loop do
           par/or do
              await A;
           with
              par/or do
                 await A;
              with
                 nothing;
              end
           end
        end
        """)

    def test_value_par_with_returns_accepted(self):
        ok("""
        input void A, B;
        int v;
        loop do
           v = par do
              await A;
              return 1;
           with
              await B;
              return 0;
           end;
        end
        """)


class TestAsyncExemption:
    def test_unbounded_loop_inside_async_accepted(self):
        ok("""
        int r;
        r = async do
           int i = 0;
           loop do
              i = i + 1;
              if i == 100 then
                 break;
              end
           end
           return i;
        end;
        """)

    def test_async_counts_as_awaiting(self):
        ok("loop do\nasync do\nint i = 0;\ni = 1;\nend\nend")

    def test_loop_after_unreachable_code_still_checked(self):
        refuse("""
        input void A;
        await forever;
        loop do
           nothing;
        end
        """)


class TestValueBoundaries:
    def test_do_value_with_instant_return(self):
        refuse("int v;\nloop do\nv = do\nreturn 1;\nend;\nend")

    def test_do_value_with_awaiting_return(self):
        ok("input void A;\nint v;\nloop do\nv = do\nawait A;\nreturn 1;"
           "\nend;\nend")
