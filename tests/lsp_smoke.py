"""End-to-end LSP smoke test: spawn ``repro lsp`` as a real subprocess
and drive it over stdio pipes, exactly as an editor would.

Asserts the full loop: initialize handshake → didOpen publishes the
same CEU-* diagnostic codes as ``repro lint`` → an incremental
didChange re-publishes at keystroke latency → hover answers with the
static resource bounds → clean shutdown/exit.

Run from the repository root (CI ``lsp-smoke`` step)::

    python tests/lsp_smoke.py
"""

import json
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: the paper's §2.6 nondeterministic race — `repro lint` flags CEU-E201
RACY = """\
input void A;
int x = 0;
par/and do
    x = 1;
    await A;
    x = 3;
with
    await A;
    x = 2;
end
"""


def frame(obj) -> bytes:
    body = json.dumps(obj).encode()
    return b"Content-Length: %d\r\n\r\n%s" % (len(body), body)


def read_message(stdout):
    length = None
    while True:
        line = stdout.readline()
        if not line:
            raise AssertionError("server closed the pipe early")
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
        elif line in (b"\r\n", b"\n"):
            break
    return json.loads(stdout.read(length))


def wait_for(stdout, predicate, what):
    for _ in range(50):
        message = read_message(stdout)
        if predicate(message):
            return message
    raise AssertionError(f"never saw {what}")


def main() -> int:
    uri = "file:///smoke/racy.ceu"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "lsp"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, cwd=ROOT)

    def send(obj):
        proc.stdin.write(frame(obj))
        proc.stdin.flush()

    try:
        send({"jsonrpc": "2.0", "id": 1, "method": "initialize",
              "params": {"capabilities": {}}})
        init = wait_for(proc.stdout, lambda m: m.get("id") == 1,
                        "initialize response")
        caps = init["result"]["capabilities"]
        assert caps["textDocumentSync"]["change"] == 2, caps
        print("initialize: ok", init["result"]["serverInfo"])

        send({"jsonrpc": "2.0", "method": "initialized", "params": {}})
        send({"jsonrpc": "2.0", "method": "textDocument/didOpen",
              "params": {"textDocument": {
                  "uri": uri, "languageId": "ceu",
                  "version": 1, "text": RACY}}})
        pub = wait_for(
            proc.stdout,
            lambda m: m.get("method") == "textDocument/publishDiagnostics",
            "publishDiagnostics")
        codes = sorted({d["code"] for d in pub["params"]["diagnostics"]})
        assert "CEU-E201" in codes, codes
        print("didOpen: ok, published", codes)

        # keystroke: x = 3 → x = 4 (line 5, cols 8..9), incremental sync
        send({"jsonrpc": "2.0", "method": "textDocument/didChange",
              "params": {
                  "textDocument": {"uri": uri, "version": 2},
                  "contentChanges": [{
                      "range": {"start": {"line": 5, "character": 8},
                                "end": {"line": 5, "character": 9}},
                      "text": "4"}]}})
        pub2 = wait_for(
            proc.stdout,
            lambda m: m.get("method") == "textDocument/publishDiagnostics"
            and m["params"].get("version") == 2,
            "re-published diagnostics")
        codes2 = sorted({d["code"] for d in pub2["params"]["diagnostics"]})
        assert "CEU-E201" in codes2, codes2
        print("didChange: ok, re-published", codes2)

        send({"jsonrpc": "2.0", "id": 2, "method": "textDocument/hover",
              "params": {"textDocument": {"uri": uri},
                         "position": {"line": 3, "character": 4}}})
        hover = wait_for(proc.stdout, lambda m: m.get("id") == 2, "hover")
        value = hover["result"]["contents"]["value"]
        assert "trails<=" in value, value
        print("hover: ok,", value.splitlines()[1])

        send({"jsonrpc": "2.0", "id": 3, "method": "shutdown",
              "params": None})
        wait_for(proc.stdout, lambda m: m.get("id") == 3, "shutdown")
        send({"jsonrpc": "2.0", "method": "exit", "params": None})
        code = proc.wait(timeout=30)
        assert code == 0, f"exit code {code}"
        print("shutdown/exit: ok")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
