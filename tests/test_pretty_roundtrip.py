"""Pretty-printer round trips, including hypothesis-generated expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast, parse, parse_expression, pretty


def roundtrip(src: str) -> None:
    first = pretty(parse(src))
    second = pretty(parse(first))
    assert first == second


PAPER_LISTINGS = [
    # §2 intro example
    """
    input int Restart;
    internal void changed;
    int v = 0;
    par do
       loop do
          await 1s;
          v = v + 1;
          emit changed;
       end
    with
       loop do
          v = await Restart;
          emit changed;
       end
    with
       loop do
          await changed;
          _printf("v = %d\\n", v);
       end
    end
    """,
    # §2.2 dataflow
    """
    int v1, v2, v3;
    internal void v1_evt, v2_evt, v3_evt;
    par do
       loop do
          await v1_evt;
          v2 = v1 + 1;
          emit v2_evt;
       end
    with
       loop do
          await v2_evt;
          v3 = v2 * 2;
          emit v3_evt;
       end
    with
       nothing;
    end
    """,
    # §2.7 async
    """
    int ret;
    par/or do
       ret = async do
          int sum = 0;
          int i = 1;
          loop do
             sum = sum + i;
             if i == 100 then
                break;
             else
                i = i + 1;
             end
          end
          return sum;
       end;
    with
       await 10ms;
       ret = 0;
    end
    return ret;
    """,
    # §4 guiding example
    """
    input int A, B, C;
    int ret;
    loop do
       par/or do
          int a = await A;
          int b = await B;
          ret = a + b;
          break;
       with
          par/and do
             await C;
          with
             await A;
          end
       end
    end
    """,
]


@pytest.mark.parametrize("src", PAPER_LISTINGS,
                         ids=["intro", "dataflow", "async", "guiding"])
def test_paper_listings_roundtrip(src):
    roundtrip(src)


def test_app_sources_roundtrip():
    from repro.apps import load, names
    for name in names():
        roundtrip(load(name))


def test_c_block_roundtrip():
    roundtrip("C do\nint inc(int i) { return i+1; }\nend\nreturn _inc(1);")


def test_time_literals_roundtrip():
    roundtrip("await 1h35min;\nawait 2s500ms;\nawait 10us;")


# --------------------------------------------------------------------------
# property-based: random expression trees survive print → parse → print
# --------------------------------------------------------------------------

_names = st.sampled_from(["x", "y", "counter", "_printf", "_MAP"])
_binops = st.sampled_from(sorted({"+", "-", "*", "/", "%", "==", "!=",
                                  "<", "<=", ">", ">=", "&&", "||",
                                  "&", "|", "^", "<<", ">>"}))
_unops = st.sampled_from(["!", "-", "~", "*", "&"])


def _exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=10_000).map(
            lambda v: ast.Num(value=v)),
        _names.map(lambda n: ast.NameC(name=n) if n.startswith("_")
                   else ast.NameInt(name=n)),
    )

    def extend(children):
        return st.one_of(
            st.tuples(_binops, children, children).map(
                lambda t: ast.Binop(op=t[0], left=t[1], right=t[2])),
            st.tuples(_unops, children).map(
                lambda t: ast.Unop(op=t[0], operand=t[1])),
            st.tuples(children, children).map(
                lambda t: ast.Index(base=t[0], index=t[1])),
            st.tuples(children, st.lists(children, max_size=3)).map(
                lambda t: ast.CallExp(func=t[0], args=t[1])),
        )

    return st.recursive(leaves, extend, max_leaves=25)


@given(_exprs())
@settings(max_examples=150, deadline=None)
def test_expression_roundtrip_property(expr):
    text = pretty(expr)
    reparsed = parse_expression(text)
    assert pretty(reparsed) == text


@given(_exprs())
@settings(max_examples=60, deadline=None)
def test_expression_structure_preserved(expr):
    """Printing then parsing preserves the tree shape, not just the text."""
    reparsed = parse_expression(pretty(expr))

    def shape(e):
        if isinstance(e, ast.Num):
            return ("num", e.value)
        if isinstance(e, (ast.NameInt, ast.NameC)):
            return ("name", e.name)
        if isinstance(e, ast.Binop):
            return ("bin", e.op, shape(e.left), shape(e.right))
        if isinstance(e, ast.Unop):
            return ("un", e.op, shape(e.operand))
        if isinstance(e, ast.Index):
            return ("idx", shape(e.base), shape(e.index))
        if isinstance(e, ast.CallExp):
            return ("call", shape(e.func),
                    tuple(shape(a) for a in e.args))
        raise AssertionError(type(e))

    assert shape(reparsed) == shape(expr)
