"""The reactor farm (PR 6 tentpole, ``repro.runtime.farm``).

The load-bearing properties:

* **shared compile, per-instance state** — N instances of one
  :class:`BoundProgram`, each with its own VM clock offset by spawn
  time, multiplexed over one DES calendar with exactly one armed entry
  per instance;
* **deterministic fleet semantics** — same workload → same merged
  counters, independent of instance count interleaving; events queue
  per-instance and deliver in ``(time, seq)`` order;
* **one telemetry pipeline** — every instance's hook bus feeds shared
  sinks and the cross-instance rollup, the watchdog reads the same
  histograms, and the Prometheus exposition of the whole fleet is
  pinned by a golden (timing-dependent series filtered).

``prom_deterministic_lines`` is also imported by the CI farm-smoke job
to compare a live 1k-instance run against ``goldens/farm_blink.prom``
(regenerate with ``python tests/mint_goldens.py --farm`` after an
intentional metrics change).
"""

import json
from pathlib import Path

import pytest

from repro.apps import load
from repro.cli import main
from repro.obs import FlightRecorder, StreamingJsonlExporter, render_prom
from repro.runtime.farm import Farm

GOLDEN = Path(__file__).parent / "goldens" / "farm_blink.prom"

COUNTER = """
input int STEP;
output int TOTAL;
int acc = 0;
loop do
   int d = await STEP;
   acc = acc + d;
   emit TOTAL = acc;
end
"""

ONESHOT = "input void GO;\nawait GO;"


def prom_deterministic_lines(text: str) -> str:
    """Project a farm exposition down to its deterministic lines: the
    reaction-latency histogram is wall-clock-shaped, everything else is
    a pure function of the workload."""
    keep = [line for line in text.splitlines()
            if "reaction_latency_us" not in line]
    return "\n".join(keep) + "\n"


# ------------------------------------------------------------ lifecycle
class TestLifecycle:
    def test_spawn_boots_instances_at_current_time(self):
        farm = Farm(load("blink"), n=10, program="blink")
        assert farm.live() == 10
        snap = farm.fleet_snapshot()
        assert snap["merged"]["counters"]["reactions_total"] == 10  # boots
        assert snap["programs"] == {"blink": 10}

    def test_late_spawn_gets_clock_offset(self):
        farm = Farm(load("blink"), n=1, program="blink")
        farm.run_until(300_000)
        late, = farm.spawn(1, program="blink")
        assert late.t0 == 300_000
        farm.run_until(550_000)
        # early instance saw the 250ms and 500ms deadlines; the late one
        # has only been alive 250ms of its own clock
        early = farm.instances[0].program.sched.reaction_count
        assert early == 1 + 3          # boot + 250, 500(x2 timers)...
        assert late.program.sched.reaction_count == 2   # boot + its 250ms

    def test_terminated_instances_retire(self):
        farm = Farm(ONESHOT, n=5, program="oneshot")
        farm.broadcast("GO")
        farm.run_until(farm.sim.now)
        assert farm.live() == 0
        snap = farm.fleet_snapshot()
        assert snap["done"] == 5
        fam = snap["farm"]["farm_instances_retired_total"]
        assert fam["series"] == [[["oneshot"], 5]]
        live = snap["farm"]["farm_instances_live"]["series"][0][1]
        assert live["value"] == 0 and live["max"] == 5

    def test_events_to_dead_instances_are_dropped_and_counted(self):
        farm = Farm(ONESHOT, n=2, program="oneshot")
        farm.broadcast("GO")
        farm.run_until(farm.sim.now)
        farm.send(0, "GO")
        farm.run_until(farm.sim.now)
        snap = farm.fleet_snapshot()
        dropped = snap["farm"]["farm_events_dropped_total"]["series"]
        assert dropped == [[["oneshot", "GO"], 1]]

    def test_multiple_programs_one_farm(self):
        farm = Farm()
        farm.add_program("blink", load("blink"))
        farm.add_program("counter", COUNTER)
        farm.spawn(3, program="blink")
        farm.spawn(2, program="counter")
        with pytest.raises(ValueError):
            farm.spawn(1)              # ambiguous without program=
        snap = farm.fleet_snapshot()
        assert snap["programs"] == {"blink": 3, "counter": 2}


# ------------------------------------------------------------ semantics
class TestFleetSemantics:
    def test_blink_reaction_counts_are_exact(self):
        farm = Farm(load("blink"), n=50, program="blink")
        farm.run_until("1s")
        counters = farm.fleet_snapshot()["merged"]["counters"]
        # per instance: boot + 4×250ms + 2×500ms + 1×1s timer reactions
        assert counters["reactions_total"] == 50 * 8
        assert counters["reactions_by_trigger.boot"] == 50
        assert counters["reactions_by_trigger.time"] == 50 * 7
        assert counters["timers_fired_total"] == 50 * 7

    def test_merged_counters_independent_of_fleet_size(self):
        def per_instance(n):
            farm = Farm(load("blink"), n=n, program="blink")
            farm.run_until("1s")
            counters = farm.fleet_snapshot()["merged"]["counters"]
            return {k: v / n for k, v in counters.items()}

        assert per_instance(1) == per_instance(17)

    def test_send_targets_one_instance(self):
        farm = Farm(COUNTER, n=3, program="counter")
        farm.send(1, "STEP", 5)
        farm.send(1, "STEP", 2)
        farm.run_until(farm.sim.now)
        counts = [inst.program.sched.reaction_count
                  for inst in farm.instances]
        assert counts == [1, 3, 1]     # boot + 2 deliveries to #1 only
        events = farm.fleet_snapshot()["farm"]["farm_events_total"]
        assert events["series"] == [[["counter", "STEP"], 2]]

    def test_outputs_flow_into_fleet_family(self):
        farm = Farm(COUNTER, n=4, program="counter")
        farm.broadcast("STEP", 1)
        farm.run_until(farm.sim.now)
        outputs = farm.fleet_snapshot()["farm"]["farm_outputs_total"]
        assert outputs["series"] == [[["counter", "TOTAL"], 4]]

    def test_undefined_c_symbols_become_counting_stubs(self):
        farm = Farm(load("blink"), n=2, program="blink")
        farm.run_until("1s")
        calls = farm.fleet_snapshot()["farm"]["farm_c_calls_total"]
        series = {tuple(k): v for k, v in calls["series"]}
        # 3 trails toggle their LED once per period over 1s
        assert series[("Leds_led0Toggle",)] == 2 * 4
        assert series[("Leds_led1Toggle",)] == 2 * 2
        assert series[("Leds_led2Toggle",)] == 2 * 1

    def test_run_script_broadcasts_and_advances(self):
        farm = Farm(COUNTER, n=2, program="counter")
        farm.run_script([("E", "STEP", 3), ("T", 1000),
                         ("E", "STEP", 4)])
        counters = farm.fleet_snapshot()["merged"]["counters"]
        assert counters["reactions_total"] == 2 * 3
        assert farm.sim.now == 1000


# ------------------------------------------------------------- calendar
class TestCalendar:
    def test_one_armed_entry_per_instance(self):
        farm = Farm(load("blink"), n=20, program="blink")
        # blink arms 3 timers per instance but the farm multiplexes them
        # through a single calendar entry each
        assert farm.sim.pending() == 20

    def test_watchdog_clean_fleet_has_no_flags(self):
        farm = Farm(load("blink"), n=10, program="blink")
        farm.run_until("1s")
        # a huge absolute floor silences the wall-clock-noise lagging
        # heuristic; a correctly driven fleet must have nothing stuck
        report = farm.watchdog(min_lag_us=10**9)
        assert report["flagged"] == []
        assert report["fleet_p99_us"] is not None

    def test_watchdog_flags_stuck_instance(self):
        farm = Farm(load("blink"), n=3, program="blink")
        farm.run_until("500ms")
        stuck = farm.instances[1]
        farm.sim.cancel(stuck.handle)  # sabotage: drop its calendar entry
        stuck.handle = None
        farm.sim.run_until(800_000)
        for inst in farm.instances:
            if inst.handle is not None:
                inst.program.at(inst.local(800_000))
                farm._post_drive(inst)
        report = farm.watchdog()
        assert [f["instance"] for f in report["flagged"]] == [1]
        assert report["flagged"][0]["reason"] == "stuck"
        flags = farm.fleet_snapshot()["farm"]["farm_watchdog_flags_total"]
        assert flags["series"] == [[["stuck"], 1]]


# ------------------------------------------------------------ telemetry
class TestSharedTelemetry:
    def test_fleet_stream_is_inst_tagged_with_global_seq(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        stream = StreamingJsonlExporter(path, flush_every=64)
        recorder = FlightRecorder(maxlen=128)
        farm = Farm(load("blink"), n=4, program="blink", stream=stream,
                    recorder=recorder)
        farm.run_until("1s")
        farm.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert {r["inst"] for r in records} == {0, 1, 2, 3}
        assert recorder.seq == len(records)

    def test_detached_farm_has_no_registries_but_counts_fleet(self):
        farm = Farm(load("blink"), n=3, program="blink", observe=False)
        farm.run_until("1s")
        snap = farm.fleet_snapshot()
        assert snap["merged"]["instances"] == 0
        assert snap["merged"]["histograms"] == {}
        spawned = snap["farm"]["farm_instances_spawned_total"]
        assert spawned["series"] == [[["blink"], 3]]


# ---------------------------------------------------------- prom golden
class TestPromGolden:
    def test_farm_blink_exposition_matches_golden(self):
        """The CI farm-smoke workload: 1000 blink instances driven 2s.
        Every deterministic exposition line — metric names, label sets,
        counter values, gauge watermarks, bucket counts — is pinned."""
        farm = Farm(load("blink"), n=1000, program="blink")
        farm.run_until("2s")
        got = prom_deterministic_lines(render_prom(farm.fleet_snapshot()))
        assert got == GOLDEN.read_text()

    def test_latency_lines_are_present_but_filtered(self):
        farm = Farm(load("blink"), n=5, program="blink")
        farm.run_until("1s")
        text = render_prom(farm.fleet_snapshot())
        assert "repro_reaction_latency_us_bucket" in text
        assert "reaction_latency_us" not in prom_deterministic_lines(text)


# ------------------------------------------------------------------ CLI
class TestFarmCli:
    def test_farm_command_end_to_end(self, tmp_path, capsys):
        blink = Path(__file__).parent.parent / "src" / "repro" / "apps" \
            / "ceu" / "blink.ceu"
        snap_path = tmp_path / "snap.json"
        prom_path = tmp_path / "farm.prom"
        jsonl_path = tmp_path / "farm.jsonl"
        rc = main(["farm", str(blink), "-n", "25", "--until", "1s",
                   "--snapshot", str(snap_path), "--prom", str(prom_path),
                   "--jsonl", str(jsonl_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "25 live / 25 spawned" in out
        snap = json.loads(snap_path.read_text())
        assert snap["merged"]["counters"]["reactions_total"] == 25 * 8
        assert "repro_farm_instances 25" in prom_path.read_text()
        assert jsonl_path.exists()
        first = json.loads(jsonl_path.read_text().splitlines()[0])
        assert "inst" in first

    def test_farm_workload_script(self, tmp_path, capsys):
        prog = tmp_path / "counter.ceu"
        prog.write_text(COUNTER)
        script = tmp_path / "load.script"
        script.write_text("E STEP 2\nT 1000\nE STEP 3\n")
        rc = main(["farm", str(prog), "-n", "4", "--workload",
                   str(script)])
        assert rc == 0
        assert "4 live / 4 spawned" in capsys.readouterr().out
