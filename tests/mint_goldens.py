"""Regenerate the golden diagnostic snapshots (``tests/goldens/``) —
run as ``PYTHONPATH=src python tests/mint_goldens.py`` from the repo
root.

Two families are frozen:

* ``listing_*.json`` — the paper's own listings (and small distilled
  variants) run through the full analysis engine, one JSON report each;
* ``corpus_*.json`` — every checked-in fuzz-corpus program
  (``tests/corpus/*.ceu``).

``tests/test_analysis.py`` re-runs the engine and diffs against these
byte for byte, so any change to diagnostic codes, messages, ordering,
witness scripts, or bounds shows up in review as a golden diff.  Only
rerun this when the analysis output deliberately changes.

``--farm`` instead regenerates ``farm_blink.prom`` — the deterministic
Prometheus exposition of the CI farm-smoke workload (1000 blink
instances, 2s), pinned by ``tests/test_farm.py`` and the farm-smoke CI
job.  Rerun after an intentional metrics/exposition change.

``--semantics`` regenerates ``semantics_*.txt`` — the reference
semantics' rule-application transcript for every corpus program under
its recorded script, pinned byte-exact by ``tests/test_semantics.py``.
Rerun only when the reference semantics deliberately changes (which
should be rare: it is the spec).
"""

import json
import sys
from pathlib import Path

from repro.analysis import run_analysis

#: paper listings (with their section) the goldens pin down
LISTINGS: dict[str, str] = {
    # §2: the three-trail counter with Restart — clean
    "counter": """\
input int Restart;
internal void changed;
int v = 0;
par do
   loop do
      await 1s;
      v = v + 1;
      emit changed;
   end
with
   loop do
      v = await Restart;
      emit changed;
   end
with
   loop do
      await changed;
      _printf("v = %d\\n", v);
   end
end
""",
    # §2.5: a loop body with an await-free path — refused statically
    "tight_loop": """\
input void A;
int v = 0;
loop do
   if v > 10 then
      await A;
   end
   v = v + 1;
end
""",
    # §2.6: concurrent write/read and write/write on `v` — the conflict
    # report carries a replayable witness for every pair
    "nondet": """\
input void A;
int v = 0;
par do
   loop do
      await A;
      v = v + 1;
   end
with
   loop do
      await A;
      v = v * 2;
   end
end
""",
    # §2.2: a two-hop internal emit chain — clean, bounds show the
    # emit-stack depth
    "emit_chain": """\
input void I;
internal void a, b;
int v = 0;
par do
   loop do
      await I;
      emit a;
   end
with
   loop do
      await a;
      v = v + 1;
      emit b;
   end
with
   loop do
      await b;
      _printf("v = %d\\n", v);
   end
end
""",
    # liveness: one internal event never emitted, one never awaited
    "dead_events": """\
input void A;
internal void ping, pong;
int v = 0;
par/or do
   await ping;
   v = 1;
with
   await A;
   emit pong;
end
return v;
""",
    # deadlock: after A the par/and's forever-branch can never finish
    "stuck": """\
input void A;
int v = 0;
par/and do
   await A;
   v = 1;
with
   await forever;
end
return v;
""",
    # unreachable code after an `await forever`
    "unreachable": """\
input void A;
int v = 0;
await forever;
v = 1;
return v;
""",
}


def mint(out: Path) -> None:
    out.mkdir(exist_ok=True)
    corpus = Path(__file__).parent / "corpus"
    jobs = [(f"listing_{name}", f"listings/{name}.ceu", src)
            for name, src in LISTINGS.items()]
    jobs += [(f"corpus_{path.stem}", f"corpus/{path.name}",
              path.read_text())
             for path in sorted(corpus.glob("*.ceu"))]
    for golden, filename, src in jobs:
        report = run_analysis(src, filename=filename)
        (out / f"{golden}.json").write_text(report.to_json())
        print(f"{golden}: {report.count('error')}E "
              f"{report.count('warning')}W {report.count('note')}N "
              f"stages={'+'.join(report.stages)}")


def mint_farm(out: Path) -> None:
    from repro.apps import load
    from repro.obs import render_prom
    from repro.runtime.farm import Farm
    from test_farm import prom_deterministic_lines

    farm = Farm(load("blink"), n=1000, program="blink")
    farm.run_until("2s")
    text = prom_deterministic_lines(render_prom(farm.fleet_snapshot()))
    (out / "farm_blink.prom").write_text(text)
    print(f"farm_blink.prom: {len(text.splitlines())} exposition lines")


def semantics_transcript(src: str, script: list, name: str) -> str:
    """The canonical semantics golden for one (program, script) pair:
    the rule-application transcript, the reaction trace, and the final
    observables.  Shared by the minter and ``tests/test_semantics.py``
    so the golden diff is byte-exact by construction."""
    from repro.fuzz.gen import script_text
    from repro.semantics import run_script

    machine = run_script(src, script, transcript=True)
    parts = [f"== program {name}",
             "== script " + (" / ".join(
                 script_text(script).splitlines()) or "(none)"),
             "== rules",
             machine.transcript(),
             "== trace",
             machine.render(),
             f"== final done={machine.done} result={machine.result} "
             f"steps={machine.steps_executed}"]
    output = machine.output()
    if output:
        parts.append("== output\n" + output.rstrip("\n"))
    return "\n".join(parts) + "\n"


def mint_semantics(out: Path) -> None:
    corpus = Path(__file__).parent / "corpus"
    for path in sorted(corpus.glob("*.ceu")):
        case = json.loads(path.with_suffix(".json").read_text())
        script = [tuple(item) for item in case["script"]]
        text = semantics_transcript(path.read_text(), script,
                                    f"corpus/{path.name}")
        (out / f"semantics_{path.stem}.txt").write_text(text)
        print(f"semantics_{path.stem}.txt: "
              f"{len(text.splitlines())} lines")


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).parent))
    if "--farm" in sys.argv:
        mint_farm(Path(__file__).parent / "goldens")
    elif "--semantics" in sys.argv:
        mint_semantics(Path(__file__).parent / "goldens")
    else:
        mint(Path(__file__).parent / "goldens")
