"""Static memory layout (§4.2) and gate allocation (§4.3)."""

from repro.codegen import HOST, TARGET16, build_gates, build_layout
from repro.lang import ast, parse
from repro.sema import bind


def layout_of(src: str, abi=TARGET16):
    bound = bind(parse(src))
    return bound, build_layout(bound, abi)


def sym(bound, name):
    return next(v for v in bound.variables if v.name == name)


class TestMemoryLayout:
    def test_scalars_packed(self):
        bound, layout = layout_of("int a;\nint b;")
        assert layout.offset(sym(bound, "a")) == 0
        assert layout.offset(sym(bound, "b")) == 2
        assert layout.total == 4

    def test_vector_size(self):
        bound, layout = layout_of("int[10] keys;")
        assert layout.size(sym(bound, "keys")) == 20
        assert layout.total == 20

    def test_sequential_blocks_reuse(self):
        """§4.2: statements in sequence can reuse memory."""
        bound, layout = layout_of("""
        input void A;
        do
           int a;
           int b;
           await A;
        end
        do
           int c;
           int d;
           await A;
        end
        """)
        assert layout.offset(sym(bound, "a")) == layout.offset(
            sym(bound, "c"))
        assert layout.overlaps(sym(bound, "a"), sym(bound, "c"))
        assert layout.total == 4

    def test_parallel_trails_coexist(self):
        """§4.2: memory for trails in parallel must coexist."""
        bound, layout = layout_of("""
        input void A;
        par/and do
           int a;
           await A;
        with
           int b;
           await A;
        end
        """)
        assert not layout.overlaps(sym(bound, "a"), sym(bound, "b"))
        assert layout.total == 4

    def test_guiding_example_reuse_after_loop(self):
        """§4.2: the code after the loop reuses all loop memory."""
        bound, layout = layout_of("""
        input int A, B, C;
        int ret;
        loop do
           par/or do
              int a = await A;
              int b = await B;
              ret = a + b;
              break;
           with
              await C;
           end
        end
        int after;
        after = 0;
        """)
        a = sym(bound, "a")
        after = sym(bound, "after")
        # hoisted block vars precede nested regions; the loop's inner slots
        # and `after` may share the region above the top-level vars
        assert layout.offset(a) >= layout.offset(after)

    def test_if_branches_share(self):
        bound, layout = layout_of("""
        int c;
        if c then
           int a;
           a = 1;
        else
           int b;
           b = 2;
        end
        """)
        assert layout.offset(sym(bound, "a")) == layout.offset(
            sym(bound, "b"))

    def test_abi_sizes(self):
        bound16, l16 = layout_of("int a;\nu8 b;\nu32 c;", TARGET16)
        assert l16.size(sym(bound16, "a")) == 2
        assert l16.size(sym(bound16, "b")) == 1
        assert l16.size(sym(bound16, "c")) == 4
        bound_h, lh = layout_of("int a;", HOST)
        assert lh.size(sym(bound_h, "a")) == 4

    def test_pointer_sizes(self):
        bound, layout = layout_of("int* p;", TARGET16)
        assert layout.size(sym(bound, "p")) == 2

    def test_alignment(self):
        bound, layout = layout_of("u8 a;\nint b;", TARGET16)
        assert layout.offset(sym(bound, "b")) % 2 == 0


class TestGateAllocation:
    def test_one_gate_per_await(self):
        bound = bind(parse("""
        input int A, B;
        await A;
        await B;
        await A;
        """))
        gates = build_gates(bound)
        assert gates.count == 3
        assert len(gates.by_event["A"]) == 2
        assert len(gates.by_event["B"]) == 1

    def test_guiding_example_four_gates(self):
        """§4.3: one gate per await; event A owns a 2-gate list."""
        bound = bind(parse("""
        input int A, B, C;
        int ret;
        loop do
           par/or do
              int a = await A;
              int b = await B;
              ret = a + b;
              break;
           with
              par/and do
                 await C;
              with
                 await A;
              end
           end
        end
        """))
        gates = build_gates(bound)
        await_gates = [g for g in gates.gates
                       if g.kind in ("ext", "intl", "time", "forever")]
        assert len(await_gates) == 4
        assert len(gates.by_event["A"]) == 2

    def test_par_branch_ranges_contiguous(self):
        bound = bind(parse("""
        input void A, B, C, D;
        par/or do
           await A;
           await B;
        with
           await C;
           await D;
        end
        """))
        gates = build_gates(bound)
        par = next(n for n in bound.program.walk()
                   if isinstance(n, ast.ParStmt))
        ranges = gates.branch_ranges[par.nid]
        assert len(ranges) == 2
        (lo1, hi1), (lo2, hi2) = ranges
        assert hi1 - lo1 == 1 and hi2 - lo2 == 1
        assert lo2 == hi1 + 1          # contiguous across branches
        lo, hi = gates.kill_range(par.nid)
        assert (lo, hi) == (lo1, hi2)

    def test_nested_par_inside_outer_range(self):
        bound = bind(parse("""
        input void A, B, C;
        par/or do
           par/and do
              await A;
           with
              await B;
           end
        with
           await C;
        end
        """))
        gates = build_gates(bound)
        pars = [n for n in bound.program.walk()
                if isinstance(n, ast.ParStmt)]
        outer = next(p for p in pars if p.mode == "or")
        inner = next(p for p in pars if p.mode == "and")
        olo, ohi = gates.kill_range(outer.nid)
        ilo, ihi = gates.kill_range(inner.nid)
        assert olo <= ilo and ihi <= ohi
        # the inner join gate must also fall inside the outer kill range
        join = gates.join_gate[inner.nid]
        assert olo <= join.id <= ohi

    def test_escape_gate_only_when_crossing(self):
        bound = bind(parse("""
        input void A;
        loop do
           await A;
           break;
        end
        loop do
           par do
              await A;
              break;
           with
              await forever;
           end
        end
        """))
        gates = build_gates(bound)
        breaks = [n for n in bound.program.walk()
                  if isinstance(n, ast.Break)]
        assert breaks[0].nid not in gates.escape_gate
        assert breaks[1].nid in gates.escape_gate
