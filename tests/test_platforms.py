"""Simulated platforms: TinyOS world (ring demo), Arduino (ship), SDL."""

import pytest

from repro.apps import load
from repro.apps.envs import KEY_DOWN, KEY_NONE, KEY_UP, ShipWorld
from repro.apps.mario import (environment_backwards, environment_plain,
                              environment_replay, environment_sdl_poll)
from repro.apps.envs import MarioScreen
from repro.platforms import (ArduinoBoard, Message, SdlHost, TinyOsWorld,
                             radio_get_payload)
from repro.runtime.values import CellRef


class TestTinyOsPrimitives:
    def test_payload_pointer(self):
        msg = Message()
        p = radio_get_payload(msg)
        p.set(7)
        assert msg.payload[0] == 7

    def test_payload_initialises_through_pointer(self):
        slot = {"m": 0}
        ref = CellRef(slot, "m")
        p = radio_get_payload(ref)
        p.set(3)
        assert isinstance(slot["m"], Message)
        assert slot["m"].payload[0] == 3

    def test_leds_history(self):
        world = TinyOsWorld()
        mote = world.add_mote(0, "input _message_t* Radio_receive;"
                                 "\n_Leds_set(5);\nawait forever;")
        mote.boot()
        assert mote.leds.value == 5


class TestRingDemo:
    def _world(self, **kw):
        world = TinyOsWorld(**kw)
        for i in range(3):
            world.add_mote(i, load("ring"))
        world.boot()
        return world

    def test_counter_circulates(self):
        world = self._world()
        world.run_until(10_000_000)
        # one hop per ~second: everyone keeps receiving
        for i in range(3):
            assert len(world.motes[i].received) >= 2, i
        # the counter increments monotonically along the ring
        values = [m.payload[0] for _, m in world.motes[1].received]
        assert values == sorted(values)
        assert values[0] == 1

    def test_failure_detected_and_red_led_blinks(self):
        world = self._world()
        world.run_until(6_000_000)
        world.motes[2].fail()
        world.run_until(16_000_000)
        blinks = [t for t, _ in world.motes[0].leds.history
                  if t > 12_000_000]
        # 500 ms toggles once the 5 s watchdog fires
        assert len(blinks) >= 4

    def test_mote0_retries_and_network_recovers(self):
        world = self._world()
        world.run_until(5_000_000)
        world.motes[2].fail()
        world.run_until(20_000_000)
        world.motes[2].recover()
        world.run_until(45_000_000)
        late = [t for t, _ in world.motes[2].received if t > 21_000_000]
        assert late, "the ring must be restored after recovery"

    def test_message_loss_triggers_monitor(self):
        world = self._world(loss=1.0)   # radio drops everything
        world.run_until(12_000_000)
        assert world.dropped
        blinks = [t for t, _ in world.motes[1].leds.history
                  if t > 5_000_000]
        assert len(blinks) >= 4


class TestArduino:
    def test_lcd_writes(self):
        board = ArduinoBoard('_lcd.setCursor(0, 1);\n_lcd.write(62);'
                             '\nawait forever;')
        board.boot()
        assert board.lcd.rows[1][0] == ">"

    def test_analog_script_steps(self):
        board = ArduinoBoard("await forever;")
        board.script_analog(0, [("1s", 100), ("2s", 900)])
        assert board._analog_read(0) == 1023
        board.program.at("1500ms")
        assert board._analog_read(0) == 100
        board.program.at("2500ms")
        assert board._analog_read(0) == 900

    def test_digital_pins(self):
        board = ArduinoBoard("_digitalWrite(13, _HIGH);\nawait forever;")
        board.boot()
        assert board.pins[13] == 1

    def test_ship_game_runs(self):
        world = ShipWorld()
        board = ArduinoBoard(load("ship"), extra_env=world.env())
        world.lcd = board.lcd
        board.script_analog(0, [("1s", 100), ("1200ms", 1023)])
        board.boot()
        board.run_for("10s", tick="25ms")
        # the game started (map drawn, steps taken)
        assert world.map_rows
        steps = [s for s, _, _ in world.redraws]
        assert max(steps) >= 1
        assert len(board.lcd.frames) > 5

    def test_ship_key_decoding(self):
        world = ShipWorld()
        assert world.analog2key(50) == KEY_UP
        assert world.analog2key(300) == KEY_DOWN
        assert world.analog2key(1000) == KEY_NONE


class TestSdlMario:
    def test_plain_environment_runs(self):
        screen = MarioScreen()
        host = SdlHost(environment_plain(100, (5,)),
                       extra_env={**screen.env(), "KEYS": [5]})
        host.run()
        assert host.program.done
        assert len(screen.frames) >= 100

    def test_sdl_poll_environment(self):
        screen = MarioScreen()
        host = SdlHost(environment_sdl_poll(60), key_script={10},
                       extra_env=screen.env())
        host.run()
        assert host.program.done
        assert len(screen.frames) >= 60

    def test_replay_reproduces_gameplay(self):
        screen = MarioScreen()
        host = SdlHost(environment_replay(120, (7, 40), replays=1),
                       extra_env={**screen.env(), "KEYS": [7, 40]})
        host.run()
        frames = screen.frames
        half = len(frames) // 2
        assert frames[:half] == frames[half:]

    def test_backwards_replay(self):
        screen = MarioScreen()
        host = SdlHost(environment_backwards(30, ()),
                       extra_env={**screen.env(), "KEYS": []})
        host.run()
        forward = screen.frames[:31]
        backward = screen.frames[31:]
        assert backward == list(reversed(forward[1:]))

    def test_jump_changes_trajectory(self):
        base = MarioScreen()
        SdlHost(environment_plain(80, ()),
                extra_env={**base.env(), "KEYS": []}).run()
        jumped = MarioScreen()
        SdlHost(environment_plain(80, (10,)),
                extra_env={**jumped.env(), "KEYS": [10]}).run()
        # a key press at step 10 must alter mario's y trajectory
        assert base.frames != jumped.frames
        ys_base = {f[1] for f in base.frames}
        ys_jump = {f[1] for f in jumped.frames}
        assert ys_jump != ys_base
