"""The ``repro bench`` snapshot + regression gate (ISSUE 4 tentpole,
``repro.bench``)."""

import copy
import json
import re

from repro import bench
from repro.cli import build_parser, main


def tiny_snapshot():
    """A real (but small) measurement — module constants shrunk so the
    suite stays fast."""
    return bench.snapshot(repeats=1)


class TestSnapshot:
    def setup_method(self):
        self._saved = (bench.TRAILS, bench.EVENTS, bench.DES_EVENTS)
        bench.TRAILS, bench.EVENTS, bench.DES_EVENTS = 4, 40, 500

    def teardown_method(self):
        bench.TRAILS, bench.EVENTS, bench.DES_EVENTS = self._saved

    def test_snapshot_shape(self):
        snap = tiny_snapshot()
        assert snap["schema"] == bench.SCHEMA
        vm = snap["vm"]
        assert set(vm["timings_s"]) == \
            {"off", "detached", "metrics", "full", "causal"}
        # causal_vs_off is recorded for the trajectory but never gated
        assert set(vm["ratios"]) == \
            set(bench.RATIO_KEYS) | {"causal_vs_off"}
        assert vm["counters"]["reactions_total"] == bench.EVENTS + 1
        assert vm["counters"]["steps_total"] > 0
        lat = vm["latency_us"]["event:A"]
        assert lat["p50"] <= lat["p95"] <= lat["p99"]
        stream = snap["stream"]
        assert stream["des_events"] == bench.DES_EVENTS
        assert stream["records"] >= stream["des_events"]
        assert stream["resident_high"] <= stream["flush_every"]

    def test_snapshot_counters_are_deterministic(self):
        a, b = tiny_snapshot(), tiny_snapshot()
        assert a["vm"]["counters"] == b["vm"]["counters"]
        assert a["stream"]["records"] == b["stream"]["records"]

    def test_write_snapshot_is_timestamped_json(self, tmp_path):
        snap = tiny_snapshot()
        out = bench.write_snapshot(snap, tmp_path)
        assert re.fullmatch(r"BENCH_\d{8}T\d{6}Z\.json", out.name)
        assert json.loads(out.read_text())["schema"] == bench.SCHEMA


class TestRegressionGate:
    def base(self):
        return {
            "vm": {
                "counters": {"reactions_total": 41, "steps_total": 500},
                "ratios": {"metrics_vs_off": 1.5, "full_vs_off": 3.0,
                           "detached_vs_off": 1.0},
            },
            "stream": {"resident_high": 100, "flush_every": 512},
        }

    def test_identical_snapshot_passes(self):
        snap = self.base()
        assert bench.check_regression(snap, self.base()) == []

    def test_counter_drift_is_flagged_exactly(self):
        snap = self.base()
        snap["vm"]["counters"]["steps_total"] = 501
        problems = bench.check_regression(snap, self.base())
        assert len(problems) == 1 and "steps_total" in problems[0]

    def test_ratio_within_tolerance_passes(self):
        snap = self.base()
        snap["vm"]["ratios"]["full_vs_off"] = 3.0 * 1.4
        assert bench.check_regression(snap, self.base(),
                                      tolerance=0.5) == []

    def test_ratio_beyond_tolerance_fails(self):
        snap = self.base()
        snap["vm"]["ratios"]["full_vs_off"] = 3.0 * 1.6
        problems = bench.check_regression(snap, self.base(),
                                          tolerance=0.5)
        assert any("full_vs_off" in p for p in problems)

    def test_detached_absolute_cap(self):
        """A detached bus slower than 1.5x off is a broken fast path no
        matter what the baseline says."""
        snap = self.base()
        snap["vm"]["ratios"]["detached_vs_off"] = 1.8
        baseline = self.base()
        baseline["vm"]["ratios"]["detached_vs_off"] = 1.7
        problems = bench.check_regression(snap, baseline, tolerance=0.5)
        assert any("detached_vs_off" in p for p in problems)

    def test_missing_ratio_is_flagged(self):
        snap = self.base()
        del snap["vm"]["ratios"]["metrics_vs_off"]
        problems = bench.check_regression(snap, self.base())
        assert any("metrics_vs_off" in p for p in problems)

    def test_streaming_buffering_regression(self):
        snap = self.base()
        snap["stream"]["resident_high"] = 600     # > flush_every
        problems = bench.check_regression(snap, self.base())
        assert any("resident_high" in p for p in problems)

    def test_faithful_to_real_snapshot_schema(self):
        """The gate reads the same keys a real snapshot writes."""
        saved = (bench.TRAILS, bench.EVENTS, bench.DES_EVENTS)
        bench.TRAILS, bench.EVENTS, bench.DES_EVENTS = 4, 40, 500
        try:
            snap = bench.snapshot(repeats=1)
        finally:
            bench.TRAILS, bench.EVENTS, bench.DES_EVENTS = saved
        baseline = copy.deepcopy(snap)
        assert bench.check_regression(snap, baseline,
                                      tolerance=10.0) == []
        baseline["vm"]["counters"]["steps_total"] += 1
        assert bench.check_regression(snap, baseline, tolerance=10.0)


class TestCli:
    def test_bench_subcommand_parses(self):
        args = build_parser().parse_args(
            ["bench", "--check", "--tolerance", "0.4", "--out", "/tmp",
             "--repeats", "1"])
        assert args.check and args.tolerance == 0.4

    def test_bench_check_against_fresh_baseline(self, tmp_path):
        saved = (bench.TRAILS, bench.EVENTS, bench.DES_EVENTS)
        bench.TRAILS, bench.EVENTS, bench.DES_EVENTS = 4, 40, 500
        try:
            baseline = tmp_path / "baseline.json"
            rc = main(["bench", "--out", str(tmp_path), "--repeats", "1",
                       "--baseline", str(baseline),
                       "--update-baseline"])
            assert rc == 0 and baseline.exists()
            rc = main(["bench", "--out", str(tmp_path), "--repeats", "1",
                       "--baseline", str(baseline), "--check",
                       "--tolerance", "5.0"])
            assert rc == 0
        finally:
            bench.TRAILS, bench.EVENTS, bench.DES_EVENTS = saved
        assert list(tmp_path.glob("BENCH_*.json"))

    def test_bench_check_without_baseline_errors(self, tmp_path):
        saved = (bench.TRAILS, bench.EVENTS, bench.DES_EVENTS)
        bench.TRAILS, bench.EVENTS, bench.DES_EVENTS = 4, 40, 500
        try:
            rc = main(["bench", "--out", str(tmp_path), "--repeats", "1",
                       "--baseline", str(tmp_path / "missing.json"),
                       "--check"])
        finally:
            bench.TRAILS, bench.EVENTS, bench.DES_EVENTS = saved
        assert rc == 1


class TestCheckpointSection:
    def test_checkpoint_section_shape(self):
        """A shrunk ``bench --checkpoint`` measurement has every gated
        field; the *real* gates run on CI-scale workloads, so only the
        recording-overhead one (machine-independent at any scale) is
        asserted here."""
        section = bench.bench_checkpoint(n_instances=6,
                                         sim_us=1_000_000, repeats=1)
        assert section["workload"]["instances"] == 6
        assert set(section["drive_s"]) == {"norecord", "record"}
        cap = section["capture"]
        assert cap["bytes"] > 0
        assert cap["journal_entries"] >= 1
        assert cap["reactions"] >= 2
        warm = section["warm_start"]
        assert warm["cold_boot_s"] > 0 and warm["warm_s"] > 0
        assert warm["speedup"] == warm["cold_boot_s"] / warm["warm_s"]
        budget = section["budget"]
        assert budget["record_vs_norecord_max"] == bench.CHECKPOINT_BUDGET
        assert budget["warm_speedup_min"] == bench.WARM_SPEEDUP_MIN
        assert isinstance(budget["within_budget"], bool)

    def test_checkpoint_flag_parses(self):
        args = build_parser().parse_args(["bench", "--checkpoint"])
        assert args.checkpoint
