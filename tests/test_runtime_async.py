"""Asynchronous blocks (§2.7) and in-language simulation (§2.8) on the VM."""

from helpers import run_program
from repro.runtime import Program


class TestAsyncBasics:
    def test_arithmetic_progression(self):
        p = run_program("""
        int ret;
        ret = async do
           int sum = 0;
           int i = 1;
           loop do
              sum = sum + i;
              if i == 100 then
                 break;
              else
                 i = i + 1;
              end
           end
           return sum;
        end;
        return ret;
        """)
        assert p.done and p.result == 5050

    def test_watchdog_kills_async(self):
        p = Program("""
        int ret = 0 - 1;
        par/or do
           ret = async do
              int i = 0;
              loop do
                 i = i + 1;
              end
              return i;
           end;
        with
           await 10ms;
           ret = 0;
        end
        return ret;
        """)
        p.sched.go_init()
        for _ in range(50):           # the async never finishes on its own
            p.sched.go_async()
        p.at("10ms")
        assert p.done and p.result == 0

    def test_async_reads_outer_vars(self):
        p = run_program("""
        int base = 40;
        int r;
        r = async do
           int v = base + 2;
           return v;
        end;
        return r;
        """)
        assert p.result == 42

    def test_round_robin_fairness(self):
        p = Program("""
        par/and do
           int a;
           a = async do
              int i = 0;
              loop do
                 _tick(0);
                 i = i + 1;
                 if i == 10 then
                    break;
                 end
              end
              return i;
           end;
        with
           int b;
           b = async do
              int j = 0;
              loop do
                 _tick(1);
                 j = j + 1;
                 if j == 10 then
                    break;
                 end
              end
              return j;
           end;
        end
        return 1;
        """)
        order = []
        p.cenv.define("tick", lambda who: order.append(who))
        p.start()
        assert p.done
        # strict alternation: one loop iteration per go_async, round robin
        first_ten = order[:10]
        assert first_ten == [0, 1] * 5

    def test_async_without_return_yields_none(self):
        p = run_program("""
        int r = 5;
        r = async do
           int x = 1;
        end;
        return r;
        """)
        assert p.result is None


class TestSimulation:
    def test_paper_simulation_template(self):
        """§2.8: simulate Start and the passage of 1h35min; v must be 19
        and the enclosing par/or must terminate before `_assert(0)`."""
        p = run_program("""
        input int Start;
        par/or do
           int v = await Start;
           par/or do
              loop do
                 await 10min;
                 v = v + 1;
              end
           with
              await 1h35min;
              _assert(v == 19);
           end
        with
           async do
              emit Start = 10;
              emit 1h35min;
           end
           _assert(0);
        end
        """)
        assert p.done

    def test_simulated_time_is_logical(self):
        # the simulation "does not take one hour": no wall clock involved,
        # but the program's logical clock does advance
        p = run_program("""
        par/or do
           await 1h;
        with
           async do
              emit 2h;
           end
        end
        return 1;
        """)
        assert p.done and p.result == 1
        assert p.clock == 7_200_000_000

    def test_async_emits_value_events(self):
        p = run_program("""
        input int X;
        int total = 0;
        par/or do
           loop do
              int v = await X;
              total = total + v;
           end
        with
           async do
              emit X = 1;
              emit X = 2;
              emit X = 39;
           end
        end
        return total;
        """)
        assert p.result == 42

    def test_sync_side_has_priority(self):
        """§2.8 step list: the original code awaits Start before the async
        even begins."""
        p = Program("""
        input void Start;
        int order = 0;
        par/or do
           await Start;
           order = order * 10 + 2;
        with
           async do
              emit Start;
           end
           order = order * 10 + 3;
           await 1us;
        end
        return order;
        """, trace=True)
        p.start()
        assert p.trace.reactions[0].trigger == "boot"
        # the async's emit is reaction #1; the async completion follows
        assert p.trace.reactions[1].trigger == "event:Start"

    def test_replayed_simulation_is_identical(self):
        src = """
        input int Seed;
        int acc = 0;
        par/or do
           loop do
              await 10ms;
              acc = acc * 31 + _rand() % 100;
           end
        with
           int s = await Seed;
           _srand(s);
           await 500ms;
        end
        return acc;
        """
        results = {run_program(src, ("ev", "Seed", 99),
                               ("adv", "500ms")).result
                   for _ in range(3)}
        assert len(results) == 1

    def test_async_killed_before_completing(self):
        p = Program("""
        input void Kill;
        int r = 7;
        par/or do
           r = async do
              int i = 0;
              loop do
                 i = i + 1;
                 if i == 1000000 then
                    break;
                 end
              end
              return i;
           end;
        with
           await Kill;
        end
        return r;
        """)
        p.sched.go_init()
        for _ in range(10):
            p.sched.go_async()   # a few iterations, nowhere near done
        p.sched.go_event("Kill")
        assert p.done and p.result == 7

    def test_input_queue_processed_before_asyncs(self):
        p = Program("""
        input void A;
        int n = 0;
        par/or do
           loop do
              await A;
              n = n + 1;
           end
        with
           async do
              int i = 0;
              loop do
                 i = i + 1;
                 if i == 3 then
                    break;
                 end
              end
              return i;
           end
        end
        return n;
        """)
        p.sched.go_init()
        p.sched.queue_input("A")
        p.sched.queue_input("A")
        p.run()
        # both queued events are handled before the async may run (§2.7),
        # then the async completes and the par/or rejoins
        assert p.done
        assert p.result == 2
