"""Causal tracing + time-travel tests: the §2.2 stack policy as a DAG,
Perfetto flow events, deterministic replay debugging, the slice-first
shrinker pass, and witness-script minimisation."""

import json

import pytest

from repro.fuzz.gen import parse_script_text, script_text
from repro.lang.errors import RuntimeCeuError
from repro.fuzz.shrink import causal_cone_script, shrink, shrink_script
from repro.obs import (CausalGraph, ChromeTraceExporter, EventLog,
                       FlightRecorder, TimeTravelDebugger)
from repro.runtime.program import Program

# A paper-style chain (§2.2): I wakes the emitter, `emit a` runs the
# a-handler to completion (which emits b, running the b-handler to
# completion) before the emitter resumes — the LIFO stack policy.
CHAIN = """
input void I;
internal void a;
internal void b;
par/and do
    await I;
    emit a;
with
    await a;
    emit b;
with
    await b;
end
"""

CHAIN_SCRIPT = [("E", "I", None)]


def chain_graph(feed):
    program = Program(CHAIN)
    graph = program.observe(CausalGraph(program.hooks))
    program.start()
    feed(program)
    assert program.done
    return graph


def lifo_edges(graph):
    """(event, trail/name) pairs of the I-reaction slice, span order."""
    target = graph.find("event:b")
    out = []
    for node in graph.slice(target.span):
        if node.event == "reaction_begin":
            out.append(("reaction", node.fields["trigger"]))
        elif node.event == "trail_resume":
            out.append(("resume", node.fields["trail"]))
        elif node.event == "emit_internal":
            out.append(("emit", node.fields["name"]))
    return out


class TestCausalGraph:
    def test_stack_policy_edge_order(self):
        graph = chain_graph(lambda p: p.send("I"))
        tail = lifo_edges(graph)[-5:]
        # emit a resumes the a-handler, whose emit b resumes the
        # b-handler — strictly nested, exactly the paper's walk-through
        assert tail == [("reaction", "event:I"), ("resume", "trail1"),
                        ("emit", "a"), ("resume", "trail2"),
                        ("emit", "b")]

    def test_edges_are_exact_not_inferred(self):
        graph = chain_graph(lambda p: p.send("I"))
        emit_a = graph.find("event:a")
        emit_b = graph.find("event:b")
        resume2 = [n for n in graph.of("trail_resume")
                   if n.fields["trail"] == "trail2"][-1]
        resume3 = [n for n in graph.of("trail_resume")
                   if n.fields["trail"] == "trail3"][-1]
        assert resume2.parent == emit_a.span
        assert resume3.parent == emit_b.span
        # wake edges point at the awaits that registered the trails
        wake2 = graph.node(resume2.wake)
        assert wake2.event == "await_begin"
        assert wake2.fields["target"] == "int:a"

    def test_dag_identical_under_script_replay(self):
        direct = chain_graph(lambda p: p.send("I", None))

        def replay(p):
            for item in CHAIN_SCRIPT:
                p.send(item[1], item[2])
        replayed = chain_graph(replay)
        assert lifo_edges(direct) == lifo_edges(replayed)
        assert [(n.event, n.parent, n.wake, n.reaction)
                for n in (direct.nodes[s] for s in direct.order)] == \
               [(n.event, n.parent, n.wake, n.reaction)
                for n in (replayed.nodes[s] for s in replayed.order)]

    def test_roots_are_external(self):
        graph = chain_graph(lambda p: p.send("I"))
        roots = graph.roots()
        assert all(n.parent == 0 for n in roots)
        assert {n.event for n in roots if n.event == "reaction_begin"} \
            == {"reaction_begin"}

    def test_find_targets(self):
        graph = chain_graph(lambda p: p.send("I"))
        assert graph.find("trail:trail2").event in ("trail_resume",
                                                    "trail_kill")
        assert graph.find("event:b").fields["name"] == "b"
        assert graph.find("reaction:1").fields["index"] == 1
        assert graph.find("b").fields["name"] == "b"
        assert graph.find("nosuch:thing") is None
        assert graph.find("zz") is None

    def test_why_renders_slice_and_misses(self):
        graph = chain_graph(lambda p: p.send("I"))
        text = graph.why("event:b")
        assert "emit b" in text and "<- external" in text
        # wake edges also pull in the boot-time await registration of
        # trail2, so compare against its *last* (reaction #1) resume
        pos_a = text.index("emit a")
        pos_r2 = text.rindex("resume trail2")
        pos_b = text.index("emit b")
        assert pos_a < pos_r2 < pos_b        # LIFO order in the render
        assert "no occurrence matches" in graph.why("trail:phantom")

    def test_timer_wake_edge(self):
        src = "input void I;\nawait 10ms;\n"
        program = Program(src)
        graph = program.observe(CausalGraph(program.hooks))
        program.start()
        program.advance("10ms")
        resume = [n for n in graph.of("trail_resume")][-1]
        assert graph.node(resume.wake).event == "timer_schedule"
        fire = graph.find("reaction:1")
        assert graph.node(fire.parent).event == "timer_fire"


class TestReactionCone:
    SRC = """
input int N;
input int K;
int acc = 0;
par/and do
    loop do
        int x = await N;
        x = x + 1;
    end
with
    loop do
        int v = await K;
        acc = acc + 10000 / v;
    end
end
"""
    SCRIPT = [("E", "N", 1), ("E", "N", 2), ("E", "K", 5),
              ("E", "N", 3), ("E", "N", 4), ("E", "K", 0)]

    @staticmethod
    def crashes(src, script):
        program = Program(src)
        try:
            program.start()
            for item in script:
                if program.done:
                    return False
                if item[0] == "E":
                    program.send(item[1], item[2])
                else:
                    program.at(item[1])
        except Exception:
            return True
        return False

    def test_cone_drops_unrelated_stimuli(self):
        kept = causal_cone_script(self.SRC, self.SCRIPT)
        # the N events never reach the crashing trail's causal cone;
        # the earlier K does (it re-registered the await)
        assert kept == [("E", "K", 5), ("E", "K", 0)]

    def test_slice_first_feeds_shrink(self):
        result = shrink_script(self.SRC, self.SCRIPT, self.crashes)
        assert result.sliced
        assert result.script == [("E", "K", 0)]
        assert result.src == self.SRC          # script-only shrink

    def test_full_shrink_still_reaches_minimum(self):
        result = shrink(self.SRC, self.SCRIPT, self.crashes)
        assert result.script == [("E", "K", 0)]
        assert result.sliced
        assert result.src_lines() <= 6

    def test_cone_none_when_nothing_droppable(self):
        assert causal_cone_script(self.SRC, [("E", "K", 0)]) is None
        assert causal_cone_script("input void I;\nawait I;\n",
                                  [("E", "I", None), ("E", "I", None)]) \
            in (None, [("E", "I", None)])


class TestFlowEvents:
    def run_chain(self, flows):
        program = Program(CHAIN)
        exporter = program.observe(ChromeTraceExporter(
            flows_from=program.hooks if flows else None))
        program.start()
        program.send("I")
        return exporter.to_json()

    def test_flow_events_load_and_pair(self):
        doc = json.loads(json.dumps(self.run_chain(flows=True)))
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        assert flows, "flow arrows missing"
        starts = {e["id"]: e for e in flows if e["ph"] == "s"}
        ends = {e["id"]: e for e in flows if e["ph"] == "f"}
        assert set(starts) == set(ends)      # every arrow has both ends
        for fid, end in ends.items():
            assert end["bp"] == "e"
            assert end["cat"] == starts[fid]["cat"] == "causal"
            assert end["name"] == starts[fid]["name"]
            # arrows never point backwards in time
            assert starts[fid]["ts"] <= end["ts"]

    def test_cause_arrow_spans_tracks(self):
        doc = self.run_chain(flows=True)
        flows = [e for e in doc["traceEvents"] if e["ph"] in ("s", "f")]
        cause = [e for e in flows if e["name"] == "cause"]
        # at least one emit->resume arrow crosses trail tracks
        by_id = {}
        for e in cause:
            by_id.setdefault(e["id"], {})[e["ph"]] = e
        assert any(pair["s"]["tid"] != pair["f"]["tid"]
                   for pair in by_id.values() if len(pair) == 2)

    def test_flows_off_output_unchanged(self):
        doc = self.run_chain(flows=False)
        phs = {e["ph"] for e in doc["traceEvents"]}
        assert phs <= {"B", "E", "i", "M"}
        # identical to a fresh flows-off run modulo wall_ns (the
        # taxonomy's only nondeterministic field)
        again = self.run_chain(flows=False)

        def scrub(d):
            for ev in d["traceEvents"]:
                ev.get("args", {}).pop("wall_ns", None)
            return json.dumps(d)
        assert scrub(doc) == scrub(again)


class TestTimeTravel:
    SRC = """
input int K;
int acc = 0;
loop do
    int v = await K;
    acc = acc + v;
    if acc > 5 then
        break;
    end
end
return acc;
"""
    SCRIPT = [("E", "K", 2), ("E", "K", 2), ("E", "K", 3)]

    def test_goto_back_step_byte_identical(self):
        dbg = TimeTravelDebugger(self.SRC, self.SCRIPT)
        assert dbg.total == 4                  # boot + 3 events
        full = dbg.full_signature
        dbg.goto(2)
        assert dbg.at == 2
        assert dbg.signature() == full[:2]
        dbg.back()
        assert dbg.at == 1
        assert dbg.signature() == full[:1]
        while dbg.at < dbg.total:
            dbg.step()
        assert dbg.signature() == full         # byte-identical re-run
        assert dbg.program.result == 7

    def test_goto_clamps(self):
        dbg = TimeTravelDebugger(self.SRC, self.SCRIPT)
        assert dbg.goto(0) == 1                # boot cannot be unwound
        assert dbg.goto(99) == dbg.total

    def test_state_snapshot_tracks_position(self):
        dbg = TimeTravelDebugger(self.SRC, self.SCRIPT)
        dbg.goto(2)
        state = dbg.state()
        assert state["memory"]["acc"] == 2
        assert not state["done"]
        assert ("main", "ext") in state["trails"]
        dbg.goto(dbg.total)
        assert dbg.state()["done"]
        assert dbg.state()["result"] == 7
        assert "acc = 7" in dbg.render_state()

    def test_time_travel_over_timers(self):
        src = ("input void I;\nint n = 0;\nloop do\n"
               "    await 10ms;\n    n = n + 1;\n    if n == 3 then\n"
               "        break;\n    end\nend\nreturn n;\n")
        script = [("T", 10_000), ("T", 20_000), ("T", 30_000)]
        dbg = TimeTravelDebugger(src, script)
        full = dbg.full_signature
        assert dbg.program.result == 3
        dbg.goto(2)
        assert dbg.state()["memory"]["n"] == 1
        while dbg.at < dbg.total:
            dbg.step()
        assert dbg.signature() == full

    def test_why_at_position(self):
        dbg = TimeTravelDebugger(CHAIN, CHAIN_SCRIPT)
        assert "emit b" in dbg.why("event:b")
        dbg.goto(1)    # before the I reaction: b hasn't happened
        assert "no occurrence matches" in dbg.why("event:b")


class TestEventLogSignature:
    def test_matches_trace_signature_when_unbounded(self):
        program = Program(CHAIN, trace=True)
        log = program.observe(EventLog())
        program.start()
        program.send("I")
        assert log.signature() == program.trace.signature()

    def test_raises_clearly_on_dropped_events(self):
        program = Program(CHAIN)
        log = program.observe(EventLog(maxlen=4))
        program.start()
        program.send("I")
        assert log.dropped > 0
        with pytest.raises(ValueError, match="partial event log"):
            log.signature()

    def test_bounded_but_undropped_still_works(self):
        program = Program("input int K;\nint v = await K;\nreturn v;\n",
                          trace=True)
        log = program.observe(EventLog(maxlen=10_000))
        program.start()
        program.send("K", 9)
        assert log.dropped == 0
        assert log.signature() == program.trace.signature()


class TestFlightRecorderDump:
    CRASHER = """
input int K;
int v = await K;
v = 10 / v;
return v;
"""

    def test_dump_on_exception_writes_ring(self, tmp_path, capsys):
        out = tmp_path / "crash.jsonl"
        program = Program(self.CRASHER)
        recorder = program.observe(FlightRecorder(maxlen=64))
        with pytest.raises(RuntimeCeuError):
            with recorder.dump_on_exception(path=str(out)):
                program.start()
                program.send("K", 0)
        records = [json.loads(line)
                   for line in out.read_text().splitlines()]
        assert any(r["ev"] == "reaction_begin" for r in records)

    def test_dump_on_exception_defaults_to_stderr(self, capsys):
        program = Program(self.CRASHER)
        recorder = program.observe(FlightRecorder(maxlen=8))
        with pytest.raises(RuntimeCeuError):
            with recorder.dump_on_exception():
                program.start()
                program.send("K", 0)
        err = capsys.readouterr().err
        assert "flight recorder" in err
        assert '"ev"' in err

    def test_no_dump_on_clean_exit(self, tmp_path):
        out = tmp_path / "clean.jsonl"
        program = Program(self.CRASHER)
        recorder = program.observe(FlightRecorder(maxlen=8))
        with recorder.dump_on_exception(path=str(out)):
            program.start()
            program.send("K", 5)
        assert program.result == 2
        assert not out.exists()


class TestWitnessMinimisation:
    # x is written by two trails on T (a genuine conflict); the N loop
    # is irrelevant noise a longer label path might include
    CONFLICTED = """
input void N;
input void T;
int x = 0;
par/and do
    loop do
        await N;
    end
with
    await T;
    x = 1;
with
    await T;
    x = 2;
end
"""

    def _conflict(self):
        from repro.dfa import build_dfa
        from repro.sema import bind
        from repro.lang import parse

        dfa = build_dfa(bind(parse(self.CONFLICTED)))
        assert dfa.conflicts
        return dfa.conflicts[0]

    def test_padded_path_minimises_to_trigger(self):
        from repro.analysis.witness import realize

        conflict = self._conflict()
        witness = realize(self.CONFLICTED, conflict,
                          ["boot", "event N", "event N", "event T"])
        assert witness.verified
        # the N deliveries verified fine but are causally irrelevant —
        # the shrinker drops them from the replay script
        assert witness.script == [("E", "T", 1)]
        assert witness.labels == ["boot", "event N", "event N",
                                  "event T"]

    def test_lint_witnesses_stay_verified(self):
        from repro.analysis import run_analysis

        report = run_analysis(self.CONFLICTED, filename="w.ceu")
        conflicts = [d for d in report.errors
                     if d.code.startswith("CEU-E2")]
        assert conflicts
        data = report.to_dict()
        witnessed = [d for d in data["diagnostics"]
                     if d.get("witness") and d["witness"]["replayable"]]
        assert witnessed
        for diag in witnessed:
            assert diag["witness"]["verified"]
            assert len(diag["witness"]["script"]) <= 2


class TestCliDebugAndWhy:
    def test_why_prints_causal_slice(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "chain.ceu"
        prog.write_text(CHAIN)
        script = tmp_path / "chain.script"
        script.write_text(script_text(CHAIN_SCRIPT))
        assert main(["why", str(prog), "--inputs", str(script),
                     "--at", "event:b"]) == 0
        out = capsys.readouterr().out
        assert "causal slice" in out
        body = out.split(":\n", 1)[1]      # skip the header line
        assert "emit a" in body and "emit b" in body
        assert body.index("emit a") < body.index("emit b")

    def test_why_unknown_target_fails(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "chain.ceu"
        prog.write_text(CHAIN)
        assert main(["why", str(prog), "I", "--at",
                     "trail:phantom"]) == 1
        assert "no occurrence" in capsys.readouterr().err

    def test_debug_repl_round_trip(self, tmp_path, capsys, monkeypatch):
        import io

        from repro.cli import main

        prog = tmp_path / "acc.ceu"
        prog.write_text(TestTimeTravel.SRC)
        script = tmp_path / "acc.script"
        script.write_text(script_text(TestTimeTravel.SCRIPT))
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO("goto 2\nstate\nback\nstep\nsig\nbogus\nquit\n"))
        assert main(["debug", str(prog), "--inputs", str(script)]) == 0
        out = capsys.readouterr().out
        assert "4 reaction(s)" in out
        assert "position 2/4" in out
        assert "acc = 2" in out
        assert "signature prefix match: True" in out
        assert "unknown command" in out

    def test_run_flight_recorder_flag(self, tmp_path, capsys):
        from repro.cli import main

        prog = tmp_path / "crash.ceu"
        prog.write_text(TestFlightRecorderDump.CRASHER)
        # the ring dumps before main()'s CeuError handler reports it
        assert main(["run", str(prog), "K=0",
                     "--flight-recorder", "16"]) == 1
        err = capsys.readouterr().err
        assert "flight recorder" in err
        assert "division by zero" in err

    def test_script_text_round_trip(self):
        text = script_text(TestReactionCone.SCRIPT)
        assert parse_script_text(text) == TestReactionCone.SCRIPT
