"""The public facade (`repro.core`), traces, and the bundled applications."""

import pytest

from repro.apps import load, names
from repro.core import analyze, compile_source, run
from repro.flow import build_flow
from repro.lang import parse
from repro.lang.errors import NondeterminismError
from repro.runtime import Program
from repro.sema import bind


class TestCoreApi:
    def test_run_one_shot(self):
        program = run("input int X;\nint v = await X;\nreturn v + 1;",
                      events=[("X", 41)])
        assert program.done and program.result == 42

    def test_run_with_time_markers(self):
        program = run("""
        int n = 0;
        par/or do
           loop do
              await 10ms;
              n = n + 1;
           end
        with
           await 100ms;
        end
        return n;
        """, until="1s")
        # the 10th tick shares the 100ms reaction with the watchdog; the
        # VM's canonical order runs the increment before the or-join kill
        # (this is the §2.6 refused example — `run` skips the analysis)
        assert program.result == 10

    def test_analyze_refuses_nondeterminism(self):
        with pytest.raises(NondeterminismError):
            analyze("int v;\npar/and do\nv = 1;\nwith\nv = 2;\nend")

    def test_analyze_opt_out(self):
        unit = analyze("int v;\npar/and do\nv = 1;\nwith\nv = 2;\nend",
                       check_determinism=False)
        assert unit.dfa is None

    def test_unit_artifacts(self):
        unit = compile_source("input void A;\nloop do\nawait A;\nend")
        assert unit.flow_graph().await_nodes()
        assert unit.memory_layout().total == 0
        assert unit.gate_table().count == 1
        assert "ceu_go_event" in unit.to_c().code

    def test_instantiate_fresh_programs(self):
        unit = compile_source("input int X;\nint v = await X;\nreturn v;")
        p1 = unit.instantiate()
        p2 = unit.instantiate()
        p1.start()
        p1.send("X", 1)
        p2.start()
        p2.send("X", 2)
        assert (p1.result, p2.result) == (1, 2)


class TestTraces:
    def test_reaction_indices_and_triggers(self):
        p = Program("""
        input void A;
        loop do
           await A;
        end
        """, trace=True)
        p.start()
        p.send("A")
        p.advance("1ms")
        triggers = p.trace.triggers()
        assert triggers[0] == "boot"
        assert triggers[1] == "event:A"

    def test_discarded_flag(self):
        p = Program("input void A, B;\nawait B;", trace=True)
        p.start()
        p.send("A")
        assert p.trace.reactions[1].discarded

    def test_internal_emissions_recorded(self):
        p = Program("""
        input void Go;
        internal void e;
        par/or do
           await e;
        with
           await Go;
           emit e;
        end
        """, trace=True)
        p.start()
        p.send("Go")
        assert "e" in p.trace.reactions[1].emitted_internal

    def test_signature_stable(self):
        def one():
            p = Program("input void A;\nint v;\nloop do\nawait A;"
                        "\nv = v + 1;\nend", trace=True)
            p.start()
            p.send("A")
            return p.trace.signature()

        assert one() == one()

    def test_render_readable(self):
        p = Program("input void A;\nawait A;", trace=True)
        p.start()
        text = p.trace.render()
        assert "#0 boot" in text


class TestBundledApps:
    def test_all_apps_parse_and_bind(self):
        for name in names():
            if name == "mario_game":
                continue   # a fragment: its events live in the environment
            bind(parse(load(name)))

    @pytest.mark.parametrize("app", ["blink", "blink2", "sense", "client",
                                     "server", "ring", "ship"])
    def test_static_analyses_accept(self, app):
        unit = analyze(load(app))
        assert unit.dfa is not None and unit.dfa.deterministic

    def test_blink_runs(self):
        toggles = {0: 0, 1: 0, 2: 0}
        p = Program(load("blink"))
        for bit in range(3):
            p.cenv.define(f"Leds_led{bit}Toggle",
                          lambda b=bit: toggles.__setitem__(
                              b, toggles[b] + 1))
        p.start()
        p.at("2s")
        assert toggles == {0: 8, 1: 4, 2: 2}

    def test_sense_runs(self):
        readings = []
        p = Program(load("sense"))
        p.cenv.define("Sensor_read", lambda: 0)
        p.cenv.define("Leds_set", lambda v: readings.append(v))
        p.start()
        for _ in range(5):
            p.advance("100ms")
            p.send("ReadDone", 640)
        assert readings == [5] * 5

    def test_client_server_over_vm(self):
        """Run the Céu client against the Céu server through a tiny
        hand-rolled radio shim."""
        client = Program(load("client"))
        server = Program(load("server"))
        mailbox = []

        def make_env(prog, other_name):
            def send(dest, msg):
                from repro.platforms.tinyos import coerce_message
                mailbox.append((other_name, coerce_message(msg).copy()))
                return 0
            return send

        from repro.platforms.tinyos import radio_get_payload
        client.cenv.define_many({
            "SERVER_ID": 0, "Radio_getPayload": radio_get_payload,
            "Radio_send": make_env(client, "server"),
            "Leds_set": lambda v: 0})
        server.cenv.define_many({
            "CLIENT_ID": 1, "Radio_getPayload": radio_get_payload,
            "Radio_send": make_env(server, "client"),
            "Leds_set": lambda v: 0})
        client.start()
        server.start()
        for _ in range(3):
            client.advance("1s")
            # flush the radio both ways
            for _ in range(4):
                if not mailbox:
                    break
                target, msg = mailbox.pop(0)
                (server if target == "server" else client).send(
                    "Radio_receive", msg)
        snap = client.sched.memory.snapshot()
        assert snap["acked"] == 3 and snap["lost"] == 0

    def test_mario_game_core_requires_environment(self):
        # the game core alone references events the environment declares
        from repro.lang.errors import BindError
        with pytest.raises(BindError):
            bind(parse(load("mario_game")))

    def test_flow_graphs_build_for_all_apps(self):
        for name in ("blink", "ring", "ship", "client", "server"):
            graph = build_flow(bind(parse(load(name))))
            assert graph.await_nodes()
