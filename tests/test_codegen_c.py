"""C backend: structural checks plus gcc differential tests against the VM."""

import pytest

from helpers import bound_of, compile_and_run_c, requires_gcc, run_program
from repro.codegen import compile_to_c
from repro.codegen.cemit import UnsupportedForC


class TestEmittedStructure:
    def test_contains_paper_api(self):
        c = compile_to_c(bound_of("input void A;\nawait A;"))
        for symbol in ("ceu_go_init", "ceu_go_event", "ceu_go_time",
                       "GATES", "MEM", "_SWITCH:", "switch (track)"):
            assert symbol in c.code, symbol

    def test_track_goto_scheme(self):
        c = compile_to_c(bound_of(
            "input void A;\nloop do\nawait A;\nend"))
        assert "goto _SWITCH;" in c.code

    def test_gate_arming_and_clearing(self):
        c = compile_to_c(bound_of("input void A;\nawait A;"))
        assert "GATES[0] =" in c.code

    def test_kill_is_memset(self):
        c = compile_to_c(bound_of("""
        input void A, B;
        par/or do
           await A;
        with
           await B;
        end
        """))
        assert "memset(&GATES[" in c.code

    def test_c_blocks_passed_through(self):
        c = compile_to_c(bound_of(
            "C do\nint twice(int x) { return 2*x; }\nend\nreturn _twice(2);"))
        assert "int twice(int x)" in c.code

    def test_async_unsupported(self):
        with pytest.raises(UnsupportedForC):
            compile_to_c(bound_of("async do\nint i = 0;\nend"))

    def test_metrics_exposed(self):
        c = compile_to_c(bound_of("""
        input void A, B;
        int v;
        par/and do
           await A;
        with
           await B;
        end
        """))
        assert c.n_gates >= 3       # 2 awaits + join gate
        assert c.n_events == 2
        assert c.n_tracks > 4
        assert c.rom_bytes() > 1000


DIFFERENTIAL_CORPUS = [
    # (name, source, script, expected substring checks use VM)
    ("counter", """
input int Restart;
internal void changed;
int v = 0;
par do
   loop do
      await 1s;
      v = v + 1;
      emit changed;
   end
with
   loop do
      v = await Restart;
      emit changed;
   end
with
   loop do
      await changed;
      _printf("v = %d\\n", v);
   end
end
""", [("T", 1_000_000), ("T", 2_000_000), ("E", "Restart", 5),
      ("T", 3_000_000)]),
    ("stack_policy", """
input void Go;
int v1, v2, v3;
internal void v1_evt, v2_evt, v3_evt;
par/or do
   loop do
      await v1_evt;
      v2 = v1 + 1;
      emit v2_evt;
   end
with
   loop do
      await v2_evt;
      v3 = v2 * 2;
      emit v3_evt;
   end
with
   await Go;
   v1 = 10;
   emit v1_evt;
   v1 = 15;
   emit v1_evt;
   _printf("%d %d %d\\n", v1, v2, v3);
end
""", [("E", "Go", 0)]),
    ("value_par", """
input void K;
input void T;
int win;
win = par do
   await T;
   return 1;
with
   await K;
   return 0;
end;
_printf("win=%d\\n", win);
return win + 10;
""", [("E", "T", 0)]),
    ("watchdog", """
int n = 0;
par/or do
   loop do
      await 50ms;
      await 49ms;
      n = n + 1;
   end
with
   await 100ms;
end
_printf("n=%d\\n", n);
return n;
""", [("T", 100_000)]),
    ("break_escape", """
input void A, B;
int n = 0;
loop do
   par do
      await A;
      break;
   with
      loop do
         await B;
         n = n + 100;
      end
   end
end
n = n + 1;
_printf("n=%d\\n", n);
return n;
""", [("E", "B", 0), ("E", "A", 0), ("E", "B", 0)]),
    ("app_switch", """
input int Switch;
input void Tick;
int cur_app = 1;
int log = 0;
par/or do
   loop do
      par/or do
         cur_app = await Switch;
      with
         if cur_app == 1 then
            loop do
               await Tick;
               log = log + 1;
            end
         end
         if cur_app == 2 then
            loop do
               await Tick;
               log = log + 100;
            end
         end
         await forever;
      end
   end
with
   await 1h;
end
_printf("log=%d\\n", log);
return log;
""", [("E", "Tick", 0), ("E", "Switch", 2), ("E", "Tick", 0),
      ("T", 3_600_000_000)]),
    ("vectors", """
input int G;
int[5] xs;
int i = await G;
loop do
   xs[i] = i * i;
   i = i + 1;
   if i == 5 then
      break;
   end
   await 1ms;
end
_printf("sum=%d\\n", xs[0] + xs[1] + xs[2] + xs[3] + xs[4]);
return xs[4];
""", [("E", "G", 0), ("T", 10_000)]),
]


def _drive_vm(src, script):
    actions = []
    for item in script:
        if item[0] == "E":
            actions.append(("ev", item[1], item[2]))
        else:
            actions.append(("at", item[1]))
    return run_program(src, *actions)


def _script_text(script):
    lines = []
    for item in script:
        if item[0] == "E":
            lines.append(f"E {item[1]} {item[2]}")
        else:
            lines.append(f"T {item[1]}")
    return "\n".join(lines) + "\n"


@requires_gcc
@pytest.mark.parametrize("name,src,script",
                         DIFFERENTIAL_CORPUS,
                         ids=[c[0] for c in DIFFERENTIAL_CORPUS])
def test_c_matches_vm(name, src, script, tmp_path):
    """The gcc-compiled backend and the reference VM must agree on both
    printed output and the final program status/result."""
    vm = _drive_vm(src, script)
    out = compile_and_run_c(src, _script_text(script), tmp_path, name)
    body, tail = out.rsplit("==DONE=", 1)
    assert body == vm.output()
    done = tail[0] == "1"
    assert done == vm.done
    if vm.done and isinstance(vm.result, int):
        assert f"RET={vm.result}==" in "RET=" + tail.split("RET=")[1]


@requires_gcc
def test_c_discards_unawaited_events(tmp_path):
    src = """
input void A, B;
await B;
_printf("got B\\n");
return 1;
"""
    out = compile_and_run_c(src, "E A 0\nE A 0\nE B 0\n", tmp_path, "disc")
    assert out.startswith("got B\n")
    assert "DONE=1" in out


@requires_gcc
def test_c_timer_deltas(tmp_path):
    src = """
int v;
await 10ms;
v = 1;
await 1ms;
v = 2;
_printf("v=%d\\n", v);
return v;
"""
    out = compile_and_run_c(src, "T 15000\n", tmp_path, "delta")
    assert out.startswith("v=2\n") and "RET=2" in out
