"""Flow-graph construction (§4.1), analysis budgets, diagnostics."""

import pytest

from repro.dfa import build_dfa
from repro.flow import build_flow
from repro.lang import parse
from repro.lang.errors import AnalysisBudgetExceeded, CeuError, SourceSpan
from repro.sema import bind


class TestFlowGraph:
    def graph_of(self, src):
        return build_flow(bind(parse(src)))

    def test_linear_program(self):
        g = self.graph_of("input void A;\nawait A;\nreturn 1;")
        assert g.entry is not None
        assert len(g.await_nodes()) == 1

    def test_loop_back_edge(self):
        g = self.graph_of("input void A;\nloop do\nawait A;\nend")
        iterate = [e for e in g.edges if e[2] == "iterate"]
        assert iterate

    def test_par_fork_and_join(self):
        g = self.graph_of("""
        input void A, B;
        par/or do
           await A;
        with
           await B;
        end
        """)
        forks = [n for n in g.nodes if n.kind == "fork"]
        joins = g.join_nodes()
        assert len(forks) == 1 and len(joins) == 1

    def test_plain_par_has_no_join(self):
        g = self.graph_of("""
        input void A, B;
        par do
           await A;
        with
           await B;
        end
        """)
        assert not g.join_nodes()

    def test_priorities_outer_lower(self):
        g = self.graph_of("""
        input void A, B;
        loop do
           par/or do
              await A;
           with
              par/and do
                 await B;
              with
                 await B;
              end
           end
        end
        """)
        priorities = {n.label: n.priority for n in g.join_nodes()}
        assert priorities["loop-end"] > priorities["par/or-join"] > \
            priorities["par/and-join"]
        assert all(n.priority == 0 for n in g.nodes if n.kind != "join")

    def test_break_routes_to_loop_escape(self):
        g = self.graph_of("""
        input void A;
        loop do
           await A;
           break;
        end
        """)
        escape = next(n for n in g.join_nodes() if n.label == "loop-end")
        break_node = next(n for n in g.nodes if n.label == "break")
        assert escape.id in g.successors(break_node.id)

    def test_await_forever_has_no_exit(self):
        g = self.graph_of("await forever;")
        forever = g.await_nodes()[0]
        assert not g.successors(forever.id)

    def test_dot_is_wellformed(self):
        g = self.graph_of("input void A;\nawait A;")
        dot = g.to_dot("demo")
        assert dot.startswith("digraph demo {") and dot.endswith("}")
        assert dot.count("->") == len(g.edges)


class TestAnalysisBudgets:
    def test_dfa_state_budget(self):
        # distinct residues of a long-period pair of timers
        src = """
        par do
           loop do
              await 7ms;
           end
        with
           loop do
              await 7919ms;
           end
        end
        """
        with pytest.raises(AnalysisBudgetExceeded):
            build_dfa(bind(parse(src)), max_states=20)

    def test_budget_generous_enough_for_apps(self):
        from repro.apps import load
        dfa = build_dfa(bind(parse(load("ring"))), max_states=20_000)
        assert dfa.state_count() < 1_000


class TestDiagnostics:
    def test_spans_in_messages(self):
        try:
            bind(parse("int v;\nloop do\nw = 1;\nend"))
        except CeuError as err:
            assert "3:" in str(err)
        else:  # pragma: no cover
            raise AssertionError("expected a diagnostic")

    def test_span_merge(self):
        a = SourceSpan.point(1, 1, 0)
        b = SourceSpan.point(3, 7, 42)
        merged = a.merge(b)
        assert merged.start.line == 1 and merged.end.line == 3

    def test_error_kinds_distinct(self):
        from repro.lang.errors import (AsyncError, BindError, BoundedError,
                                       NondeterminismError)
        kinds = {cls.kind for cls in
                 (AsyncError, BindError, BoundedError, NondeterminismError)}
        assert len(kinds) == 4
