"""Reaction checkpoints (PR 10 tentpole, ``repro.runtime.checkpoint``).

The load-bearing properties:

* **restore-then-run == run-from-boot** — a checkpoint taken mid-run,
  serialized, reloaded, and driven through the rest of the stimulus
  produces the *byte-identical* trace signature, output, and state
  fingerprint as the uninterrupted run.  Pinned over the checked-in
  corpus and a 200-seed fuzz sweep.
* **O(distance) time travel** — ``debug goto`` replays from the nearest
  parked boundary, not from boot; :attr:`TimeTravelDebugger.last_goto`
  pins the base, mode, and replayed reaction/step counts.
* **postmortem bundles are atomic** — complete with a verifying
  manifest, or absent; a SIGKILL mid-write (subprocess-pinned) never
  leaves a visible partial bundle.
* **farm warm starts land on the checkpoint's fingerprint** and react
  identically to the original instance from there on.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.fuzz.gen import generate_case
from repro.fuzz.oracles import canon_sig
from repro.obs.debug import TimeTravelDebugger
from repro.runtime import Program
from repro.runtime.checkpoint import (Checkpoint, CheckpointError,
                                      journal_cursor, list_postmortems,
                                      load_postmortem, restore, snapshot,
                                      snapshot_crash, state_fingerprint,
                                      write_postmortem)
from repro.runtime.farm import Farm

CORPUS = Path(__file__).parent / "corpus"
NAMES = sorted(p.stem for p in CORPUS.glob("*.ceu"))

ACC = """
input int X;
int n = 0;
loop do
   int v = await X;
   n = n + v;
end
"""

TIMERED = """
input int X;
int n = 0;
par do
   loop do
      await 10ms;
      n = n + 1;
   end
with
   loop do
      int v = await X;
      n = n + v;
   end
end
"""


def drive(program, script):
    for item in script:
        if program.done:
            break
        if item[0] == "E":
            program.send(item[1], item[2])
        else:
            program.at(item[1])


def full_run(src, script) -> Program:
    program = Program(src, trace=True, record=True)
    program.start()
    drive(program, script)
    return program


def split_run(src, script, cut=None):
    """Run to ``cut``, checkpoint through a byte round trip, restore,
    and finish the script on the restored VM."""
    if cut is None:
        cut = max(1, len(script) // 2)
    p1 = Program(src, trace=True, record=True)
    p1.start()
    drive(p1, script[:cut])
    ck = Checkpoint.from_bytes(snapshot(p1, source=src).to_bytes())
    p2 = restore(ck, trace=True)
    drive(p2, script[cut:])
    return p1, ck, p2


def corpus_case(name):
    src = (CORPUS / f"{name}.ceu").read_text()
    meta = json.loads((CORPUS / f"{name}.json").read_text())
    return src, [tuple(item) for item in meta["script"]]


# ------------------------------------------------------ restore identity
class TestRestoreIdentity:
    @pytest.mark.parametrize("name", NAMES)
    def test_corpus_restore_then_run_is_identical(self, name):
        src, script = corpus_case(name)
        base = full_run(src, script)
        _, _, cont = split_run(src, script)
        assert canon_sig(cont.trace.signature()) == \
            canon_sig(base.trace.signature())
        assert cont.output() == base.output()
        assert state_fingerprint(cont.sched) == \
            state_fingerprint(base.sched)

    @pytest.mark.parametrize("cut", [1, 2, 5, 9])
    def test_every_cut_point_is_equivalent(self, cut):
        script = [("E", "X", k) for k in range(1, 6)] + \
                 [("T", 25_000), ("E", "X", 9), ("T", 60_000),
                  ("E", "X", 11), ("T", 100_000)]
        base = full_run(TIMERED, script)
        _, _, cont = split_run(TIMERED, script, cut=cut)
        assert canon_sig(cont.trace.signature()) == \
            canon_sig(base.trace.signature())
        assert state_fingerprint(cont.sched) == \
            state_fingerprint(base.sched)

    def test_fuzz_sweep_200_seeds(self):
        failures = []
        for seed in range(200):
            case = generate_case(seed)
            base = full_run(case.src, case.script)
            _, _, cont = split_run(case.src, case.script)
            if canon_sig(cont.trace.signature()) != \
                    canon_sig(base.trace.signature()):
                failures.append(seed)
        assert failures == []

    def test_restore_of_finished_run_is_done(self):
        script = [("E", "X", 1)]
        src = "input int X;\nint v = await X;\nreturn v;"
        p1 = full_run(src, script)
        assert p1.done
        ck = snapshot(p1, source=src)
        p2 = restore(ck)
        assert p2.done and p2.result == p1.result


# ------------------------------------------------------- the serializer
class TestSerializer:
    def test_snapshot_bytes_are_deterministic(self):
        script = [("E", "X", 3), ("E", "X", 4)]
        a = full_run(ACC, script)
        b = full_run(ACC, script)
        assert snapshot(a, source=ACC).to_bytes() == \
            snapshot(b, source=ACC).to_bytes()

    def test_save_load_round_trip(self, tmp_path):
        program = full_run(ACC, [("E", "X", 3)])
        ck = snapshot(program, source=ACC)
        path = ck.save(tmp_path / "acc.ckpt")
        assert Checkpoint.load(path).to_bytes() == ck.to_bytes()
        assert "reaction 2" in ck.describe()

    def test_snapshot_without_journal_refuses(self):
        program = Program(ACC)
        program.start()
        with pytest.raises(CheckpointError, match="journal"):
            snapshot(program, source=ACC)

    def test_from_bytes_rejects_garbage_and_versions(self):
        with pytest.raises(CheckpointError, match="unparsable"):
            Checkpoint.from_bytes(b"not json")
        program = full_run(ACC, [("E", "X", 1)])
        payload = snapshot(program, source=ACC).payload
        with pytest.raises(CheckpointError, match="version"):
            Checkpoint({**payload, "version": 99})
        with pytest.raises(CheckpointError, match="format"):
            Checkpoint({**payload, "format": "tarball"})

    def test_restore_verifies_fingerprint(self):
        program = full_run(ACC, [("E", "X", 1), ("E", "X", 2)])
        payload = dict(snapshot(program, source=ACC).payload)
        payload["fingerprint"] = "0" * 64
        with pytest.raises(CheckpointError, match="diverged"):
            restore(Checkpoint(payload))

    def test_journal_cursor_stamps(self):
        program = full_run(ACC, [("E", "X", 1), ("E", "X", 2)])
        journal = snapshot(program, source=ACC).journal
        assert [e[0] for e in journal] == ["E", "E"]
        assert journal_cursor(journal, 1) == 0    # boot only: nothing ran
        assert journal_cursor(journal, 2) == 1
        assert journal_cursor(journal, 3) == 2

    def test_snapshot_mid_reaction_refuses(self):
        program = Program(ACC, record=True)
        program.start()
        program.sched._reacting = True
        try:
            with pytest.raises(CheckpointError, match="mid-reaction"):
                snapshot(program, source=ACC)
        finally:
            program.sched._reacting = False

    def test_crash_snapshot_parks_before_the_crash(self):
        src = "input int K;\nint v = await K;\nv = v / 0;\nreturn v;"
        program = Program(src, record=True)
        program.start()
        with pytest.raises(Exception):
            program.send("K", 0)
        ck = snapshot_crash(program, source=src)
        assert ck.fingerprint is None
        assert ck.reaction_count == 1      # boot completed, crash did not
        restored = restore(ck)
        assert not restored.done
        assert restored.sched.reaction_count == 1


# ------------------------------------------------------------ time travel
class TestTimeTravel:
    SCRIPT = [("E", "X", k) for k in range(1, 13)]

    def dbg(self):
        return TimeTravelDebugger(ACC, self.SCRIPT,
                                  checkpoint_interval=4,
                                  checkpoint_ring=8)

    def test_ring_parks_interval_boundaries(self):
        dbg = self.dbg()
        assert dbg.total == 13
        assert dbg.checkpoints()["parked"] == [4, 8, 12]

    def test_goto_uses_nearest_checkpoint(self):
        dbg = self.dbg()
        dbg.goto(6)
        assert dbg.last_goto == {"base": 4, "mode": "checkpoint",
                                 "replayed": 2,
                                 "steps_replayed":
                                     dbg.last_goto["steps_replayed"]}
        assert 0 < dbg.last_goto["steps_replayed"] < \
            dbg.program.sched.steps_executed

    def test_back_and_forward_reseed_the_ring(self):
        dbg = self.dbg()
        dbg.goto(6)                      # consumes the parked VM at 4 …
        dbg.back()                       # … so 5 replays from boot
        assert dbg.last_goto["mode"] == "boot"
        assert dbg.last_goto["replayed"] == 4
        assert 6 in dbg.checkpoints()["parked"]   # displaced cursor
        dbg.step()                       # 6: served by its own park
        assert dbg.last_goto["mode"] == "checkpoint"
        assert dbg.last_goto["base"] == 6
        assert dbg.last_goto["replayed"] == 0
        dbg.step()                       # 7: cursor moves forward
        assert dbg.last_goto["mode"] == "cursor"
        assert dbg.last_goto["replayed"] == 1

    def test_displaced_cursor_is_parked(self):
        dbg = self.dbg()
        dbg.goto(6)
        dbg.goto(2)                      # from-boot: no parked VM <= 2
        assert dbg.last_goto["mode"] == "boot"
        assert 6 in dbg.checkpoints()["parked"]

    def test_positions_match_fresh_prefix_runs(self):
        dbg = self.dbg()
        for pos in (3, 7, 11):
            dbg.goto(pos)
            fresh = full_run(ACC, self.SCRIPT[:pos - 1])
            assert dbg.state()["memory"] == \
                fresh.sched.memory.snapshot()
        dbg.goto(dbg.total)
        assert dbg.signature() == dbg.full_signature

    def test_save_and_reopen_from_checkpoint(self, tmp_path):
        dbg = self.dbg()
        dbg.goto(7)
        described = dbg.save(tmp_path / "pos7.ckpt")
        assert "reaction 7" in described
        reopened = TimeTravelDebugger.from_checkpoint(
            Checkpoint.load(tmp_path / "pos7.ckpt"))
        assert reopened.total == 7
        assert reopened.state()["memory"] == dbg.state()["memory"]
        reopened.goto(3)
        fresh = full_run(ACC, self.SCRIPT[:2])
        assert reopened.state()["memory"] == \
            fresh.sched.memory.snapshot()


# ------------------------------------------------------------ postmortems
def _bundle(tmp_path, name="acc-i0-r2", **kw):
    program = full_run(ACC, [("E", "X", 41)])
    ck = snapshot(program, source=ACC)
    kw.setdefault("reason", "stuck")
    kw.setdefault("program", "acc")
    kw.setdefault("instance", 0)
    kw.setdefault("recorder_lines", ['{"ev": "step", "seq": 1}'])
    kw.setdefault("fleet", {"instances": 3})
    kw.setdefault("slice_text", "[1] spawn main  <- external")
    kw.setdefault("detail", {"p50_us": 12})
    return write_postmortem(tmp_path / name, ck, **kw)


class TestPostmortemBundles:
    def test_write_load_round_trip(self, tmp_path):
        path = _bundle(tmp_path)
        bundle = load_postmortem(path)
        assert bundle.reason == "stuck"
        assert bundle.manifest["instance"] == 0
        assert bundle.recorder_lines() == ['{"ev": "step", "seq": 1}']
        assert bundle.fleet() == {"instances": 3}
        assert "spawn main" in bundle.slice_text()
        assert bundle.checkpoint.reaction_count == 2
        assert "postmortem [stuck] acc instance 0" in bundle.describe()

    def test_existing_path_refused(self, tmp_path):
        _bundle(tmp_path)
        with pytest.raises(CheckpointError, match="already exists"):
            _bundle(tmp_path)

    def test_corrupt_file_detected(self, tmp_path):
        path = _bundle(tmp_path)
        (path / "fleet.json").write_text("{}")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_postmortem(path)

    def test_missing_listed_file_detected(self, tmp_path):
        path = _bundle(tmp_path)
        (path / "slice.txt").unlink()
        with pytest.raises(CheckpointError, match="missing"):
            load_postmortem(path)

    def test_not_a_bundle(self, tmp_path):
        (tmp_path / "junk").mkdir()
        with pytest.raises(CheckpointError, match="MANIFEST"):
            load_postmortem(tmp_path / "junk")

    def test_listing_skips_partials_and_noise(self, tmp_path):
        _bundle(tmp_path)
        (tmp_path / ".staging.tmp123").mkdir()
        (tmp_path / "no-manifest").mkdir()
        listed = list_postmortems(tmp_path)
        assert [m["bundle"] for m in listed] == ["acc-i0-r2"]
        assert list_postmortems(tmp_path / "absent") == []

    def test_failed_write_leaves_nothing_visible(self, tmp_path,
                                                 monkeypatch):
        import repro.runtime.checkpoint as cp

        calls = {"n": 0}
        real = os.fsync

        def flaky(fd):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise OSError("disk gone")
            return real(fd)

        monkeypatch.setattr(cp.os, "fsync", flaky)
        with pytest.raises(OSError):
            _bundle(tmp_path)
        assert list(tmp_path.iterdir()) == []   # staging cleaned too

    def test_sigkill_mid_write_never_leaves_partials(self, tmp_path):
        """Satellite 3: a drain/kill racing in-flight bundle writes
        leaves only complete bundles (or none) — pinned by SIGKILLing a
        writer loop mid-flight, the harshest interruption there is."""
        out = tmp_path / "bundles"
        writer = (
            "import sys\n"
            "sys.path[:0] = [%r, %r]\n"
            "from test_checkpoint import ACC, full_run\n"
            "from repro.runtime.checkpoint import snapshot, "
            "write_postmortem\n"
            "program = full_run(ACC, [('E', 'X', 7)])\n"
            "ck = snapshot(program, source=ACC)\n"
            "big = ['{\"ev\": \"pad\", \"n\": %%d}' %% n "
            "for n in range(4000)]\n"
            "i = 0\n"
            "while True:\n"
            "    write_postmortem(%r + '/b-%%06d' %% i, ck,\n"
            "                     reason='race', recorder_lines=big,\n"
            "                     fleet={'instances': 1})\n"
            "    i += 1\n"
        ) % (str(Path(__file__).parent),
             str(Path(__file__).parent.parent / "src"), str(out))
        out.mkdir()
        proc = subprocess.Popen([sys.executable, "-c", writer],
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                if len(list_postmortems(out)) >= 3:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("writer produced no bundles: %s"
                            % proc.stderr.read().decode()[-2000:])
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
        visible = [p for p in out.iterdir()
                   if not p.name.startswith(".")]
        assert visible
        for bundle in visible:
            loaded = load_postmortem(bundle)    # complete and verified
            assert loaded.reason == "race"


# ----------------------------------------------------------- farm plane
class TestFarmWarmStarts:
    def test_warm_start_lands_on_the_fingerprint(self):
        farm = Farm(TIMERED, n=1, program="t", observe=False,
                    record=True)
        farm.broadcast("X", 5)
        farm.run_until(45_000)
        ck = farm.checkpoint(0)
        warm = farm.spawn(2, program="t", warm_from=ck)
        for inst in warm:
            assert state_fingerprint(inst.program.sched) == \
                ck.fingerprint
        counters = farm.fleet.snapshot()
        assert counters["farm_warm_starts_total"]["series"] == \
            [[["t"], 2]]
        assert counters["farm_checkpoints_total"]["series"] == \
            [[["t"], 1]]

    def test_warm_instance_tracks_the_original(self):
        farm = Farm(TIMERED, n=1, program="t", observe=False,
                    record=True)
        farm.broadcast("X", 5)
        farm.run_until(45_000)
        ck = farm.checkpoint(0)
        farm.spawn(1, program="t", warm_from=ck)
        farm.broadcast("X", 9)
        farm.run_until(105_000)
        mems = [inst.program.sched.memory.snapshot()
                for inst in farm.instances]
        assert mems[0] == mems[1]

    def test_watchdog_auto_captures_a_bundle(self, tmp_path):
        from repro.apps import load

        farm = Farm(load("blink"), n=3, program="blink", record=True,
                    postmortem_dir=tmp_path)
        farm.run_until("500ms")
        stuck = farm.instances[1]
        farm.sim.cancel(stuck.handle)
        stuck.handle = None
        farm.sim.run_until(800_000)
        for inst in farm.instances:
            if inst.handle is not None:
                inst.program.at(inst.local(800_000))
                farm._post_drive(inst)
        report = farm.watchdog()
        flagged = [f for f in report["flagged"]
                   if f.get("reason") == "stuck"]
        assert flagged and "postmortem" in flagged[0]
        bundle = load_postmortem(flagged[0]["postmortem"])
        assert bundle.reason == "stuck"
        assert bundle.manifest["instance"] == 1
        assert bundle.fleet()["instances"] == 3
        # once per instance: a second sweep does not duplicate
        farm.watchdog()
        assert len(list_postmortems(tmp_path)) == 1
        assert farm.fleet.snapshot()["farm_postmortems_total"][
            "series"] == [[["stuck"], 1]]

    def test_checkpoint_requires_record(self):
        farm = Farm(TIMERED, n=1, program="t", observe=False)
        farm.run_until(20_000)
        with pytest.raises(CheckpointError, match="journal"):
            farm.checkpoint(0)


# ------------------------------------------------------------------- CLI
class TestCli:
    CRASHER = ("input int K;\n"
               "int v = await K;\n"
               "v = 10 / v;\n"
               "return v;\n")

    def test_run_postmortem_writes_a_loadable_bundle(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        prog = tmp_path / "crash.ceu"
        prog.write_text(self.CRASHER)
        pmdir = tmp_path / "pm"
        assert main(["run", str(prog), "K=0", "--flight-recorder", "32",
                     "--postmortem", str(pmdir)]) == 1
        err = capsys.readouterr().err
        assert "wrote postmortem bundle" in err
        bundles = list_postmortems(pmdir)
        assert len(bundles) == 1
        bundle = load_postmortem(pmdir / bundles[0]["bundle"])
        assert bundle.reason == "exception"
        assert "division by zero" in bundle.manifest["detail"]["error"]
        assert bundle.recorder_lines()
        # the crash checkpoint parks one reaction short of the crash
        assert main(["postmortem", str(pmdir / bundles[0]["bundle"])]) \
            == 0
        out = capsys.readouterr().out
        assert "postmortem [exception]" in out
        assert "flight recorder" in out

    def test_postmortem_directory_listing(self, tmp_path, capsys):
        from repro.cli import main

        _bundle(tmp_path)
        assert main(["postmortem", str(tmp_path)]) == 0
        assert "acc-i0-r2" in capsys.readouterr().out
        assert main(["postmortem", str(tmp_path / "nothing")]) == 1

    def test_postmortem_why_and_debug(self, tmp_path, capsys,
                                      monkeypatch):
        import io

        from repro.cli import main

        path = _bundle(tmp_path)
        assert main(["postmortem", str(path), "--why",
                     "reaction:1"]) == 0
        assert "reaction #1 event:X" in capsys.readouterr().out
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("state\ncheckpoints\nquit\n"))
        assert main(["postmortem", str(path), "--debug"]) == 0
        out = capsys.readouterr().out
        assert "position 2/2" in out
        assert "n = 41" in out

    def test_debug_save_then_from_checkpoint(self, tmp_path, capsys,
                                             monkeypatch):
        import io

        from repro.cli import main
        from repro.fuzz.gen import script_text

        prog = tmp_path / "acc.ceu"
        prog.write_text(ACC)
        script = tmp_path / "acc.script"
        script.write_text(script_text([("E", "X", k)
                                       for k in range(1, 5)]))
        ck = tmp_path / "pos3.ckpt"
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(f"goto 3\nsave {ck}\nquit\n"))
        assert main(["debug", str(prog), "--inputs",
                     str(script)]) == 0
        assert "reaction 3" in capsys.readouterr().out
        monkeypatch.setattr("sys.stdin", io.StringIO("state\nquit\n"))
        assert main(["debug", "--from-checkpoint", str(ck)]) == 0
        assert "n = 3" in capsys.readouterr().out

    def test_debug_requires_a_source(self, capsys):
        from repro.cli import main

        assert main(["debug"]) == 2
        assert "--from-checkpoint" in capsys.readouterr().err
