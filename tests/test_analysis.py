"""The unified static-analysis engine (docs/ANALYSIS.md): pass unit
tests, witness replay, SARIF shape and stability, static-bounds
soundness over the checked-in corpus, the CLI front ends, and the
golden snapshots."""

import json
from pathlib import Path

import pytest

from mint_goldens import LISTINGS
from repro.analysis import (ResourceBounds, compute_bounds, run_analysis,
                            sarif_json, to_sarif)
from repro.analysis.diagnostics import RULES, Report
from repro.cli import main
from repro.dfa import build_dfa
from repro.fuzz.oracles import bounds_violations, run_vm
from repro.lang import parse
from repro.obs.hooks import HookSubscriber
from repro.runtime import Program
from repro.sema import bind

CORPUS = Path(__file__).parent / "corpus"
GOLDENS = Path(__file__).parent / "goldens"


def codes(report) -> list:
    return [d.code for d in report.sorted()]


# ---------------------------------------------------------------------------
# front end: failures become diagnostics, never exceptions
# ---------------------------------------------------------------------------

class TestFrontEnd:
    def test_parse_error_is_e001(self):
        report = run_analysis("loop do", filename="x.ceu")
        assert codes(report) == ["CEU-E001"]
        assert report.exit_code == 1
        assert report.stages == []

    def test_bind_error_is_e002(self):
        report = run_analysis("v = 1;")
        assert codes(report) == ["CEU-E002"]

    def test_async_error_is_e003(self):
        report = run_analysis("""
        input void A;
        int v = 0;
        async do
           await A;
        end
        """)
        assert codes(report) == ["CEU-E003"]


# ---------------------------------------------------------------------------
# bounded pass (§2.5): E101 / W301 / W304, accumulated
# ---------------------------------------------------------------------------

class TestBoundedPass:
    def test_tight_loop_collected_not_raised(self):
        report = run_analysis(LISTINGS["tight_loop"])
        assert "CEU-E101" in codes(report)
        # the DFA passes are skipped for unbounded programs
        assert "dfa" not in report.stages

    def test_two_tight_loops_both_reported(self):
        report = run_analysis("""
        input void A;
        int v = 0;
        par do
           loop do
              v = v + 1;
           end
        with
           loop do
              v = v - 1;
           end
        end
        """)
        assert codes(report).count("CEU-E101") == 2

    def test_unreachable_statement(self):
        report = run_analysis(LISTINGS["unreachable"])
        unreachable = [d for d in report.diagnostics
                       if d.code == "CEU-W301"]
        assert len(unreachable) == 1
        assert "and 1 following" in unreachable[0].message

    def test_par_that_never_rejoins(self):
        report = run_analysis(LISTINGS["stuck"])
        assert "CEU-W304" in codes(report)

    def test_clean_program_has_no_bounded_findings(self):
        report = run_analysis(LISTINGS["counter"])
        assert not any(c.startswith(("CEU-E1", "CEU-W30"))
                       for c in codes(report))


# ---------------------------------------------------------------------------
# liveness pass: W302 / W303
# ---------------------------------------------------------------------------

class TestLivenessPass:
    def test_awaited_never_emitted_and_emitted_never_awaited(self):
        report = run_analysis(LISTINGS["dead_events"])
        found = codes(report)
        assert "CEU-W302" in found  # ping awaited, never emitted
        assert "CEU-W303" in found  # pong emitted, never awaited

    def test_all_locations_are_annotated(self):
        report = run_analysis("""
        input void A;
        internal void p;
        par/or do
           await p;
        with
           await p;
        with
           await A;
        end
        """)
        w302 = next(d for d in report.diagnostics
                    if d.code == "CEU-W302")
        assert len(w302.notes) == 1  # the second await, as a note
        assert w302.span.start.line == 5


# ---------------------------------------------------------------------------
# conflict pass (§2.6): all conflicts, each with a replayable witness
# ---------------------------------------------------------------------------

class _Lines(HookSubscriber):
    def __init__(self):
        self.steps = []

    def begin(self):
        self.steps.append(set())

    def on_step(self, trail, path, kind, line):
        if self.steps:
            self.steps[-1].add(line)


class TestConflictPass:
    def test_all_conflicts_reported(self):
        report = run_analysis(LISTINGS["nondet"], filename="nondet.ceu")
        conflicts = [d for d in report.diagnostics
                     if d.code == "CEU-E201"]
        # write/read, write/write, read/write on `v`
        assert len(conflicts) == 3
        assert report.exit_code == 1

    def test_witnesses_are_verified(self):
        report = run_analysis(LISTINGS["nondet"])
        for diag in report.diagnostics:
            if diag.code == "CEU-E201":
                assert diag.witness is not None
                assert diag.witness.verified is True, diag.witness.note

    def test_witness_replay_reproduces_the_conflict(self):
        """ISSUE acceptance: replaying the witness script on the VM
        executes both reported accesses in the final reaction."""
        report = run_analysis(LISTINGS["nondet"])
        diag = next(d for d in report.diagnostics
                    if d.code == "CEU-E201")
        want = {diag.span.start.line, diag.notes[0][1].start.line}
        program = Program(LISTINGS["nondet"], check=False)
        monitor = _Lines()
        program.observe(monitor)
        program.start()
        for item in diag.witness.script:
            monitor.begin()
            if item[0] == "E":
                program.send(item[1], item[2])
            else:
                program.at(item[1])
        assert want <= monitor.steps[-1]

    def test_event_conflict_is_e202(self):
        report = run_analysis("""
        input void A;
        internal int x;
        int v = 0;
        par do
           loop do
              await A;
              emit x = 1;
           end
        with
           loop do
              await A;
              emit x = 2;
           end
        with
           loop do
              v = await x;
           end
        end
        """)
        assert "CEU-E202" in codes(report)

    def test_conflicts_deduped_across_states(self):
        """The same textual access pair reachable in many DFA states
        yields one diagnostic (with the shortest witness), not one per
        state."""
        report = run_analysis("""
        input void A, B;
        int v = 0;
        await B;
        par do
           loop do
              await A;
              v = v + 1;
           end
        with
           loop do
              await A;
              v = v * 2;
           end
        end
        """)
        pairs = [(d.span.start.line, d.span.start.col,
                  d.notes[0][1].start.line, d.notes[0][1].start.col)
                 for d in report.diagnostics if d.code == "CEU-E201"]
        assert len(pairs) == len(set(pairs))
        # … and every witness routes through the mandatory leading B
        for d in report.diagnostics:
            if d.code == "CEU-E201":
                assert d.witness.labels[:2] == ["boot", "event B"]


# ---------------------------------------------------------------------------
# stuck pass: W305
# ---------------------------------------------------------------------------

class TestStuckPass:
    def test_deadlocked_state_reported(self):
        report = run_analysis(LISTINGS["stuck"])
        stuck = [d for d in report.diagnostics if d.code == "CEU-W305"]
        assert len(stuck) == 1
        assert "await forever" in stuck[0].message

    def test_live_program_not_flagged(self):
        report = run_analysis(LISTINGS["counter"])
        assert "CEU-W305" not in codes(report)


# ---------------------------------------------------------------------------
# static resource bounds
# ---------------------------------------------------------------------------

class TestBounds:
    def test_known_program_bounds(self):
        bound = bind(parse(LISTINGS["counter"]))
        dfa = build_dfa(bound)
        bounds = compute_bounds(bound, dfa)
        assert isinstance(bounds, ResourceBounds)
        # three branches + the par owner
        assert bounds.max_trails == 4
        assert bounds.max_armed_timers == 1   # the 1s loop timer
        assert bounds.max_async_jobs == 0
        assert bounds.max_internal_emits == 1  # one `changed` per wake
        assert bounds.mem_slots == 1
        assert bounds.mem_bytes_host >= 4

    def test_report_carries_bounds_payload(self):
        report = run_analysis(LISTINGS["counter"])
        note = next(d for d in report.diagnostics
                    if d.code == "CEU-I501")
        assert note.data == report.bounds.as_dict()
        assert report.bounds.dfa_states == report.dfa_states

    @pytest.mark.parametrize("path", sorted(CORPUS.glob("*.ceu")),
                             ids=lambda p: p.stem)
    def test_corpus_high_water_never_exceeds_static_bounds(self, path):
        """ISSUE acceptance: static bound >= dynamic high-water on every
        checked-in corpus program under its frozen script."""
        src = path.read_text()
        meta = json.loads(path.with_suffix(".json").read_text())
        script = [tuple(item) for item in meta["script"]]
        bound = bind(parse(src))
        bounds = compute_bounds(bound, build_dfa(bound))
        vm = run_vm(src, script, observe=True)
        assert vm.ok, vm.error
        assert bounds_violations(bounds, vm.stats) == {}


# ---------------------------------------------------------------------------
# SARIF export
# ---------------------------------------------------------------------------

class TestSarif:
    def reports(self):
        return [run_analysis(LISTINGS["nondet"], filename="nondet.ceu"),
                run_analysis(LISTINGS["dead_events"],
                             filename="dead_events.ceu")]

    def test_sarif_2_1_0_shape(self):
        doc = to_sarif(self.reports())
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        rules = driver["rules"]
        assert [r["id"] for r in rules] == sorted(RULES)
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] in ("error", "warning", "note")
            loc = result["locations"][0]["physicalLocation"]
            assert loc["artifactLocation"]["uri"]
            if "region" in loc:
                assert loc["region"]["startLine"] >= 1
                assert loc["region"]["startColumn"] >= 1

    def test_conflict_results_carry_witness_properties(self):
        doc = to_sarif([run_analysis(LISTINGS["nondet"],
                                     filename="nondet.ceu")])
        conflict = next(r for r in doc["runs"][0]["results"]
                        if r["ruleId"] == "CEU-E201")
        witness = conflict["properties"]["witness"]
        assert witness["verified"] is True
        assert witness["labels"][-1].startswith("event ")
        assert conflict["relatedLocations"]

    def test_sarif_output_is_byte_stable(self):
        """ISSUE acceptance: two runs over the same input are
        byte-identical."""
        first = sarif_json(self.reports())
        second = sarif_json(self.reports())
        assert first == second
        assert first.endswith("\n")

    def test_sarif_passes_structural_validator(self):
        """The same structural SARIF 2.1.0 checks CI applies
        (tests/check_sarif.py) hold for every corpus file."""
        from check_sarif import check_sarif
        reports = self.reports() + [
            run_analysis(path.read_text(), filename=str(path))
            for path in sorted(CORPUS.glob("*.ceu"))]
        assert check_sarif(to_sarif(reports)) == []

    def test_structural_validator_rejects_bad_documents(self):
        from check_sarif import check_sarif
        assert check_sarif({"version": "2.0.0"})
        doc = to_sarif(self.reports())
        doc["runs"][0]["results"][0]["ruleIndex"] = 999
        assert any("ruleIndex" in e for e in check_sarif(doc))


# ---------------------------------------------------------------------------
# golden snapshots
# ---------------------------------------------------------------------------

def _golden_jobs():
    jobs = [(f"listing_{name}", f"listings/{name}.ceu", src)
            for name, src in LISTINGS.items()]
    jobs += [(f"corpus_{path.stem}", f"corpus/{path.name}",
              path.read_text())
             for path in sorted(CORPUS.glob("*.ceu"))]
    return jobs


@pytest.mark.parametrize("golden,filename,src", _golden_jobs(),
                         ids=lambda v: v if isinstance(v, str)
                         and "/" not in v else "")
def test_golden_reports_match(golden, filename, src):
    expected = (GOLDENS / f"{golden}.json").read_text()
    actual = run_analysis(src, filename=filename).to_json()
    assert actual == expected, \
        f"analysis output drifted from tests/goldens/{golden}.json " \
        f"(rerun tests/mint_goldens.py if the change is deliberate)"


def test_every_golden_has_a_source():
    minted = {f"{g}.json" for g, _f, _s in _golden_jobs()}
    on_disk = {p.name for p in GOLDENS.glob("*.json")}
    assert on_disk == minted


# ---------------------------------------------------------------------------
# CLI: `repro check` accumulates, `repro lint` exports
# ---------------------------------------------------------------------------

@pytest.fixture
def ceu_file(tmp_path):
    def write(src, name="prog.ceu"):
        path = tmp_path / name
        path.write_text(src)
        return str(path)
    return write


class TestCheckCli:
    def test_check_accumulates_all_errors(self, ceu_file, capsys):
        assert main(["check", ceu_file(LISTINGS["nondet"])]) == 1
        err = capsys.readouterr().err
        assert err.count("error[CEU-E201]") == 3
        assert "nondeterminism" in err
        assert "witness" in err

    def test_check_mixes_severities(self, ceu_file, capsys):
        src = LISTINGS["tight_loop"] + "\ninternal void ghost;\n" \
            "await ghost;\n"
        assert main(["check", ceu_file(src)]) == 1
        err = capsys.readouterr().err
        assert "error[CEU-E101]" in err
        assert "warning[CEU-W302]" in err

    def test_check_locations_are_file_line_col(self, ceu_file, capsys):
        path = ceu_file(LISTINGS["nondet"])
        main(["check", path])
        assert f"{path}:6:7: " in capsys.readouterr().err

    def test_warnings_do_not_fail_check(self, ceu_file, capsys):
        assert main(["check", ceu_file(LISTINGS["dead_events"])]) == 0
        out = capsys.readouterr().out
        assert "deterministic" in out and "bounds" in out


class TestLintCli:
    def test_text_summary_line(self, ceu_file, capsys):
        assert main(["lint", ceu_file(LISTINGS["nondet"])]) == 0
        out = capsys.readouterr().out
        assert "3 error(s)" in out

    def test_strict_gates_on_errors(self, ceu_file):
        bad = ceu_file(LISTINGS["nondet"], "bad.ceu")
        good = ceu_file(LISTINGS["counter"], "good.ceu")
        assert main(["lint", "--strict", good]) == 0
        assert main(["lint", "--strict", good, bad]) == 1

    def test_json_single_file_is_an_object(self, ceu_file, capsys):
        assert main(["lint", ceu_file(LISTINGS["counter"]),
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["errors"] == 0
        assert doc["dfa"]["states"] >= 1

    def test_sarif_multiple_files_single_run(self, ceu_file, tmp_path,
                                             capsys):
        out = tmp_path / "lint.sarif"
        rc = main(["lint", ceu_file(LISTINGS["nondet"], "a.ceu"),
                   ceu_file(LISTINGS["counter"], "b.ceu"),
                   "--format", "sarif", "-o", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        uris = {r["locations"][0]["physicalLocation"]
                ["artifactLocation"]["uri"]
                for r in doc["runs"][0]["results"]}
        assert len(doc["runs"]) == 1 and len(uris) == 2

    def test_front_end_error_is_a_diagnostic_not_a_crash(self, ceu_file,
                                                         capsys):
        assert main(["lint", ceu_file("loop do")]) == 0
        assert "CEU-E001" in capsys.readouterr().out


class TestRunInputsCli:
    def test_replays_a_script_file(self, ceu_file, tmp_path, capsys):
        src = """
        input int X;
        int v = 0;
        v = await X;
        _printf("got %d\\n", v);
        return v;
        """
        script = tmp_path / "inputs.txt"
        script.write_text("# witness\nE X 7\n")
        assert main(["run", ceu_file(src), "--inputs",
                     str(script)]) == 0
        captured = capsys.readouterr()
        assert captured.out == "got 7\n"
        assert "result = 7" in captured.err

    def test_witness_script_round_trips_through_run(self, ceu_file,
                                                    tmp_path, capsys):
        """End to end: lint a racy program, take the reported witness,
        replay it through `repro run --inputs`."""
        from repro.fuzz.gen import script_text

        report = run_analysis(LISTINGS["nondet"])
        diag = next(d for d in report.diagnostics
                    if d.code == "CEU-E201")
        script = tmp_path / "witness.txt"
        script.write_text(script_text(diag.witness.script))
        assert main(["run", ceu_file(LISTINGS["nondet"]), "--inputs",
                     str(script)]) == 0
