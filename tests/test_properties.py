"""Property-based tests (hypothesis) on the core invariants:

* input-order determinism: the same program fed the same event order
  produces bit-identical traces and memory (the language's foundation);
* memory layout: variables whose lifetimes can overlap never share bytes;
* the static analyses never crash on generated programs (accept/refuse
  cleanly);
* time arithmetic round trips.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import TARGET16, build_gates, build_layout
from repro.dfa import build_dfa
from repro.fuzz.gen import RELAY_EVENTS, RELAY_PERIODS, relay_program
from repro.lang import ast, parse
from repro.lang.errors import CeuError
from repro.lang.time_units import UNIT_US, from_components, us_to_text
from repro.lang.lexer import tokenize
from repro.runtime import Program
from repro.sema import bind, check_bounded

# ---------------------------------------------------------------------------
# random program generator (deterministic programs by construction)
# ---------------------------------------------------------------------------

EVENTS = RELAY_EVENTS


@st.composite
def programs(draw):
    """Generate a deterministic-by-construction Céu program of the
    *relay* family — see :func:`repro.fuzz.gen.relay_program` (shared
    with the conformance fuzzer), which documents why the temporal
    analysis must accept every instance."""
    n_trails = draw(st.integers(1, 4))
    period = draw(st.sampled_from(RELAY_PERIODS))
    steps = [draw(st.lists(st.sampled_from(EVENTS + ["relay"]),
                           min_size=1, max_size=4))
             for _ in range(n_trails - 1)]
    return relay_program(n_trails, period, steps)


@st.composite
def input_sequences(draw):
    items = draw(st.lists(
        st.one_of(st.sampled_from(EVENTS).map(lambda e: ("ev", e)),
                  st.integers(1, 50).map(lambda ms: ("adv", ms * 1000))),
        min_size=0, max_size=12))
    return items


def _drive(src, seq):
    program = Program(src, trace=True)
    program.start()
    for kind, value in seq:
        if program.done:
            break
        if kind == "ev":
            program.send(value, 0)
        else:
            program.advance(value)
    return program


@given(programs(), input_sequences())
@settings(max_examples=60, deadline=None)
def test_input_order_determinism(src, seq):
    """§2.8: re-executing a program with the same input order must yield
    the exact same behaviour."""
    first = _drive(src, seq)
    second = _drive(src, seq)
    assert first.trace.signature() == second.trace.signature()
    assert first.sched.memory.snapshot() == second.sched.memory.snapshot()
    assert first.done == second.done


@given(programs())
@settings(max_examples=40, deadline=None)
def test_generated_programs_pass_static_analyses(src):
    bound = bind(parse(src))
    check_bounded(bound)
    dfa = build_dfa(bound, max_states=2_000)
    # per-trail variables and the relay structure keep these deterministic
    assert not dfa.conflicts, dfa.conflicts[0].message()


@given(programs())
@settings(max_examples=40, deadline=None)
def test_layout_never_overlaps_parallel_lifetimes(src):
    bound = bind(parse(src))
    layout = build_layout(bound, TARGET16)

    # all trail variables here are top-level: they coexist → no overlaps
    syms = [s for s in bound.variables]
    for i, a in enumerate(syms):
        for b in syms[i + 1:]:
            assert not layout.overlaps(a, b), (a, b)


@given(programs())
@settings(max_examples=40, deadline=None)
def test_gate_ranges_are_contiguous_and_cover_awaits(src):
    bound = bind(parse(src))
    gates = build_gates(bound)
    awaits = [n for n in bound.program.walk()
              if isinstance(n, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime))]
    assert len(gates.by_await) == len(awaits)
    for par_nid, ranges in gates.branch_ranges.items():
        flat = [x for lo, hi in ranges for x in (lo, hi) if lo <= hi]
        if flat:
            lo, hi = gates.kill_range(par_nid)
            assert lo == min(flat) and hi == max(flat)


# ---------------------------------------------------------------------------
# time arithmetic
# ---------------------------------------------------------------------------

_units = st.sampled_from(list(UNIT_US))


@given(st.dictionaries(_units, st.integers(1, 99), min_size=1))
@settings(max_examples=100, deadline=None)
def test_time_literal_value(parts):
    ordered = [(u, parts[u]) for u in ("h", "min", "s", "ms", "us")
               if u in parts]
    lit = from_components(ordered)
    assert lit.us == sum(UNIT_US[u] * n for u, n in ordered)
    # the literal re-lexes to the same value
    tok = tokenize(str(lit))[0]
    assert tok.value.us == lit.us


@given(st.integers(0, 10**13))
@settings(max_examples=100, deadline=None)
def test_us_to_text_roundtrip(us):
    text = us_to_text(us)
    if us == 0:
        assert text == "0us"
        return
    tok = tokenize(text)[0]
    assert tok.value.us == us


# ---------------------------------------------------------------------------
# robustness: random token soup never crashes the front end
# ---------------------------------------------------------------------------

@given(st.text(alphabet="abcAB_ ();=+<>/*\n\t0123456789", max_size=80))
@settings(max_examples=120, deadline=None)
def test_frontend_rejects_garbage_gracefully(text):
    try:
        bound = bind(parse(text))
        check_bounded(bound)
    except CeuError:
        pass  # a structured diagnostic is the only acceptable failure
