"""Wall-clock driving (PR 9 tentpole, ``repro.runtime.wallclock``).

The load-bearing properties:

* **virtual/real equivalence** — driving a farm through the wall-clock
  loop with a fake clock fires exactly the events a plain
  ``run_until`` fires, in the same order, with the same merged
  counters: the driver changes *when* reactions run, never *what*;
* **speed compression** — ``speed=N`` maps a virtual second onto
  ``1/N`` real seconds;
* **responsiveness** — ``stop()`` is honoured at the next bounded
  sleep slice, and ``drain()`` aligns every instance for a final
  snapshot.
"""

import threading
import time

from repro.runtime.farm import Farm
from repro.runtime.wallclock import WallClockDriver

TICKER = """
loop do
   await 250ms;
end
"""


class FakeClock:
    """A clock that only moves when someone sleeps on it."""

    def __init__(self):
        self.t = 0.0
        self.sleeps = 0

    def __call__(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.sleeps += 1
        self.t += seconds


def _driver(farm, **kw) -> tuple[WallClockDriver, FakeClock]:
    clock = FakeClock()
    kw.setdefault("speed", 1.0)
    return WallClockDriver(farm, clock=clock, sleep=clock.sleep,
                           **kw), clock


class TestVirtualRealEquivalence:
    def test_same_reactions_as_run_until(self):
        wall = Farm(TICKER, n=7, program="tick")
        WallClockDriver(wall, clock=(c := FakeClock()),
                        sleep=c.sleep).run(until_us=2_000_000)
        virt = Farm(TICKER, n=7, program="tick")
        virt.run_until(2_000_000)
        wall_snap = wall.fleet_snapshot()["merged"]["counters"]
        virt_snap = virt.fleet_snapshot()["merged"]["counters"]
        assert wall_snap["reactions_total"] == \
            virt_snap["reactions_total"]
        assert wall_snap["timers_fired_total"] == \
            virt_snap["timers_fired_total"]

    def test_until_is_exact_not_overshot(self):
        farm = Farm(TICKER, n=1, program="tick")
        driver, _ = _driver(farm)
        driver.run(until_us=1_000_000)
        driver.drain(until_us=1_000_000)
        # 4 ticks at 250ms fit in 1s; the 5th (at 1.25s) must not fire
        assert farm.sim.now == 1_000_000
        counters = farm.fleet_snapshot()["merged"]["counters"]
        assert counters["timers_fired_total"] == 4

    def test_real_elapsed_matches_speed(self):
        farm = Farm(TICKER, n=1, program="tick")
        driver, clock = _driver(farm, speed=10.0)
        driver.run(until_us=5_000_000)       # 5 virtual s at 10x
        assert 0.5 <= clock.t < 0.6          # ~0.5 real s

    def test_epoch_anchors_resumed_runs(self):
        farm = Farm(TICKER, n=1, program="tick")
        driver, clock = _driver(farm)
        driver.run(until_us=500_000)
        t_mid = clock.t
        driver.run(until_us=1_000_000)
        # second leg re-anchors at sim.now, so it only sleeps the
        # remaining half second, not a full one
        assert 0.48 <= clock.t - t_mid <= 0.62


class TestControl:
    def test_stop_breaks_an_idle_loop(self):
        farm = Farm("input void GO;\nawait GO;", n=1, program="idle")
        driver = WallClockDriver(farm, slice_s=0.01)
        thread = threading.Thread(target=driver.run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5
        while not driver.running and time.monotonic() < deadline:
            time.sleep(0.005)
        driver.stop()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert not driver.running

    def test_drain_aligns_the_fleet(self):
        farm = Farm(TICKER, n=3, program="tick")
        driver, _ = _driver(farm)
        driver.run(until_us=990_000)
        t = driver.drain(until_us=990_000)
        assert t == 990_000
        assert all(inst.program.sched.clock == inst.local(990_000)
                   for inst in farm.instances)

    def test_snapshot_carries_wallclock_block(self):
        farm = Farm(TICKER, n=2, program="tick")
        driver, _ = _driver(farm, speed=4.0)
        snap = driver.snapshot()
        assert snap["wallclock"]["speed"] == 4.0
        assert snap["wallclock"]["running"] is False
        assert "watchdog" in snap
        assert snap["merged"]["counters"]["reactions_total"] == 2

    def test_speed_must_be_positive(self):
        farm = Farm(TICKER, n=1, program="tick")
        try:
            WallClockDriver(farm, speed=0)
        except ValueError:
            pass
        else:
            raise AssertionError("speed=0 accepted")

    def test_sleep_slices_are_bounded(self):
        farm = Farm(TICKER, n=1, program="tick")
        driver, clock = _driver(farm, slice_s=0.02)
        driver.run(until_us=250_000)
        assert clock.sleeps >= 12            # 0.25s / 0.02s slices
