"""Baseline systems: the nesC kernel + four apps, MantisOS threads, occam."""

from repro.baselines import (BlinkApp, Channel, ClientApp, MantisOS,
                             NescKernel, OccamRuntime, SenseApp, ServerApp,
                             nesc_footprint)
from repro.sim.des import Rng, Simulator


class TestSimulatorKernel:
    def test_ordering(self):
        sim = Simulator()
        log = []
        sim.at(30, lambda: log.append("c"))
        sim.at(10, lambda: log.append("a"))
        sim.at(20, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_at_same_instant(self):
        sim = Simulator()
        log = []
        sim.at(5, lambda: log.append(1))
        sim.at(5, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_cancel(self):
        sim = Simulator()
        log = []
        handle = sim.at(10, lambda: log.append("x"))
        sim.cancel(handle)
        sim.run()
        assert log == []

    def test_run_until_stops(self):
        sim = Simulator()
        log = []
        sim.at(10, lambda: log.append(1))
        sim.at(30, lambda: log.append(2))
        sim.run_until(20)
        assert log == [1] and sim.now == 20

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []
        sim.at(10, lambda: sim.after(5, lambda: log.append("n")))
        sim.run()
        assert log == ["n"] and sim.now == 15

    def test_rng_deterministic_streams(self):
        a, b = Rng(5), Rng(5)
        assert [a.uniform(0, 100) for _ in range(20)] == \
            [b.uniform(0, 100) for _ in range(20)]


class TestNescApps:
    def test_blink_toggles_three_leds(self):
        app = BlinkApp()
        app.boot()
        app.run_until(2_000_000)
        values = [v for _, v in app.leds.history]
        assert len(values) >= 8 + 4 + 2
        assert app.leds.history[0] == (250_000, 1)

    def test_sense_reads_and_displays(self):
        app = SenseApp()
        app.boot()
        app.run_until(1_000_000)
        assert len(app.leds.history) >= 9
        assert 0 <= app.reading <= 1023

    def test_client_server_exchange(self):
        kernel = NescKernel()
        network = {}
        client = ClientApp(kernel, node_id=1, server_id=0)
        server = ServerApp(kernel, node_id=0)
        client.radio.join(network)
        server.radio.join(network)
        client.boot()
        server.boot()
        kernel.sim.run_until(10_000_000)
        assert server.received >= 8
        assert client.acked >= 8
        assert client.lost == 0
        assert server.forwarded >= 8   # UART forwarding (basestation)

    def test_client_retries_without_server(self):
        kernel = NescKernel()
        client = ClientApp(kernel, node_id=1, server_id=0)
        client.radio.join({})
        client.boot()
        kernel.sim.run_until(5_000_000)
        assert client.acked == 0
        assert client.lost >= 3

    def test_footprints_ordered_by_complexity(self):
        fps = [nesc_footprint(App()) for App in
               (BlinkApp, SenseApp, ClientApp, ServerApp)]
        roms = [f.rom for f in fps]
        rams = [f.ram for f in fps]
        assert roms == sorted(roms)
        assert rams[0] < rams[2] and rams[0] < rams[3]


class TestMantis:
    def test_threads_interleave(self):
        os = MantisOS(jitter_us=0)

        def worker(led):
            for _ in range(3):
                yield ("sleep", 100_000)
                yield ("toggle", led)

        t0 = os.spawn("a", worker(0))
        t1 = os.spawn("b", worker(1))
        os.run_until(1_000_000)
        assert len(t0.toggles) == 3 and len(t1.toggles) == 3

    def test_jitter_delays_sleeps(self):
        os = MantisOS(jitter_us=5_000, seed=3)

        def worker():
            while True:
                yield ("sleep", 100_000)
                yield ("toggle", 0)

        t = os.spawn("w", worker())
        os.run_until(2_000_000)
        lates = [abs(when - (i + 1) * 100_000)
                 for i, (when, _) in enumerate(t.toggles)]
        assert max(lates) > 0            # drift accumulates
        assert lates == sorted(lates) or max(lates) >= lates[0]

    def test_priority_receiver_preempts(self):
        os = MantisOS(jitter_us=0)

        def receiver():
            while True:
                yield ("recv",)
                yield ("compute", 1_000)

        def cruncher():
            while True:
                yield ("compute", 50_000)

        rx = os.spawn("rx", receiver(), priority=0)
        os.spawn("crunch", cruncher(), priority=5)
        os.run_until(5_000)
        os.radio_deliver("m1")
        os.run_until(1_000_000)
        assert [m for _, m in os.received] == ["m1"]

    def test_compute_threads_share_cpu(self):
        os = MantisOS(jitter_us=0)

        def cruncher():
            while True:
                yield ("compute", 30_000)

        a = os.spawn("a", cruncher())
        b = os.spawn("b", cruncher())
        os.run_until(1_000_000)
        assert a.cpu_us > 0 and b.cpu_us > 0
        assert abs(a.cpu_us - b.cpu_us) <= 60_000   # fair round robin


class TestOccam:
    def test_channel_rendezvous(self):
        rt = OccamRuntime(jitter_us=0)
        chan = Channel("c")
        got = []

        def producer():
            for i in range(3):
                yield ("send", chan, i)

        def consumer():
            while True:
                value = yield ("recv", chan)
                got.append(value)

        rt.spawn("p", producer())
        rt.spawn("c", consumer())
        rt.run_until(1_000)
        assert got == [0, 1, 2]

    def test_delays_fire(self):
        rt = OccamRuntime(jitter_us=0)

        def blinker():
            while True:
                yield ("delay", 100_000)
                yield ("toggle", 0)

        p = rt.spawn("b", blinker())
        rt.run_until(1_000_000)
        assert len(p.toggles) == 10

    def test_jittered_delays_drift(self):
        rt = OccamRuntime(jitter_us=2_000, seed=9)

        def blinker():
            while True:
                yield ("delay", 100_000)
                yield ("toggle", 0)

        p = rt.spawn("b", blinker())
        rt.run_until(5_000_000)
        last_t, _ = p.toggles[-1]
        ideal = len(p.toggles) * 100_000
        assert last_t > ideal            # jitter only accumulates forward
