"""Every example script must run cleanly end to end (deliverable b)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run([sys.executable, str(script)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples must narrate what they show"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "ring_network", "ship_game", "mario_replay",
            "dataflow_temperature", "blink_comparison",
            "compile_to_c"} <= names
