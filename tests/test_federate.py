"""Cross-shard federation (PR 9 tentpole, ``repro.obs.federate``).

The load-bearing properties:

* **true cross-shard percentiles** — the federator rolls shard
  snapshots through the same bucket-merge as the in-process fleet
  rollup, so the federated p99 equals ``merge_snapshots`` over the
  shards' merged registries, not an average of per-shard p99s;
* **failure is a first-class signal** — a shard that stops answering
  flips ``shard_up`` to 0, keeps its staleness growing, and never
  poisons the exposition: the remaining shards still render valid
  0.0.4 text;
* **composability** — the federated snapshot has the same shape as a
  single farm's, so ``render_prom``, ``repro top``, and a second-level
  federator all consume it unchanged.
"""

import json

import pytest

from check_prom import check_prom
from repro.obs import Federator, merge_snapshots, render_prom
from repro.runtime.farm import Farm

TICKER = """
loop do
   await 250ms;
end
"""

SLOW = """
loop do
   await 1s;
end
"""


def _shard(source: str, n: int, until_us: int) -> Farm:
    farm = Farm(source, n=n, program="tick")
    farm.run_until(until_us)
    return farm


def _fake_fetch(farms: dict):
    """A fetch that serves each farm's /snapshot JSON by URL."""
    def fetch(url: str, timeout_s: float) -> bytes:
        base = url.rsplit("/snapshot", 1)[0]
        farm = farms[base]
        if farm is None:
            raise OSError("connection refused")
        return json.dumps(farm.fleet_snapshot(), default=repr).encode()
    return fetch


class TestMergeCorrectness:
    def test_counters_sum_across_shards(self):
        a = _shard(TICKER, 3, 1_000_000)
        b = _shard(TICKER, 5, 1_000_000)
        farms = {"http://s1:9464": a, "http://s2:9464": b}
        fed = Federator(list(farms), fetch=_fake_fetch(farms))
        assert fed.scrape() == 2
        snap = fed.snapshot()
        want = (a.fleet_snapshot()["merged"]["counters"]
                ["reactions_total"]
                + b.fleet_snapshot()["merged"]["counters"]
                ["reactions_total"])
        assert snap["merged"]["counters"]["reactions_total"] == want
        assert snap["instances"] == 8
        assert snap["federated"] is True

    def test_cross_shard_p99_is_bucket_merged(self):
        a = _shard(TICKER, 4, 2_000_000)
        b = _shard(SLOW, 2, 2_000_000)
        farms = {"http://s1": a, "http://s2": b}
        fed = Federator(list(farms), fetch=_fake_fetch(farms))
        fed.scrape()
        got = fed.snapshot()["merged"]["histograms"][
            "reaction_latency_us"]
        want = merge_snapshots([a.fleet_snapshot()["merged"],
                                b.fleet_snapshot()["merged"]])[
            "histograms"]["reaction_latency_us"]
        assert got["count"] == want["count"]
        assert got["p99"] == want["p99"]
        assert got["buckets"] == want["buckets"]

    def test_farm_families_roll_up_too(self):
        a = _shard(TICKER, 3, 500_000)
        b = _shard(TICKER, 1, 500_000)
        farms = {"http://s1": a, "http://s2": b}
        fed = Federator(list(farms), fetch=_fake_fetch(farms))
        fed.scrape()
        fam = fed.snapshot()["farm"]["farm_instances_spawned_total"]
        series = {tuple(k): v for k, v in fam["series"]}
        assert series[("tick",)] == 4


class TestFailureSignals:
    def test_down_shard_is_flagged_not_fatal(self):
        a = _shard(TICKER, 3, 1_000_000)
        farms = {"http://alive:1": a, "http://dead:2": None}
        fed = Federator(list(farms), fetch=_fake_fetch(farms))
        assert fed.scrape() == 1
        snap = fed.snapshot()
        shards = snap["shards"]
        assert shards["alive:1"]["up"] is True
        assert shards["dead:2"]["up"] is False
        assert "refused" in shards["dead:2"]["error"]
        # the alive shard's data still flows
        assert snap["instances"] == 3
        text = fed.render()
        assert check_prom(text) == []
        assert 'repro_shard_up{shard="dead:2"} 0' in text
        assert 'repro_shard_up{shard="alive:1"} 1' in text

    def test_staleness_grows_while_down(self):
        a = _shard(TICKER, 2, 500_000)
        farms = {"http://s1": a}
        clock = [100.0]
        fed = Federator(list(farms), fetch=_fake_fetch(farms),
                        clock=lambda: clock[0])
        fed.scrape()
        farms["http://s1"] = None          # shard dies after one scrape
        clock[0] = 107.0
        fed.scrape(force=True)
        shards = fed.snapshot()["shards"]
        assert shards["s1"]["up"] is False
        assert shards["s1"]["staleness_s"] == pytest.approx(7.0)
        # last good snapshot is still served
        assert fed.snapshot()["instances"] == 2

    def test_scrape_metrics_are_recorded(self):
        a = _shard(TICKER, 1, 250_000)
        farms = {"http://s1": a, "http://dead": None}
        fed = Federator(list(farms), fetch=_fake_fetch(farms))
        fed.scrape()
        snap = fed.registry.snapshot()
        scrapes = {tuple(k): v for k, v in
                   snap["federation_scrapes_total"]["series"]}
        assert scrapes[("s1", "ok")] == 1
        assert scrapes[("dead", "error")] == 1
        sizes = {tuple(k): v for k, v in
                 snap["federation_scrape_bytes_total"]["series"]}
        assert sizes[("s1",)] > 100

    def test_min_interval_rate_limits(self):
        a = _shard(TICKER, 1, 250_000)
        farms = {"http://s1": a}
        calls = [0]
        base = _fake_fetch(farms)

        def counting(url, timeout_s):
            calls[0] += 1
            return base(url, timeout_s)

        clock = [0.0]
        fed = Federator(list(farms), fetch=counting, min_interval_s=10,
                        clock=lambda: clock[0])
        fed.scrape()
        fed.scrape()                       # inside the interval: no-op
        assert calls[0] == 1
        fed.scrape(force=True)             # force bypasses the limit
        assert calls[0] == 2
        clock[0] = 11.0
        fed.scrape()
        assert calls[0] == 3


class TestComposability:
    def test_federated_snapshot_renders_and_validates(self):
        a = _shard(TICKER, 2, 1_000_000)
        b = _shard(TICKER, 2, 1_000_000)
        farms = {"http://s1": a, "http://s2": b}
        fed = Federator(list(farms), fetch=_fake_fetch(farms))
        fed.scrape()
        text = render_prom(fed.snapshot())
        assert check_prom(text) == []
        assert "repro_reactions_total" in text

    def test_second_level_federation(self):
        a = _shard(TICKER, 2, 500_000)
        b = _shard(TICKER, 3, 500_000)
        farms = {"http://s1": a, "http://s2": b}
        lower = Federator(list(farms), fetch=_fake_fetch(farms))

        def upper_fetch(url, timeout_s):
            lower.scrape(force=True)
            return json.dumps(lower.snapshot(), default=repr).encode()

        upper = Federator(["http://region"], fetch=upper_fetch)
        upper.scrape()
        snap = upper.snapshot()
        assert snap["instances"] == 5
        assert snap["merged"]["counters"]["reactions_total"] == \
            lower.snapshot()["merged"]["counters"]["reactions_total"]

    def test_duplicate_shard_names_are_disambiguated(self):
        a = _shard(TICKER, 1, 250_000)
        fed = Federator(["http://s1", "http://s1"],
                        fetch=_fake_fetch({"http://s1": a}))
        fed.scrape()
        assert len(fed.snapshot()["shards"]) == 2
