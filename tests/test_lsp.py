"""The LSP server (docs/ANALYSIS.md §LSP): JSON-RPC framing, UTF-16
position bookkeeping, and the request handlers — driven in-process
through byte pipes, exactly as a real client would over stdio."""

import io
import json

from repro.lsp import Document, JsonRpcStream, LspServer
from repro.lsp.documents import uri_to_path

URI = "file:///tmp/demo.ceu"

COUNTER = """\
input int Restart;
internal void changed;
int v = 0;
par do
   loop do
      await 1s;
      v = v + 1;
      emit changed;
   end
with
   loop do
      v = await Restart;
      emit changed;
   end
end
"""


def frame(obj) -> bytes:
    body = json.dumps(obj).encode()
    return b"Content-Length: %d\r\n\r\n%s" % (len(body), body)


def run_server(*messages) -> list:
    """Feed framed messages to a fresh server; return decoded output."""
    reader = io.BytesIO(b"".join(frame(m) for m in messages))
    writer = io.BytesIO()
    server = LspServer(reader, writer)
    server.serve_forever()
    out = []
    stream = JsonRpcStream(io.BytesIO(writer.getvalue()), io.BytesIO())
    while (msg := stream.read()) is not None:
        out.append(msg)
    return out


def req(rid, method, **params):
    return {"jsonrpc": "2.0", "id": rid, "method": method,
            "params": params}


def note(method, **params):
    return {"jsonrpc": "2.0", "method": method, "params": params}


def by_id(messages, rid):
    return next(m for m in messages if m.get("id") == rid)


def published(messages):
    return [m["params"] for m in messages
            if m.get("method") == "textDocument/publishDiagnostics"]


# ----------------------------------------------------------------- framing
def test_rpc_roundtrip():
    writer = io.BytesIO()
    stream = JsonRpcStream(io.BytesIO(), writer)
    stream.notify("demo", {"x": 1})
    back = JsonRpcStream(io.BytesIO(writer.getvalue()), io.BytesIO())
    msg = back.read()
    assert msg["method"] == "demo" and msg["params"] == {"x": 1}
    assert back.read() is None         # clean EOF


def test_uri_to_path():
    assert uri_to_path("file:///tmp/a%20b.ceu") == "/tmp/a b.ceu"


# --------------------------------------------------------------- documents
def test_document_incremental_edit():
    doc = Document(URI, "abc\ndef\n", 1)
    doc.apply([{"range": {"start": {"line": 1, "character": 0},
                          "end": {"line": 1, "character": 1}},
                "text": "D"}], 2)
    assert doc.text == "abc\nDef\n"
    assert doc.version == 2


def test_document_full_sync_and_utf16():
    doc = Document(URI, "x = 1\n", 1)
    doc.apply([{"text": "y = 2\n"}], 2)      # no range: full replace
    assert doc.text == "y = 2\n"
    # astral characters count as two UTF-16 units
    doc = Document(URI, "a\U0001F600b\n", 1)
    assert doc.offset_at({"line": 0, "character": 3}) == 2
    assert doc.position_at(2) == {"line": 0, "character": 3}


# --------------------------------------------------------------- lifecycle
def test_initialize_capabilities():
    out = run_server(req(1, "initialize"),
                     req(2, "shutdown"), note("exit"))
    caps = by_id(out, 1)["result"]["capabilities"]
    assert caps["textDocumentSync"] == {"openClose": True, "change": 2}
    assert caps["hoverProvider"] and caps["definitionProvider"]
    assert by_id(out, 1)["result"]["serverInfo"]["name"] == "repro-lsp"


def test_unknown_method_errors():
    out = run_server(req(1, "initialize"), req(2, "nope/nope"),
                     req(3, "shutdown"), note("exit"))
    assert by_id(out, 2)["error"]["code"] == -32601


# ------------------------------------------------------------- diagnostics
def test_did_open_publishes_lint_codes():
    nondet = COUNTER.replace("v = await Restart;", "v = 2;\nawait 1s;")
    out = run_server(
        req(1, "initialize"),
        note("textDocument/didOpen",
             textDocument={"uri": URI, "languageId": "ceu",
                           "version": 1, "text": nondet}),
        req(2, "shutdown"), note("exit"))
    pubs = published(out)
    assert pubs and pubs[0]["uri"] == URI
    codes = {d["code"] for d in pubs[0]["diagnostics"]}
    assert "CEU-E201" in codes         # same codes as `repro lint`
    diag = next(d for d in pubs[0]["diagnostics"]
                if d["code"] == "CEU-E201")
    assert diag["severity"] == 1 and diag["source"] == "repro-lint"
    assert diag["relatedInformation"]


def test_did_change_incremental_then_close_clears():
    out = run_server(
        req(1, "initialize"),
        note("textDocument/didOpen",
             textDocument={"uri": URI, "languageId": "ceu",
                           "version": 1, "text": COUNTER}),
        note("textDocument/didChange",
             textDocument={"uri": URI, "version": 2},
             contentChanges=[{
                 "range": {"start": {"line": 2, "character": 8},
                           "end": {"line": 2, "character": 9}},
                 "text": "9"}]),       # int v = 9;
        note("textDocument/didClose", textDocument={"uri": URI}),
        req(2, "shutdown"), note("exit"))
    pubs = published(out)
    assert len(pubs) == 3              # open, change, close-clear
    assert pubs[1]["version"] == 2
    assert pubs[2]["diagnostics"] == []


def test_did_change_to_parse_error_publishes_e001():
    out = run_server(
        req(1, "initialize"),
        note("textDocument/didOpen",
             textDocument={"uri": URI, "languageId": "ceu",
                           "version": 1, "text": COUNTER}),
        note("textDocument/didChange",
             textDocument={"uri": URI, "version": 2},
             contentChanges=[{"text": COUNTER + "loop do\n"}]),
        req(2, "shutdown"), note("exit"))
    codes = {d["code"] for d in published(out)[1]["diagnostics"]}
    assert "CEU-E001" in codes


# ----------------------------------------------------------------- queries
def test_definition_resolves_to_declaration():
    # cursor on the `v` of `v = v + 1;` (line 6, col 6)
    out = run_server(
        req(1, "initialize"),
        note("textDocument/didOpen",
             textDocument={"uri": URI, "languageId": "ceu",
                           "version": 1, "text": COUNTER}),
        req(2, "textDocument/definition",
            textDocument={"uri": URI},
            position={"line": 6, "character": 6}),
        req(3, "shutdown"), note("exit"))
    result = by_id(out, 2)["result"]
    assert result["uri"] == URI
    assert result["range"]["start"]["line"] == 2   # `int v = 0;`


def test_hover_reports_trail_bounds():
    out = run_server(
        req(1, "initialize"),
        note("textDocument/didOpen",
             textDocument={"uri": URI, "languageId": "ceu",
                           "version": 1, "text": COUNTER}),
        req(2, "textDocument/hover",
            textDocument={"uri": URI},
            position={"line": 5, "character": 6}),
        req(3, "shutdown"), note("exit"))
    value = by_id(out, 2)["result"]["contents"]["value"]
    assert "trail frame:" in value and "program: trails<=" in value


def test_exit_without_shutdown_is_failure():
    reader = io.BytesIO(frame(note("exit")))
    server = LspServer(reader, io.BytesIO())
    assert server.serve_forever() == 1
