"""The structural exposition validator itself (``tests/check_prom.py``)
and its run over everything the repo emits: the farm golden, a live
fleet exposition, and a served ``/metrics`` body all validate clean —
the same gate CI applies with (or without) a real promtool.
"""

from pathlib import Path

from check_prom import check_prom
from repro.apps import load
from repro.obs import render_prom
from repro.runtime.farm import Farm

GOLDEN = Path(__file__).parent / "goldens" / "farm_blink.prom"


class TestAccepts:
    def test_minimal_counter(self):
        assert check_prom("# TYPE x_total counter\nx_total 1\n") == []

    def test_labelled_series_and_escapes(self):
        text = ('# TYPE ev_total counter\n'
                'ev_total{event="a\\"b",program="p"} 3\n'
                'ev_total{event="other",program="p"} 0\n')
        assert check_prom(text) == []

    def test_well_formed_histogram(self):
        text = ('# TYPE lat histogram\n'
                'lat_bucket{le="10"} 2\n'
                'lat_bucket{le="100"} 5\n'
                'lat_bucket{le="+Inf"} 6\n'
                'lat_sum 321\n'
                'lat_count 6\n')
        assert check_prom(text) == []

    def test_special_values_and_timestamps(self):
        text = ('# TYPE g gauge\ng NaN\n'
                '# TYPE h gauge\nh{x="1"} +Inf 1700000000\n')
        assert check_prom(text) == []

    def test_help_and_comments_ignored(self):
        text = ('# just a comment\n'
                '# HELP x_total the help text\n'
                '# TYPE x_total counter\nx_total 0\n')
        assert check_prom(text) == []


class TestRejects:
    def test_bad_metric_name(self):
        errs = check_prom("2bad 1\n")
        assert any("unparseable sample" in e for e in errs)
        errs = check_prom("# TYPE bad-name counter\nx 1\n")
        assert any("bad metric name" in e for e in errs)

    def test_bad_label_name_and_reserved(self):
        errs = check_prom('# TYPE x counter\nx{__name__="y"} 1\n')
        assert any("reserved" in e for e in errs)

    def test_duplicate_sample(self):
        errs = check_prom('# TYPE x counter\n'
                          'x{a="1"} 1\nx{a="1"} 2\n')
        assert any("duplicate sample" in e for e in errs)

    def test_duplicate_type_line(self):
        errs = check_prom("# TYPE x counter\n# TYPE x counter\nx 1\n")
        assert any("duplicate TYPE" in e for e in errs)

    def test_type_after_samples(self):
        errs = check_prom("x 1\n# TYPE x counter\n")
        assert any("after its samples" in e for e in errs)

    def test_unknown_type(self):
        errs = check_prom("# TYPE x rainbow\nx 1\n")
        assert any("unknown type" in e for e in errs)

    def test_negative_counter(self):
        errs = check_prom("# TYPE x counter\nx -1\n")
        assert any("negative" in e for e in errs)

    def test_non_cumulative_buckets(self):
        errs = check_prom('# TYPE h histogram\n'
                          'h_bucket{le="1"} 5\n'
                          'h_bucket{le="+Inf"} 3\n'
                          'h_sum 1\nh_count 3\n')
        assert any("not cumulative" in e for e in errs)

    def test_inf_bucket_must_match_count(self):
        errs = check_prom('# TYPE h histogram\n'
                          'h_bucket{le="1"} 1\n'
                          'h_bucket{le="+Inf"} 5\n'
                          'h_sum 1\nh_count 6\n')
        assert any("!= _count" in e for e in errs)

    def test_missing_inf_bucket(self):
        errs = check_prom('# TYPE h histogram\n'
                          'h_bucket{le="1"} 1\n'
                          'h_sum 1\nh_count 1\n')
        assert any("+Inf" in e for e in errs)

    def test_missing_sum_and_count(self):
        errs = check_prom('# TYPE h histogram\n'
                          'h_bucket{le="+Inf"} 1\n')
        assert any("_sum" in e for e in errs)
        assert any("_count" in e for e in errs)

    def test_bad_value(self):
        errs = check_prom("# TYPE x gauge\nx one\n")
        assert any("bad sample value" in e for e in errs)

    def test_malformed_labels(self):
        errs = check_prom('# TYPE x counter\nx{a=1} 1\n')
        assert any("malformed label" in e for e in errs)

    def test_declared_but_never_sampled(self):
        errs = check_prom("# TYPE ghost counter\n")
        assert any("never sampled" in e for e in errs)


class TestRepoExpositions:
    def test_farm_golden_validates(self):
        assert check_prom(GOLDEN.read_text()) == []

    def test_live_fleet_exposition_validates(self):
        farm = Farm(load("blink"), n=25, program="blink")
        farm.run_until(1_000_000)
        assert check_prom(render_prom(farm.fleet_snapshot())) == []
