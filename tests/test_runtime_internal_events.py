"""Internal events on the VM: the §2.2 stack policy, dataflow networks."""

from helpers import run_program
from repro.runtime import Program


class TestStackPolicy:
    def test_paper_walkthrough_exact_values(self):
        """The numbered 7-step sequence of §2.2."""
        p = run_program("""
        input void Go;
        int v1, v2, v3;
        internal void v1_evt, v2_evt, v3_evt;
        par/or do
           loop do
              await v1_evt;
              v2 = v1 + 1;
              emit v2_evt;
           end
        with
           loop do
              await v2_evt;
              v3 = v2 * 2;
              emit v3_evt;
           end
        with
           await Go;
           v1 = 10;
           emit v1_evt;
           _printf("mid %d %d %d\\n", v1, v2, v3);
           v1 = 15;
           emit v1_evt;
           _printf("end %d %d %d\\n", v1, v2, v3);
        end
        """, ("ev", "Go"))
        # after the first emit: v2=11, v3=22; after the second: v2=16, v3=32
        assert p.output() == "mid 10 11 22\nend 15 16 32\n"
        assert p.done

    def test_emitter_resumes_after_reactions(self):
        p = run_program("""
        input void Go;
        internal void e;
        int order = 0;
        par/or do
           await e;
           order = order * 10 + 1;
        with
           await Go;
           order = order * 10 + 2;
           emit e;
           order = order * 10 + 3;
        end
        return order;
        """, ("ev", "Go"))
        assert p.result == 213

    def test_emit_without_awaiters_is_discarded(self):
        p = run_program("""
        internal void e;
        emit e;
        return 1;
        """)
        assert p.result == 1

    def test_reawaiting_misses_same_emission(self):
        # a trail that awaits e only *after* the emit does not see it
        p = run_program("""
        input void Go;
        internal void e;
        int got = 0;
        par/or do
           await Go;
           await e;
           got = 1;
        with
           await Go;
           emit e;
           await 1s;
        end
        return got;
        """, ("ev", "Go"), ("adv", "2s"))
        # both trails awake on Go; the left one arms `await e` in the same
        # reaction — whether it catches the emit depends on order, which
        # is exactly why the temporal analysis refuses this program; the
        # VM's canonical order arms before the emit (registration order)
        assert p.done

    def test_event_value_passing(self):
        p = run_program("""
        input void Go;
        internal int e;
        int got;
        par/or do
           got = await e;
        with
           await Go;
           emit e = 42;
           await 1us;
        end
        return got;
        """, ("ev", "Go"))
        assert p.result == 42

    def test_mutual_dependency_terminates(self):
        p = run_program("""
        input int SetC;
        int tc, tf;
        internal void tc_evt, tf_evt;
        par do
           loop do
              await tc_evt;
              tf = 9 * tc / 5 + 32;
              emit tf_evt;
           end
        with
           loop do
              await tf_evt;
              tc = 5 * (tf - 32) / 9;
              emit tc_evt;
           end
        with
           loop do
              tc = await SetC;
              emit tc_evt;
           end
        end
        """, ("ev", "SetC", 100), ("ev", "SetC", 0))
        snap = p.sched.memory.snapshot()
        assert (snap["tc"], snap["tf"]) == (0, 32)

    def test_emit_chain_depth(self):
        # a linear chain of N dataflow trails reacts in one reaction
        n = 30
        trails = "\n".join(f"""
        with
           loop do
              await e{i};
              emit e{i + 1};
           end""" for i in range(n))
        p = run_program(f"""
        input void Go;
        internal void {', '.join(f'e{i}' for i in range(n + 1))};
        int done = 0;
        par do
           loop do
              await e{n};
              done = done + 1;
           end
        {trails}
        with
           loop do
              await Go;
              emit e0;
           end
        end
        """, ("ev", "Go"), ("ev", "Go"))
        assert p.sched.memory.snapshot()["done"] == 2

    def test_notify_only_events_carry_none(self):
        p = run_program("""
        input void Go;
        internal void changed;
        int seen = 0;
        par/or do
           loop do
              await changed;
              seen = seen + 1;
           end
        with
           await Go;
           emit changed;
           emit changed;
           await 1us;
        end
        return seen;
        """, ("ev", "Go"), ("adv", "1ms"))
        assert p.result == 2


class TestOutputEvents:
    def test_output_handler_called(self):
        p = Program("""
        output int Done;
        input void Go;
        await Go;
        emit Done = 5;
        """)
        sent = []
        p.sched.output_handler = lambda name, value: sent.append(
            (name, value))
        p.start()
        p.send("Go")
        assert sent == [("Done", 5)]
