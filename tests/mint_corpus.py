"""Regenerate the checked-in corpus (``tests/corpus/``) — run as
``PYTHONPATH=src python tests/mint_corpus.py`` from the repo root.

Scans the first 40 seeds of each edge profile, keeps only cases the
full oracle stack passes with an ``accept`` verdict, ranks them by the
profile's own notion of "edgy" (nesting depth / emit count / timer
count), and freezes the top picks with their expected outcomes.  Only
rerun this when the language semantics deliberately change; the diff is
the review artifact.
"""

import hashlib
import json
import tempfile
from pathlib import Path

from repro.fuzz import CORPUS_PROFILES, check_case
from repro.fuzz.gen import ProgramGen
from repro.fuzz.oracles import run_vm

PICKS = {"deep": 4, "emit": 3, "timer": 3}
N_SCAN = 40


def score(profile: str, src: str) -> int:
    if profile == "deep":
        return max(len(l) - len(l.lstrip()) for l in src.splitlines())
    if profile == "emit":
        return src.count("emit ")
    return src.count("ms;") + src.count("await 1")


def mint(out: Path) -> None:
    for profile, want in PICKS.items():
        ranked = []
        for seed in range(N_SCAN):
            case = ProgramGen(seed, CORPUS_PROFILES[profile],
                              profile).case()
            with tempfile.TemporaryDirectory() as tmp:
                verdict, fails = check_case(case, workdir=tmp)
            if fails or verdict != "accept":
                continue
            ranked.append((score(profile, case.src), seed, case))
        ranked.sort(key=lambda item: -item[0])
        for rank, seed, case in ranked[:want]:
            vm = run_vm(case.src, case.script)
            assert vm.ok and vm.done, (profile, seed)
            name = f"{profile}_{seed:03d}"
            (out / f"{name}.ceu").write_text(case.src + "\n")
            expected = {
                "profile": profile, "seed": seed,
                "script": [list(item) for item in case.script],
                "done": vm.done, "result": vm.result,
                "output": vm.output,
                "portable_signature": [[t, list(e)] for t, e in vm.psig],
                "signature_sha256": hashlib.sha256(
                    repr(vm.signature).encode()).hexdigest(),
            }
            (out / f"{name}.json").write_text(
                json.dumps(expected, indent=1) + "\n")
            print(f"{name}: score={rank} lines={case.src_lines()} "
                  f"script={len(case.script)} reactions={len(vm.psig)}")


if __name__ == "__main__":
    mint(Path(__file__).parent / "corpus")
