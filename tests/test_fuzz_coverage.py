"""Coverage-guided fuzzing (ISSUE 4 tentpole, ``repro.fuzz`` +
``repro.obs.coverage``): the script mutator's invariants, corpus
scheduling, campaign reporting, and the pinned guided-vs-random
comparison the ISSUE's acceptance criterion names."""

import random

from repro.fuzz import FuzzRunner, ScriptMutator, script_text
from repro.fuzz.gen import ROUND_US

QUIET = staticmethod(lambda msg: None)


def make_chain(n_awaits: int = 60) -> str:
    """The comparison target: a long unrolled await chain with periodic
    value gates.  Depth of progress is monotone in how many stimuli of
    the right shape the script supplies — exactly the landscape where a
    corpus of deep inputs mutated further (duplicate / append-tail /
    splice) beats drawing fixed-length scripts from scratch."""
    evs = ["A", "B", "C"]
    lines = ["input int A, B, C;", "int depth = 0;"]
    for i in range(n_awaits):
        lines.append(f"await {evs[i % 3]};")
        lines.append("depth = depth + 1;")
        if i and i % 10 == 0:
            lines.append(f"int g{i} = await {evs[(i + 1) % 3]};")
            lines.append(f"if g{i} == 42 then")
            lines.append("   depth = depth + 100;")
            lines.append("end")
    lines.append("return depth;")
    return "\n".join(lines)


# ----------------------------------------------------------- the mutator
class TestScriptMutator:
    def make(self, seed=0):
        return ScriptMutator(random.Random(seed))

    def assert_legal(self, script, mut):
        assert 1 <= len(script) <= mut.max_len
        clock = 0
        for item in script:
            if item[0] == "T":
                assert item[1] >= clock     # time never goes backwards
                clock = item[1]
            else:
                kind, name, value = item
                assert kind == "E" and name in mut.events
                assert isinstance(value, int)

    def test_random_scripts_are_legal(self):
        mut = self.make()
        for _ in range(50):
            self.assert_legal(mut.random_script(
                rounds=mut.rng.randrange(1, 12)), mut)

    def test_mutants_are_legal_under_heavy_iteration(self):
        mut = self.make(7)
        script = mut.random_script()
        for _ in range(300):
            script = mut.mutate(script)
            self.assert_legal(script, mut)

    def test_splice_with_donor_stays_legal(self):
        mut = self.make(3)
        a, b = mut.random_script(4), mut.random_script(9)
        for _ in range(100):
            self.assert_legal(mut.mutate(a, donor=b), mut)

    def test_mutation_is_deterministic_in_the_rng(self):
        script = self.make(5).random_script()
        out1 = self.make(11).mutate(list(script))
        out2 = self.make(11).mutate(list(script))
        assert out1 == out2

    def test_mutants_actually_differ(self):
        mut = self.make(2)
        script = mut.random_script()
        assert any(mut.mutate(script) != script for _ in range(10))

    def test_never_empty_even_from_empty(self):
        mut = self.make()
        assert mut.mutate([]) != []
        assert mut.normalize([]) == [("T", ROUND_US)]

    def test_length_cap(self):
        mut = ScriptMutator(random.Random(0), max_len=20)
        script = mut.random_script(rounds=10)
        for _ in range(200):
            script = mut.mutate(script, donor=script)
            assert len(script) <= 20

    def test_scripts_render_as_driver_text(self):
        mut = self.make()
        text = script_text(mut.random_script(3))
        assert text.splitlines()
        for line in text.splitlines():
            assert line.startswith(("E ", "T "))


# ----------------------------------------------- guided campaign plumbing
class TestGuidedCampaign:
    def test_corpus_grows_and_mutants_run(self):
        runner = FuzzRunner(seed=5, target=make_chain(30), guided=True,
                            use_c=False, log=lambda m: None)
        stats = runner.run(n=25)
        assert stats.cases == 25
        assert stats.corpus_size > 0
        assert stats.mutated > 0
        assert stats.coverage_total == len(runner.coverage) > 0
        assert not stats.failures

    def test_campaign_report_carries_coverage_growth(self, tmp_path):
        report = tmp_path / "report.jsonl"
        runner = FuzzRunner(seed=5, target=make_chain(30), guided=True,
                            use_c=False, report=str(report),
                            log=lambda m: None)
        runner.run(n=20)
        import json

        records = [json.loads(line)
                   for line in report.read_text().splitlines()]
        cov = [r for r in records if r["ev"] == "fuzz_cov"]
        assert cov
        totals = [r["total"] for r in cov]
        assert totals == sorted(totals)             # growth curve
        assert totals[-1] == runner.stats.coverage_total
        summary = [r for r in records if r["ev"] == "fuzz_summary"][-1]
        assert summary["guided"] is True
        assert summary["coverage"] == totals[-1]
        assert summary["mutated"] == runner.stats.mutated

    def test_corpus_stays_bounded(self):
        runner = FuzzRunner(seed=1, target=make_chain(30), guided=True,
                            corpus_max=3, use_c=False,
                            log=lambda m: None)
        runner.run(n=30)
        assert len(runner.corpus) <= 3

    def test_guided_generated_programs_also_work(self):
        """Guided mode without a target: coverage over generated
        programs, namespaced per program."""
        runner = FuzzRunner(seed=2, guided=True, use_c=False,
                            log=lambda m: None)
        stats = runner.run(n=8)
        assert stats.coverage_total > 0
        assert not stats.failures

    def test_deterministic_given_seed(self):
        def campaign():
            runner = FuzzRunner(seed=9, target=make_chain(30),
                                guided=True, use_c=False,
                                log=lambda m: None)
            stats = runner.run(n=15)
            return (stats.coverage_total, stats.mutated,
                    stats.corpus_size)

        assert campaign() == campaign()


# ------------------------------------------------- the acceptance pin
class TestGuidedBeatsRandom:
    def test_guided_reaches_strictly_more_coverage(self):
        """ISSUE 4 acceptance: on the same seed budget against the same
        target, coverage-guided scheduling reaches strictly more unique
        statement/edge coverage than random scheduling, with no oracle
        failures in either campaign."""
        src = make_chain(60)
        budget = 60
        random_runner = FuzzRunner(seed=1, target=src, guided=False,
                                   use_c=False, log=lambda m: None)
        random_stats = random_runner.run(n=budget)
        guided_runner = FuzzRunner(seed=1, target=src, guided=True,
                                   use_c=False, log=lambda m: None)
        guided_stats = guided_runner.run(n=budget)
        assert not random_stats.failures
        assert not guided_stats.failures
        assert guided_stats.coverage_total > random_stats.coverage_total
        # and the advantage is the corpus: deep inputs were kept + reused
        assert guided_stats.corpus_size > 0
        assert guided_stats.mutated > 0
