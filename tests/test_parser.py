"""Parser unit tests over the Appendix-A grammar."""

import pytest

from repro.lang import ast, parse, parse_expression
from repro.lang.errors import ParseError


def single(src: str) -> ast.Stmt:
    program = parse(src)
    assert len(program.body.stmts) == 1
    return program.body.stmts[0]


class TestDeclarations:
    def test_input_event(self):
        s = single("input int Restart;")
        assert isinstance(s, ast.DeclEvent)
        assert s.kind == "input" and s.names == ["Restart"]
        assert str(s.type) == "int"

    def test_input_multiple(self):
        s = single("input void A, B, C;")
        assert s.names == ["A", "B", "C"]

    def test_internal_event(self):
        s = single("internal void changed;")
        assert s.kind == "internal" and s.names == ["changed"]

    def test_input_event_must_be_uppercase(self):
        with pytest.raises(ParseError):
            parse("input void lower;")

    def test_internal_event_must_be_lowercase(self):
        with pytest.raises(ParseError):
            parse("internal void Upper;")

    def test_var_decl_with_init(self):
        s = single("int v = 0;")
        assert isinstance(s, ast.DeclVar)
        assert s.decls[0].name == "v"
        assert isinstance(s.decls[0].init, ast.Num)

    def test_var_decl_multiple(self):
        s = single("int v1, v2, v3;")
        assert [d.name for d in s.decls] == ["v1", "v2", "v3"]

    def test_vector_decl(self):
        s = single("int[10] keys;")
        assert isinstance(s.array, ast.Num) and s.array.value == 10

    def test_pointer_type_decl(self):
        program = parse("input _message_t* Radio_receive;")
        decl = program.body.stmts[0]
        assert decl.type.pointers == 1
        assert decl.type.name == "_message_t"

    def test_decl_with_await_init(self):
        program = parse("input int X;\nint v = await X;")
        decl = program.body.stmts[1]
        assert isinstance(decl.decls[0].init, ast.AwaitExt)

    def test_pure_and_deterministic(self):
        program = parse("pure _abs;\ndeterministic _a, _b;")
        assert isinstance(program.body.stmts[0], ast.PureDecl)
        det = program.body.stmts[1]
        assert det.names == ["_a", "_b"]


class TestAwaitEmit:
    def test_await_forms(self):
        program = parse("""
            input void A;
            internal void e;
            await A;
            await e;
            await 10ms;
            await (x * 2);
            await forever;
        """)
        forms = [type(s).__name__ for s in program.body.stmts[2:]]
        assert forms == ["AwaitExt", "AwaitInt", "AwaitTime", "AwaitExp",
                         "AwaitForever"]

    def test_emit_internal_with_value(self):
        program = parse("internal int e;\nemit e = 42;")
        emit = program.body.stmts[1]
        assert isinstance(emit, ast.EmitInt)
        assert emit.value.value == 42

    def test_emit_external_inside_async_syntax(self):
        program = parse("input int Seed;\nasync do\nemit Seed = 1;\nend")
        asy = program.body.stmts[1]
        assert isinstance(asy.body.stmts[0], ast.EmitExt)

    def test_emit_time(self):
        program = parse("async do\nemit 1h35min;\nend")
        emit = program.body.stmts[0].body.stmts[0]
        assert isinstance(emit, ast.EmitTime)
        assert emit.time.us == 5_700_000_000


class TestControlFlow:
    def test_if_else(self):
        s = single("if x then\nnothing;\nelse\nnothing;\nend")
        assert isinstance(s, ast.If) and s.orelse is not None

    def test_else_block_with_nested_if(self):
        # Appendix A: `else` takes a full Block — nested ifs close their
        # own `end` (there is no else-if chain sugar)
        s = single("""
        if a then
           nothing;
        else
           if b then
              nothing;
           end
        end
        """)
        nested = s.orelse.stmts[0]
        assert isinstance(nested, ast.If)

    def test_loop_and_break(self):
        s = single("loop do\nbreak;\nend")
        assert isinstance(s, ast.Loop)
        assert isinstance(s.body.stmts[0], ast.Break)

    def test_par_modes(self):
        for kw, mode in [("par", "par"), ("par/or", "or"),
                         ("par/and", "and")]:
            s = single(f"{kw} do\nnothing;\nwith\nnothing;\nend")
            assert isinstance(s, ast.ParStmt) and s.mode == mode

    def test_par_three_branches(self):
        s = single("par do\nnothing;\nwith\nnothing;\nwith\nnothing;\nend")
        assert len(s.blocks) == 3

    def test_return_with_value(self):
        s = single("return v + 1;")
        assert isinstance(s, ast.Return)
        assert isinstance(s.value, ast.Binop)

    def test_bare_return(self):
        s = single("return;")
        assert s.value is None

    def test_do_block(self):
        s = single("do\nnothing;\nend")
        assert isinstance(s, ast.DoBlock)

    def test_assignment_from_par(self):
        program = parse("""
        int v;
        v = par do
           return 1;
        with
           return 0;
        end;
        """)
        assign = program.body.stmts[1]
        assert isinstance(assign.value, ast.ParStmt)

    def test_assignment_from_async(self):
        program = parse("int r;\nr = async do\nreturn 1;\nend;")
        assert isinstance(program.body.stmts[1].value, ast.AsyncBlock)

    def test_call_stmt(self):
        s = single("call f(1);")
        assert isinstance(s, ast.CallStmt)

    def test_c_call_stmt(self):
        s = single("_printf(\"x\");")
        assert isinstance(s, ast.CCallStmt)

    def test_semicolons_optional_after_end(self):
        parse("loop do\nbreak;\nend\nloop do\nbreak;\nend")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_precedence_matches_c(self):
        e = parse_expression("a || b && c | d ^ e & f == g < h << i + j * k")
        assert e.op == "||"

    def test_left_associativity(self):
        e = parse_expression("10 - 4 - 3")
        assert e.op == "-" and e.left.op == "-"

    def test_unary_chain(self):
        e = parse_expression("!*&x")
        assert e.op == "!" and e.operand.op == "*" and \
            e.operand.operand.op == "&"

    def test_index_chain(self):
        e = parse_expression("_MAP[ship][step]")
        assert isinstance(e, ast.Index) and isinstance(e.base, ast.Index)

    def test_field_access(self):
        e = parse_expression("_lcd.setCursor")
        assert isinstance(e, ast.FieldAccess) and not e.arrow

    def test_arrow_access(self):
        e = parse_expression("p->next")
        assert e.arrow

    def test_method_call(self):
        e = parse_expression("_lcd.setCursor(0, ship)")
        assert isinstance(e, ast.CallExp)
        assert isinstance(e.func, ast.FieldAccess)

    def test_cast(self):
        e = parse_expression("<int> x")
        assert isinstance(e, ast.Cast) and str(e.type) == "int"

    def test_cast_vs_comparison(self):
        e = parse_expression("a < b > c")   # comparison chain, not a cast
        assert isinstance(e, ast.Binop)

    def test_sizeof(self):
        e = parse_expression("sizeof <u16>")
        assert isinstance(e, ast.SizeOf)

    def test_null(self):
        assert isinstance(parse_expression("null"), ast.Null)

    def test_parenthesized(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_modulo(self):
        e = parse_expression("(_TOS_NODE_ID + 1) % 3")
        assert e.op == "%"


class TestParseErrors:
    @pytest.mark.parametrize("src", [
        "loop do",                       # unterminated
        "par do nothing; end",           # single-branch par
        "if x nothing; end",             # missing then
        "await;",                        # malformed await
        "emit;",                         # malformed emit
        "1 + 2;",                        # expression statement
        "end",                           # stray end
        "x = ;",                         # missing rhs
    ])
    def test_refused(self, src):
        with pytest.raises(ParseError):
            parse(src)


class TestNodeInfrastructure:
    def test_walk_covers_children(self):
        program = parse("int v = 1;\nloop do\nv = v + 1;\nbreak;\nend")
        kinds = {type(n).__name__ for n in program.walk()}
        assert {"Program", "Block", "DeclVar", "Loop", "Assign",
                "Break"} <= kinds

    def test_nids_unique(self):
        program = parse("int a;\nint b;\nint c;")
        nids = [n.nid for n in program.walk()]
        assert len(nids) == len(set(nids))

    def test_spans_merge(self):
        program = parse("int v = 1 + 2;")
        decl = program.body.stmts[0]
        assert decl.span.start.line == 1
