"""Parallel compositions on the VM: rejoin modes, kills, escapes, values."""

from helpers import run_program


class TestParAnd:
    def test_waits_for_all(self):
        p = run_program("""
        input void A, B;
        int x = 0;
        par/and do
           await A;
           x = x + 1;
        with
           await B;
           x = x + 10;
        end
        return x;
        """, ("ev", "A"))
        assert not p.done
        p.send("B")
        assert p.done and p.result == 11

    def test_instant_branch(self):
        p = run_program("""
        input void A;
        int x = 0;
        par/and do
           await A;
           x = x + 1;
        with
           x = x + 10;
        end
        return x;
        """, ("ev", "A"))
        assert p.result == 11

    def test_three_branches(self):
        p = run_program("""
        input void A, B, C;
        par/and do
           await A;
        with
           await B;
        with
           await C;
        end
        return 1;
        """, ("ev", "C"), ("ev", "A"), ("ev", "B"))
        assert p.done


class TestParOr:
    def test_first_termination_wins(self):
        p = run_program("""
        input void A, B;
        int x = 0;
        par/or do
           await A;
           x = 1;
        with
           await B;
           x = 2;
        end
        return x;
        """, ("ev", "B"))
        assert p.result == 2

    def test_siblings_killed(self):
        p = run_program("""
        input void A, B;
        int x = 0;
        par/or do
           await A;
        with
           loop do
              await B;
              x = x + 1;
           end
        end
        await B;
        await B;
        return x;
        """, ("ev", "B"), ("ev", "A"), ("ev", "B"), ("ev", "B"))
        assert p.done and p.result == 1

    def test_simultaneous_terminations_all_execute(self):
        # §2.1: both trails react before the composition rejoins
        p = run_program("""
        input void A;
        int x = 0;
        par/or do
           await A;
           x = x + 1;
        with
           await A;
           x = x + 10;
        end
        return x;
        """, ("ev", "A"))
        assert p.result == 11

    def test_continuation_runs_once(self):
        p = run_program("""
        input void A;
        int n = 0;
        loop do
           par/or do
              await A;
           with
              await A;
           end
           n = n + 1;
           if n == 2 then
              break;
           end
        end
        return n;
        """, ("ev", "A"), ("ev", "A"))
        assert p.result == 2

    def test_watchdog_restart_archetype(self):
        p = run_program("""
        input void Done;
        int restarts = 0;
        int finished = 0;
        loop do
           par/or do
              await Done;
              finished = 1;
              break;
           with
              await 100ms;
              restarts = restarts + 1;
           end
        end
        return restarts * 10 + finished;
        """, ("adv", "250ms"), ("ev", "Done"))
        assert p.result == 21  # two timeouts, then completion

    def test_nested_or_kill_cancels_inner_timers(self):
        p = run_program("""
        int n = 0;
        par/or do
           par/and do
              await 10ms;
              n = n + 1;
           with
              await 20ms;
              n = n + 2;
           end
        with
           await 15ms;
           n = n + 100;
        end
        return n;
        """, ("at", "1s"))
        assert p.result == 101


class TestValueParsAndEscapes:
    def test_return_value_from_par(self):
        p = run_program("""
        input void K, T;
        int v;
        v = par do
           await K;
           return 1;
        with
           await T;
           return 2;
        end;
        return v * 10;
        """, ("ev", "T"))
        assert p.result == 20

    def test_return_from_do_block(self):
        p = run_program("int v;\nv = do\nreturn 5;\nend;\nreturn v + 1;")
        assert p.result == 6

    def test_do_block_fallthrough_yields_zero(self):
        p = run_program("int v = 9;\nv = do\nnothing;\nend;\nreturn v;")
        assert p.result == 0

    def test_break_crossing_par_kills_sibling(self):
        p = run_program("""
        input void A, B;
        int n = 0;
        loop do
           par do
              await A;
              break;
           with
              loop do
                 await B;
                 n = n + 100;
              end
           end
        end
        n = n + 1;
        return n;
        """, ("ev", "B"), ("ev", "A"))
        assert p.done and p.result == 101

    def test_return_through_two_pars(self):
        p = run_program("""
        input void A;
        int v;
        v = par do
           par do
              await A;
              return 7;
           with
              await forever;
           end
           return 0;
        with
           await forever;
        end;
        return v;
        """, ("ev", "A"))
        assert p.result == 7

    def test_return_into_do_through_par(self):
        p = run_program("""
        input void A;
        int v;
        v = do
           par do
              await A;
              return 3;
           with
              await forever;
           end
        end;
        return v + 1;
        """, ("ev", "A"))
        assert p.result == 4

    def test_plain_par_branch_completion_halts_forever(self):
        # §2.1: a terminating trail of a plain `par` halts forever
        p = run_program("""
        input void A;
        int n = 0;
        par do
           await A;
           n = n + 1;
        with
           loop do
              await A;
              n = n + 10;
           end
        end
        """, ("ev", "A"), ("ev", "A"))
        assert not p.done
        snap = p.sched.memory.snapshot()
        assert snap["n"] == 21

    def test_program_return_from_deep_nesting(self):
        p = run_program("""
        input void A;
        par do
           par do
              await A;
              return 99;
           with
              await forever;
           end
        with
           await forever;
        end
        """, ("ev", "A"))
        assert p.done and p.result == 99


class TestAppSwitchPattern:
    def test_switch_restarts_composition(self):
        p = run_program("""
        input int Switch;
        input void Tick;
        int cur_app = 1;
        int log = 0;
        loop do
           par/or do
              cur_app = await Switch;
           with
              if cur_app == 1 then
                 loop do
                    await Tick;
                    log = log + 1;
                 end
              end
              if cur_app == 2 then
                 loop do
                    await Tick;
                    log = log + 100;
                 end
              end
              await forever;
           end
        end
        """, ("ev", "Tick"), ("ev", "Tick"), ("ev", "Switch", 2),
            ("ev", "Tick"), ("ev", "Switch", 3), ("ev", "Tick"))
        assert p.sched.memory.snapshot()["log"] == 102
        assert not p.done
