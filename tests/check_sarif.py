"""Structural SARIF 2.1.0 validator for `repro lint --sarif` output.

Checks the invariants the SARIF 2.1.0 schema would enforce on the
subset of the format we emit — required properties, enum values,
1-based region coordinates, rule-index consistency — without needing
``jsonschema`` installed.  Dual use:

* imported by the test suite (``test_sarif_structure`` below runs as
  part of tier-1);
* run as a script in CI as the fallback when the real schema validator
  is unavailable: ``python tests/check_sarif.py report.sarif [...]``.
"""

import json
import sys

_LEVELS = {"error", "warning", "note", "none"}


def _err(errors, path, message):
    errors.append(f"{path}: {message}")


def _check_region(errors, path, region):
    if not isinstance(region, dict):
        _err(errors, path, "region must be an object")
        return
    for key in ("startLine", "startColumn", "endLine", "endColumn"):
        if key in region:
            value = region[key]
            if not isinstance(value, int) or value < 1:
                _err(errors, f"{path}.{key}",
                     f"must be a positive integer, got {value!r}")
    if "startLine" not in region:
        _err(errors, path, "region requires startLine")
    if ("endLine" in region and "startLine" in region
            and region["endLine"] < region["startLine"]):
        _err(errors, path, "endLine precedes startLine")


def _check_location(errors, path, loc):
    if not isinstance(loc, dict):
        _err(errors, path, "location must be an object")
        return
    physical = loc.get("physicalLocation")
    if not isinstance(physical, dict):
        _err(errors, path, "physicalLocation required")
        return
    artifact = physical.get("artifactLocation")
    if not isinstance(artifact, dict) or not isinstance(
            artifact.get("uri"), str):
        _err(errors, f"{path}.physicalLocation",
             "artifactLocation.uri (string) required")
    if "region" in physical:
        _check_region(errors, f"{path}.physicalLocation.region",
                      physical["region"])


def _check_result(errors, path, result, rules):
    if not isinstance(result, dict):
        _err(errors, path, "result must be an object")
        return
    message = result.get("message")
    if not isinstance(message, dict) or not isinstance(
            message.get("text"), str):
        _err(errors, path, "message.text (string) required")
    level = result.get("level")
    if level is not None and level not in _LEVELS:
        _err(errors, f"{path}.level", f"invalid level {level!r}")
    rule_id = result.get("ruleId")
    if rule_id is not None and not isinstance(rule_id, str):
        _err(errors, f"{path}.ruleId", "must be a string")
    index = result.get("ruleIndex")
    if index is not None:
        if not isinstance(index, int) or not 0 <= index < len(rules):
            _err(errors, f"{path}.ruleIndex",
                 f"{index!r} out of range for {len(rules)} rules")
        elif rule_id is not None and rules[index].get("id") != rule_id:
            _err(errors, f"{path}.ruleIndex",
                 f"points at rule {rules[index].get('id')!r}, "
                 f"result says {rule_id!r}")
    locations = result.get("locations", [])
    if not isinstance(locations, list):
        _err(errors, f"{path}.locations", "must be an array")
        locations = []
    for i, loc in enumerate(locations):
        _check_location(errors, f"{path}.locations[{i}]", loc)
    for i, loc in enumerate(result.get("relatedLocations", [])):
        _check_location(errors, f"{path}.relatedLocations[{i}]", loc)


def check_sarif(doc) -> list:
    """Return a list of human-readable violations (empty = valid)."""
    errors: list = []
    if not isinstance(doc, dict):
        return ["document must be a JSON object"]
    if doc.get("version") != "2.1.0":
        _err(errors, "version", f"must be '2.1.0', got "
                                f"{doc.get('version')!r}")
    schema = doc.get("$schema", "")
    if "sarif" not in schema:
        _err(errors, "$schema", f"does not look like SARIF: {schema!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs: non-empty array required"]
    for ri, run in enumerate(runs):
        path = f"runs[{ri}]"
        if not isinstance(run, dict):
            _err(errors, path, "run must be an object")
            continue
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not isinstance(
                driver.get("name"), str):
            _err(errors, path, "tool.driver.name (string) required")
            driver = {}
        rules = driver.get("rules", [])
        if not isinstance(rules, list):
            _err(errors, f"{path}.tool.driver.rules", "must be an array")
            rules = []
        for i, rule in enumerate(rules):
            rpath = f"{path}.tool.driver.rules[{i}]"
            if not isinstance(rule, dict) or not isinstance(
                    rule.get("id"), str):
                _err(errors, rpath, "rule id (string) required")
                continue
            level = rule.get("defaultConfiguration", {}).get("level")
            if level is not None and level not in _LEVELS:
                _err(errors, rpath, f"invalid default level {level!r}")
        results = run.get("results", [])
        if not isinstance(results, list):
            _err(errors, f"{path}.results", "must be an array")
            results = []
        for i, result in enumerate(results):
            _check_result(errors, f"{path}.results[{i}]", result, rules)
    return errors


def main(argv) -> int:
    status = 0
    for path in argv:
        with open(path, "rb") as handle:
            doc = json.load(handle)
        errors = check_sarif(doc)
        for message in errors:
            print(f"{path}: {message}")
        if errors:
            status = 1
        else:
            print(f"{path}: OK "
                  f"({sum(len(r.get('results', [])) for r in doc['runs'])}"
                  f" results)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
