"""Structural Prometheus text-exposition (0.0.4) validator.

Checks the invariants ``promtool check metrics`` would enforce on the
subset of the format we emit — metric/label name syntax, ``# TYPE``
before the first sample and at most once per family, no duplicate
(name, labelset) samples, histogram bucket cumulativity and the
``+Inf`` bucket matching ``_count`` — without needing promtool
installed.  Dual use:

* imported by the test suite (``tests/test_check_prom.py`` runs it as
  part of tier-1, over the farm golden exposition and live ``/metrics``
  bodies);
* run as a script in CI as the fallback when promtool is unavailable:
  ``python tests/check_prom.py metrics.prom [...]``.
"""

import re
import sys

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")
_LABEL_PAIR = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"')
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
_SUFFIXES = ("_bucket", "_sum", "_count")


def _base_name(name, types):
    """The family a sample belongs to: strip histogram/summary suffixes
    when (and only when) the stripped name was TYPE-declared."""
    for suffix in _SUFFIXES:
        if name.endswith(suffix) and name[:-len(suffix)] in types:
            return name[:-len(suffix)]
    return name


def _parse_value(raw):
    if raw in ("+Inf", "Inf"):
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    return float(raw)  # raises ValueError on junk


def _parse_labels(errors, lineno, raw):
    """Parse ``a="b",c="d"`` into a sorted tuple; record violations."""
    pairs = []
    rest = raw
    while rest:
        match = _LABEL_PAIR.match(rest)
        if match is None:
            errors.append(f"line {lineno}: malformed label syntax "
                          f"at {rest[:30]!r}")
            return tuple(pairs)
        name = match.group("name")
        if not _LABEL_NAME.match(name):
            errors.append(f"line {lineno}: bad label name {name!r}")
        if name.startswith("__"):
            errors.append(f"line {lineno}: label {name!r} is reserved "
                          f"(double underscore)")
        pairs.append((name, match.group("value")))
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            errors.append(f"line {lineno}: expected ',' between labels "
                          f"at {rest[:30]!r}")
            return tuple(pairs)
    names = [n for n, _ in pairs]
    if len(names) != len(set(names)):
        errors.append(f"line {lineno}: duplicate label name")
    return tuple(sorted(pairs))


def _check_histogram(errors, family, series):
    """Bucket cumulativity, +Inf == _count, _sum/_count present."""
    for labelset, h in sorted(series.items()):
        where = f"histogram {family}" + (
            "{" + ",".join(f'{n}="{v}"' for n, v in labelset) + "}"
            if labelset else "")
        buckets = h.get("buckets", [])
        if not buckets:
            errors.append(f"{where}: no _bucket samples")
            continue
        prev = None
        for le, value in buckets:
            if prev is not None and value < prev:
                errors.append(f"{where}: bucket le={le} count {value} "
                              f"below previous {prev} (not cumulative)")
            prev = value
        bounds = [le for le, _ in buckets]
        if sorted(bounds) != bounds:
            errors.append(f"{where}: bucket bounds out of order")
        if bounds and bounds[-1] != float("inf"):
            errors.append(f"{where}: missing le=\"+Inf\" bucket")
        if "count" not in h:
            errors.append(f"{where}: missing _count sample")
        elif bounds and bounds[-1] == float("inf") \
                and buckets[-1][1] != h["count"]:
            errors.append(f"{where}: +Inf bucket {buckets[-1][1]} != "
                          f"_count {h['count']}")
        if "sum" not in h:
            errors.append(f"{where}: missing _sum sample")


def check_prom(text) -> list:
    """Return a list of human-readable violations (empty = valid)."""
    errors: list = []
    types: dict = {}           # family -> declared type
    seen_samples: set = set()  # (name, labelset) uniqueness
    families_sampled: set = set()
    histograms: dict = {}      # family -> {labelset(no le) -> data}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line != line.strip():
            if line.startswith(" ") or line.startswith("\t"):
                errors.append(f"line {lineno}: leading whitespace")
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                continue       # free-form comment
            if parts[1] == "TYPE":
                if len(parts) < 4:
                    errors.append(f"line {lineno}: malformed TYPE line")
                    continue
                family, kind = parts[2], parts[3].strip()
                if not _METRIC_NAME.match(family):
                    errors.append(f"line {lineno}: bad metric name "
                                  f"{family!r}")
                if kind not in _TYPES:
                    errors.append(f"line {lineno}: unknown type "
                                  f"{kind!r}")
                if family in types:
                    errors.append(f"line {lineno}: duplicate TYPE for "
                                  f"{family}")
                if family in families_sampled:
                    errors.append(f"line {lineno}: TYPE for {family} "
                                  f"after its samples")
                types[family] = kind
            continue
        match = _SAMPLE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample "
                          f"{line[:60]!r}")
            continue
        name = match.group("name")
        if not _METRIC_NAME.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
        labels = _parse_labels(errors, lineno,
                               match.group("labels") or "")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: bad sample value "
                          f"{match.group('value')!r}")
            continue
        key = (name, labels)
        if key in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {name}"
                          f"{dict(labels)!r}")
        seen_samples.add(key)
        family = _base_name(name, types)
        families_sampled.add(family)
        kind = types.get(family)
        if kind == "counter" and value == value and value < 0:
            errors.append(f"line {lineno}: counter {name} is negative")
        if kind == "histogram":
            bare = tuple(p for p in labels if p[0] != "le")
            data = histograms.setdefault(family, {}).setdefault(
                bare, {"buckets": []})
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {lineno}: _bucket without "
                                  f"le label")
                else:
                    data["buckets"].append((_parse_value(le), value))
            elif name.endswith("_sum"):
                data["sum"] = value
            elif name.endswith("_count"):
                data["count"] = value
            else:
                errors.append(f"line {lineno}: sample {name} on "
                              f"histogram family without "
                              f"_bucket/_sum/_count suffix")

    for family, series in sorted(histograms.items()):
        _check_histogram(errors, family, series)
    for family in sorted(set(types) - families_sampled):
        errors.append(f"TYPE {family} declared but never sampled")
    return errors


def main(argv) -> int:
    status = 0
    for path in argv:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        errors = check_prom(text)
        for message in errors:
            print(f"{path}: {message}")
        if errors:
            status = 1
        else:
            samples = sum(1 for line in text.splitlines()
                          if line.strip() and not line.startswith("#"))
            print(f"{path}: OK ({samples} samples)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
