"""Unit tests for the value model (C semantics) and the C environment."""

import pytest

from repro.lang.errors import RuntimeCeuError
from repro.runtime.cenv import CEnv, Rand, _c_format
from repro.runtime.values import (CellRef, FuncRef, ItemRef, c_div, c_mod,
                                  deref_get, deref_set, truthy)


class TestCArithmetic:
    @pytest.mark.parametrize("a,b,q", [
        (7, 2, 3), (-7, 2, -3), (7, -2, -3), (-7, -2, 3), (0, 5, 0),
        (9, 3, 3), (-9, 3, -3),
    ])
    def test_div_truncates_toward_zero(self, a, b, q):
        assert c_div(a, b) == q

    @pytest.mark.parametrize("a,b", [(7, 2), (-7, 2), (7, -2), (-7, -2),
                                     (13, 5), (-13, 5)])
    def test_div_mod_identity(self, a, b):
        assert c_div(a, b) * b + c_mod(a, b) == a

    def test_division_by_zero(self):
        with pytest.raises(RuntimeCeuError):
            c_div(1, 0)
        with pytest.raises(RuntimeCeuError):
            c_mod(1, 0)

    def test_truthiness(self):
        assert not truthy(0) and not truthy(None)
        assert truthy(1) and truthy(-1) and truthy("x")
        assert truthy(object())


class TestRefs:
    def test_cell_ref(self):
        store = {"k": 1}
        ref = CellRef(store, "k")
        assert ref.get() == 1
        ref.set(9)
        assert store["k"] == 9

    def test_item_ref(self):
        seq = [0, 1, 2]
        ref = ItemRef(seq, 1)
        ref.set(7)
        assert seq == [0, 7, 2]

    def test_func_ref(self):
        box = [0]
        ref = FuncRef(lambda: box[0], lambda v: box.__setitem__(0, v))
        ref.set(4)
        assert ref.get() == 4 and box == [4]

    def test_deref_protocol(self):
        seq = [5]
        ref = ItemRef(seq, 0)
        assert deref_get(ref) == 5
        deref_set(ref, 6)
        assert seq == [6]
        with pytest.raises(RuntimeCeuError):
            deref_get(42)
        with pytest.raises(RuntimeCeuError):
            deref_set(42, 1)


class TestCEnv:
    def test_parent_chain_lookup(self):
        parent = CEnv()
        parent.define("X", 1)
        child = CEnv(parent)
        assert child.lookup("X") == 1
        child.define("X", 2)
        assert child.lookup("X") == 2 and parent.lookup("X") == 1

    def test_assign_finds_owner(self):
        parent = CEnv()
        parent.define("G", 1)
        child = CEnv(parent)
        child.assign("G", 5)
        assert parent.lookup("G") == 5

    def test_assign_unknown_defines(self):
        env = CEnv()
        env.assign("NEW", 3)
        assert env.lookup("NEW") == 3

    def test_stdout_shared_with_children(self):
        parent = CEnv()
        child = CEnv(parent)
        child.call("printf", ("hi %d\n", 1))
        assert parent.output() == "hi 1\n"

    def test_lookup_missing(self):
        with pytest.raises(RuntimeCeuError):
            CEnv().lookup("nope")

    def test_call_non_callable(self):
        env = CEnv()
        env.define("K", 3)
        with pytest.raises(RuntimeCeuError):
            env.call("K", ())

    def test_rand_is_c89_reference(self):
        rng = Rand()
        rng.srand(1)
        first = [rng.rand() for _ in range(3)]
        rng.srand(1)
        assert [rng.rand() for _ in range(3)] == first
        assert all(0 <= x <= Rand.RAND_MAX for x in first)


class TestPrintf:
    @pytest.mark.parametrize("fmt,args,expected", [
        ("%d", (42,), "42"),
        ("%i + %u", (1, 2), "1 + 2"),
        ("%s!", ("hi",), "hi!"),
        ("%c%c", (104, 105), "hi"),
        ("%x", (255,), "ff"),
        ("%%", (), "%"),
        ("%5d|", (42,), "   42|"),
        ("%-5d|", (42,), "42   |"),
        ("plain", (), "plain"),
    ])
    def test_formats(self, fmt, args, expected):
        assert _c_format(fmt, args) == expected

    def test_missing_args_leave_tail(self):
        # fewer args than specs: the spec is dropped, not crashed
        assert _c_format("%d %d", (1,)) == "1 "
