"""Streaming telemetry: bounded-memory JSONL export and the flight
recorder (ISSUE 4 tentpole, ``repro.obs.stream``).

The load-bearing properties:

* **byte identity** — the streaming exporter's output is byte-for-byte
  the buffered :class:`JsonlExporter`'s for the same event stream (both
  subscribe to the same bus, so the comparison is exact, not stochastic);
* **bounded memory** — resident record count never exceeds the flush
  threshold (or the ring size for the flight recorder), pinned over a
  ≥100k-event DES run (the ISSUE's acceptance criterion);
* **rotation** — concatenating the generations reproduces the full
  stream, with true global ``seq`` numbers throughout.
"""

import json

import pytest

from repro.obs import (HOOK_EVENTS, FlightRecorder, JsonlExporter,
                       StreamingJsonlExporter)
from repro.obs.hooks import HookBus
from repro.runtime import Program
from repro.sim.des import Simulator

SRC = """
input void A;
internal void e;
int v = 0;
par do
   loop do
      await A;
      v = v + 1;
      emit e;
   end
with
   loop do
      await e;
      v = v + 10;
   end
end
"""


def run_with(subscribers, events=10):
    program = Program(SRC)
    for sub in subscribers:
        program.observe(sub)
    program.start()
    for _ in range(events):
        program.send("A")


# ----------------------------------------------------------- byte identity
class TestByteIdentity:
    def test_streaming_matches_buffered_exactly(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        buffered = JsonlExporter()
        with StreamingJsonlExporter(path, flush_every=7) as streaming:
            run_with([buffered, streaming])
        buf_path = tmp_path / "buffered.jsonl"
        buffered.write(buf_path)
        assert path.read_bytes() == buf_path.read_bytes()
        assert len(path.read_text().splitlines()) == \
            len(buffered.records) > 0

    def test_flight_recorder_lines_match_buffered_tail(self, tmp_path):
        buffered = JsonlExporter()
        recorder = FlightRecorder(maxlen=16)
        run_with([buffered, recorder])
        assert recorder.lines() == buffered.lines()[-16:]

    def test_records_are_valid_taxonomy_jsonl(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with StreamingJsonlExporter(path, flush_every=3) as streaming:
            run_with([streaming])
        for i, line in enumerate(path.read_text().splitlines()):
            rec = json.loads(line)
            assert rec["seq"] == i
            assert set(rec) - {"ev", "seq"} == set(HOOK_EVENTS[rec["ev"]])


# ---------------------------------------------------------- bounded memory
class TestBoundedMemory:
    def test_resident_never_exceeds_flush_threshold(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with StreamingJsonlExporter(path, flush_every=5) as streaming:
            run_with([streaming], events=40)
            assert streaming.resident_high <= 5
        assert streaming.resident() == 0    # close() drained the tail

    def test_flush_every_validation(self, tmp_path):
        with pytest.raises(ValueError):
            StreamingJsonlExporter(tmp_path / "x.jsonl", flush_every=0)

    def test_flight_recorder_ring_is_bounded(self):
        recorder = FlightRecorder(maxlen=8)
        run_with([recorder], events=30)
        assert len(recorder.ring) == 8
        assert recorder.seq > 8
        assert recorder.dropped == recorder.seq - 8

    def test_flight_recorder_dump(self, tmp_path):
        recorder = FlightRecorder(maxlen=8)
        run_with([recorder], events=30)
        path = tmp_path / "dump.jsonl"
        assert recorder.dump(path) == 8
        lines = path.read_text().splitlines()
        # true global seq numbers survive ring eviction
        seqs = [json.loads(line)["seq"] for line in lines]
        assert seqs == list(range(recorder.seq - 8, recorder.seq))


# ---------------------------------------------------------------- rotation
class TestRotation:
    def test_generations_concatenate_to_full_stream(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        buffered = JsonlExporter()
        with StreamingJsonlExporter(path, flush_every=4,
                                    rotate_bytes=8192,
                                    keep=12) as streaming:
            run_with([buffered, streaming], events=30)
        assert 2 <= streaming.rotations <= streaming.keep
        pieces = []
        for gen in range(streaming.keep, 0, -1):
            gen_path = tmp_path / f"stream.jsonl.{gen}"
            if gen_path.exists():
                pieces.append(gen_path.read_text())
        pieces.append(path.read_text())
        assert "".join(pieces).splitlines() == buffered.lines()

    def test_rotation_caps_single_file_size(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with StreamingJsonlExporter(path, flush_every=1,
                                    rotate_bytes=500,
                                    keep=50) as streaming:
            run_with([streaming], events=20)
        line_bytes = 200    # generous bound on one flushed batch
        for gen_path in tmp_path.glob("stream.jsonl.*"):
            assert gen_path.stat().st_size <= 500 + line_bytes

    def test_oldest_generation_is_discarded(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with StreamingJsonlExporter(path, flush_every=1,
                                    rotate_bytes=300,
                                    keep=2) as streaming:
            run_with([streaming], events=25)
        assert streaming.rotations > 2
        generations = sorted(p.name for p in
                             tmp_path.glob("stream.jsonl.*"))
        assert generations == ["stream.jsonl.1", "stream.jsonl.2"]


# -------------------------------------------------- acceptance: ≥100k DES
class TestAcceptanceScale:
    def test_100k_event_des_run_stays_bounded_and_identical(self, tmp_path):
        """The ISSUE 4 acceptance pin: a ≥100k-event DES run through the
        streaming exporter holds at most ``flush_every`` records in
        memory while producing byte-identical output to the buffered
        exporter subscribed to the same bus."""
        n = 50_000          # schedule+fire = 2 hook events each → 100k
        path = tmp_path / "des.jsonl"
        bus = HookBus()
        buffered = bus.subscribe(JsonlExporter())
        with StreamingJsonlExporter(path, flush_every=1024) as streaming:
            bus.subscribe(streaming)
            sim = Simulator(hooks=bus)

            def tick(i=0):
                if i < n:
                    sim.after(7, lambda: tick(i + 1))

            tick()
            sim.run()
            assert streaming.resident_high <= 1024
        assert streaming.seq >= 100_000
        buf_path = tmp_path / "buffered.jsonl"
        buffered.write(buf_path)
        assert path.read_bytes() == buf_path.read_bytes()

    def test_interleaved_instance_buses_share_one_global_seq(self, tmp_path):
        """The farm pattern: N instances, each with its own hook bus,
        all writing through one streaming exporter via
        :class:`~repro.runtime.farm.InstanceTap`.  The shared sink keeps
        ONE global ``seq`` across every writer, each record carries its
        ``inst`` tag, and the resident bound holds regardless of how the
        writers interleave."""
        from repro.runtime.farm import InstanceTap

        path = tmp_path / "fleet.jsonl"
        with StreamingJsonlExporter(path, flush_every=8) as streaming:
            programs = [Program(SRC) for _ in range(5)]
            for inst, program in enumerate(programs):
                program.observe(InstanceTap([streaming], inst))
                program.start()
            for round_ in range(12):
                # round-robin: consecutive records come from different buses
                for program in programs:
                    program.send("A")
            assert streaming.resident_high <= 8
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert [rec["seq"] for rec in records] == list(range(len(records)))
        assert {rec["inst"] for rec in records} == set(range(5))
        for rec in records:
            assert set(rec) - {"ev", "seq", "inst"} == \
                set(HOOK_EVENTS[rec["ev"]])

    def test_interleaved_writers_rotation_and_resident_accounting(
            self, tmp_path):
        """Rotation driven by interleaved writers: concatenating the
        generations reproduces the full fleet stream with each
        instance's subsequence in its own program order, and ``seq``
        still globally gapless; ``resident()`` drains to zero on close."""
        from repro.runtime.farm import InstanceTap

        path = tmp_path / "fleet.jsonl"
        with StreamingJsonlExporter(path, flush_every=2, rotate_bytes=8192,
                                    keep=30) as streaming:
            programs = [Program(SRC) for _ in range(3)]
            for inst, program in enumerate(programs):
                program.observe(InstanceTap([streaming], inst))
                program.start()
            for _ in range(15):
                for program in programs:
                    program.send("A")
            assert streaming.resident() <= 2
        assert streaming.rotations >= 2
        assert streaming.resident() == 0
        pieces = []
        for gen in range(streaming.keep, 0, -1):
            gen_path = tmp_path / f"fleet.jsonl.{gen}"
            if gen_path.exists():
                pieces.append(gen_path.read_text())
        pieces.append(path.read_text())
        records = [json.loads(line)
                   for line in "".join(pieces).splitlines()]
        assert len(records) == streaming.seq
        assert [rec["seq"] for rec in records] == list(range(len(records)))
        by_inst = {}
        for rec in records:
            by_inst.setdefault(rec["inst"], []).append(rec["ev"])
        # every program ran the same workload, so the per-instance event
        # subsequences recovered from the merged stream are identical
        assert len(set(map(tuple, by_inst.values()))) == 1

    def test_interleaved_writers_fan_out_to_stream_and_recorder(self):
        """One tap, two sinks: the flight recorder and the stream keep
        independent global sequences over the same interleaving."""
        from repro.runtime.farm import InstanceTap

        recorder = FlightRecorder(maxlen=32)
        programs = [Program(SRC) for _ in range(4)]
        for inst, program in enumerate(programs):
            program.observe(InstanceTap([recorder], inst))
            program.start()
        for _ in range(10):
            for program in programs:
                program.send("A")
        assert len(recorder.ring) == 32
        tail = [json.loads(line) for line in recorder.lines()]
        assert [rec["seq"] for rec in tail] == \
            list(range(recorder.seq - 32, recorder.seq))
        assert {rec["inst"] for rec in tail} <= set(range(4))

    def test_100k_event_flight_recorder_resident_bound(self):
        n = 50_000
        bus = HookBus()
        recorder = bus.subscribe(FlightRecorder(maxlen=4096))
        sim = Simulator(hooks=bus)

        def tick(i=0):
            if i < n:
                sim.after(7, lambda: tick(i + 1))

        tick()
        sim.run()
        assert recorder.seq >= 100_000
        assert len(recorder.ring) == 4096   # resident ≤ ring size
        assert recorder.dropped == recorder.seq - 4096
