"""Lexer unit tests: identifier classes, TIME literals, C blocks, errors."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.time_units import TimeLiteral, from_components, us_to_text
from repro.lang.tokens import TokKind


def kinds(src):
    return [t.kind for t in tokenize(src)][:-1]  # drop EOF


def texts(src):
    return [t.text for t in tokenize(src)][:-1]


class TestIdentifierClasses:
    def test_external_event_uppercase(self):
        (tok,) = tokenize("Restart")[:-1]
        assert tok.kind is TokKind.ID_EXT

    def test_internal_lowercase(self):
        (tok,) = tokenize("changed")[:-1]
        assert tok.kind is TokKind.ID_INT

    def test_c_symbol_underscore(self):
        (tok,) = tokenize("_printf")[:-1]
        assert tok.kind is TokKind.ID_C

    def test_keywords_not_identifiers(self):
        toks = tokenize("loop do await emit end")[:-1]
        assert all(t.kind is TokKind.KEYWORD for t in toks)

    def test_par_composites(self):
        assert texts("par par/or par/and") == ["par", "par/or", "par/and"]
        assert all(k is TokKind.KEYWORD for k in kinds("par par/or par/and"))

    def test_par_slash_other_not_composite(self):
        toks = tokenize("par / x")[:-1]
        assert [t.text for t in toks] == ["par", "/", "x"]

    def test_c_is_event_when_not_block(self):
        # fig. 1 declares an input event named C
        toks = tokenize("input void A, B, C;")[:-1]
        assert toks[-2].kind is TokKind.ID_EXT
        assert toks[-2].text == "C"


class TestNumbers:
    def test_decimal(self):
        assert tokenize("42")[0].value == 42

    def test_hex(self):
        assert tokenize("0x1F")[0].value == 31

    def test_char_literal_is_num(self):
        tok = tokenize("'#'")[0]
        assert tok.kind is TokKind.NUM
        assert tok.value == ord("#")

    def test_char_escapes(self):
        assert tokenize(r"'\n'")[0].value == ord("\n")

    def test_bad_char_literal(self):
        with pytest.raises(LexError):
            tokenize("'ab'")


class TestTimeLiterals:
    @pytest.mark.parametrize("src,us", [
        ("1us", 1),
        ("1ms", 1_000),
        ("1s", 1_000_000),
        ("1min", 60_000_000),
        ("1h", 3_600_000_000),
        ("500ms", 500_000),
        ("1h35min", 5_700_000_000),
        ("1min30s", 90_000_000),
        ("2s500ms", 2_500_000),
        ("1h2min3s4ms5us", 3_723_004_005),
    ])
    def test_values(self, src, us):
        tok = tokenize(src)[0]
        assert tok.kind is TokKind.TIME
        assert tok.value.us == us

    def test_units_must_descend(self):
        with pytest.raises(LexError):
            tokenize("1ms2s")

    def test_number_without_unit_inside_literal(self):
        with pytest.raises(LexError):
            tokenize("1h35")

    def test_time_not_greedy_over_identifiers(self):
        toks = tokenize("10units")
        # `10units` is not `10us` — suffix followed by alpha chars
        assert toks[0].kind is TokKind.NUM
        assert toks[1].text == "units"

    def test_round_trip_text(self):
        assert us_to_text(5_700_000_000) == "1h35min"
        assert us_to_text(0) == "0us"
        assert us_to_text(1_001) == "1ms1us"

    def test_components_preserved(self):
        lit = from_components([("h", 1), ("min", 35)])
        assert str(lit) == "1h35min"
        assert isinstance(lit, TimeLiteral)


class TestStrings:
    def test_string_value(self):
        assert tokenize('"hi"')[0].value == "hi"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\t\"q\""')[0].value == 'a\nb\t"q"'

    def test_unterminated(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')


class TestCBlocks:
    def test_c_block_captures_verbatim(self):
        src = "C do\n#include <assert.h>\nint I = 0;\nend"
        tok = tokenize(src)[0]
        assert tok.kind is TokKind.C_CODE
        assert "#include <assert.h>" in tok.value
        assert "end" not in tok.value

    def test_c_block_end_in_string_ignored(self):
        src = 'C do char* s = "end"; int x; end'
        tok = tokenize(src)[0]
        assert '"end"' in tok.value

    def test_c_block_end_in_comment_ignored(self):
        src = "C do /* end */ int x; end"
        tok = tokenize(src)[0]
        assert "/* end */" in tok.value

    def test_c_block_identifier_containing_end(self):
        src = "C do int end_x = 3; int x_end = 4; end"
        tok = tokenize(src)[0]
        assert "end_x" in tok.value and "x_end" in tok.value

    def test_unterminated_c_block(self):
        with pytest.raises(LexError):
            tokenize("C do int x;")


class TestComments:
    def test_line_comment(self):
        assert kinds("1 // two\n3") == [TokKind.NUM, TokKind.NUM]

    def test_block_comment(self):
        assert kinds("1 /* 2 \n 2b */ 3") == [TokKind.NUM, TokKind.NUM]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("1 /* oops")


class TestSymbols:
    def test_maximal_munch(self):
        assert texts("a<<b <= == != && || ->") == \
            ["a", "<<", "b", "<=", "==", "!=", "&&", "||", "->"]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert toks[0].span.start.line == 1
        assert toks[1].span.start.line == 2
        assert toks[1].span.start.col == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")
