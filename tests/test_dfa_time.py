"""Wall-clock-aware temporal analysis (§2.6): timer epochs, batch expiry,
and the paper's two timing examples."""

from repro.dfa import build_dfa
from repro.lang import parse
from repro.sema import bind


def dfa_of(src: str, **kw):
    return build_dfa(bind(parse(src)), **kw)


def refuse(src: str, fragment: str = ""):
    dfa = dfa_of(src)
    assert dfa.conflicts, "expected nondeterminism"
    assert fragment in dfa.conflicts[0].message()
    return dfa


def accept(src: str):
    dfa = dfa_of(src)
    assert not dfa.conflicts, dfa.conflicts[0].message()
    return dfa


class TestPaperTimingExamples:
    def test_50_49_vs_100_deterministic(self):
        accept("""
        int v;
        par/or do
           await 50ms;
           await 49ms;
           v = 1;
        with
           await 100ms;
           v = 2;
        end
        """)

    def test_10ms_loop_vs_100ms_nondeterministic(self):
        refuse("""
        int v;
        par/or do
           loop do
              await 10ms;
              v = 1;
           end
        with
           await 100ms;
           v = 2;
        end
        """, "variable `v`")


class TestEpochSemantics:
    def test_equal_deadlines_same_reaction(self):
        refuse("""
        int v;
        par/and do
           await 100ms;
           v = 1;
        with
           await 100ms;
           v = 2;
        end
        """, "variable `v`")

    def test_equal_deadlines_via_chaining(self):
        # 50+50 meets 100 exactly — the analysis adds deltas (§2.3)
        refuse("""
        int v;
        par/and do
           await 50ms;
           await 50ms;
           v = 1;
        with
           await 100ms;
           v = 2;
        end
        """, "variable `v`")

    def test_offset_deadlines_ordered(self):
        accept("""
        int v;
        par/and do
           await 99ms;
           v = 1;
        with
           await 100ms;
           v = 2;
        end
        """)

    def test_cross_epoch_timers_not_batched(self):
        # the second timer is armed in an event reaction: its phase is
        # unknown, so the two expiries are modelled as distinct reactions
        accept("""
        input void A;
        int v;
        par/and do
           await 100ms;
           v = 1;
        with
           await A;
           await 100ms;
           v = 2;
        end
        """)

    def test_periodic_loops_colliding(self):
        # lcm(30, 20) = 60: collision on the first minute boundary
        refuse("""
        int v;
        par do
           loop do
              await 30ms;
              v = 1;
           end
        with
           loop do
              await 20ms;
              v = 2;
           end
        end
        """, "variable `v`")

    def test_coprime_periods_still_collide_at_lcm(self):
        refuse("""
        int v;
        par do
           loop do
              await 7ms;
              v = 1;
           end
        with
           loop do
              await 11ms;
              v = 2;
           end
        end
        """)

    def test_same_period_after_same_start(self):
        refuse("""
        int v;
        par do
           loop do
              await 10ms;
              v = 1;
           end
        with
           loop do
              await 10ms;
              v = v + 1;
           end
        end
        """)


class TestComputedTimeouts:
    def test_tunk_fires_alone(self):
        # the ship game relies on timer-vs-key never being concurrent
        accept("""
        input int Key;
        int ship, dt;
        par do
           loop do
              await (dt * 1000);
              ship = ship;
           end
        with
           loop do
              int k = await Key;
              ship = k;
           end
        end
        """)

    def test_two_tunks_do_not_batch(self):
        accept("""
        int a, b, v, w;
        par/and do
           await (a);
           v = 1;
        with
           await (b);
           w = 2;
        end
        """)


class TestTimeStateSpace:
    def test_timer_wheel_states_bounded(self):
        dfa = accept("""
        par do
           loop do
              await 10ms;
           end
        with
           loop do
              await 100ms;
           end
        end
        """)
        # remaining-time residues cycle: finite automaton
        assert dfa.state_count() <= 12

    def test_event_does_not_decrement_timers(self):
        dfa = accept("""
        input void A;
        int n;
        par do
           loop do
              await 100ms;
           end
        with
           loop do
              await A;
              n = n + 1;
           end
        end
        """)
        # the event transition must return to an equivalent configuration
        assert dfa.state_count() <= 4
