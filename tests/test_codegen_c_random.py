"""Randomised VM-vs-C differential testing.

A seeded generator produces finite, deterministic Céu programs mixing
awaits (events, values, timers), arithmetic, conditionals and parallel
compositions, all ending in `return <checksum>`.  Each program runs on the
reference VM and, through the §4.4 backend, under gcc — final status,
return value and printed output must agree exactly.
"""

import random

import pytest

from helpers import compile_and_run_c, requires_gcc, run_program
from repro.sema import bind, check_bounded
from repro.lang import parse

N_VARS = 4


class ProgramGen:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.lines: list[str] = []

    def var(self) -> str:
        return f"v{self.rng.randrange(N_VARS)}"

    def emit(self, text: str, depth: int) -> None:
        self.lines.append("   " * depth + text)

    def step(self, depth: int) -> None:
        roll = self.rng.random()
        if roll < 0.30:
            op = self.rng.choice(["+", "-", "*"])
            self.emit(f"{self.var()} = {self.var()} {op} "
                      f"{self.rng.randrange(1, 9)};", depth)
        elif roll < 0.45:
            self.emit(f"await {self.rng.choice(['A', 'B'])};", depth)
        elif roll < 0.55:
            self.emit(f"{self.var()} = await B;", depth)
        elif roll < 0.65:
            self.emit(f"await {self.rng.choice([10, 30, 70])}ms;", depth)
        elif roll < 0.75:
            self.emit(f"_printf(\"p%d\\n\", {self.var()});", depth)
        elif roll < 0.87:
            self.emit(f"if {self.var()} % 2 then", depth)
            self.step(depth + 1)
            self.emit("else", depth)
            self.step(depth + 1)
            self.emit("end", depth)
        else:
            mode = self.rng.choice(["par/and", "par/or"])
            self.emit(f"{mode} do", depth)
            self.emit(f"await {self.rng.choice(['A', 'B'])};", depth + 1)
            self.emit("with", depth)
            self.emit(f"await {self.rng.choice([20, 50])}ms;", depth + 1)
            self.emit("end", depth)

    def generate(self) -> str:
        self.lines = ["input int A, B;"]
        inits = ", ".join(f"v{i} = {self.rng.randrange(10)}"
                          for i in range(N_VARS))
        self.lines.append(f"int {inits};")
        for _ in range(self.rng.randrange(4, 9)):
            self.step(0)
        checksum = " + ".join(f"v{i}" for i in range(N_VARS))
        self.lines.append(f"return {checksum};")
        return "\n".join(self.lines)


def make_script(n: int = 30):
    script = []
    for k in range(1, n + 1):
        script.append(("E", "A", k))
        script.append(("E", "B", 100 + k))
        script.append(("T", k * 100_000))
    return script


def script_text(script) -> str:
    out = []
    for item in script:
        if item[0] == "E":
            out.append(f"E {item[1]} {item[2]}")
        else:
            out.append(f"T {item[1]}")
    return "\n".join(out) + "\n"


def drive_vm(src, script):
    actions = []
    for item in script:
        if item[0] == "E":
            actions.append(("ev", item[1], item[2]))
        else:
            actions.append(("at", item[1]))
    return run_program(src, *actions)


@requires_gcc
@pytest.mark.parametrize("seed", range(20))
def test_random_program_c_matches_vm(seed, tmp_path):
    src = ProgramGen(seed).generate()
    check_bounded(bind(parse(src)))   # generated programs are well-formed
    script = make_script()
    vm = drive_vm(src, script)
    assert vm.done, f"script too short for seed {seed}:\n{src}"
    out = compile_and_run_c(src, script_text(script), tmp_path,
                            f"rand{seed}")
    body, tail = out.rsplit("==DONE=", 1)
    assert body == vm.output(), src
    assert tail.startswith("1"), src
    ret = int(tail.split("RET=")[1].split("==")[0])
    assert ret == vm.result, src


@pytest.mark.parametrize("seed", range(20, 40))
def test_random_program_vm_deterministic(seed):
    """Without gcc in the loop: two VM runs of the same random program on
    the same inputs agree bit-for-bit."""
    src = ProgramGen(seed).generate()
    script = make_script()
    first = drive_vm(src, script)
    second = drive_vm(src, script)
    assert first.output() == second.output()
    assert first.result == second.result
    assert first.done == second.done
