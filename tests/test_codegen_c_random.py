"""Randomised VM-vs-C differential testing.

The seeded generator lives in :mod:`repro.fuzz.gen` (shared with the
``repro fuzz`` campaign driver); here it feeds pytest directly — each
program runs on the reference VM and, through the §4.4 backend, under
gcc.  Final status, return value, printed output and the portable
reaction signature must agree exactly.
"""

import pytest

from helpers import requires_gcc
from repro.fuzz import check_case, generate_case
from repro.fuzz.oracles import run_c, run_vm
from repro.lang import parse
from repro.sema import bind, check_bounded


@requires_gcc
@pytest.mark.parametrize("seed", range(20))
def test_random_program_c_matches_vm(seed, tmp_path):
    case = generate_case(seed)
    check_bounded(bind(parse(case.src)))  # well-formed by construction
    vm = run_vm(case.src, case.script)
    assert vm.ok, f"seed {seed}:\n{vm.error}"
    assert vm.done, f"script too short for seed {seed}:\n{case.src}"
    c = run_c(case.src, case.script, tmp_path, name=f"rand{seed}")
    assert c.ok, f"seed {seed}:\n{c.error}"
    assert c.output == vm.output, case.src
    assert c.done, case.src
    assert c.result == vm.result, case.src
    assert c.psig == vm.psig, case.src


@pytest.mark.parametrize("seed", range(20, 40))
def test_random_program_vm_deterministic(seed):
    """Without gcc in the loop: two VM runs of the same random program on
    the same inputs agree bit-for-bit."""
    case = generate_case(seed)
    first = run_vm(case.src, case.script)
    second = run_vm(case.src, case.script)
    assert first.ok and second.ok
    assert first.output == second.output
    assert first.result == second.result
    assert first.done == second.done
    assert first.signature == second.signature
    assert first.memory == second.memory


@pytest.mark.parametrize("seed", range(5))
def test_oracle_stack_agrees(seed, tmp_path):
    """The full ``check_case`` stack (analyses, no-crash, replay, VM↔C
    when gcc is present) finds nothing to disagree about."""
    verdict, failures = check_case(generate_case(seed), workdir=tmp_path)
    assert verdict in ("accept", "refuse", "giveup")
    assert not failures, failures[0].summary()
