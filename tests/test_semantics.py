"""The executable reference semantics as the third differential oracle.

Four layers of evidence that :mod:`repro.semantics` is a faithful
specification of the reaction rules:

* **parity** — on every checked-in corpus program (under its recorded
  script) and every shipped example, the spec machine reproduces the
  VM's *full* trace signature, final memory, output, and result; the C
  backend's portable signature agrees too (gcc-gated);
* **goldens** — the spec's rule-application transcripts are pinned
  byte-exact (``tests/goldens/semantics_*.txt``; remint via
  ``python tests/mint_goldens.py --semantics``);
* **sweep** — 200 seeded fuzz cases through the full oracle stack with
  the spec enabled report zero disagreements (three-way with C when
  gcc is available);
* **sensitivity** — an intentionally-injected VM bug (reversed §2.2
  emit wake order, monkeypatched, test-only) is *caught* by the
  ``vm-vs-spec`` oracle, attributed by the three-way vote, and
  *shrunk* to a minimal reproducer.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from helpers import HAVE_GCC, requires_gcc

from repro.fuzz import (FuzzRunner, GenCase, canon_psig, canon_sig,
                        check_case, generate_case, run_c, run_semantics,
                        run_vm, shrink, three_way_attribution)
from repro.lang import parse
from repro.runtime.scheduler import Scheduler
from repro.sema import bind
from repro.semantics import Machine, run_script

TESTS = Path(__file__).parent
CORPUS = sorted((TESTS / "corpus").glob("*.ceu"))
EXAMPLES = sorted((TESTS.parent / "examples" / "ceu").glob("*.ceu"))


def corpus_script(path: Path) -> list:
    case = json.loads(path.with_suffix(".json").read_text())
    return [tuple(item) for item in case["script"]]


def default_script(src: str) -> list:
    """A generic stimulus for programs without a recorded script: every
    declared input a few times, interleaved with time advances.  Void
    events carry an explicit 0 payload — the C driver's script reader
    needs the payload column."""
    bound = bind(parse(src))
    inputs = [(e.name, e.type.name) for e in bound.input_events()]
    script: list = [("T", 50_000)]
    t = 50_000
    for round_ in range(3):
        for i, (name, type_name) in enumerate(inputs):
            value = 0 if type_name == "void" else 10 * round_ + i
            script.append(("E", name, value))
            t += 250_000
            script.append(("T", t))
    script.append(("T", t + 2_000_000))
    return script


def assert_spec_matches_vm(src: str, script: list) -> Machine:
    vm = run_vm(src, script, trace=True)
    assert vm.ok, vm.error
    machine = run_script(src, script)
    assert canon_sig(machine.signature()) == canon_sig(vm.signature)
    assert machine.done == vm.done
    assert (machine.result if machine.done else None) == vm.result
    assert machine.output() == vm.output
    assert machine.memory_snapshot() == vm.memory
    return machine


# ---------------------------------------------------------------------------
# parity: corpus + examples
# ---------------------------------------------------------------------------

class TestCorpusParity:
    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
    def test_spec_equals_vm(self, path):
        assert_spec_matches_vm(path.read_text(), corpus_script(path))

    @requires_gcc
    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
    def test_spec_equals_c(self, path, tmp_path):
        src, script = path.read_text(), corpus_script(path)
        machine = run_script(src, script)
        c = run_c(src, script, tmp_path, name=path.stem)
        assert c.ok, c.error
        assert canon_psig(machine.portable_signature()) \
            == canon_psig(c.psig)
        assert machine.done == c.done
        assert machine.output() == c.output


class TestExamplesParity:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_spec_equals_vm(self, path):
        src = path.read_text()
        assert_spec_matches_vm(src, default_script(src))

    @requires_gcc
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_spec_equals_c(self, path, tmp_path):
        from repro.fuzz.oracles import analyses_verdict

        src = path.read_text()
        if analyses_verdict(src) != "accept":
            pytest.skip("refused program: cross-backend determinism "
                        "is only promised for accepted programs")
        script = default_script(src)
        machine = run_script(src, script)
        c = run_c(src, script, tmp_path, name=path.stem)
        assert c.ok, c.error
        assert canon_psig(machine.portable_signature()) \
            == canon_psig(c.psig)
        assert machine.output() == c.output


# ---------------------------------------------------------------------------
# goldens: rule-application transcripts, byte-exact
# ---------------------------------------------------------------------------

class TestSemanticsGoldens:
    @pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
    def test_transcript_golden(self, path):
        from mint_goldens import semantics_transcript

        golden = TESTS / "goldens" / f"semantics_{path.stem}.txt"
        assert golden.exists(), \
            "missing golden — run `python tests/mint_goldens.py " \
            "--semantics`"
        text = semantics_transcript(path.read_text(),
                                    corpus_script(path),
                                    f"corpus/{path.name}")
        assert text == golden.read_text(), \
            f"{golden.name} drifted — if the semantics changed " \
            f"deliberately, remint with `python tests/mint_goldens.py " \
            f"--semantics`"


# ---------------------------------------------------------------------------
# the 200-seed acceptance sweep (three-way when gcc is available)
# ---------------------------------------------------------------------------

class TestSeededSweep:
    def test_three_way_zero_disagreements(self, tmp_path):
        failures = []
        for seed in range(200):
            case = generate_case(seed)
            _verdict, fails = check_case(case, workdir=tmp_path,
                                         use_c=HAVE_GCC,
                                         use_semantics=True)
            failures.extend(fails)
        assert failures == [], \
            [f.summary() for f in failures][:5]


# ---------------------------------------------------------------------------
# sensitivity: an injected VM bug must be caught and shrunk
# ---------------------------------------------------------------------------

#: two trails await the same internal event; the §2.2 wake order is
#: their await-registration order, which the full signature records
EMIT_ORDER_PROG = """\
input void I;
internal void e;
int a = 0;
int b = 0;
par do
   loop do
      await e;
      a = a + 1;
   end
with
   loop do
      await e;
      b = b + 1;
   end
with
   loop do
      await I;
      emit e;
   end
end
"""
EMIT_ORDER_SCRIPT = [("E", "I", None), ("E", "I", None)]


@pytest.fixture
def buggy_vm_emit_order(monkeypatch):
    """Mutate the VM (test-only): internal emits wake trails in
    *reversed* registration order — the §2.2 stack policy violated."""
    original = Scheduler.emit_internal

    def mutated(self, sym, value, emitter):
        saved = self.int_waiting.get(sym.name)
        if saved:
            self.int_waiting[sym.name] = list(reversed(saved))
        return original(self, sym, value, emitter)

    monkeypatch.setattr(Scheduler, "emit_internal", mutated)


class TestInjectedVMBug:
    def test_spec_oracle_catches_reversed_emit_order(
            self, buggy_vm_emit_order):
        case = GenCase(seed=0, src=EMIT_ORDER_PROG,
                       script=list(EMIT_ORDER_SCRIPT))
        _verdict, fails = check_case(case, use_c=False,
                                     use_semantics=True)
        spec_fails = [f for f in fails if f.oracle == "vm-vs-spec"]
        assert spec_fails, [f.summary() for f in fails]
        details = spec_fails[0].details
        assert "signature" in details

    def test_spec_oracle_shrinks_the_bug(self, buggy_vm_emit_order):
        def predicate(src: str, script: list) -> bool:
            case = GenCase(seed=0, src=src, script=list(script))
            _verdict, fails = check_case(case, use_c=False,
                                         use_semantics=True)
            return any(f.oracle == "vm-vs-spec" for f in fails)

        assert predicate(EMIT_ORDER_PROG, EMIT_ORDER_SCRIPT)
        result = shrink(EMIT_ORDER_PROG, EMIT_ORDER_SCRIPT, predicate)
        # the divergence needs one emission: a single input suffices
        assert len(result.script) <= 1
        assert result.src_lines() <= len(EMIT_ORDER_PROG.splitlines())
        assert predicate(result.src, result.script)

    @requires_gcc
    def test_three_way_attributes_vm_as_odd_one_out(
            self, buggy_vm_emit_order, tmp_path):
        """With all three backends live, the vote singles out the
        mutated VM (spec and C agree, VM disagrees).  The vote runs on
        ``canon_psig`` — the emit *multiset* per reaction — so the
        mutation must change *which* events fire, not just their order:
        the second waiter's emit is conditional on a flag the first
        waiter sets, making the reversed wake order drop the emit.
        (Concurrent flag access would be refused by the §2.6 analysis;
        here we call the backends directly — all three implement the
        same deterministic registration order, which is the point.)"""
        src = """\
input void I;
internal void e, p;
int flag = 0;
par do
   loop do
      await e;
      flag = 1;
   end
with
   loop do
      await e;
      if flag == 1 then
         emit p;
      end
   end
with
   loop do
      await I;
      emit e;
   end
end
"""
        script = [("E", "I", 0)]
        vm = run_vm(src, script)
        spec = run_semantics(src, script)
        c = run_c(src, script, tmp_path, name="oddone")
        assert vm.ok and spec.ok and c.ok
        # unmutated wake order is await-registration order: the flag is
        # set before the conditional emit runs
        assert spec.psig[-1][1] == ("e", "p")
        assert vm.psig[-1][1] == ("e",)
        attribution = three_way_attribution(vm, c, spec)
        assert attribution["odd_one_out"] == "vm"
        assert attribution["agreement"] == {
            "vm==c": False, "vm==spec": False, "c==spec": True}


# ---------------------------------------------------------------------------
# the shrinker when exactly one of three oracles disagrees
# ---------------------------------------------------------------------------

class TestOneOfThreeShrink:
    @requires_gcc
    def test_c_fault_is_attributed_and_shrunk_by_its_own_oracle(
            self, tmp_path):
        """`--inject-fault drop-emit` breaks only the C backend: the
        vm-vs-c oracle fires, vm-vs-spec stays green, the three-way
        vote blames C, and shrinking on the failing oracle converges
        without the other two oracles vetoing candidates."""
        runner = FuzzRunner(seed=0, use_c=True, fault="drop-emit",
                            do_shrink=True, profile="emit",
                            use_semantics=True, log=lambda msg: None)
        stats = runner.run(n=12)
        oracles = {f.oracle for f in stats.failures}
        assert "vm-vs-c" in oracles
        assert "vm-vs-spec" not in oracles
        blamed = [f.details["three_way"]["odd_one_out"]
                  for f in stats.failures
                  if f.oracle == "vm-vs-c" and "three_way" in f.details]
        assert blamed and set(blamed) == {"c"}
        assert stats.shrunk, "failures were found but none shrunk"
        smallest = min(stats.shrunk, key=lambda r: r.src_lines())
        assert smallest.src_lines() <= 20


# ---------------------------------------------------------------------------
# trivial-case rejection (the vacuous-pass fix)
# ---------------------------------------------------------------------------

class TestTrivialRejection:
    def test_boot_only_target_cases_are_rejected_and_rerolled(self):
        runner = FuzzRunner(seed=0, use_c=False, target="return 0;\n",
                            use_semantics=True, log=lambda msg: None)
        stats = runner.run(n=2)
        # a program that terminates at boot can never produce a
        # non-boot reaction: every draw and every re-roll is trivial
        assert stats.trivial >= 2
        assert stats.failures == []
        recs = [r for r in runner.exporter.records
                if r["ev"] == "fuzz_case"]
        assert recs and all(r["trivial"] for r in recs)
        assert all(r["reactions"] == 1 for r in recs)

    def test_generated_cases_are_not_trivial(self):
        runner = FuzzRunner(seed=0, use_c=False, use_semantics=False,
                            log=lambda msg: None)
        stats = runner.run(n=25)
        recs = [r for r in runner.exporter.records
                if r["ev"] == "fuzz_case" and not r["trivial"]]
        assert len(recs) == stats.cases - stats.trivial
        assert recs, "every generated case came out trivial?"

    def test_check_case_reports_reaction_coverage(self):
        case = GenCase(seed=0, src="input void I;\nawait I;\nreturn 1;\n",
                       script=[("E", "I", None)])
        coverage: dict = {}
        verdict, fails = check_case(case, use_c=False,
                                    stats_out=coverage)
        assert fails == []
        assert coverage["reactions"] == 2
        assert coverage["nonboot_reactions"] == 1


# ---------------------------------------------------------------------------
# unit corners
# ---------------------------------------------------------------------------

class TestSpecMachine:
    def test_canon_sig_renumbers_async_triggers(self):
        sig = (("boot", (), ()), ("async:7", (), ()),
               ("async:9", (), ()), ("async:7", (), ()))
        assert canon_sig(sig) == (("boot", (), ()),
                                  ("async:#1", (), ()),
                                  ("async:#2", (), ()),
                                  ("async:#1", (), ()))
        assert canon_sig(None) is None

    def test_async_signature_is_machine_local(self):
        src = "int r = 0;\nr = async do\n   return 4;\nend;\nreturn r;\n"
        first = run_script(src, [])
        second = run_script(src, [])
        assert first.signature() == second.signature()
        assert first.result == 4
        assert any(t.startswith("async:")
                   for t, _s, _e in first.signature())
        # ... and async triggers are excluded from the portable view
        assert all(not t.startswith("async:")
                   for t, _e in first.portable_signature())

    def test_run_semantics_reports_crash_not_raises(self):
        res = run_semantics("int v = ;\n", [])
        assert not res.ok
        assert res.error is not None

    def test_transcript_records_rules(self):
        machine = run_script(
            "internal void e;\npar/and do\n   await e;\nwith\n"
            "   emit e;\nend\nreturn 3;\n", [], transcript=True)
        text = machine.transcript()
        assert "[par-spawn] trail1" in text
        assert "[emit-push] e" in text
        assert "[emit-wake] trail1 <- e" in text
        assert "[join-and]" in text
        assert "[terminate] result=3" in text
        assert machine.result == 3

    def test_spec_rejects_backwards_time(self):
        from repro.lang.errors import RuntimeCeuError

        machine = run_script("input void I;\nawait I;\nreturn 1;\n",
                             [("T", 100)])
        with pytest.raises(RuntimeCeuError):
            machine.at(50)

    def test_spec_rejects_undeclared_input(self):
        from repro.lang.errors import RuntimeCeuError

        machine = run_script("input void I;\nawait I;\nreturn 1;\n", [])
        with pytest.raises(RuntimeCeuError):
            machine.send("Nope")
