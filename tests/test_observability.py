"""The observability layer: hook bus, metrics, exporters, zero-impact.

Covers (ISSUE 1): hook-bus ordering on known programs, metrics snapshot
correctness, Chrome-trace/JSONL export validity (slice nesting included),
the §2.2 emit-stack depth, DES/platform instrumentation, and the
hypothesis property that *enabling hooks never changes behaviour* as
digested by ``Trace.signature()``.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (HOOK_EVENTS, ChromeTraceExporter, EventLog, HookBus,
                       HookSubscriber, JsonlExporter, MetricsCollector,
                       MetricsRegistry, render_stats)
from repro.obs.metrics import Histogram
from repro.platforms import ArduinoBoard, SdlHost, TinyOsWorld
from repro.runtime import Program, Trace
from repro.sim.des import Simulator

COUNTER_SRC = """
input void A;
internal void e;
int v = 0;
par do
   loop do
      await A;
      v = v + 1;
      emit e;
   end
with
   loop do
      await e;
      v = v + 10;
   end
end
"""

NESTED_EMIT_SRC = """
input void A;
internal void e, f;
par do
   loop do
      await A;
      emit e;
   end
with
   loop do
      await e;
      emit f;
   end
with
   loop do
      await f;
   end
end
"""


def observed(src, *events):
    program = Program(src, observe=True)
    log = program.observe(EventLog())
    program.start()
    for name in events:
        program.send(name)
    return program, log


# ---------------------------------------------------------------- hook bus
class TestHookBus:
    def test_disabled_until_subscribed(self):
        bus = HookBus()
        assert not bus.enabled
        sub = bus.subscribe(HookSubscriber())
        assert bus.enabled
        bus.unsubscribe(sub)
        assert not bus.enabled

    def test_program_default_is_unobserved(self):
        program = Program("input void A;\nawait A;")
        assert not program.hooks.enabled

    def test_every_taxonomy_event_has_bus_and_subscriber_methods(self):
        bus = HookBus()
        sub = HookSubscriber()
        for name in HOOK_EVENTS:
            assert callable(getattr(bus, name))
            assert callable(getattr(sub, f"on_{name}"))

    def test_reaction_bracketing_order(self):
        _, log = observed(COUNTER_SRC, "A")
        names = log.names()
        # spawn of the root trail precedes the boot reaction
        assert names[0] == "trail_spawn"
        assert names[1] == "reaction_begin"
        assert names[-1] == "reaction_end"
        # begin/end strictly alternate
        brackets = [n for n in names
                    if n in ("reaction_begin", "reaction_end")]
        assert brackets == ["reaction_begin", "reaction_end"] * 2

    def test_trail_resume_halt_pairing(self):
        _, log = observed(COUNTER_SRC, "A")
        open_trails = set()
        for name, fields in log.events:
            if name == "trail_resume":
                assert fields["trail"] not in open_trails
                open_trails.add(fields["trail"])
            elif name == "trail_halt":
                assert fields["trail"] in open_trails
                open_trails.discard(fields["trail"])
        assert not open_trails

    def test_emit_stack_depth(self):
        _, log = observed(NESTED_EMIT_SRC, "A")
        emits = [(f["name"], f["depth"])
                 for n, f in log.of("emit_internal")]
        # emit e from the handler trail runs emit f *within* it (§2.2)
        assert ("e", 1) in emits and ("f", 2) in emits

    def test_await_targets_reported(self):
        _, log = observed(COUNTER_SRC, "A")
        targets = {f["target"] for _, f in log.of("await_begin")}
        assert targets == {"ext:A", "int:e"}

    def test_region_kill_and_trail_kill(self):
        src = ("input void A;\npar/or do\n   await A;\nwith\n"
               "   await forever;\nend\nreturn 1;")
        program, log = observed(src, "A")
        assert program.result == 1
        assert log.of("region_kill")
        assert log.of("trail_kill")

    def test_timer_schedule_and_fire(self):
        program = Program("await 10ms;\nreturn 5;", observe=True)
        log = program.observe(EventLog())
        program.start()
        program.advance("25ms")
        (sched,) = log.of("timer_schedule")
        assert sched[1]["deadline_us"] == 10_000
        (fire,) = log.of("timer_fire")
        assert fire[1] == {"deadline_us": 10_000, "delta_us": 15_000,
                           "n_trails": 1}

    def test_event_log_ring_bounds_memory(self):
        log = EventLog(maxlen=8)
        for i in range(100):
            log.on_step("main", (), "Nop", i)
        assert len(log.events) == 8
        assert log.seen == 100
        assert log.dropped == 92
        # the ring keeps the *latest* events
        assert [f["line"] for _, f in log.events] == list(range(92, 100))

    def test_event_log_default_is_unbounded(self):
        log = EventLog()
        for i in range(100):
            log.on_step("main", (), "Nop", i)
        assert len(log.events) == 100 and log.dropped == 0

    def test_event_log_ring_subscribed_to_program(self):
        program = Program(COUNTER_SRC, observe=True)
        log = program.observe(EventLog(maxlen=5))
        program.start()
        for _ in range(10):
            program.send("A")
        assert len(log.events) == 5
        assert log.seen > 5 and log.dropped == log.seen - 5
        # helpers keep working on the ring
        assert len(log.names()) == 5
        assert all(n in HOOK_EVENTS for n in log.names())

    def test_async_steps_observed(self):
        src = """
        input int X;
        int total = 0;
        par/or do
           loop do
              int v = await X;
              total = total + v;
           end
        with
           async do
              emit X = 1;
              emit X = 2;
           end
        end
        return total;
        """
        program = Program(src, observe=True)
        log = program.observe(EventLog())
        program.start()
        kinds = [f["kind"] for _, f in log.of("async_step")]
        assert "emit_ext" in kinds and "done" in kinds
        assert program.result == 3


# ----------------------------------------------------------------- metrics
class TestMetrics:
    def test_counts_on_known_program(self):
        program, _ = observed(COUNTER_SRC, "A", "A", "A")
        c = program.stats()["counters"]
        assert c["reactions_total"] == 4            # boot + 3 events
        assert c["reactions_by_trigger.boot"] == 1
        assert c["reactions_by_trigger.event:A"] == 3
        assert c["emits_internal_total"] == 3
        assert c["emits_by_event.e"] == 3
        assert c["trails_spawned_total"] == 3       # root + 2 branches
        assert c["awaits_by_target.ext:A"] == 4     # 3 consumed + 1 armed
        assert program.sched.memory.snapshot()["v"] == 33

    def test_histograms_and_gauges(self):
        program, _ = observed(COUNTER_SRC, "A", "A")
        stats = program.stats()
        spr = stats["histograms"]["steps_per_reaction"]
        assert spr["count"] == 3 and spr["min"] >= 1
        lat = stats["histograms"]["reaction_latency_us"]
        assert lat["count"] == 3
        depth = stats["histograms"]["emit_stack_depth"]
        assert depth["max"] == 1
        assert stats["gauges"]["live_trails"]["max"] == 3
        assert stats["derived"]["reactions_per_sec"] > 0

    def test_runtime_block_live_without_observe(self):
        program = Program(COUNTER_SRC)
        program.start()
        program.send("A")
        stats = program.stats()
        assert stats["runtime"]["reactions_total"] == 2
        assert stats["runtime"]["live_trails"] == 3
        assert stats["runtime"]["observed"] is False
        assert stats["counters"] == {}     # no collector attached

    def test_histogram_bucketing(self):
        h = Histogram((1, 2, 4))
        for v in (0, 1, 2, 3, 5, 100):
            h.record(v)
        assert h.count == 6 and h.min == 0 and h.max == 100
        assert h.counts == [2, 1, 1, 2]    # ≤1, ≤2, ≤4, overflow
        assert h.snapshot()["buckets"][-1] == ["inf", 2]

    def test_collector_standalone(self):
        reg = MetricsRegistry()
        col = MetricsCollector(reg)
        col.on_reaction_begin(0, "boot", None, 0)
        col.on_reaction_end(0, "boot", 4, 2_000)
        snap = reg.snapshot()
        assert snap["counters"]["reactions_total"] == 1
        assert snap["histograms"]["steps_per_reaction"]["sum"] == 4

    def test_render_stats_is_textual(self):
        program, _ = observed(COUNTER_SRC, "A")
        text = render_stats(program.stats())
        assert "reactions_total" in text and "histograms" in text

    def test_histogram_percentiles(self):
        h = Histogram((10, 20, 50, 100))
        for v in range(1, 101):     # uniform 1..100
            h.record(v)
        assert h.percentile(0) <= h.percentile(50) <= h.percentile(100)
        assert abs(h.percentile(50) - 50) <= 10
        assert abs(h.percentile(95) - 95) <= 5
        assert h.percentile(100) == 100
        p = h.percentiles()
        assert set(p) == {"p50", "p95", "p99"}

    def test_histogram_percentiles_clamped_to_observed_range(self):
        h = Histogram((1000,))
        h.record(7)
        # one sample in a huge bucket must not interpolate past reality
        assert h.percentile(50) == 7 and h.percentile(99) == 7
        assert Histogram().percentile(50) is None

    def test_histogram_percentile_overflow_bucket(self):
        h = Histogram((10,))
        h.record(5)
        h.record(1000)              # overflow bucket
        assert h.percentile(99) == 1000

    def test_snapshot_and_render_include_percentiles(self):
        program, _ = observed(COUNTER_SRC, "A", "A")
        lat = program.stats()["histograms"]["reaction_latency_us"]
        assert "p50" in lat and "p95" in lat and "p99" in lat
        assert lat["p50"] <= lat["p95"] <= lat["p99"]
        text = render_stats(program.stats())
        assert "p50=" in text and "p99=" in text


# --------------------------------------------------------------- exporters
def chrome_doc(src, *events):
    program = Program(src)
    chrome = program.observe(ChromeTraceExporter())
    program.start()
    for name in events:
        program.send(name)
    return json.loads(json.dumps(chrome.to_json()))


class TestChromeExport:
    def test_slice_nesting_is_balanced(self):
        doc = chrome_doc(COUNTER_SRC, "A", "A")
        stacks: dict = {}
        last_ts = -1.0
        for ev in doc["traceEvents"]:
            if ev["ph"] == "M":
                continue
            assert ev["ts"] > last_ts      # strictly monotone timeline
            last_ts = ev["ts"]
            tid = ev["tid"]
            if ev["ph"] == "B":
                stacks.setdefault(tid, []).append(ev)
            elif ev["ph"] == "E":
                assert stacks.get(tid), f"unmatched E on tid {tid}"
                stacks[tid].pop()
        assert all(not open_ for open_ in stacks.values())

    def test_one_track_per_trail_plus_scheduler(self):
        doc = chrome_doc(COUNTER_SRC, "A")
        names = {ev["tid"]: ev["args"]["name"]
                 for ev in doc["traceEvents"]
                 if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert names[0] == "scheduler"
        # root + both par branches got their own tracks
        assert len(names) == 4

    def test_emits_are_instant_events(self):
        doc = chrome_doc(COUNTER_SRC, "A")
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert any(ev["name"] == "emit e" for ev in instants)

    def test_reaction_slices_on_scheduler_track(self):
        doc = chrome_doc(COUNTER_SRC, "A")
        slices = [ev for ev in doc["traceEvents"]
                  if ev["ph"] == "B" and ev["tid"] == 0]
        assert [ev["name"] for ev in slices] == \
            ["reaction boot", "reaction event:A"]

    def test_write_is_valid_json_file(self, tmp_path):
        program = Program(COUNTER_SRC)
        chrome = program.observe(ChromeTraceExporter())
        program.start()
        path = tmp_path / "trace.json"
        chrome.write(path)
        assert "traceEvents" in json.loads(path.read_text())

    def test_zero_duration_reactions_get_monotone_nudges(self):
        """Many same-µs reactions: every event still gets a strictly
        increasing timestamp, 1 ns (0.001 µs) apart, in delivery order."""
        chrome = ChromeTraceExporter()
        for i in range(50):
            chrome.on_reaction_begin(i, "event:A", None, 0)
            chrome.on_reaction_end(i, "event:A", 1, 0)
        ts = [ev["ts"] for ev in chrome.events if ev["ph"] != "M"]
        assert len(ts) == 100
        assert all(b > a for a, b in zip(ts, ts[1:]))
        deltas = [round(b - a, 6) for a, b in zip(ts, ts[1:])]
        assert all(d == 0.001 for d in deltas)

    def test_nudges_never_overtake_a_small_clock_advance(self):
        """Regression: >1000 zero-duration events accumulate >1 µs of
        nudges; a subsequent real clock advance smaller than that must
        not send the timeline backwards."""
        chrome = ChromeTraceExporter()
        for i in range(700):                      # 1400 events = 1.4 µs
            chrome.on_reaction_begin(i, "event:A", None, 0)
            chrome.on_reaction_end(i, "event:A", 1, 0)
        chrome.on_reaction_begin(700, "time", None, 1)   # clock: 0 → 1 µs
        chrome.on_reaction_end(700, "time", 1, 0)
        ts = [ev["ts"] for ev in chrome.events if ev["ph"] != "M"]
        assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_nudged_slices_stay_properly_nested(self):
        """Zero-duration reactions with trail activity inside: B/E pairs
        must stay balanced and ordered per track on the nudged times."""
        program = Program(COUNTER_SRC)
        chrome = program.observe(ChromeTraceExporter())
        program.start()
        for _ in range(5):
            program.send("A")       # all at VM time 0
        events = [ev for ev in chrome.to_json()["traceEvents"]
                  if ev["ph"] != "M"]
        ts = [ev["ts"] for ev in events]
        assert all(b > a for a, b in zip(ts, ts[1:]))
        depth: dict = {}
        for ev in events:
            if ev["ph"] == "B":
                depth[ev["tid"]] = depth.get(ev["tid"], 0) + 1
            elif ev["ph"] == "E":
                depth[ev["tid"]] = depth[ev["tid"]] - 1
                assert depth[ev["tid"]] >= 0
        assert all(d == 0 for d in depth.values())

    def test_real_clock_advance_resyncs_timeline(self):
        """After a handful of nudges, a large clock jump lands exactly
        on the VM time (the nudges don't drift the timeline)."""
        chrome = ChromeTraceExporter()
        chrome.on_reaction_begin(0, "boot", None, 0)
        chrome.on_reaction_end(0, "boot", 1, 0)
        chrome.on_reaction_begin(1, "time", None, 10_000)
        slices = [ev for ev in chrome.events if ev["ph"] == "B"]
        assert slices[-1]["ts"] == 10_000.0


class TestJsonlExport:
    def test_fields_match_taxonomy(self, tmp_path):
        program = Program(COUNTER_SRC)
        jsonl = program.observe(JsonlExporter())
        program.start()
        program.send("A")
        path = tmp_path / "trace.jsonl"
        jsonl.write(path)
        lines = path.read_text().splitlines()
        assert lines
        for i, line in enumerate(lines):
            rec = json.loads(line)
            assert rec["seq"] == i
            fields = set(rec) - {"ev", "seq"}
            assert fields == set(HOOK_EVENTS[rec["ev"]])


# ------------------------------------------------- behaviour preservation
class TestSignature:
    def test_signature_distinguishes_internal_emit_order(self):
        """Regression: two traces identical in steps but differing in
        internal-event emission order must not share a signature."""
        def fake_trace(order):
            trace = Trace()
            trace.on_reaction_begin(0, "event:A", None, 0)
            trace.on_step("main", (), "EmitInt", 3)
            for name in order:
                trace.on_emit_internal(name, 1, "main", 0)
            trace.on_reaction_end(0, "event:A", 1, 100)
            return trace

        assert fake_trace(["e", "f"]).signature() != \
            fake_trace(["f", "e"]).signature()
        assert fake_trace(["e", "f"]).signature() == \
            fake_trace(["e", "f"]).signature()

    @given(st.lists(st.one_of(
        st.just(("ev", "A")),
        st.integers(1, 40).map(lambda ms: ("adv", ms * 1000))),
        max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_hooks_never_change_signature(self, seq):
        """Enabling the full observer stack must not perturb execution."""
        timed = """
        input void A;
        internal void e;
        int v = 0;
        par do
           loop do
              await A;
              emit e;
           end
        with
           loop do
              await e;
              v = v + 1;
           end
        with
           loop do
              await 15ms;
              v = v + 2;
           end
        end
        """

        def drive(observe):
            program = Program(timed, trace=True, observe=observe)
            if observe:
                program.observe(ChromeTraceExporter())
                program.observe(JsonlExporter())
                program.observe(EventLog())
            program.start()
            for kind, value in seq:
                if kind == "ev":
                    program.send(value)
                else:
                    program.advance(value)
            return program

        bare, full = drive(False), drive(True)
        assert bare.trace.signature() == full.trace.signature()
        assert bare.sched.memory.snapshot() == \
            full.sched.memory.snapshot()


# ------------------------------------------------------- DES & platforms
class TestDesAndPlatforms:
    def test_simulator_counters_and_hooks(self):
        bus = HookBus()
        log = bus.subscribe(EventLog())
        sim = Simulator(hooks=bus)
        fired = []
        sim.after(100, lambda: fired.append(1))
        handle = sim.after(200, lambda: fired.append(2))
        sim.cancel(handle)
        sim.run()
        stats = sim.stats()
        assert stats["events_scheduled"] == 2
        assert stats["events_fired"] == 1
        assert stats["events_cancelled"] == 1
        assert stats["max_heap_size"] == 2
        assert log.names().count("des_schedule") == 2
        assert log.names().count("des_fire") == 1
        assert log.names().count("des_cancel") == 1

    def test_tinyos_world_stats(self):
        src = """
        input _message_t* Radio_receive;
        loop do
           await 50ms;
           _message_t msg;
           int* cnt = _Radio_getPayload(&msg);
           *cnt = 1;
           _Radio_send(1, &msg);
        end
        """
        world = TinyOsWorld(observe=True)
        world.add_mote(0, src)
        world.add_mote(1, "input _message_t* Radio_receive;\nloop do\n"
                          "   _message_t* msg = await Radio_receive;\nend")
        world.boot()
        world.run_until(500_000)
        stats = world.stats()
        assert stats["radio"]["radio.sent"] >= 9
        assert stats["radio"]["radio.delivered"] == \
            stats["radio"]["radio.sent"]
        assert stats["sim"]["events_fired"] > 0
        assert stats["motes"][0]["counters"]["reactions_total"] > 0

    def test_arduino_board_stats(self):
        board = ArduinoBoard(
            "loop do\n   await 100ms;\n   _digitalWrite(13, _HIGH);\nend",
            observe=True)
        board.boot()
        board.run_for("1s")
        stats = board.stats()
        assert stats["board"]["pin_writes"] == 10
        assert stats["counters"]["timers_fired_total"] == 10

    def test_sdl_host_stats(self):
        host = SdlHost("""
        input void Step;
        int n = 0;
        par/or do
           async do
              int i = 0;
              loop do
                 if i == 3 then
                    break;
                 end
                 i = i + 1;
                 emit Step;
              end
           end
        with
           loop do
              await Step;
              n = n + 1;
           end
        end
        return n;
        """, observe=True)
        host.run()
        stats = host.stats()
        assert stats["counters"]["async_steps_total"] > 0
        assert host.program.result == 3
