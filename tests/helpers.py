"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import subprocess

import pytest

from repro.dfa import build_dfa
from repro.fuzz.oracles import has_gcc
from repro.lang import parse
from repro.runtime import Program
from repro.sema import bind, check_bounded


def bound_of(src: str):
    return bind(parse(src))


def checked(src: str):
    bound = bound_of(src)
    check_bounded(bound)
    return bound


def dfa_of(src: str, **kw):
    return build_dfa(bound_of(src), **kw)


def run_program(src: str, *actions, trace: bool = False) -> Program:
    """Boot a program and apply (kind, ...) actions:
    ("ev", name[, value]) | ("at", spec) | ("adv", spec)."""
    program = Program(src, trace=trace)
    program.start()
    for action in actions:
        if program.done:
            break
        kind = action[0]
        if kind == "ev":
            program.send(action[1], action[2] if len(action) > 2 else None)
        elif kind == "at":
            program.at(action[1])
        elif kind == "adv":
            program.advance(action[1])
        else:
            raise ValueError(action)
    return program


HAVE_GCC = has_gcc()   # single source of truth: repro.fuzz.oracles

requires_gcc = pytest.mark.skipif(not HAVE_GCC, reason="gcc not available")


def compile_and_run_c(src: str, script: str, tmp_path, name: str = "prog",
                      opt: str = "-O1") -> str:
    """Compile a Céu program through the C backend and run the driver."""
    from repro.codegen import compile_to_c

    compiled = compile_to_c(bound_of(src), name=name)
    c_path = tmp_path / f"{name}.c"
    c_path.write_text(compiled.code)
    exe = tmp_path / name
    proc = subprocess.run(["gcc", opt, "-o", str(exe), str(c_path)],
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    out = subprocess.run([str(exe)], input=script, capture_output=True,
                         text=True, timeout=30)
    return out.stdout
