"""The incremental analysis engine (docs/ANALYSIS.md §Incremental).

The headline property: for *any* edit sequence, ``IncrementalAnalyzer
.analyze()`` output is byte-identical to a cold ``run_analysis`` over
the same source — the cache layers (region splicing, entry-tree damage
recovery, bounded memos, DFA replay) are pure optimisations.  The
random-walk test drives 200 edits through one analyzer instance and
asserts both the identity and that the caches actually hit.
"""

import random
from pathlib import Path

import pytest

from repro.analysis import IncrementalAnalyzer, run_analysis

CORPUS = Path(__file__).parent / "corpus"
EXAMPLES = Path(__file__).parent.parent / "examples" / "ceu"

COUNTER = """\
input int Restart;
internal void changed;
int v = 0;
par do
   loop do
      await 1s;
      v = v + 1;
      emit changed;
   end
with
   loop do
      v = await Restart;
      emit changed;
   end
end
"""


def cold(source: str, filename: str = "<ceu>") -> str:
    return run_analysis(source, filename=filename).to_json()


def check(analyzer: IncrementalAnalyzer, source: str) -> None:
    assert analyzer.analyze(source).to_json() == cold(
        source, analyzer.filename)


# ---------------------------------------------------------------- identity
def test_cold_run_matches_batch():
    an = IncrementalAnalyzer()
    check(an, COUNTER)
    assert an.stats["full_runs"] == 1


def test_comment_edit_replays_dfa_and_reuses_binder():
    an = IncrementalAnalyzer()
    check(an, COUNTER)
    lines = COUNTER.splitlines(keepends=True)
    edited = "".join(lines[:3] + ["// a comment\n"] + lines[3:])
    check(an, edited)
    assert an.stats["full_runs"] == 1          # no cold rerun
    assert an.stats["dfa_replays"] == 1        # token stream unchanged
    assert an.stats["bind_reuses"] == 1        # structure unchanged
    assert an.stats["bounds_replays"] == 1


def test_literal_edit_is_contained():
    an = IncrementalAnalyzer()
    check(an, COUNTER)
    check(an, COUNTER.replace("int v = 0;", "int v = 7;"))
    assert an.stats["full_runs"] == 1
    assert an.stats["regions_reused"] >= 1     # the par survived


def test_statement_edit_descends_into_compound():
    an = IncrementalAnalyzer()
    check(an, COUNTER)
    check(an, COUNTER.replace("v = v + 1;", "v = v + 2;"))
    assert an.stats["full_runs"] == 1
    assert an.stats["descents"] >= 1           # repaired inside the par
    assert an.stats["entries_reparsed"] >= 1


def test_parse_error_and_recovery():
    an = IncrementalAnalyzer()
    check(an, COUNTER)
    check(an, COUNTER + "loop do\n")           # unclosed: parse error
    check(an, COUNTER)                         # recovers cleanly


def test_bind_error_and_recovery():
    an = IncrementalAnalyzer()
    check(an, COUNTER)
    check(an, COUNTER.replace("v = v + 1;", "w = w + 1;"))
    assert an.last_bound is None
    check(an, COUNTER)
    assert an.last_bound is not None


def test_last_bound_exposed_for_lsp():
    an = IncrementalAnalyzer()
    an.analyze(COUNTER)
    bound = an.last_bound
    assert bound is not None
    assert any(sym.name == "v" for sym in bound.variables)


# ------------------------------------------------------------- random walk
def _random_edit(rng: random.Random, lines: list) -> list:
    """One line-granular edit: insert, delete, or mutate a line."""
    lines = list(lines)
    kind = rng.choice(("insert", "delete", "mutate", "dup"))
    if kind == "insert":
        pos = rng.randrange(len(lines) + 1)
        lines.insert(pos, rng.choice((
            "// edited\n", "int zz = 3;\n", "\n", "emit changed;\n")))
    elif kind == "delete" and lines:
        lines.pop(rng.randrange(len(lines)))
    elif kind == "mutate" and lines:
        pos = rng.randrange(len(lines))
        line = lines[pos]
        if any(ch.isdigit() for ch in line):
            lines[pos] = "".join(
                str((int(ch) + 1) % 10) if ch.isdigit() else ch
                for ch in line)
        else:
            lines[pos] = line.rstrip("\n") + " // x\n"
    else:
        pos = rng.randrange(len(lines)) if lines else 0
        if lines:
            lines.insert(pos, lines[pos])
    return lines


def test_random_edit_walk_byte_identical():
    """200 random edits through one analyzer: every report byte-identical
    to a cold run, and the caches provably did work."""
    rng = random.Random(20110214)              # PPoPP'11 ;)
    base = (EXAMPLES / "counter.ceu").read_text()
    an = IncrementalAnalyzer(filename="walk.ceu")
    check(an, base)
    lines = base.splitlines(keepends=True)
    for step in range(200):
        lines = _random_edit(rng, lines)
        source = "".join(lines)
        got = an.analyze(source).to_json()
        want = cold(source, "walk.ceu")
        assert got == want, f"diverged at step {step}"
        # occasionally jump back to a known-good base so the walk keeps
        # exercising the fast paths, not only error recovery
        if rng.random() < 0.15:
            lines = base.splitlines(keepends=True)
            source = "".join(lines)
            assert an.analyze(source).to_json() == cold(source, "walk.ceu")
    stats = an.stats
    assert stats["analyses"] >= 200
    # the point of the exercise: the caches must actually hit
    assert stats["regions_reused"] > 0
    assert stats["bounded_hits"] > 0
    assert stats["dfa_replays"] > 0
    assert stats["full_runs"] < stats["analyses"]


@pytest.mark.parametrize("path", sorted(CORPUS.glob("deep_*.ceu")))
def test_corpus_edit_identity(path):
    source = path.read_text()
    an = IncrementalAnalyzer(filename=str(path))
    check(an, source)
    lines = source.splitlines(keepends=True)
    mid = len(lines) // 2
    check(an, "".join(lines[:mid] + ["// keystroke\n"] + lines[mid:]))
    check(an, source)
    assert an.stats["full_fallbacks"] == 0
    assert an.stats["full_runs"] == 1
