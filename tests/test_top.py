"""``repro top`` rendering (PR 9, ``repro.obs.top``).

Frames are pure functions of (source snapshots, fake clock), so the
dashboard is tested to the byte: throughput rates from counter deltas,
watchdog colouring, the federated shard table, and the keybinding
state machine.
"""

import io

from repro.obs import Top
from repro.obs.top import _fmt


def _snap(reactions=0, fired=0, now_us=0, **extra) -> dict:
    snap = {
        "schema": 1, "instances": 4, "spawned": 4, "done": 0,
        "now_us": now_us,
        "sim": {"events_fired": fired},
        "merged": {"counters": {"reactions_total": reactions},
                   "gauges": {}, "histograms": {}},
    }
    snap.update(extra)
    return snap


def _top(frames, **kw):
    """A Top over a canned frame sequence and a stepping clock."""
    feed = iter(frames)
    clock = {"t": 0.0}

    def source():
        return next(feed)

    def tick():
        clock["t"] += 1.0
        return clock["t"]

    out = io.StringIO()
    kw.setdefault("color", False)
    kw.setdefault("interval_s", 0)
    return Top(source, out=out, clock=tick, **kw), out


class TestFrames:
    def test_rates_come_from_counter_deltas(self):
        top, _ = _top([_snap(reactions=100, fired=50),
                       _snap(reactions=350, fired=150, now_us=1_000_000)])
        first = top.frame()
        assert "reactions 100 total" in first
        assert "/s" not in first.splitlines()[1]   # no delta yet
        second = top.frame()
        assert "(250.0/s)" in second
        assert "sim events 100.0/s" in second
        assert "sim now 1.0s" in second

    def test_latency_line_renders_percentiles(self):
        latency = {"count": 9, "p50": 80, "p95": 200, "p99": 4000,
                   "max": 5000}
        snap = _snap()
        snap["merged"]["histograms"]["reaction_latency_us"] = latency
        top, _ = _top([snap])
        frame = top.frame()
        assert "p50 80" in frame
        assert "p99 4.0k" in frame

    def test_watchdog_ok_and_flagged(self):
        ok = _snap(watchdog={"flagged": [], "fleet_p50_us": 70.0})
        top, _ = _top([ok])
        assert "watchdog   ok" in top.frame()
        bad = _snap(watchdog={"flagged": [
            {"instance": 3, "reason": "stuck", "overdue_deadline": 9,
             "queued_inputs": 2},
            {"instance": 1, "reason": "lagging", "p50_us": 900.0,
             "fleet_p50_us": 70.0}]})
        top, _ = _top([bad])
        frame = top.frame()
        assert "1 stuck, 1 lagging" in frame
        assert "inst      3 stuck" in frame
        assert "inst      1 lagging" in frame

    def test_watchdog_detail_toggles_off(self):
        bad = _snap(watchdog={"flagged": [
            {"instance": 3, "reason": "stuck", "overdue_deadline": 9,
             "queued_inputs": 2}]})
        top, _ = _top([bad, bad])
        top.handle_key("w")
        assert "inst      3" not in top.frame()

    def test_shard_table_for_federated_snapshots(self):
        snap = _snap(shards={
            "s1:9464": {"up": True, "instances": 3,
                        "reactions_total": 1200, "p99_us": 410.0,
                        "staleness_s": 0.2},
            "s2:9464": {"up": False, "instances": None,
                        "reactions_total": None, "p99_us": None,
                        "staleness_s": 31.0},
        })
        top, _ = _top([snap])
        frame = top.frame()
        assert "shard" in frame
        assert "s1:9464" in frame
        assert "DOWN" in frame
        assert "31.0" in frame

    def test_wallclock_line(self):
        snap = _snap(wallclock={"running": True, "speed": 50.0,
                                "now_us": 0, "deadline_misses": 3})
        top, _ = _top([snap])
        frame = top.frame()
        assert "speed 50.0x" in frame
        assert "misses 3" in frame

    def test_snapshot_without_wallclock_renders_placeholder(self):
        """A snapshot predating the wallclock block (older shard,
        detached farm, a postmortem bundle's fleet.json) still renders
        the line — with ``--`` placeholders, never a KeyError."""
        top, _ = _top([_snap()])
        frame = top.frame()
        assert "wallclock  speed --   misses --" in frame

    def test_snapshot_without_watchdog_renders_placeholder(self):
        top, _ = _top([_snap()])
        frame = top.frame()
        assert "watchdog   --" in frame

    def test_postmortem_fleet_snapshot_renders(self):
        """The exact shape ``repro postmortem`` finds in fleet.json —
        counters only, no watchdog, no wallclock — paints a full frame."""
        top, _ = _top([{
            "schema": 1, "instances": 3, "spawned": 3, "done": 0,
            "now_us": 500_000, "sim": {"events_fired": 12},
            "merged": {"counters": {"reactions_total": 42},
                       "gauges": {}, "histograms": {}},
        }])
        frame = top.frame()
        assert "reactions 42 total" in frame
        assert "wallclock  speed --" in frame
        assert "watchdog   --" in frame


class TestLoopAndKeys:
    def test_quit_keys(self):
        top, _ = _top([_snap()])
        assert top.handle_key("q") is False
        assert top.handle_key("\x03") is False
        assert top.handle_key("x") is True

    def test_pause_freezes_sampling(self):
        top, _ = _top([_snap(reactions=10), _snap(reactions=99)])
        top.frame()
        top.handle_key("p")
        frame = top.frame()                # must not consume the feed
        assert "reactions 10 total" in frame
        assert "paused" in frame
        top.handle_key(" ")
        assert "reactions 99 total" in top.frame()

    def test_run_paints_n_frames(self):
        top, out = _top([_snap(reactions=i) for i in range(3)])
        assert top.run(frames=3) == 3
        assert out.getvalue().count("repro top —") == 3

    def test_run_stops_when_source_is_exhausted(self):
        top, _ = _top([_snap()])
        try:
            top.run(frames=5)
        except StopIteration:
            pass                            # acceptable: source raised

    def test_color_mode_emits_ansi(self):
        top, out = _top([_snap()], color=True)
        assert "\x1b[1m" in top.frame()


class TestFmt:
    def test_scaling(self):
        assert _fmt(950) == "950"
        assert _fmt(12_345, 1) == "12.3k"
        assert _fmt(3_400_000) == "3.4M"
        assert _fmt(2_100_000_000) == "2.1G"
        assert _fmt(None) == "-"
        assert _fmt(1.5) == "1.5"
