"""The evaluation harness: every table/figure reproduces the paper's shape."""

from repro.eval import blink, figures, table1, table2


class TestTable1:
    def test_ceu_always_larger(self):
        for row in table1.table1():
            assert row.ceu_rom > row.nesc_rom
            assert row.ceu_ram > row.nesc_ram

    def test_rom_gap_shrinks_with_complexity(self):
        """The paper's headline: the Céu−nesC difference decreases as
        application complexity grows."""
        rows = table1.table1()
        diffs = [r.diff_rom for r in rows]
        assert diffs == sorted(diffs, reverse=True)

    def test_relative_overhead_monotone(self):
        rows = table1.table1()
        rel = [r.rel_rom_overhead for r in rows]
        assert rel == sorted(rel, reverse=True)
        assert rel[0] > 1.0      # Blink: overhead dominates (paper: 187%)
        assert rel[-1] < 0.3     # Server: overhead amortised (paper: 7%)

    def test_magnitudes_within_2x_of_paper(self):
        for row in table1.table1():
            paper = table1.PAPER[row.app]
            assert 0.5 <= row.nesc_rom / paper["nesc_rom"] <= 2.0
            assert 0.5 <= row.ceu_rom / paper["ceu_rom"] <= 2.0
            assert 0.5 <= row.ceu_ram / paper["ceu_ram"] <= 2.0

    def test_render_contains_all_apps(self):
        text = table1.render(table1.table1())
        for app in table1.APPS:
            assert app in text


class TestTable2:
    def test_all_eight_cells_match_paper_within_tolerance(self):
        for result in table2.table2():
            paper = table2.PAPER[(result.system, result.senders,
                                  result.loops)]
            assert abs(result.total_s - paper) / paper < 0.05, result

    def test_no_losses_with_one_sender(self):
        result = table2.run_ceu(senders=1, loops=False, n_messages=500)
        assert result.lost == 0 and result.received == 500

    def test_loops_cost_is_negligible(self):
        base = table2.run_ceu(senders=1, loops=False)
        loaded = table2.run_ceu(senders=1, loops=True)
        assert loaded.total_s - base.total_s < 0.3
        assert loaded.background_iterations > 10_000   # fair scheduling

    def test_two_senders_ceu_faster_than_mantis(self):
        ceu = table2.run_ceu(senders=2)
        mantis = table2.run_mantis(senders=2)
        assert ceu.total_s < mantis.total_s

    def test_ceu_receiver_actually_counts(self):
        result = table2.run_ceu(senders=1, n_messages=100)
        assert result.received == 100


class TestBlinkExperiment:
    def test_ceu_stays_synchronized(self):
        result = blink.run_ceu(duration_us=60_000_000)
        assert result.sync_ratio == 1.0
        # drift is bounded by one driver step, never accumulating
        assert result.max_drift_us <= 8_000

    def test_asynchronous_systems_drift(self):
        mantis = blink.run_mantis(duration_us=60_000_000)
        occam = blink.run_occam(duration_us=60_000_000)
        assert mantis.sync_ratio < 0.5
        assert occam.sync_ratio < 0.5
        assert mantis.max_drift_us > 50_000
        assert occam.max_drift_us > 50_000

    def test_drift_grows_with_duration(self):
        short = blink.run_mantis(duration_us=30_000_000)
        long = blink.run_mantis(duration_us=240_000_000)
        assert long.max_drift_us > short.max_drift_us


class TestFigures:
    def test_figure1_reaction_chains(self):
        result = figures.figure1()
        summary = result.reaction_summary()
        assert summary[0][0] == "boot"
        assert summary[1] == ("event:A", 2, False)   # trails 1 and 3
        assert summary[2] == ("event:A", 0, True)    # discarded
        assert summary[3][0] == "event:B"
        assert result.terminated_before_c
        assert result.marks == [1, 3, 2, 31, 4]

    def test_figure2_sixth_occurrence(self):
        result = figures.figure2()
        assert result.detected
        assert result.occurrences_to_conflict == 6
        assert "digraph" in result.dot
        assert "color=red" in result.dot

    def test_figure3_priorities_outer_lower(self):
        result = figures.figure3()
        priorities = dict(result.join_priorities)
        assert priorities["loop-end"] > priorities["par/or-join"] > \
            priorities["par/and-join"]
        assert len(result.graph.await_nodes()) == 4
        assert "digraph" in result.dot
