"""``repro why --diff`` and :func:`repro.obs.diff_slices`: comparing
two causal slices across a semantic divergence (the bisect aid for
three-way oracle disagreements).

The normalization contract under test: slice span ids are renumbered
1..n *within each slice*, so the shared causal prefix of two replays
that diverge later compares byte-equal and the unified diff pinpoints
exactly where the histories fork.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.fuzz.gen import script_text
from repro.obs import CausalGraph, diff_slices
from repro.runtime.program import Program

#: a re-triggerable §2.2 chain: every I bumps the counter and emits b
PULSE = """\
input void I;
internal void b;
int n = 0;
par do
   loop do
      await I;
      n = n + 1;
      emit b;
   end
with
   loop do
      await b;
   end
end
"""

ONE_PULSE = [("E", "I", None)]
TWO_PULSES = [("E", "I", None), ("E", "I", None)]


def replay(src: str, script, reverse_seeds: bool = False) -> CausalGraph:
    program = Program(src, reverse_seeds=reverse_seeds)
    graph = program.observe(CausalGraph(program.hooks))
    program.start()
    for item in script:
        if item[0] == "E":
            program.send(item[1], item[2])
        else:
            program.at(item[1])
    return graph


class TestDiffSlices:
    def test_identical_replays_diff_empty(self):
        a = replay(PULSE, ONE_PULSE)
        b = replay(PULSE, ONE_PULSE)
        na, nb = a.find("event:b"), b.find("event:b")
        assert diff_slices(a, na.span, b, nb.span) == ""

    def test_normalized_ids_start_at_one(self):
        graph = replay(PULSE, ONE_PULSE)
        node = graph.find("event:b")
        text = graph.render_slice(node.span, normalize=True)
        lines = text.splitlines()
        assert lines[0].startswith("[1] ")
        # ids are dense 1..n in slice (span) order
        ids = [int(line.split("]", 1)[0][1:]) for line in lines]
        assert ids == sorted(ids)
        # raw render of the same slice uses the absolute span counter —
        # sparse, because elided step spans still consumed ids
        raw_ids = [int(line.split("]", 1)[0][1:])
                   for line in graph.render_slice(node.span).splitlines()]
        assert raw_ids[-1] > ids[-1]

    def test_divergence_produces_unified_diff(self):
        a = replay(PULSE, ONE_PULSE)
        b = replay(PULSE, TWO_PULSES)
        na, nb = a.find("event:b"), b.find("event:b")
        text = diff_slices(a, na.span, b, nb.span,
                           label_a="one", label_b="two")
        assert text != ""
        lines = text.splitlines()
        assert lines[0] == "--- one"
        assert lines[1] == "+++ two"
        # the fork: run a's last b is emitted straight out of reaction
        # #1; run b re-awaits and emits it from reaction #2
        assert any(line.startswith("-") and "emit b" in line
                   for line in lines)
        assert any(line.startswith("+") and "reaction #2" in line
                   for line in lines)
        # the shared boot-time prefix appears as context, not as +/-
        assert any(line.startswith(" ") for line in lines)

    def test_shared_prefix_is_byte_equal_up_to_the_fork(self):
        """The normalization contract: the two slices compare
        line-for-line byte-equal through the whole shared causal
        prefix (boot spawns, the awaits, reaction #1's resume), and
        first differ at the fork itself."""
        a = replay(PULSE, ONE_PULSE)
        b = replay(PULSE, TWO_PULSES)
        na, nb = a.find("event:b"), b.find("event:b")
        ra = a.render_slice(na.span, normalize=True).splitlines()
        rb = b.render_slice(nb.span, normalize=True).splitlines()
        fork = next(i for i, (la, lb) in enumerate(zip(ra, rb))
                    if la != lb)
        assert fork >= 5, f"prefix too short: forked at line {fork}"
        assert ra[:fork] == rb[:fork]
        # run a forks into the emit; run b into the re-await
        assert "emit b" in ra[fork]
        assert "awaits ext:I" in rb[fork]

    def test_diff_is_deterministic(self):
        first = diff_slices(*self._pair())
        second = diff_slices(*self._pair())
        assert first == second

    @staticmethod
    def _pair():
        a = replay(PULSE, ONE_PULSE)
        b = replay(PULSE, TWO_PULSES)
        return a, a.find("event:b").span, b, b.find("event:b").span


class TestCliWhyDiff:
    @pytest.fixture
    def prog(self, tmp_path):
        path = tmp_path / "pulse.ceu"
        path.write_text(PULSE)
        return path

    def script_file(self, tmp_path, name, script):
        path = tmp_path / name
        path.write_text(script_text(script))
        return path

    def test_identical_slices_exit_zero(self, prog, tmp_path, capsys):
        inputs = self.script_file(tmp_path, "one.script", ONE_PULSE)
        code = main(["why", str(prog), "--inputs", str(inputs),
                     "--at", "event:b", "--diff"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slices identical" in out

    def test_reverse_seeds_on_deterministic_program(self, prog,
                                                    tmp_path, capsys):
        """Flipping every open seeding order must not move the causal
        slice of an analysis-clean program — exit 0 is the §2.6
        schedule-independence claim, per slice."""
        inputs = self.script_file(tmp_path, "one.script", ONE_PULSE)
        code = main(["why", str(prog), "--inputs", str(inputs),
                     "--at", "event:b", "--diff",
                     "--diff-reverse-seeds"])
        out = capsys.readouterr().out
        assert code == 0
        assert "slices identical" in out
        assert "(reverse seeds)" in out

    def test_diverging_inputs_exit_one_with_diff(self, prog, tmp_path,
                                                 capsys):
        one = self.script_file(tmp_path, "one.script", ONE_PULSE)
        two = self.script_file(tmp_path, "two.script", TWO_PULSES)
        code = main(["why", str(prog), "--inputs", str(one),
                     "--at", "event:b", "--diff",
                     "--diff-inputs", str(two)])
        out = capsys.readouterr().out
        assert code == 1
        assert "causal slices diverge" in out
        assert "--- a: " in out and "+++ b: " in out

    def test_diff_file_second_revision(self, prog, tmp_path, capsys):
        """--diff-file replays a *different program revision* — the
        two-slice diff shows where the revised reaction history forks."""
        revised = tmp_path / "pulse2.ceu"
        # the revision routes b through an extra internal hop c, so the
        # last b's ancestry gains an emit-c/resume link the original
        # never had
        revised.write_text("""\
input void I;
internal void b;
internal void c;
int n = 0;
par do
   loop do
      await I;
      n = n + 1;
      emit c;
   end
with
   loop do
      await c;
      emit b;
   end
with
   loop do
      await b;
   end
end
""")
        inputs = self.script_file(tmp_path, "one.script", ONE_PULSE)
        code = main(["why", str(prog), "--inputs", str(inputs),
                     "--at", "event:b", "--diff",
                     "--diff-file", str(revised)])
        out = capsys.readouterr().out
        assert code == 1
        assert "causal slices diverge" in out
        assert "pulse2.ceu" in out

    def test_missing_target_in_second_replay(self, prog, tmp_path,
                                             capsys):
        inputs = self.script_file(tmp_path, "one.script", ONE_PULSE)
        code = main(["why", str(prog), "--inputs", str(inputs),
                     "--at", "event:b", "--diff",
                     "--diff-at", "trail:phantom"])
        err = capsys.readouterr().err
        assert code == 1
        assert "no occurrence" in err

    def test_plain_why_unchanged(self, prog, tmp_path, capsys):
        inputs = self.script_file(tmp_path, "one.script", ONE_PULSE)
        code = main(["why", str(prog), "--inputs", str(inputs),
                     "--at", "event:b"])
        out = capsys.readouterr().out
        assert code == 0
        assert "causal slice of" in out
        assert "emit b" in out
