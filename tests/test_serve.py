"""The HTTP telemetry plane (PR 9 tentpole, ``repro.obs.serve``).

The load-bearing properties:

* **every endpoint answers with the documented shape** — ``/metrics``
  is a valid Prometheus 0.0.4 exposition (checked by the same
  structural validator CI runs), ``/snapshot`` round-trips the fleet
  snapshot, ``/healthz`` flips to 503 exactly when the watchdog sees a
  stuck instance, ``/readyz`` flips to 503 while draining;
* **scrapes observe reaction boundaries** — provider calls run under
  the shared driver lock;
* **graceful shutdown** — SIGTERM on a served ``repro farm`` drains
  the driver, writes the final snapshot, flushes the stream, exits 0
  (pinned end-to-end by a subprocess test, same path CI smokes).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from check_prom import check_prom
from repro.obs import AdminServer, LineTee, Profiler
from repro.runtime.farm import Farm
from repro.runtime.wallclock import WallClockDriver

TICKER = """
loop do
   await 250ms;
end
"""

ROOT = Path(__file__).parent.parent


def _get(url: str, timeout: float = 5.0) -> tuple[int, bytes, str]:
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            return resp.status, resp.read(), resp.headers.get(
                "Content-Type", "")
    except urllib.error.HTTPError as err:
        return err.code, err.read(), err.headers.get("Content-Type", "")


@pytest.fixture()
def served():
    """A driven farm behind an AdminServer (no wall-clock thread —
    virtual time is advanced explicitly by each test)."""
    tee = LineTee()
    farm = Farm(TICKER, n=4, program="tick", sinks=[tee])
    farm.run_until(1_000_000)
    driver = WallClockDriver(farm)
    profiler = Profiler(source=TICKER)
    server = AdminServer(driver.snapshot, health_fn=farm.watchdog,
                         ready_fn=lambda: True, events=tee,
                         flamegraph_fn=profiler.collapsed,
                         lock=driver.lock).start()
    try:
        yield server, farm, tee
    finally:
        server.close()
        farm.close()


class TestEndpoints:
    def test_metrics_is_valid_exposition(self, served):
        server, _, _ = served
        code, body, ctype = _get(server.address + "/metrics")
        assert code == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        text = body.decode()
        assert check_prom(text) == []
        assert "repro_reactions_total" in text
        # the server's own request metrics ride along after first scrape
        code, body, _ = _get(server.address + "/metrics")
        assert "repro_telemetry_requests_total" in body.decode()
        assert check_prom(body.decode()) == []

    def test_snapshot_round_trips(self, served):
        server, farm, _ = served
        code, body, ctype = _get(server.address + "/snapshot")
        assert code == 200
        assert ctype.startswith("application/json")
        snap = json.loads(body)
        assert snap["instances"] == 4
        assert snap["now_us"] == 1_000_000
        assert snap["merged"]["counters"]["reactions_total"] == \
            farm.fleet_snapshot()["merged"]["counters"]["reactions_total"]
        assert snap["wallclock"]["speed"] == 1.0
        assert "watchdog" in snap

    def test_healthz_ok_and_readyz_ok(self, served):
        server, _, _ = served
        code, body, _ = _get(server.address + "/healthz")
        assert code == 200
        assert json.loads(body)["status"] == "ok"
        code, body, _ = _get(server.address + "/readyz")
        assert code == 200

    def test_healthz_503_when_stuck(self, served):
        server, _, _ = served
        server.health_fn = lambda: {"flagged": [
            {"instance": 0, "reason": "stuck", "overdue_deadline": 1}]}
        code, body, _ = _get(server.address + "/healthz")
        assert code == 503
        payload = json.loads(body)
        assert payload["status"] == "stuck"
        assert payload["stuck"] == 1

    def test_healthz_lagging_degrades_body_not_code(self, served):
        server, _, _ = served
        server.health_fn = lambda: {"flagged": [
            {"instance": 2, "reason": "lagging"}]}
        code, body, _ = _get(server.address + "/healthz")
        assert code == 200
        assert json.loads(body)["lagging"] == 1

    def test_readyz_503_while_draining(self, served):
        server, _, _ = served
        server.draining.set()
        code, body, _ = _get(server.address + "/readyz")
        assert code == 503
        assert json.loads(body)["status"] == "draining"

    def test_flamegraph_collapsed_stacks(self, served):
        server, _, _ = served
        code, body, _ = _get(server.address + "/flamegraph")
        assert code == 200
        for line in body.decode().splitlines():
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) > 0

    def test_events_ring_catchup(self, served):
        server, _, tee = served
        code, body, ctype = _get(server.address
                                 + "/events?last=5&max=5")
        assert code == 200
        assert "ndjson" in ctype
        lines = body.decode().splitlines()
        assert len(lines) == 5
        for line in lines:
            record = json.loads(line)
            assert "ev" in record
            assert "inst" in record
        assert lines == list(tee.tail(5))

    def test_events_timeout_cuts_the_poll(self, served):
        server, _, _ = served
        start = time.monotonic()
        code, body, _ = _get(server.address
                             + "/events?timeout_s=1", timeout=10)
        assert code == 200
        assert time.monotonic() - start < 5

    def test_unknown_endpoint_404s_with_index_pointer(self, served):
        server, _, _ = served
        code, body, _ = _get(server.address + "/nope")
        assert code == 404
        assert json.loads(body)["see"] == "/"
        code, body, _ = _get(server.address + "/")
        assert code == 200
        assert "/metrics" in body.decode()

    def test_request_metering_counts_endpoints(self, served):
        server, _, _ = served
        _get(server.address + "/snapshot")
        _get(server.address + "/snapshot")
        # metering lands after the response is flushed — poll briefly
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            snap = server.registry.snapshot()
            series = dict((tuple(k), v) for k, v in
                          snap["telemetry_requests_total"]["series"])
            if series.get(("/snapshot", "200"), 0) >= 2:
                break
            time.sleep(0.01)
        assert series[("/snapshot", "200")] >= 2


class TestGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """End-to-end: serve a farm, wait for readiness, SIGTERM, and
        assert the graceful path ran (exit 0, final snapshot on disk,
        stream flushed and parseable)."""
        snap_path = tmp_path / "final.json"
        jsonl_path = tmp_path / "events.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "farm",
             str(ROOT / "examples" / "ceu" / "counter.ceu"),
             "-n", "10", "--serve", "127.0.0.1:0", "--speed", "50",
             "--snapshot", str(snap_path), "--jsonl", str(jsonl_path)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=tmp_path)
        try:
            banner = proc.stdout.readline()
            assert "serving telemetry on http://" in banner
            address = banner.split("serving telemetry on ")[1].split()[0]
            code, body, _ = _get(address + "/healthz", timeout=10)
            assert code == 200
            proc.send_signal(signal.SIGTERM)
            out = proc.stdout.read()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert "drained at" in out
        final = json.loads(snap_path.read_text())
        assert final["instances"] == 10
        assert "watchdog" in final
        with jsonl_path.open() as fh:
            records = [json.loads(line) for line in fh]
        assert records, "stream was not flushed on drain"
        assert all("ev" in r for r in records)


def _post(url: str, timeout: float = 5.0) -> tuple[int, bytes]:
    req = urllib.request.Request(url, data=b"", method="POST")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.read()


@pytest.fixture()
def ckpt_served(tmp_path):
    """A recorded farm behind an AdminServer with the checkpoint plane
    attached — the wiring ``repro farm --serve --record`` does."""
    from repro.runtime.checkpoint import list_postmortems

    tee = LineTee()
    farm = Farm(TICKER, n=2, program="tick", sinks=[tee], record=True,
                postmortem_dir=tmp_path / "pm")
    farm.run_until(1_000_000)
    driver = WallClockDriver(farm)
    ck_dir = tmp_path / "ck"

    def checkpoint_fn(instance: int) -> dict:
        ck = farm.checkpoint(instance)
        ck_dir.mkdir(parents=True, exist_ok=True)
        path = ck.save(ck_dir / f"i{instance}.json")
        return {"instance": instance, "describe": ck.describe(),
                "boundary": ck.boundary, "path": str(path)}

    server = AdminServer(
        driver.snapshot, health_fn=farm.watchdog,
        ready_fn=lambda: True, events=tee,
        checkpoint_fn=checkpoint_fn,
        postmortems_fn=lambda: list_postmortems(farm.postmortem_dir),
        lock=driver.lock).start()
    try:
        yield server, farm, tee
    finally:
        server.close()
        farm.close()


class TestCheckpointPlane:
    def test_post_checkpoint_round_trips(self, ckpt_served):
        from repro.runtime.checkpoint import Checkpoint

        server, farm, _ = ckpt_served
        code, body = _post(server.address + "/checkpoint?instance=1")
        assert code == 200
        payload = json.loads(body)
        assert payload["instance"] == 1
        assert payload["describe"].startswith("checkpoint v1")
        assert payload["boundary"]["reactions"] >= 1
        saved = Checkpoint.load(payload["path"])
        assert saved.boundary == payload["boundary"]
        # the farm counter rides into /metrics via the fleet snapshot
        code, body, _ = _get(server.address + "/metrics")
        text = body.decode()
        assert check_prom(text) == []
        assert "repro_farm_checkpoints_total" in text

    def test_post_checkpoint_rejects_bad_instances(self, ckpt_served):
        server, _, _ = ckpt_served
        code, body = _post(server.address + "/checkpoint?instance=99")
        assert code == 400
        assert "error" in json.loads(body)
        code, body = _post(server.address + "/checkpoint?instance=x")
        assert code == 400
        assert "integer" in json.loads(body)["error"]

    def test_post_without_provider_404s(self, served):
        server, _, _ = served
        code, body = _post(server.address + "/checkpoint")
        assert code == 404
        assert "no checkpoint provider" in json.loads(body)["error"]

    def test_post_to_get_endpoint_is_405(self, ckpt_served):
        server, _, _ = ckpt_served
        code, _ = _post(server.address + "/metrics")
        assert code == 405

    def test_postmortems_endpoint_lists_bundles(self, ckpt_served):
        server, farm, _ = ckpt_served
        code, body, _ = _get(server.address + "/postmortems")
        assert code == 200
        assert json.loads(body) == {"count": 0, "postmortems": []}
        farm.postmortem(0, reason="manual")
        code, body, _ = _get(server.address + "/postmortems")
        listing = json.loads(body)
        assert listing["count"] == 1
        assert listing["postmortems"][0]["reason"] == "manual"
        assert listing["postmortems"][0]["bundle"].startswith("tick-i0")

    def test_postmortems_without_provider_404s(self, served):
        server, _, _ = served
        code, body, _ = _get(server.address + "/postmortems")
        assert code == 404
        assert "no postmortem provider" in json.loads(body)["error"]

    def test_dropped_event_lines_are_exported(self, served):
        server, _, tee = served
        q = tee.subscribe(maxsize=1)
        try:
            for n in range(3):
                tee._line('{"ev": "x", "n": %d}' % n)
        finally:
            tee.unsubscribe(q)
        assert tee.total_dropped == 2
        code, body, _ = _get(server.address + "/metrics")
        text = body.decode()
        assert check_prom(text) == []
        assert "repro_telemetry_events_dropped_total 2" in text
