"""Extended gcc differential corpus: timers in batches, nested kills,
value blocks, emit values, computed timeouts, the Table-1 apps."""

import pytest

from helpers import bound_of, compile_and_run_c, requires_gcc, run_program

CORPUS = [
    ("timer_batch", """
int v = 0;
par/and do
   await 100ms;
   v = v + 1;
with
   await 100ms;
   v = v + 10;
end
_printf("v=%d\\n", v);
return v;
""", [("T", 100_000)]),
    ("chained_deltas", """
input int Start;
int v = await Start;
par/or do
   loop do
      await 10min;
      v = v + 1;
   end
with
   await 1h35min;
end
_printf("v=%d\\n", v);
return v;
""", [("E", "Start", 10), ("T", 5_700_000_000)]),
    ("nested_or_kill", """
int n = 0;
par/or do
   par/and do
      await 10ms;
      n = n + 1;
   with
      await 20ms;
      n = n + 2;
   end
with
   await 15ms;
   n = n + 100;
end
_printf("n=%d\\n", n);
return n;
""", [("T", 1_000_000)]),
    ("do_value", """
input void A;
int v;
v = do
   await A;
   return 5;
end;
_printf("v=%d\\n", v);
return v + 1;
""", [("E", "A", 0)]),
    ("emit_value", """
input void Go;
internal int e;
int got;
par/or do
   got = await e;
with
   await Go;
   emit e = 42;
   await 1us;
end
_printf("got=%d\\n", got);
return got;
""", [("E", "Go", 0)]),
    ("computed_timeout", """
input int Set;
int dt = await Set;
await (dt * 1000);
_printf("fired\\n");
return dt;
""", [("E", "Set", 7), ("T", 6_999), ("T", 7_000)]),
    ("return_through_two_pars", """
input void A;
int v;
v = par do
   par do
      await A;
      return 7;
   with
      await forever;
   end
   return 0;
with
   await forever;
end;
_printf("v=%d\\n", v);
return v;
""", [("E", "A", 0)]),
    ("ring_monitor_shape", """
input void Recv;
int msgs = 0;
int downs = 0;
par do
   loop do
      await Recv;
      msgs = msgs + 1;
   end
with
   loop do
      par/or do
         await 5s;
         downs = downs + 1;
         await forever;
      with
         await Recv;
      end
   end
end
""", [("T", 4_000_000), ("E", "Recv", 0), ("T", 8_000_000),
      ("E", "Recv", 0), ("T", 14_000_000), ("E", "Recv", 0)]),
    ("restart_loop", """
input void R;
int runs = 0;
par/or do
   loop do
      par/or do
         await R;
      with
         loop do
            await 1s;
            runs = runs + 1;
         end
      end
   end
with
   await 10s;
end
_printf("runs=%d\\n", runs);
return runs;
""", [("T", 2_500_000), ("E", "R", 0), ("T", 10_000_000)]),
]


def _drive_vm(src, script):
    actions = []
    for item in script:
        if item[0] == "E":
            actions.append(("ev", item[1], item[2]))
        else:
            actions.append(("at", item[1]))
    return run_program(src, *actions)


def _script_text(script):
    lines = []
    for item in script:
        if item[0] == "E":
            lines.append(f"E {item[1]} {item[2]}")
        else:
            lines.append(f"T {item[1]}")
    return "\n".join(lines) + "\n"


@requires_gcc
@pytest.mark.parametrize("name,src,script", CORPUS,
                         ids=[c[0] for c in CORPUS])
def test_extended_c_matches_vm(name, src, script, tmp_path):
    vm = _drive_vm(src, script)
    out = compile_and_run_c(src, _script_text(script), tmp_path, name)
    body, tail = out.rsplit("==DONE=", 1)
    assert body == vm.output()
    assert (tail[0] == "1") == vm.done
    if vm.done and isinstance(vm.result, int):
        ret = int(tail.split("RET=")[1].split("==")[0])
        assert ret == vm.result


@requires_gcc
@pytest.mark.parametrize("app", ["blink", "sense", "client", "server",
                                 "ring", "multihop"])
def test_apps_compile_to_c(app, tmp_path):
    """Every bundled WSN app lowers to C that gcc accepts (the paper's
    deployment path; linking needs the real TinyOS stubs)."""
    import subprocess

    from repro.apps import load
    from repro.codegen import compile_to_c

    compiled = compile_to_c(bound_of(load(app)), with_main=False, name=app)
    c_path = tmp_path / f"{app}.c"
    # stub the platform surface so the translation unit type-checks
    stubs = """
typedef struct { int pad[8]; } message_t;
static int TOS_NODE_ID, SERVER_ID, CLIENT_ID, PARENT_ID, FINISH;
static int *Radio_getPayload(void *m) { return (int *)m; }
static void Radio_send(int d, void *m) { (void)d; (void)m; }
static void Leds_set(int v) { (void)v; }
static void Leds_led0Toggle(void) {}
static void Leds_led1Toggle(void) {}
static void Leds_led2Toggle(void) {}
static void Sensor_read(void) {}
"""
    code = compiled.code.replace("/* ---- program C blocks", stubs +
                                 "\n/* ---- program C blocks")
    c_path.write_text(code)
    proc = subprocess.run(
        ["gcc", "-c", "-o", str(tmp_path / f"{app}.o"), str(c_path),
         "-Wno-unused"],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
