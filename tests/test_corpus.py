"""Checked-in regression corpus (tests/corpus/).

Ten generator-minted edge programs — deepest nesting, longest emit
chains, timer-heavy — frozen with their event scripts and expected
outcomes.  Each replay must reproduce the recorded status, return
value, printed output, the portable reaction signature, and the SHA-256
of the full VM signature; with gcc present, the §4.4 backend must agree
with the recording too.  Regenerate with ``tests/mint_corpus.py`` only
when semantics deliberately change — a diff here is a semantics change.
"""

import hashlib
import json
from pathlib import Path

import pytest

from helpers import requires_gcc
from repro.fuzz.oracles import run_c, run_vm

CORPUS = Path(__file__).parent / "corpus"
NAMES = sorted(p.stem for p in CORPUS.glob("*.ceu"))


def load(name):
    src = (CORPUS / f"{name}.ceu").read_text()
    expected = json.loads((CORPUS / f"{name}.json").read_text())
    script = [tuple(item) for item in expected["script"]]
    return src, script, expected


def test_corpus_is_complete():
    assert len(NAMES) == 10
    assert all((CORPUS / f"{n}.json").exists() for n in NAMES)


@pytest.mark.parametrize("name", NAMES)
def test_corpus_replay_vm(name):
    src, script, expected = load(name)
    vm = run_vm(src, script)
    assert vm.ok, vm.error
    assert vm.done == expected["done"]
    assert vm.result == expected["result"]
    assert vm.output == expected["output"]
    psig = [[trigger, list(emits)] for trigger, emits in vm.psig]
    assert psig == expected["portable_signature"]
    digest = hashlib.sha256(repr(vm.signature).encode()).hexdigest()
    assert digest == expected["signature_sha256"]


@requires_gcc
@pytest.mark.parametrize("name", NAMES)
def test_corpus_replay_c(name, tmp_path):
    src, script, expected = load(name)
    c = run_c(src, script, tmp_path, name=name)
    assert c.ok, c.error
    assert c.done == expected["done"]
    assert c.result == expected["result"]
    assert c.output == expected["output"]
    psig = [[trigger, list(emits)] for trigger, emits in c.psig]
    assert psig == expected["portable_signature"]
