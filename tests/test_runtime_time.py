"""Wall-clock time on the VM (§2.3): residual deltas, deadline chaining,
batching of equal deadlines, physical ordering."""

import pytest

from helpers import run_program
from repro.lang.errors import RuntimeCeuError
from repro.runtime import Program


class TestResidualDeltas:
    def test_paper_delta_example(self):
        """`await 10ms; v=1; await 1ms; v=2` with a single late go_time(15ms):
        both deadlines fire, in order, inside the one call."""
        p = Program("""
        int v;
        await 10ms;
        v = 1;
        await 1ms;
        v = 2;
        return v;
        """)
        p.sched.go_init()
        status = p.sched.go_time(15_000)
        assert status == "terminated"
        assert p.result == 2

    def test_deadlines_chain_logically(self):
        # 10 iterations of `await 10min` then check against 1h35min
        p = run_program("""
        input int Start;
        int v = await Start;
        par/or do
           loop do
              await 10min;
              v = v + 1;
           end
        with
           await 1h35min;
           _assert(v == 19);
        end
        return v;
        """, ("ev", "Start", 10), ("adv", "1h35min"))
        assert p.done and p.result == 19

    def test_sloppy_driver_does_not_accumulate_drift(self):
        """Driving time in ragged increments must not change tick count."""
        src = """
        int n = 0;
        par/or do
           loop do
              await 400ms;
              n = n + 1;
           end
        with
           await 60s;
        end
        return n;
        """
        neat = run_program(src, ("at", "60s"))
        p = Program(src)
        p.start()
        t = 0
        for step in (7_301, 13_007, 400_001, 999_983):
            while t < 60_000_000 and not p.done:
                t += step
                p.at(min(t, 60_000_000))
            if p.done:
                break
        assert neat.result == p.result == 150

    def test_await_delta_value(self):
        # awaiting yields the residual delta (observed - logical)
        p = Program("""
        int d = await 10ms;
        return d;
        """)
        p.sched.go_init()
        p.sched.go_time(15_000)
        assert p.result == 5_000


class TestOrderingAndBatching:
    def test_50_49_beats_100(self):
        p = run_program("""
        int v;
        par/or do
           await 50ms;
           await 49ms;
           v = 1;
        with
           await 100ms;
           v = 2;
        end
        return v;
        """, ("at", "100ms"))
        assert p.result == 1

    def test_equal_deadlines_fire_in_same_reaction(self):
        p = run_program("""
        int v = 0;
        par/and do
           await 100ms;
           v = v + 1;
        with
           await 100ms;
           v = v + 10;
        end
        return v;
        """, ("at", "100ms"))
        assert p.result == 11

    def test_distinct_deadlines_distinct_reactions(self, ):
        p = Program("""
        input void A;
        int log = 0;
        par do
           await 10ms;
           log = log * 10 + 1;
        with
           await 20ms;
           log = log * 10 + 2;
        with
           await 15ms;
           log = log * 10 + 3;
        end
        """, trace=True)
        p.start()
        p.at("1s")
        timed = [r for r in p.trace.reactions if r.trigger == "time"]
        assert [r.value for r in timed] == [10_000, 15_000, 20_000]

    def test_computed_timeout(self):
        p = run_program("""
        int dt = 500;
        await (dt * 1000);
        return 1;
        """, ("at", "499ms"))
        assert not p.done
        p.at("500ms")
        assert p.done

    def test_zero_timeout_next_go_time(self):
        p = Program("await (0);\nreturn 1;")
        p.sched.go_init()
        assert not p.done
        p.sched.go_time(0)
        assert p.done

    def test_time_cannot_go_backwards(self):
        p = Program("await 1s;")
        p.sched.go_init()
        p.sched.go_time(5_000)
        with pytest.raises(RuntimeCeuError):
            p.sched.go_time(4_000)

    def test_killed_timers_do_not_fire(self):
        p = run_program("""
        input void Stop;
        int n = 0;
        par/or do
           loop do
              await 10ms;
              n = n + 1;
           end
        with
           await Stop;
        end
        await 100ms;
        return n;
        """, ("adv", "25ms"), ("ev", "Stop"), ("adv", "1s"))
        assert p.result == 2

    def test_next_deadline_exposed(self):
        p = Program("await 30ms;")
        p.sched.go_init()
        assert p.sched.next_deadline() == 30_000

    def test_sampling_archetype(self):
        # par/and: the body reruns every 100ms *at minimum*
        # (once at boot, then on every 100ms boundary until the watchdog)
        p = run_program("""
        int runs = 0;
        par/or do
           loop do
              par/and do
                 runs = runs + 1;
              with
                 await 100ms;
              end
           end
        with
           await 1s;
        end
        return runs;
        """, ("at", "1s"))
        assert p.result == 11

    def test_watchdog_archetype(self):
        # par/or: restart the computation if it misses its deadline
        p = run_program("""
        input void Done;
        int timeouts = 0;
        loop do
           par/or do
              await Done;
              break;
           with
              await 100ms;
              timeouts = timeouts + 1;
           end
        end
        return timeouts;
        """, ("adv", "350ms"), ("ev", "Done"))
        assert p.result == 3
