"""The conformance-fuzzing subsystem tested on itself: generator
invariants, oracle behaviour, the shrinker, fault injection, and the
CLI front end (docs/FUZZING.md)."""

import json

import pytest

from helpers import requires_gcc
from repro.cli import main
from repro.fuzz import (CORPUS_PROFILES, FAULTS, PRIO, PROFILES,
                        FuzzRunner, GenCase, check_case, generate_case,
                        parse_script_text, script_text, shrink)
from repro.fuzz.gen import ROUND_US
from repro.fuzz.oracles import analyses_verdict, canon_psig, has_gcc, \
    run_vm
from repro.lang import parse
from repro.sema import bind, check_bounded


# ---------------------------------------------------------------------------
# generator invariants
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(30))
def test_generated_programs_are_well_formed(seed):
    case = generate_case(seed)
    check_bounded(bind(parse(case.src)))          # §2.5
    assert analyses_verdict(case.src) in ("accept", "refuse")


@pytest.mark.parametrize("seed", range(30))
def test_generated_programs_terminate_under_their_script(seed):
    case = generate_case(seed)
    vm = run_vm(case.src, case.script)
    assert vm.ok, vm.error
    assert vm.done, f"seed {seed} did not finish its script"


def test_generation_is_deterministic():
    a, b = generate_case(7), generate_case(7)
    assert a.src == b.src and a.script == b.script
    assert generate_case(8).src != a.src


@pytest.mark.parametrize("profile", sorted(CORPUS_PROFILES))
def test_profiles_generate_well_formed_programs(profile):
    from repro.fuzz.gen import ProgramGen
    for seed in range(5):
        case = ProgramGen(seed, CORPUS_PROFILES[profile], profile).case()
        check_bounded(bind(parse(case.src)))


def test_script_is_monotone_and_rendered():
    case = generate_case(11)
    times = [item[1] for item in case.script if item[0] == "T"]
    assert times == sorted(times)
    assert all(t % ROUND_US == 0 for t in times)
    text = script_text(case.script)
    assert text.count("\n") == len(case.script)


def test_script_text_round_trips():
    case = generate_case(11)
    assert parse_script_text(script_text(case.script)) == case.script
    assert parse_script_text("# note\n\nE A\n") == [("E", "A", 0)]
    with pytest.raises(ValueError):
        parse_script_text("Q what\n")


def test_profile_registry_covers_the_cli_choices():
    assert set(PROFILES) == {"diff", "deep", "emit", "timer", "prio"}
    assert PROFILES["prio"] is PRIO and PRIO.prio_gadgets > 0


@pytest.mark.parametrize("seed", range(8))
def test_prio_profile_programs_are_well_formed_and_terminate(seed):
    case = generate_case(seed, PRIO, "prio")
    check_bounded(bind(parse(case.src)))
    assert "par/or do" in case.src  # the gadgets made it in
    vm = run_vm(case.src, case.script)
    assert vm.ok and vm.done, vm.error


def test_prio_gadget_emits_in_glitch_free_order():
    """The inner rejoin's continuation (g*b) must run — and run after
    the direct branch's emit (g*a) — under §4.1 join priorities."""
    for seed in range(8):
        case = generate_case(seed, PRIO, "prio")
        if analyses_verdict(case.src) != "accept":
            continue
        vm = run_vm(case.src, case.script)
        gadget_reactions = [e for _t, e in vm.psig
                            if any(x.startswith("g") for x in e)]
        assert gadget_reactions, f"seed {seed}: gadgets never fired"
        for emits in gadget_reactions:
            pairs = [x for x in emits if x.startswith("g")]
            assert pairs == sorted(pairs), (seed, emits)
            assert any(x.endswith("b") for x in pairs), (seed, emits)


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(10))
def test_oracles_agree_without_c(seed):
    verdict, failures = check_case(generate_case(seed), use_c=False)
    assert not failures, failures[0].summary()
    assert verdict in ("accept", "refuse")


def test_vm_crash_is_reported_not_raised():
    case = GenCase(seed=0, src="input void A;\nawait A;",
                   script=[("E", "Missing", 0)])
    verdict, failures = check_case(case, use_c=False)
    assert [f.oracle for f in failures] == ["vm-crash"]


def test_ill_formed_program_is_reported():
    case = GenCase(seed=0, src="int v;\nloop do\nv = 1;\nend", script=[])
    verdict, failures = check_case(case, use_c=False)
    assert verdict == "ill-formed"
    assert failures and failures[0].oracle == "well-formed"


@requires_gcc
@pytest.mark.parametrize("fault", ["minus-to-plus", "drop-emit"])
def test_injected_faults_are_caught(fault, tmp_path):
    caught = False
    for seed in range(8):
        _v, failures = check_case(generate_case(seed), workdir=tmp_path,
                                  mutate=FAULTS[fault])
        if any(f.oracle == "vm-vs-c" for f in failures):
            caught = True
            break
    assert caught, f"fault {fault} survived 8 seeds"


@requires_gcc
def test_flat_prio_fault_is_caught_by_the_prio_profile(tmp_path):
    """ISSUE acceptance: the §4.1 flat-priority miscompilation was a
    blind spot of the plain profiles; the schedule-diverse `prio`
    profile must expose it within a handful of seeds."""
    caught = 0
    for seed in range(6):
        case = generate_case(seed, PRIO, "prio")
        _v, failures = check_case(case, workdir=tmp_path,
                                  mutate=FAULTS["flat-prio"])
        if any(f.oracle == "vm-vs-c" for f in failures):
            caught += 1
    assert caught, "flat-prio fault survived 6 prio seeds"
    # …and without the fault the same seeds are conflict-free
    for seed in range(6):
        case = generate_case(seed, PRIO, "prio")
        _v, failures = check_case(case, workdir=tmp_path)
        assert not failures, failures[0].summary()


def test_static_bounds_oracle_flags_an_unsound_bound():
    """Feed the comparison a deliberately understated bound."""
    from repro.analysis import ResourceBounds
    from repro.fuzz.oracles import bounds_violations

    case = generate_case(0)
    vm = run_vm(case.src, case.script, observe=True)
    assert vm.ok
    fake = ResourceBounds(
        max_trails=0, max_armed_timers=0, max_async_jobs=0,
        max_internal_emits=0, mem_slots=0, mem_bytes_host=0,
        mem_bytes_target16=0, dfa_states=0, dfa_transitions=0)
    violations = bounds_violations(fake, vm.stats)
    assert "max_trails" in violations and "mem_slots" in violations
    assert violations["mem_slots"]["observed"] > 0


def test_schedule_oracle_reverse_seeds_changes_no_observable():
    """Accepted programs must agree under the reversed seeding order
    (the oracle inside check_case); spot-check the mechanism directly."""
    for seed in range(5):
        case = generate_case(seed)
        if analyses_verdict(case.src) != "accept":
            continue
        fwd = run_vm(case.src, case.script)
        rev = run_vm(case.src, case.script, reverse_seeds=True)
        assert fwd.ok and rev.ok
        assert (fwd.done, fwd.result, fwd.output) == \
               (rev.done, rev.result, rev.output)
        assert canon_psig(fwd.psig) == canon_psig(rev.psig)
        assert fwd.memory == rev.memory


# ---------------------------------------------------------------------------
# shrinker
# ---------------------------------------------------------------------------

def test_shrinker_on_synthetic_predicate():
    """gcc-free shrinker check: 'output contains p1' as the failure."""
    case = generate_case(2)
    vm = run_vm(case.src, case.script)
    marker = next((line.split('"')[1].split()[0]
                   for line in case.src.splitlines()
                   if "_printf" in line and '"' in line), None)
    if marker is None or marker not in vm.output:
        pytest.skip("seed 2 prints nothing — generator changed")

    def predicate(src, script):
        res = run_vm(src, script, trace=False)
        return res.ok and marker in res.output

    result = shrink(case.src, case.script, predicate)
    assert predicate(result.src, result.script)
    assert result.src_lines() < case.src_lines()
    assert len(result.script) <= len(case.script)


def test_shrinker_returns_input_when_not_failing():
    case = generate_case(3)
    result = shrink(case.src, case.script, lambda s, sc: False)
    assert result.src == case.src and result.script == case.script
    assert result.rounds == 0


@requires_gcc
def test_injected_fault_shrinks_to_small_reproducer(tmp_path):
    """The ISSUE acceptance bar: a deliberate codegen fault must land as
    a failing reproducer of at most 15 lines."""
    fault = FAULTS["minus-to-plus"]
    failing = None
    for seed in range(8):
        case = generate_case(seed)
        _v, failures = check_case(case, workdir=tmp_path, mutate=fault)
        if any(f.oracle == "vm-vs-c" for f in failures):
            failing = case
            break
    assert failing is not None, "fault never triggered"

    def predicate(src, script):
        probe = GenCase(seed=failing.seed, src=src, script=list(script))
        _v, fails = check_case(probe, workdir=tmp_path, mutate=fault)
        return any(f.oracle == "vm-vs-c" for f in fails)

    result = shrink(failing.src, failing.script, predicate)
    assert predicate(result.src, result.script)
    assert result.src_lines() <= 15, result.src


# ---------------------------------------------------------------------------
# runner + CLI
# ---------------------------------------------------------------------------

def test_runner_reports_jsonl(tmp_path):
    report = tmp_path / "report.jsonl"
    runner = FuzzRunner(seed=0, use_c=False, report=str(report),
                        log=lambda msg: None)
    stats = runner.run(n=5)
    assert stats.cases == 5 and stats.ok()
    records = [json.loads(line) for line in
               report.read_text().splitlines()]
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert sum(r["ev"] == "fuzz_case" for r in records) == 5
    assert records[-1]["ev"] == "fuzz_summary"


def test_cli_fuzz_smoke(tmp_path, capsys):
    report = tmp_path / "cli.jsonl"
    rc = main(["fuzz", "--seed", "0", "--n", "3", "--no-c",
               "--report", str(report)])
    assert rc == 0
    assert report.exists()


@requires_gcc
def test_cli_fuzz_fault_injection_fails(tmp_path):
    rc = main(["fuzz", "--seed", "3", "--n", "2",
               "--inject-fault", "minus-to-plus"])
    assert rc == 1


def test_cli_fuzz_minutes_budget():
    rc = main(["fuzz", "--seed", "0", "--minutes", "0.02", "--no-c"])
    assert rc == 0
