"""The conformance-fuzzing subsystem tested on itself: generator
invariants, oracle behaviour, the shrinker, fault injection, and the
CLI front end (docs/FUZZING.md)."""

import json

import pytest

from helpers import requires_gcc
from repro.cli import main
from repro.fuzz import (CORPUS_PROFILES, FAULTS, FuzzRunner, GenCase,
                        check_case, generate_case, script_text, shrink)
from repro.fuzz.gen import ROUND_US
from repro.fuzz.oracles import analyses_verdict, has_gcc, run_vm
from repro.lang import parse
from repro.sema import bind, check_bounded


# ---------------------------------------------------------------------------
# generator invariants
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(30))
def test_generated_programs_are_well_formed(seed):
    case = generate_case(seed)
    check_bounded(bind(parse(case.src)))          # §2.5
    assert analyses_verdict(case.src) in ("accept", "refuse")


@pytest.mark.parametrize("seed", range(30))
def test_generated_programs_terminate_under_their_script(seed):
    case = generate_case(seed)
    vm = run_vm(case.src, case.script)
    assert vm.ok, vm.error
    assert vm.done, f"seed {seed} did not finish its script"


def test_generation_is_deterministic():
    a, b = generate_case(7), generate_case(7)
    assert a.src == b.src and a.script == b.script
    assert generate_case(8).src != a.src


@pytest.mark.parametrize("profile", sorted(CORPUS_PROFILES))
def test_profiles_generate_well_formed_programs(profile):
    from repro.fuzz.gen import ProgramGen
    for seed in range(5):
        case = ProgramGen(seed, CORPUS_PROFILES[profile], profile).case()
        check_bounded(bind(parse(case.src)))


def test_script_is_monotone_and_rendered():
    case = generate_case(11)
    times = [item[1] for item in case.script if item[0] == "T"]
    assert times == sorted(times)
    assert all(t % ROUND_US == 0 for t in times)
    text = script_text(case.script)
    assert text.count("\n") == len(case.script)


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(10))
def test_oracles_agree_without_c(seed):
    verdict, failures = check_case(generate_case(seed), use_c=False)
    assert not failures, failures[0].summary()
    assert verdict in ("accept", "refuse")


def test_vm_crash_is_reported_not_raised():
    case = GenCase(seed=0, src="input void A;\nawait A;",
                   script=[("E", "Missing", 0)])
    verdict, failures = check_case(case, use_c=False)
    assert [f.oracle for f in failures] == ["vm-crash"]


def test_ill_formed_program_is_reported():
    case = GenCase(seed=0, src="int v;\nloop do\nv = 1;\nend", script=[])
    verdict, failures = check_case(case, use_c=False)
    assert verdict == "ill-formed"
    assert failures and failures[0].oracle == "well-formed"


@requires_gcc
@pytest.mark.parametrize("fault", ["minus-to-plus", "drop-emit"])
def test_injected_faults_are_caught(fault, tmp_path):
    caught = False
    for seed in range(8):
        _v, failures = check_case(generate_case(seed), workdir=tmp_path,
                                  mutate=FAULTS[fault])
        if any(f.oracle == "vm-vs-c" for f in failures):
            caught = True
            break
    assert caught, f"fault {fault} survived 8 seeds"


# ---------------------------------------------------------------------------
# shrinker
# ---------------------------------------------------------------------------

def test_shrinker_on_synthetic_predicate():
    """gcc-free shrinker check: 'output contains p1' as the failure."""
    case = generate_case(2)
    vm = run_vm(case.src, case.script)
    marker = next((line.split('"')[1].split()[0]
                   for line in case.src.splitlines()
                   if "_printf" in line and '"' in line), None)
    if marker is None or marker not in vm.output:
        pytest.skip("seed 2 prints nothing — generator changed")

    def predicate(src, script):
        res = run_vm(src, script, trace=False)
        return res.ok and marker in res.output

    result = shrink(case.src, case.script, predicate)
    assert predicate(result.src, result.script)
    assert result.src_lines() < case.src_lines()
    assert len(result.script) <= len(case.script)


def test_shrinker_returns_input_when_not_failing():
    case = generate_case(3)
    result = shrink(case.src, case.script, lambda s, sc: False)
    assert result.src == case.src and result.script == case.script
    assert result.rounds == 0


@requires_gcc
def test_injected_fault_shrinks_to_small_reproducer(tmp_path):
    """The ISSUE acceptance bar: a deliberate codegen fault must land as
    a failing reproducer of at most 15 lines."""
    fault = FAULTS["minus-to-plus"]
    failing = None
    for seed in range(8):
        case = generate_case(seed)
        _v, failures = check_case(case, workdir=tmp_path, mutate=fault)
        if any(f.oracle == "vm-vs-c" for f in failures):
            failing = case
            break
    assert failing is not None, "fault never triggered"

    def predicate(src, script):
        probe = GenCase(seed=failing.seed, src=src, script=list(script))
        _v, fails = check_case(probe, workdir=tmp_path, mutate=fault)
        return any(f.oracle == "vm-vs-c" for f in fails)

    result = shrink(failing.src, failing.script, predicate)
    assert predicate(result.src, result.script)
    assert result.src_lines() <= 15, result.src


# ---------------------------------------------------------------------------
# runner + CLI
# ---------------------------------------------------------------------------

def test_runner_reports_jsonl(tmp_path):
    report = tmp_path / "report.jsonl"
    runner = FuzzRunner(seed=0, use_c=False, report=str(report),
                        log=lambda msg: None)
    stats = runner.run(n=5)
    assert stats.cases == 5 and stats.ok()
    records = [json.loads(line) for line in
               report.read_text().splitlines()]
    assert [r["seq"] for r in records] == list(range(len(records)))
    assert sum(r["ev"] == "fuzz_case" for r in records) == 5
    assert records[-1]["ev"] == "fuzz_summary"


def test_cli_fuzz_smoke(tmp_path, capsys):
    report = tmp_path / "cli.jsonl"
    rc = main(["fuzz", "--seed", "0", "--n", "3", "--no-c",
               "--report", str(report)])
    assert rc == 0
    assert report.exists()


@requires_gcc
def test_cli_fuzz_fault_injection_fails(tmp_path):
    rc = main(["fuzz", "--seed", "3", "--n", "2",
               "--inject-fault", "minus-to-plus"])
    assert rc == 1


def test_cli_fuzz_minutes_budget():
    rc = main(["fuzz", "--seed", "0", "--minutes", "0.02", "--no-c"])
    assert rc == 0
