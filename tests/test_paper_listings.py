"""Paper conformance: every listing in the paper, verbatim, behaving as
the text says.  Each test cites its section."""

import hashlib

import pytest

from helpers import requires_gcc, run_program
from repro.core import analyze
from repro.dfa import build_dfa
from repro.fuzz.oracles import run_c, run_vm
from repro.lang import parse
from repro.lang.errors import BoundedError, NondeterminismError
from repro.runtime import Program
from repro.sema import bind, check_bounded


class TestSection2ExecutionModel:
    def test_intro_example_full_behaviour(self):
        """§2: the three-trail counter with Restart."""
        p = run_program("""
        input int Restart;
        internal void changed;
        int v = 0;
        par do
           loop do
              await 1s;
              v = v + 1;
              emit changed;
           end
        with
           loop do
              v = await Restart;
              emit changed;
           end
        with
           loop do
              await changed;
              _printf("v = %d\\n", v);
           end
        end
        """, ("adv", "1s"), ("adv", "1s"), ("ev", "Restart", 10),
            ("adv", "1s"))
        assert p.output() == "v = 1\nv = 2\nv = 10\nv = 11\n"

    def test_every_occurrence_vs_missed_window(self):
        """§2: `await A; ...` reacts to every A; inserting `await 1us`
        between the awaits opens a window where an A is missed."""
        first = run_program("""
        input void A;
        int n = 0;
        loop do
           await A;
           n = n + 1;
        end
        """, ("ev", "A"), ("ev", "A"), ("ev", "A"))
        assert first.sched.memory.snapshot()["n"] == 3

        second = run_program("""
        input void A;
        int n = 0;
        loop do
           await A;
           await 1us;
           n = n + 1;
        end
        """, ("ev", "A"), ("ev", "A"), ("adv", "1ms"), ("ev", "A"),
            ("adv", "1ms"))
        # the second A lands inside the 1us window and is lost: only the
        # first and third occurrences are counted
        assert second.sched.memory.snapshot()["n"] == 2

    def test_sampling_and_watchdog_archetypes(self):
        """§2.1: par/and repeats at 100ms minimum; par/or restarts."""
        sampling = run_program("""
        input void Done;
        int runs = 0;
        par/or do
           loop do
              par/and do
                 runs = runs + 1;
              with
                 await 100ms;
              end
           end
        with
           await 500ms;
        end
        return runs;
        """, ("at", "500ms"))
        assert sampling.result == 6   # boot + 5 periods

        watchdog = run_program("""
        input void Done;
        int restarts = 0;
        par do
           loop do
              par/or do
                 await Done;
              with
                 await 100ms;
                 restarts = restarts + 1;
              end
           end
        with
           await forever;
        end
        """, ("at", "250ms"), ("ev", "Done"), ("at", "400ms"))
        assert watchdog.sched.memory.snapshot()["restarts"] == 3


class TestSection22InternalEvents:
    def test_v1_v2_v3_chain(self):
        """§2.2: the dependency chain updates within one reaction."""
        p = run_program("""
        input int Set;
        int v1, v2, v3;
        internal void v1_evt, v2_evt, v3_evt;
        par do
           loop do
              await v1_evt;
              v2 = v1 + 1;
              emit v2_evt;
           end
        with
           loop do
              await v2_evt;
              v3 = v2 * 2;
              emit v3_evt;
           end
        with
           loop do
              v1 = await Set;
              emit v1_evt;
           end
        end
        """, ("ev", "Set", 10))
        snap = p.sched.memory.snapshot()
        assert (snap["v1"], snap["v2"], snap["v3"]) == (10, 11, 22)

    def test_celsius_fahrenheit_no_cycle(self):
        """§2.2: mutual dependencies terminate via the stack policy."""
        p = run_program("""
        input int SetC, SetF;
        int tc, tf;
        internal void tc_evt, tf_evt;
        par do
           loop do
              await tc_evt;
              tf = 9 * tc / 5 + 32;
              emit tf_evt;
           end
        with
           loop do
              await tf_evt;
              tc = 5 * (tf - 32) / 9;
              emit tc_evt;
           end
        with
           loop do
              tc = await SetC;
              emit tc_evt;
           end
        with
           loop do
              tf = await SetF;
              emit tf_evt;
           end
        end
        """, ("ev", "SetC", 100), ("ev", "SetF", 32))
        snap = p.sched.memory.snapshot()
        assert (snap["tc"], snap["tf"]) == (0, 32)


class TestSection23WallClock:
    def test_delta_compensation(self):
        """§2.3: a 15ms-late check still fires 10ms then 1ms in order."""
        p = Program("int v;\nawait 10ms;\nv = 1;\nawait 1ms;\nv = 2;"
                    "\nreturn v;")
        p.sched.go_init()
        p.sched.go_time(15_000)
        assert p.done and p.result == 2

    def test_physical_ordering_50_49_before_100(self):
        """§2.3: 50+49 terminates before 100 even without exact timing."""
        p = run_program("""
        int v;
        par/or do
           await 50ms;
           await 49ms;
           v = 1;
        with
           await 100ms;
           v = 2;
        end
        return v;
        """, ("at", "1s"))
        assert p.result == 1


class TestSection24CIntegration:
    def test_c_block_and_underscore_symbols(self):
        """§2.4: `C do ... end` defines symbols used as `_name`."""
        p = Program("""
        C do
           int I = 0;
           int inc (int i) {
              return I+i;
           }
        end
        return _assert(_inc(_I + 1));
        """)
        # the VM does not execute C blocks: provide the symbols instead
        p.cenv.define("I", 0)
        p.cenv.define("inc", lambda i: 0 + i)
        p.start()
        assert p.done


class TestSection25Bounded:
    REFUSED = [
        # ex. 1
        "int v;\nloop do\nv = v + 1;\nend",
        # ex. 2
        "input void A;\nint v;\nloop do\nif v then\nawait A;\nend\nend",
        # ex. 3
        "input void A;\nint v;\nloop do\npar/or do\nawait A;\nwith"
        "\nv = 1;\nend\nend",
    ]
    ACCEPTED = [
        # ex. 4
        "input void A;\nloop do\nawait A;\nend",
        # ex. 5
        "input void A;\nint v;\nloop do\npar/and do\nawait A;\nwith"
        "\nv = 1;\nend\nend",
    ]

    @pytest.mark.parametrize("src", REFUSED)
    def test_refused(self, src):
        with pytest.raises(BoundedError):
            check_bounded(bind(parse(src)))

    @pytest.mark.parametrize("src", ACCEPTED)
    def test_accepted(self, src):
        check_bounded(bind(parse(src)))


class TestSection26Determinism:
    def test_immediate_assignments_concurrent(self):
        with pytest.raises(NondeterminismError):
            analyze("int v;\npar/and do\nv = 1;\nwith\nv = 2;\nend"
                    "\nreturn v;")

    def test_distinct_events_not_concurrent(self):
        analyze("""
        input void A, B;
        int v;
        par/and do
           await A;
           v = 1;
        with
           await B;
           v = 2;
        end
        """)

    def test_fig_dfa_program_refused(self):
        dfa = build_dfa(bind(parse("""
        input void A;
        int v;
        par do
           loop do
              await A;
              await A;
              v = 1;
           end
        with
           loop do
              await A;
              await A;
              await A;
              v = 2;
           end
        end
        """)))
        assert dfa.conflicts

    def test_led_calls_need_annotations(self):
        with pytest.raises(NondeterminismError):
            analyze("par/and do\n_led1On();\nwith\n_led2On();\nend")
        analyze("pure _abs;\ndeterministic _led1On, _led2On;"
                "\ndeterministic _led1Off, _led2Off;"
                "\npar/and do\n_led1On();\nwith\n_led2On();\nend")

    def test_timing_examples(self):
        analyze("""
        int v;
        par/or do
           await 50ms;
           await 49ms;
           v = 1;
        with
           await 100ms;
           v = 2;
        end
        """)
        with pytest.raises(NondeterminismError):
            analyze("""
            int v;
            par/or do
               loop do
                  await 10ms;
                  v = 1;
               end
            with
               await 100ms;
               v = 2;
            end
            """)

    def test_false_positive_acknowledged(self):
        """§2.6: same-value concurrent writes are still refused."""
        with pytest.raises(NondeterminismError):
            analyze("int v;\npar/and do\nv = 1;\nwith\nv = 1;\nend"
                    "\nreturn v;")


class TestSection27Async:
    def test_arithmetic_progression_with_watchdog(self):
        p = run_program("""
        int ret;
        par/or do
           ret = async do
              int sum = 0;
              int i = 1;
              loop do
                 sum = sum + i;
                 if i == 100 then
                    break;
                 else
                    i = i + 1;
                 end
              end
              return sum;
           end;
        with
           await 10ms;
           ret = 0;
        end
        return ret;
        """)
        assert p.result == 5050

    def test_gals_async_accepted_by_analysis(self):
        """§2.9: async-vs-timer nondeterminism is *not* refused."""
        analyze("""
        int ret;
        par/or do
           async do
              int i = 0;
              loop do
                 i = i + 1;
                 if i == 1000 then
                    break;
                 end
              end
           end
           ret = 1;
        with
           await 1s;
           ret = 2;
        end
        return ret;
        """)


class TestSection28Simulation:
    def test_10min_19_increments(self):
        """§2.8: the full simulation template, assertion and all."""
        p = run_program("""
        input int Start;
        par/or do
           int v = await Start;
           par/or do
              loop do
                 await 10min;
                 v = v + 1;
              end
           with
              await 1h35min;
              _assert(v == 19);
           end
        with
           async do
              emit Start = 10;
              emit 1h35min;
           end
           _assert(0);
        end
        """)
        assert p.done  # reaching here means neither assert fired wrongly

    def test_simulation_replays_identically(self):
        """§2.9: guided asynchronous execution is fully deterministic."""
        src = """
        input int Start;
        int trace = 0;
        par/or do
           int v = await Start;
           loop do
              await 10min;
              v = v + 1;
              trace = trace * 10 + v % 10;
              if v == 14 then
                 break;
              end
           end
        with
           async do
              emit Start = 10;
              emit 1h;
           end
        end
        return trace;
        """
        results = {run_program(src).result for _ in range(3)}
        assert results == {1234}


class TestSection31AppSwitch:
    def test_switch_pattern(self):
        """§3.1: combining applications and switching them via radio."""
        p = run_program("""
        input int Switch;
        input void Tick;
        int cur_app = 1;
        int app1 = 0;
        int app2 = 0;
        loop do
           par/or do
              cur_app = await Switch;
           with
              if cur_app == 1 then
                 loop do
                    await Tick;
                    app1 = app1 + 1;
                 end
              end
              if cur_app == 2 then
                 loop do
                    await Tick;
                    app2 = app2 + 1;
                 end
              end
              await forever;
           end
        end
        """, ("ev", "Tick"), ("ev", "Switch", 2), ("ev", "Tick"),
            ("ev", "Tick"), ("ev", "Switch", 1), ("ev", "Tick"))
        snap = p.sched.memory.snapshot()
        assert (snap["app1"], snap["app2"]) == (2, 2)


class TestTraceSignatureConformance:
    """`Trace.signature()` is the repo's behavioural fingerprint: golden
    hashes pin the VM's reaction-by-reaction behaviour on paper
    listings, and the portable projection must agree between the VM and
    the §4.4 C backend (compiled with ``-DCEU_HOOKS``) run for run."""

    LISTINGS = {
        "s2_intro": ("""input int Restart;
internal void changed;
int v = 0;
par do
   loop do
      await 1s;
      v = v + 1;
      emit changed;
   end
with
   loop do
      v = await Restart;
      emit changed;
   end
with
   loop do
      await changed;
      _printf("v = %d\\n", v);
   end
end
""", [("T", 1_000_000), ("T", 2_000_000), ("E", "Restart", 10),
      ("T", 3_000_000)]),
        "s22_chain": ("""input int Set;
int v1, v2, v3;
internal void v1_evt, v2_evt, v3_evt;
par do
   loop do
      await v1_evt;
      v2 = v1 + 1;
      emit v2_evt;
   end
with
   loop do
      await v2_evt;
      v3 = v2 * 2;
      emit v3_evt;
   end
with
   loop do
      v1 = await Set;
      emit v1_evt;
   end
end
""", [("E", "Set", 10), ("E", "Set", 20)]),
        "s23_order": ("""int v;
par/or do
   await 50ms;
   await 49ms;
   v = 1;
with
   await 100ms;
   v = 2;
end
return v;
""", [("T", 1_000_000)]),
    }

    GOLDEN = {
        "s2_intro":
            "c249027fc44efb372c10fe6677a792ee"
            "f02538811f2830ab87f51119a1303f4f",
        "s22_chain":
            "2b9c772e7f871f05c054eea524339a65"
            "b84aee278a3219346d3b6db9987e4196",
        "s23_order":
            "6265c4e3ef53a6cae07cf53706131838"
            "153a9f192f35f96819cce3caf888fbfd",
    }

    @pytest.mark.parametrize("name", sorted(LISTINGS))
    def test_vm_signature_matches_golden(self, name):
        src, script = self.LISTINGS[name]
        vm = run_vm(src, script)
        assert vm.ok, vm.error
        digest = hashlib.sha256(repr(vm.signature).encode()).hexdigest()
        assert digest == self.GOLDEN[name], \
            f"behaviour of {name} changed:\n{vm.signature!r}"

    @requires_gcc
    @pytest.mark.parametrize("name", sorted(LISTINGS))
    def test_portable_signature_stable_across_backends(self, name, tmp_path):
        src, script = self.LISTINGS[name]
        vm = run_vm(src, script)
        c = run_c(src, script, tmp_path, name=name)
        assert vm.ok and c.ok, (vm.error, c.error)
        assert c.psig == vm.psig
        assert c.output == vm.output
        assert c.done == vm.done
