"""Fleet observability: labelled metric families, cross-instance
rollup, and Prometheus text exposition (PR 6 tentpole,
``repro.obs.fleet`` + ``repro.obs.prom``).

The load-bearing properties:

* **labelled families** — one family, N label-keyed children, each with
  the same plain-int hot path as the unlabelled primitives; label
  cardinality is validated and schema conflicts are rejected;
* **true cross-instance percentiles** — :func:`merge_snapshots` merges
  histogram *buckets*, so the fleet p99 is the p99 over every
  observation on every instance, not an average of per-instance p99s;
* **exposition** — :func:`render_prom` turns any snapshot shape into
  the text format 0.0.4, with cumulative buckets, dynamic-counter
  labels, and escaped label values.
"""

import pytest

from repro.obs import (FleetRegistry, Gauge, Histogram, MetricsRegistry,
                       merge_histogram, merge_snapshots, render_prom)
from repro.obs.fleet import merge_histogram_snapshots
from repro.runtime import Program


# ------------------------------------------------------------- families
class TestFamilies:
    def test_counter_family_children_are_independent(self):
        fleet = FleetRegistry()
        events = fleet.counter_family("events_total", ("program", "event"))
        events.labels("blink", "A").inc()
        events.labels("blink", "A").inc()
        events.labels("blink", "B").inc(5)
        assert events.labels("blink", "A").value == 2
        assert events.labels("blink", "B").value == 5
        assert events.total() == 7

    def test_gauge_family_tracks_min_and_max(self):
        fleet = FleetRegistry()
        live = fleet.gauge_family("live", ("program",))
        g = live.labels("blink")
        g.inc()
        g.inc()
        g.dec()
        assert (g.value, g.min, g.max) == (1, 0, 2)

    def test_histogram_family_shares_bounds(self):
        fleet = FleetRegistry()
        lat = fleet.histogram_family("latency_us", ("program",),
                                     bounds=(10, 100, 1000))
        lat.labels("a").record(5)
        lat.labels("b").record(500)
        assert lat.labels("a").bounds == lat.labels("b").bounds
        agg = lat.aggregate()
        assert agg.count == 2

    def test_label_cardinality_is_validated(self):
        fleet = FleetRegistry()
        fam = fleet.counter_family("x_total", ("a", "b"))
        with pytest.raises(ValueError):
            fam.labels("only-one")

    def test_schema_conflicts_are_rejected(self):
        fleet = FleetRegistry()
        fleet.counter_family("x_total", ("a",))
        with pytest.raises(ValueError):
            fleet.counter_family("x_total", ("a", "b"))
        with pytest.raises(ValueError):
            fleet.gauge_family("x_total", ("a",))

    def test_family_is_memoised_per_schema(self):
        fleet = FleetRegistry()
        assert fleet.counter_family("x_total", ("a",)) is \
            fleet.counter_family("x_total", ("a",))

    def test_registry_snapshot_shape(self):
        fleet = FleetRegistry()
        fleet.counter_family("c_total", ("k",)).labels("v").inc(3)
        fleet.gauge_family("g", ("k",)).labels("v").set(2)
        snap = fleet.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["labels"] == ["k"]
        assert snap["c_total"]["series"] == [[["v"], 3]]
        assert snap["g"]["series"][0][1]["value"] == 2


# --------------------------------------------------------------- merging
class TestMerge:
    def test_merge_histogram_folds_counts_and_watermarks(self):
        a = Histogram((10, 100))
        b = Histogram((10, 100))
        a.record(5)
        a.record(50)
        b.record(500)
        merge_histogram(a, b)
        assert a.count == 3
        assert a.min == 5 and a.max == 500

    def test_merge_histogram_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            merge_histogram(Histogram((10,)), Histogram((20,)))

    def test_cross_instance_percentile_is_not_an_average(self):
        """One slow instance among nine fast ones: the fleet p99 must
        surface the slow tail, which an average of per-instance p99s
        would wash out."""
        bounds = tuple(10 ** k for k in range(7))
        snaps = []
        for _ in range(9):
            h = Histogram(bounds)
            for _ in range(100):
                h.record(5)
            snaps.append(h.snapshot())
        slow = Histogram(bounds)
        for _ in range(100):
            slow.record(90_000)
        snaps.append(slow.snapshot())
        merged = merge_histogram_snapshots(snaps)
        assert merged["count"] == 1000
        assert merged["p99"] > 10_000
        mean_of_p99 = sum(s["p99"] for s in snaps) / len(snaps)
        assert merged["p99"] > mean_of_p99

    def test_merge_snapshots_sums_counters_and_folds_gauges(self):
        regs = [MetricsRegistry() for _ in range(3)]
        for i, reg in enumerate(regs):
            reg.counter("reactions_total").inc(i + 1)
            g = reg.gauge("live_trails")
            g.set(i + 1)
            g.set(i)
        merged = merge_snapshots([r.snapshot() for r in regs])
        assert merged["instances"] == 3
        assert merged["counters"]["reactions_total"] == 6
        assert merged["gauges"]["live_trails"]["value"] == 0 + 1 + 2
        assert merged["gauges"]["live_trails"]["min"] == 0
        assert merged["gauges"]["live_trails"]["max"] == 3

    def test_merged_snapshot_renders_like_a_single_instance(self):
        reg = MetricsRegistry()
        reg.counter("reactions_total").inc()
        merged = merge_snapshots([reg.snapshot(), reg.snapshot()])
        text = render_prom(merged)
        assert "repro_instances 2" in text
        assert "repro_reactions_total 2" in text

    def test_merge_empty_is_well_formed(self):
        merged = merge_snapshots([])
        assert merged["instances"] == 0
        assert merged["counters"] == {}


# ------------------------------------------------------- gauge satellite
class TestGaugeIncDec:
    def test_inc_dec_and_min_watermark(self):
        g = Gauge()
        g.inc()
        g.inc(3)
        g.dec(2)
        assert (g.value, g.min, g.max) == (2, 0, 4)
        g.dec(5)
        assert g.min == -3

    def test_snapshot_carries_min(self):
        reg = MetricsRegistry()
        reg.gauge("q").set(7)
        snap = reg.snapshot()
        assert snap["gauges"]["q"] == {"value": 7, "min": 0, "max": 7}


# ------------------------------------------------------------ exposition
class TestPromRendering:
    def test_registry_snapshot_exposition(self):
        program = Program("input void A; int n = 0; loop do await A; "
                          "n = n + 1; end", observe=True)
        program.start()
        program.send("A")
        text = render_prom(program.stats())
        assert "# TYPE repro_reactions_total counter" in text
        assert "repro_reactions_total 2" in text
        # dotted dynamic counters become labelled families
        assert 'repro_reactions_by_trigger_total{trigger="boot"} 1' in text
        assert 'repro_reactions_by_trigger_total{trigger="event:A"} 1' \
            in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_us", bounds=(10, 100))
        h.record(5)
        h.record(50)
        h.record(5000)
        lines = render_prom(reg.snapshot()).splitlines()
        buckets = [l for l in lines if l.startswith("repro_lat_us_bucket")]
        assert buckets == [
            'repro_lat_us_bucket{le="10"} 1',
            'repro_lat_us_bucket{le="100"} 2',
            'repro_lat_us_bucket{le="+Inf"} 3',
        ]
        assert "repro_lat_us_sum 5055" in lines
        assert "repro_lat_us_count 3" in lines

    def test_gauge_emits_watermark_series(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(4)
        g.set(1)
        text = render_prom(reg.snapshot())
        assert "repro_depth 1" in text
        assert "repro_depth_min 0" in text
        assert "repro_depth_max 4" in text

    def test_family_snapshot_exposition_with_escaping(self):
        fleet = FleetRegistry()
        fam = fleet.counter_family("calls_total", ("symbol",))
        fam.labels('weird"name\\').inc()
        text = render_prom(fleet.snapshot())
        assert r'repro_calls_total{symbol="weird\"name\\"} 1' in text

    def test_type_line_appears_once_per_family(self):
        fleet = FleetRegistry()
        fam = fleet.counter_family("c_total", ("k",))
        fam.labels("a").inc()
        fam.labels("b").inc()
        text = render_prom(fleet.snapshot())
        assert text.count("# TYPE repro_c_total counter") == 1

    def test_metric_names_are_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.total").inc()
        text = render_prom(reg.snapshot())
        for line in text.splitlines():
            if not line.startswith("#"):
                name = line.split("{")[0].split(" ")[0]
                assert all(c.isalnum() or c in "_:" for c in name)

    def test_rejects_non_snapshot(self):
        with pytest.raises(ValueError):
            render_prom({"definitely": "not-a-snapshot"})
