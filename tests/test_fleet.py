"""Fleet observability: labelled metric families, cross-instance
rollup, and Prometheus text exposition (PR 6 tentpole,
``repro.obs.fleet`` + ``repro.obs.prom``).

The load-bearing properties:

* **labelled families** — one family, N label-keyed children, each with
  the same plain-int hot path as the unlabelled primitives; label
  cardinality is validated and schema conflicts are rejected;
* **true cross-instance percentiles** — :func:`merge_snapshots` merges
  histogram *buckets*, so the fleet p99 is the p99 over every
  observation on every instance, not an average of per-instance p99s;
* **exposition** — :func:`render_prom` turns any snapshot shape into
  the text format 0.0.4, with cumulative buckets, dynamic-counter
  labels, and escaped label values.
"""

import pytest

from repro.obs import (FleetRegistry, Gauge, Histogram, MetricsRegistry,
                       merge_family_snapshots, merge_histogram,
                       merge_snapshots, render_prom)
from repro.obs.fleet import merge_histogram_snapshots
from repro.runtime import Program


# ------------------------------------------------------------- families
class TestFamilies:
    def test_counter_family_children_are_independent(self):
        fleet = FleetRegistry()
        events = fleet.counter_family("events_total", ("program", "event"))
        events.labels("blink", "A").inc()
        events.labels("blink", "A").inc()
        events.labels("blink", "B").inc(5)
        assert events.labels("blink", "A").value == 2
        assert events.labels("blink", "B").value == 5
        assert events.total() == 7

    def test_gauge_family_tracks_min_and_max(self):
        fleet = FleetRegistry()
        live = fleet.gauge_family("live", ("program",))
        g = live.labels("blink")
        g.inc()
        g.inc()
        g.dec()
        assert (g.value, g.min, g.max) == (1, 0, 2)

    def test_histogram_family_shares_bounds(self):
        fleet = FleetRegistry()
        lat = fleet.histogram_family("latency_us", ("program",),
                                     bounds=(10, 100, 1000))
        lat.labels("a").record(5)
        lat.labels("b").record(500)
        assert lat.labels("a").bounds == lat.labels("b").bounds
        agg = lat.aggregate()
        assert agg.count == 2

    def test_label_cardinality_is_validated(self):
        fleet = FleetRegistry()
        fam = fleet.counter_family("x_total", ("a", "b"))
        with pytest.raises(ValueError):
            fam.labels("only-one")

    def test_schema_conflicts_are_rejected(self):
        fleet = FleetRegistry()
        fleet.counter_family("x_total", ("a",))
        with pytest.raises(ValueError):
            fleet.counter_family("x_total", ("a", "b"))
        with pytest.raises(ValueError):
            fleet.gauge_family("x_total", ("a",))

    def test_family_is_memoised_per_schema(self):
        fleet = FleetRegistry()
        assert fleet.counter_family("x_total", ("a",)) is \
            fleet.counter_family("x_total", ("a",))

    def test_registry_snapshot_shape(self):
        fleet = FleetRegistry()
        fleet.counter_family("c_total", ("k",)).labels("v").inc(3)
        fleet.gauge_family("g", ("k",)).labels("v").set(2)
        snap = fleet.snapshot()
        assert snap["c_total"]["kind"] == "counter"
        assert snap["c_total"]["labels"] == ["k"]
        assert snap["c_total"]["series"] == [[["v"], 3]]
        assert snap["g"]["series"][0][1]["value"] == 2


# --------------------------------------------------------------- merging
class TestMerge:
    def test_merge_histogram_folds_counts_and_watermarks(self):
        a = Histogram((10, 100))
        b = Histogram((10, 100))
        a.record(5)
        a.record(50)
        b.record(500)
        merge_histogram(a, b)
        assert a.count == 3
        assert a.min == 5 and a.max == 500

    def test_merge_histogram_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            merge_histogram(Histogram((10,)), Histogram((20,)))

    def test_cross_instance_percentile_is_not_an_average(self):
        """One slow instance among nine fast ones: the fleet p99 must
        surface the slow tail, which an average of per-instance p99s
        would wash out."""
        bounds = tuple(10 ** k for k in range(7))
        snaps = []
        for _ in range(9):
            h = Histogram(bounds)
            for _ in range(100):
                h.record(5)
            snaps.append(h.snapshot())
        slow = Histogram(bounds)
        for _ in range(100):
            slow.record(90_000)
        snaps.append(slow.snapshot())
        merged = merge_histogram_snapshots(snaps)
        assert merged["count"] == 1000
        assert merged["p99"] > 10_000
        mean_of_p99 = sum(s["p99"] for s in snaps) / len(snaps)
        assert merged["p99"] > mean_of_p99

    def test_merge_snapshots_sums_counters_and_folds_gauges(self):
        regs = [MetricsRegistry() for _ in range(3)]
        for i, reg in enumerate(regs):
            reg.counter("reactions_total").inc(i + 1)
            g = reg.gauge("live_trails")
            g.set(i + 1)
            g.set(i)
        merged = merge_snapshots([r.snapshot() for r in regs])
        assert merged["instances"] == 3
        assert merged["counters"]["reactions_total"] == 6
        assert merged["gauges"]["live_trails"]["value"] == 0 + 1 + 2
        assert merged["gauges"]["live_trails"]["min"] == 0
        assert merged["gauges"]["live_trails"]["max"] == 3

    def test_merged_snapshot_renders_like_a_single_instance(self):
        reg = MetricsRegistry()
        reg.counter("reactions_total").inc()
        merged = merge_snapshots([reg.snapshot(), reg.snapshot()])
        text = render_prom(merged)
        assert "repro_instances 2" in text
        assert "repro_reactions_total 2" in text

    def test_merge_empty_is_well_formed(self):
        merged = merge_snapshots([])
        assert merged["instances"] == 0
        assert merged["counters"] == {}

    def test_merge_with_empty_shard_is_identity(self):
        """A shard that has emitted nothing (fresh boot) contributes
        nothing but still counts as an instance."""
        reg = MetricsRegistry()
        reg.counter("reactions_total").inc(5)
        merged = merge_snapshots([reg.snapshot(),
                                  {"counters": {}, "gauges": {},
                                   "histograms": {}}])
        assert merged["instances"] == 2
        assert merged["counters"]["reactions_total"] == 5

    def test_merge_disjoint_families_unions(self):
        a = MetricsRegistry()
        a.counter("only_a_total").inc(1)
        b = MetricsRegistry()
        b.counter("only_b_total").inc(2)
        b.gauge("only_b_gauge").set(3)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["only_a_total"] == 1
        assert merged["counters"]["only_b_total"] == 2
        assert merged["gauges"]["only_b_gauge"]["value"] == 3

    def test_merge_snapshots_bucket_mismatch_raises(self):
        """Shards disagreeing on histogram bounds is deploy skew — it
        must raise, not silently mis-bucket."""
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", (10, 100)).record(5)
        b.histogram("lat", (10, 1000)).record(5)
        with pytest.raises(ValueError, match="bounds differ"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_gauge_watermarks_survive_two_hops(self):
        """min/max fold correctly when a merged snapshot is merged
        again (federation re-rolls shard rollups)."""
        regs = [MetricsRegistry() for _ in range(2)]
        regs[0].gauge("q").set(10)
        regs[1].gauge("q").set(-4)
        first = merge_snapshots([r.snapshot() for r in regs])
        again = merge_snapshots([first, first])
        assert again["gauges"]["q"]["min"] == -4
        assert again["gauges"]["q"]["max"] == 10
        assert again["gauges"]["q"]["value"] == 12


# ------------------------------------------------- cross-shard families
class TestMergeFamilySnapshots:
    def _registry(self, program: str, n: int) -> FleetRegistry:
        fleet = FleetRegistry()
        fleet.counter_family("spawned_total", ("program",)) \
            .labels(program).inc(n)
        return fleet

    def test_counters_sum_and_disjoint_series_union(self):
        merged = merge_family_snapshots([
            self._registry("a", 2).snapshot(),
            self._registry("a", 3).snapshot(),
            self._registry("b", 7).snapshot(),
        ])
        series = {tuple(k): v
                  for k, v in merged["spawned_total"]["series"]}
        assert series[("a",)] == 5
        assert series[("b",)] == 7

    def test_empty_input_and_empty_shard(self):
        assert merge_family_snapshots([]) == {}
        one = self._registry("a", 1).snapshot()
        assert merge_family_snapshots([one, {}]) == \
            merge_family_snapshots([one])

    def test_schema_skew_raises(self):
        a = FleetRegistry()
        a.counter_family("x_total", ("program",)).labels("p").inc()
        b = FleetRegistry()
        b.counter_family("x_total", ("shard",)).labels("s").inc()
        with pytest.raises(ValueError, match="schema skew"):
            merge_family_snapshots([a.snapshot(), b.snapshot()])

    def test_kind_skew_raises(self):
        a = FleetRegistry()
        a.counter_family("x", ("l",)).labels("v").inc()
        b = FleetRegistry()
        b.gauge_family("x", ("l",)).labels("v").set(1)
        with pytest.raises(ValueError, match="schema skew"):
            merge_family_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_never_mutates_inputs(self):
        a = self._registry("a", 1).snapshot()
        b = self._registry("a", 2).snapshot()
        before = repr(a) + repr(b)
        merge_family_snapshots([a, b])
        assert repr(a) + repr(b) == before

    def test_histogram_families_bucket_merge(self):
        mk = []
        for values in ((5, 50), (500,)):
            fleet = FleetRegistry()
            fam = fleet.histogram_family("lat_us", ("program",),
                                         (10, 100, 1000))
            for v in values:
                fam.labels("p").record(v)
            mk.append(fleet.snapshot())
        merged = merge_family_snapshots(mk)
        series = {tuple(k): v for k, v in merged["lat_us"]["series"]}
        assert series[("p",)]["count"] == 3
        assert series[("p",)]["max"] == 500


# ------------------------------------------------------- gauge satellite
class TestGaugeIncDec:
    def test_inc_dec_and_min_watermark(self):
        g = Gauge()
        g.inc()
        g.inc(3)
        g.dec(2)
        assert (g.value, g.min, g.max) == (2, 0, 4)
        g.dec(5)
        assert g.min == -3

    def test_snapshot_carries_min(self):
        reg = MetricsRegistry()
        reg.gauge("q").set(7)
        snap = reg.snapshot()
        assert snap["gauges"]["q"] == {"value": 7, "min": 0, "max": 7}


# ------------------------------------------------------------ exposition
class TestPromRendering:
    def test_registry_snapshot_exposition(self):
        program = Program("input void A; int n = 0; loop do await A; "
                          "n = n + 1; end", observe=True)
        program.start()
        program.send("A")
        text = render_prom(program.stats())
        assert "# TYPE repro_reactions_total counter" in text
        assert "repro_reactions_total 2" in text
        # dotted dynamic counters become labelled families
        assert 'repro_reactions_by_trigger_total{trigger="boot"} 1' in text
        assert 'repro_reactions_by_trigger_total{trigger="event:A"} 1' \
            in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_us", bounds=(10, 100))
        h.record(5)
        h.record(50)
        h.record(5000)
        lines = render_prom(reg.snapshot()).splitlines()
        buckets = [l for l in lines if l.startswith("repro_lat_us_bucket")]
        assert buckets == [
            'repro_lat_us_bucket{le="10"} 1',
            'repro_lat_us_bucket{le="100"} 2',
            'repro_lat_us_bucket{le="+Inf"} 3',
        ]
        assert "repro_lat_us_sum 5055" in lines
        assert "repro_lat_us_count 3" in lines

    def test_gauge_emits_watermark_series(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(4)
        g.set(1)
        text = render_prom(reg.snapshot())
        assert "repro_depth 1" in text
        assert "repro_depth_min 0" in text
        assert "repro_depth_max 4" in text

    def test_family_snapshot_exposition_with_escaping(self):
        fleet = FleetRegistry()
        fam = fleet.counter_family("calls_total", ("symbol",))
        fam.labels('weird"name\\').inc()
        text = render_prom(fleet.snapshot())
        assert r'repro_calls_total{symbol="weird\"name\\"} 1' in text

    def test_type_line_appears_once_per_family(self):
        fleet = FleetRegistry()
        fam = fleet.counter_family("c_total", ("k",))
        fam.labels("a").inc()
        fam.labels("b").inc()
        text = render_prom(fleet.snapshot())
        assert text.count("# TYPE repro_c_total counter") == 1

    def test_metric_names_are_sanitised(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.total").inc()
        text = render_prom(reg.snapshot())
        for line in text.splitlines():
            if not line.startswith("#"):
                name = line.split("{")[0].split(" ")[0]
                assert all(c.isalnum() or c in "_:" for c in name)

    def test_rejects_non_snapshot(self):
        with pytest.raises(ValueError):
            render_prom({"definitely": "not-a-snapshot"})
