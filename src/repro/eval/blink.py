"""§5.2 blink experiment: synchronous vs asynchronous 400/1000 ms blinkers.

Two leds should light together every 2 s (lcm of 400 and 1000 ms).  The
naive implementations:

* **Céu** — ``blink2.ceu``: two trails awaiting 400 ms / 1000 ms.  Timer
  deadlines chain from logical expiries (§2.3), so the phase relation is
  exact forever;
* **MantisOS** — two threads ``sleep(p); toggle;``: each wake-up suffers
  scheduling jitter that silently becomes part of the next period;
* **occam** — two processes with ``TIM ? AFTER`` delays: same drift.

The metric is the fraction of 2-second boundaries at which *both* leds
toggled within a tolerance: 1.0 means the leds stay synchronized.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import load
from ..baselines.mantis import MantisOS
from ..baselines.occam import OccamRuntime
from ..runtime import Program

PERIOD0_US = 400_000
PERIOD1_US = 1_000_000
SYNC_US = 2_000_000          # lcm(400ms, 1000ms)


@dataclass(frozen=True, slots=True)
class BlinkResult:
    system: str
    duration_s: float
    boundaries: int
    synchronized: int            # boundaries where both leds toggled
    max_drift_us: int            # worst led-0 deviation from its grid

    @property
    def sync_ratio(self) -> float:
        return self.synchronized / self.boundaries if self.boundaries else 0.0


def _score(toggles0: list[int], toggles1: list[int], duration_us: int,
           system: str, tolerance_us: int = 20_000) -> BlinkResult:
    boundaries = duration_us // SYNC_US
    synchronized = 0
    for k in range(1, boundaries + 1):
        t = k * SYNC_US
        hit0 = any(abs(x - t) <= tolerance_us for x in toggles0)
        hit1 = any(abs(x - t) <= tolerance_us for x in toggles1)
        if hit0 and hit1:
            synchronized += 1
    max_drift = 0
    for i, x in enumerate(toggles0, start=1):
        max_drift = max(max_drift, abs(x - i * PERIOD0_US))
    return BlinkResult(system, duration_us / 1e6, boundaries, synchronized,
                       max_drift)


def run_ceu(duration_us: int = 120_000_000) -> BlinkResult:
    toggles: dict[int, list[int]] = {0: [], 1: []}
    program = Program(load("blink2"))
    program.cenv.define("led0Toggle",
                        lambda: toggles[0].append(program.clock))
    program.cenv.define("led1Toggle",
                        lambda: toggles[1].append(program.clock))
    program.start()
    # drive time in coarse, sloppy increments — exactly what a busy
    # binding does; delta compensation must absorb it
    step = 7_300
    while program.clock < duration_us:
        program.advance(step)
    return _score(toggles[0], toggles[1], duration_us, "Céu")


def run_mantis(duration_us: int = 120_000_000, jitter_us: int = 2_000,
               seed: int = 11) -> BlinkResult:
    os = MantisOS(jitter_us=jitter_us, seed=seed)

    def blinker(period_us: int, led: int):
        while True:
            yield ("sleep", period_us)
            yield ("toggle", led)

    t0 = os.spawn("led0", blinker(PERIOD0_US, 0))
    t1 = os.spawn("led1", blinker(PERIOD1_US, 1))
    os.run_until(duration_us)
    return _score([t for t, _ in t0.toggles], [t for t, _ in t1.toggles],
                  duration_us, "MantisOS (RTOS)")


def run_occam(duration_us: int = 120_000_000, jitter_us: int = 1_500,
              seed: int = 23) -> BlinkResult:
    rt = OccamRuntime(jitter_us=jitter_us, seed=seed)

    def blinker(period_us: int, led: int):
        while True:
            yield ("delay", period_us)
            yield ("toggle", led)

    p0 = rt.spawn("led0", blinker(PERIOD0_US, 0))
    p1 = rt.spawn("led1", blinker(PERIOD1_US, 1))
    rt.run_until(duration_us)
    return _score([t for t, _ in p0.toggles], [t for t, _ in p1.toggles],
                  duration_us, "occam")


def experiment(duration_us: int = 120_000_000) -> list[BlinkResult]:
    return [run_ceu(duration_us), run_mantis(duration_us),
            run_occam(duration_us)]


def render(results: list[BlinkResult]) -> str:
    lines = [f"{'system':16} {'sync ratio':>10} {'max drift':>12}"]
    for r in results:
        lines.append(f"{r.system:16} {r.sync_ratio:10.2%} "
                     f"{r.max_drift_us / 1000.0:10.1f}ms")
    lines.append("paper: Céu stays synchronized; the asynchronous "
                 "implementations lose synchronism over time")
    return "\n".join(lines)
