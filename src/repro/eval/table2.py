"""Table 2 (`tab:resp`): responsiveness, Céu vs MantisOS (§4.6 exp. 2).

How fast can a node absorb 3000 radio messages while running long
computations?  Setup mirrors the paper:

* *1 sender*: messages every ~7.75 ms — the fastest rate the receivers
  sustain without losses (≈23 s for 3000 messages);
* *2 senders*: combined arrivals outpace the receiver, which then runs at
  its per-message processing rate (losses ignored) — TinyOS's lighter
  radio path makes the Céu node faster (≈12 s vs ≈20 s), exactly the
  paper's asymmetry ("probably due to TinyOS higher performance");
* *5 loops*: five infinite computations run alongside.  In Céu they live
  in ``async`` blocks (lower priority by construction); in MantisOS the
  receiver thread gets boosted priority, as the paper had to do.  Either
  way the total time increase is bounded by one context-switch/iteration
  per message — negligible (~0.1 s), the paper's key observation.

Per-message processing costs are the only calibrated constants
(Céu-on-TinyOS 4.1 ms, MantisOS 6.6 ms); everything else — saturation,
preemption, switch overhead — emerges from the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime import Program

N_MESSAGES = 3000
SEND_INTERVAL_US = 7_750          # 1-sender pacing (≈7 ms + stack)
CEU_PROC_US = 4_100               # Céu/TinyOS per-message cost
MANTIS_PROC_US = 6_600            # MantisOS per-message cost
SWITCH_US = 33                    # context-switch / async-iteration grain

RECEIVER_CEU = """
input _message_t* Radio_receive;
int n = 0;
loop do
   await Radio_receive;
   n = n + 1;
   _process(n);
   if n == {n} then
      break;
   end
end
return n;
"""

RECEIVER_CEU_LOOPS = """
input _message_t* Radio_receive;
int n = 0;
par/or do
   loop do
      await Radio_receive;
      n = n + 1;
      _process(n);
      if n == {n} then
         break;
      end
   end
with
   async do
      loop do
         _work(0);
      end
   end
with
   async do
      loop do
         _work(1);
      end
   end
with
   async do
      loop do
         _work(2);
      end
   end
with
   async do
      loop do
         _work(3);
      end
   end
with
   async do
      loop do
         _work(4);
      end
   end
end
return n;
"""


@dataclass(frozen=True, slots=True)
class RespResult:
    system: str
    senders: int
    loops: bool
    total_s: float
    received: int
    lost: int
    background_iterations: int

    def label(self) -> str:
        comp = "5 loops" if self.loops else "no comp."
        return f"{self.senders} sender(s) / {comp}"


def run_ceu(senders: int = 1, loops: bool = False,
            n_messages: int = N_MESSAGES) -> RespResult:
    """Drive the actual Céu receiver program over simulated arrivals."""
    source = (RECEIVER_CEU_LOOPS if loops else RECEIVER_CEU).format(
        n=n_messages)
    program = Program(source)
    work_count = [0]
    program.cenv.define("process", lambda n: 0)
    program.cenv.define("work", lambda i: work_count.__setitem__(
        0, work_count[0] + 1))
    program.sched.go_init()   # manual driving: the asyncs never terminate

    interval = SEND_INTERVAL_US // senders
    busy_until = 0
    received = lost = 0
    i = 0
    while not program.done:
        i += 1
        arrival = i * interval
        if arrival < busy_until - interval:
            lost += 1          # the 1-deep radio buffer already holds one
            continue
        start = max(arrival, busy_until)
        if loops:
            # an arrival waits out the current async iteration grain,
            # and the idle time between messages goes to the asyncs
            remainder = start % SWITCH_US
            if remainder:
                start += SWITCH_US - remainder
            for _ in range(max(1, interval // (SWITCH_US * 4))):
                program.sched.go_async()
        program.sched.go_event("Radio_receive", None)
        received += 1
        busy_until = start + CEU_PROC_US
    return RespResult("Céu", senders, loops, busy_until / 1e6, received,
                      lost, work_count[0])


def run_mantis(senders: int = 1, loops: bool = False,
               n_messages: int = N_MESSAGES) -> RespResult:
    """The MantisOS node: a boosted receiver thread plus compute threads.

    Modeled at the same level as the Céu driver: arrivals every
    ``interval``; the receiver needs ``MANTIS_PROC_US`` per message and,
    when compute threads are present, one context switch to preempt them.
    """
    interval = SEND_INTERVAL_US // senders
    busy_until = 0
    received = lost = 0
    background = 0
    i = 0
    while received < n_messages:
        i += 1
        arrival = i * interval
        if arrival < busy_until - interval:
            lost += 1          # buffer already full
            continue
        start = max(arrival, busy_until)
        if loops:
            background += max(1, interval // (SWITCH_US * 4))
            start += SWITCH_US        # preemption switch into the receiver
        received += 1
        busy_until = start + MANTIS_PROC_US
    return RespResult("MantisOS", senders, loops, busy_until / 1e6,
                      received, lost, background)


#: the paper's measured cells (seconds)
PAPER = {
    ("MantisOS", 1, False): 23.2, ("MantisOS", 1, True): 23.3,
    ("Céu", 1, False): 23.3,      ("Céu", 1, True): 23.3,
    ("MantisOS", 2, False): 19.8, ("MantisOS", 2, True): 19.9,
    ("Céu", 2, False): 12.3,      ("Céu", 2, True): 12.4,
}


def table2(n_messages: int = N_MESSAGES) -> list[RespResult]:
    out = []
    for senders in (1, 2):
        for loops in (False, True):
            out.append(run_mantis(senders, loops, n_messages))
            out.append(run_ceu(senders, loops, n_messages))
    return out


def render(results: list[RespResult]) -> str:
    lines = [f"{'case':26} {'system':9} {'measured':>9} {'paper':>7}"]
    for r in results:
        paper = PAPER[(r.system, r.senders, r.loops)]
        lines.append(f"{r.label():26} {r.system:9} {r.total_s:8.1f}s "
                     f"{paper:6.1f}s")
    return "\n".join(lines)
