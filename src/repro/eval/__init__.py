"""The paper's evaluation, as a library: one module per table/figure.
Benchmarks (`benchmarks/`) and tests import from here so the numbers the
harness prints are the same ones the tests assert on."""

from . import blink, figures, loc, table1, table2

__all__ = ["table1", "table2", "blink", "figures", "loc"]
