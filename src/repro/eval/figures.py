"""The paper's figures, regenerated as data + graphviz text.

* Figure 1 (`fig:reaction`) — the four-reaction scenario of §2;
* Figure 2 (`fig:dfa`)      — the DFA of the §2.6 nondeterministic program;
* the §4.1 flow graph (`fig:nfa`) of the guiding example.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dfa import Dfa, build_dfa
from ..flow import FlowGraph, build_flow
from ..lang import parse
from ..runtime import Program, Trace
from ..sema import bind

# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

FIG1_PROGRAM = """
input void A, B, C;
par do
   await A;            // trail 1
   _mark(1);
with
   await B;            // trail 2
   _mark(2);
with
   await A;            // trail 3
   _mark(3);
   await B;
   par do
      _mark(31);       // trail 3 continues
   with
      _mark(4);        // trail 4 spawned
   end
end
"""

#: the event order of the figure: A awakes trails 1 and 3; the second A is
#: discarded; B awakes trail 2 and trail 3 (which spawns trail 4); C is
#: never handled because the program already terminated.
FIG1_INPUTS = ["A", "A", "B", "C"]


@dataclass
class Fig1Result:
    trace: Trace
    terminated_before_c: bool
    marks: list[int]

    def reaction_summary(self) -> list[tuple[str, int, bool]]:
        """(trigger, #trails-that-ran, discarded) per reaction chain."""
        return [(r.trigger, len(r.trails()), r.discarded)
                for r in self.trace.reactions]


def figure1() -> Fig1Result:
    marks: list[int] = []
    program = Program(FIG1_PROGRAM, trace=True)
    program.cenv.define("mark", lambda n: marks.append(n) or 0)
    program.start()
    terminated_before_c = False
    for name in FIG1_INPUTS:
        if program.done:
            terminated_before_c = name == "C"
            break
        program.send(name)
        if program.done and name == "B":
            terminated_before_c = True
    return Fig1Result(program.trace, terminated_before_c, marks)


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------

FIG2_PROGRAM = """
input void A;
int v;
par do
   loop do
      await A;
      await A;
      v = 1;
   end
with
   loop do
      await A;
      await A;
      await A;
      v = 2;
   end
end
"""


@dataclass
class Fig2Result:
    dfa: Dfa
    dot: str
    conflict_state: int
    occurrences_to_conflict: int   # how many `A`s until the race

    @property
    def detected(self) -> bool:
        return bool(self.dfa.conflicts)


def figure2() -> Fig2Result:
    bound = bind(parse(FIG2_PROGRAM))
    dfa = build_dfa(bound)
    assert dfa.conflicts, "figure-2 program must be refused"
    conflict = dfa.conflicts[0]
    # walk the A-chain from the boot state to the conflicting state
    start = next(dst for src, lbl, dst in dfa.edges if src == -1)
    occurrences = 1  # the conflicting transition itself is an A
    state = conflict.state_index
    # BFS distance from start to the conflict source state
    dist = {start: 0}
    frontier = [start]
    while frontier and state not in dist:
        nxt = []
        for s in frontier:
            for _, d in dfa.successors(s):
                if d not in dist:
                    dist[d] = dist[s] + 1
                    nxt.append(d)
        frontier = nxt
    occurrences += dist.get(state, 0)
    return Fig2Result(dfa, dfa.to_dot(bound, title="fig_dfa"),
                      conflict.state_index, occurrences)


# ---------------------------------------------------------------------------
# §4 guiding example flow graph
# ---------------------------------------------------------------------------

GUIDING_EXAMPLE = """
input int A, B, C;
int ret;
loop do
   par/or do
      int a = await A;
      int b = await B;
      ret = a + b;
      break;
   with
      par/and do
         await C;
      with
         await A;
      end
   end
end
"""


@dataclass
class Fig3Result:
    graph: FlowGraph
    dot: str
    join_priorities: list[tuple[str, int]]


def figure3() -> Fig3Result:
    bound = bind(parse(GUIDING_EXAMPLE))
    graph = build_flow(bound)
    joins = [(n.label, n.priority) for n in graph.join_nodes()]
    return Fig3Result(graph, graph.to_dot("fig_nfa"), joins)
