"""Table 1 (`tab:eval`): memory usage, Céu vs nesC (§4.6 experiment 1).

Four applications in both languages; ROM/RAM from the structural footprint
models.  The Céu binding runs *on top of* the TinyOS stacks (the paper:
"Céu already runs on top of nesC"), so both sides carry the same
platform-stack costs and the difference isolates the language runtimes —
the mechanism behind the paper's observation that the Céu−nesC gap shrinks
as applications grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import load
from ..baselines.nesc import (NESC_RAM_RADIO, NESC_RAM_SENSOR,
                              NESC_RAM_SERIAL, NESC_ROM_RADIO_STACK,
                              NESC_ROM_SENSOR_STACK, NESC_ROM_SERIAL_STACK,
                              NESC_ROM_TIMER_STACK, BlinkApp, ClientApp,
                              NescApp, SenseApp, ServerApp, nesc_footprint)
from ..codegen import TARGET16, ceu_footprint, compile_to_c
from ..lang import parse
from ..sema import bind

#: the paper's measured rows (bytes)
PAPER = {
    "Blink":  {"nesc_rom": 2048,  "nesc_ram": 51,
               "ceu_rom": 5882,   "ceu_ram": 168},
    "Sense":  {"nesc_rom": 4366,  "nesc_ram": 84,
               "ceu_rom": 8086,   "ceu_ram": 195},
    "Client": {"nesc_rom": 11838, "nesc_ram": 329,
               "ceu_rom": 15328,  "ceu_ram": 482},
    "Server": {"nesc_rom": 14648, "nesc_ram": 373,
               "ceu_rom": 15686,  "ceu_ram": 443},
}

APPS = ("Blink", "Sense", "Client", "Server")

_NESC_APPS = {"Blink": BlinkApp, "Sense": SenseApp,
              "Client": ClientApp, "Server": ServerApp}
_CEU_SOURCES = {"Blink": "blink", "Sense": "sense",
                "Client": "client", "Server": "server"}


@dataclass(frozen=True, slots=True)
class Row:
    app: str
    nesc_rom: int
    nesc_ram: int
    ceu_rom: int
    ceu_ram: int

    @property
    def diff_rom(self) -> int:
        return self.ceu_rom - self.nesc_rom

    @property
    def diff_ram(self) -> int:
        return self.ceu_ram - self.nesc_ram

    @property
    def rel_rom_overhead(self) -> float:
        return self.diff_rom / self.nesc_rom


def measure_app(name: str) -> Row:
    nesc_app: NescApp = _NESC_APPS[name]()
    nesc_fp = nesc_footprint(nesc_app)

    bound = bind(parse(load(_CEU_SOURCES[name])))
    compiled = compile_to_c(bound, abi=TARGET16, with_main=False, name=name)
    ceu_fp = ceu_footprint(bound, compiled)
    ceu_rom, ceu_ram = ceu_fp.rom, ceu_fp.ram
    # the Céu binding sits on the same TinyOS device stacks
    ceu_rom += NESC_ROM_TIMER_STACK
    if nesc_app.uses_sensor:
        ceu_rom += NESC_ROM_SENSOR_STACK
        ceu_ram += NESC_RAM_SENSOR
    if nesc_app.uses_radio:
        ceu_rom += NESC_ROM_RADIO_STACK
        ceu_ram += NESC_RAM_RADIO
    if nesc_app.uses_serial:
        ceu_rom += NESC_ROM_SERIAL_STACK
        ceu_ram += NESC_RAM_SERIAL
    return Row(name, nesc_fp.rom, nesc_fp.ram, ceu_rom, ceu_ram)


def table1() -> list[Row]:
    return [measure_app(name) for name in APPS]


def render(rows: list[Row]) -> str:
    """The table in the paper's layout, with the paper's numbers inline."""
    lines = [f"{'app':8} {'':6} {'ROM':>12} {'RAM':>10}"]
    for row in rows:
        paper = PAPER[row.app]
        lines.append(f"{row.app:8} nesC   {row.nesc_rom:6d} bytes "
                     f"{row.nesc_ram:4d} bytes   "
                     f"(paper: {paper['nesc_rom']}/{paper['nesc_ram']})")
        lines.append(f"{'':8} Céu    {row.ceu_rom:6d} bytes "
                     f"{row.ceu_ram:4d} bytes   "
                     f"(paper: {paper['ceu_rom']}/{paper['ceu_ram']})")
        lines.append(f"{'':8} diff   {row.diff_rom:6d}       "
                     f"{row.diff_ram:4d}         "
                     f"(paper: {paper['ceu_rom'] - paper['nesc_rom']}/"
                     f"{paper['ceu_ram'] - paper['nesc_ram']})")
    return "\n".join(lines)
