"""The conclusion's expressiveness claim: "our initial experiments show a
50% decrease in LOCs when comparing Céu to nesC".

We count non-blank, non-comment source lines of the four Table-1
applications in both implementations: the bundled ``.ceu`` sources versus
the nesC-style event-driven classes (callbacks + explicit state machines)
in :mod:`repro.baselines.nesc`.  The comparison is structural, not
textual: both sides implement the same behaviour against the same device
surface, so the ratio reflects the control-flow inversion the paper
blames for event-driven verbosity (§5.1).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

from ..apps import load
from ..baselines import nesc


def count_ceu_loc(source: str) -> int:
    lines = 0
    for raw in source.splitlines():
        text = raw.strip()
        if not text or text.startswith("//"):
            continue
        lines += 1
    return lines


def count_python_loc(cls) -> int:
    source = inspect.getsource(cls)
    lines = 0
    for raw in source.splitlines():
        text = raw.strip()
        if not text or text.startswith("#") or text.startswith('"""') \
                or text.startswith("'''"):
            continue
        lines += 1
    return lines


@dataclass(frozen=True, slots=True)
class LocRow:
    app: str
    ceu: int
    nesc: int

    @property
    def ratio(self) -> float:
        return self.ceu / self.nesc


PAIRS = [("Blink", "blink", nesc.BlinkApp),
         ("Sense", "sense", nesc.SenseApp),
         ("Client", "client", nesc.ClientApp),
         ("Server", "server", nesc.ServerApp)]


def loc_table() -> list[LocRow]:
    return [LocRow(name, count_ceu_loc(load(src)), count_python_loc(cls))
            for name, src, cls in PAIRS]


def render(rows: list[LocRow]) -> str:
    lines = [f"{'app':8} {'Céu':>5} {'nesC':>5} {'ratio':>7}"]
    total_ceu = total_nesc = 0
    for row in rows:
        total_ceu += row.ceu
        total_nesc += row.nesc
        lines.append(f"{row.app:8} {row.ceu:5d} {row.nesc:5d} "
                     f"{row.ratio:6.0%}")
    lines.append(f"{'total':8} {total_ceu:5d} {total_nesc:5d} "
                 f"{total_ceu / total_nesc:6.0%}")
    lines.append("paper: ~50% decrease in LOCs from nesC to Céu")
    return "\n".join(lines)
