"""End-to-end compilation pipeline (§4): parse → bind → bounded-execution
check → temporal analysis → artifacts (flow graph, DFA, memory layout,
gates, C code) → executable VM instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from ..codegen import (HOST, CompiledC, GateTable, MemLayout, TargetABI,
                       build_gates, build_layout, compile_to_c)
from ..dfa import Dfa, build_dfa
from ..flow import FlowGraph, build_flow
from ..lang import parse
from ..lang.errors import NondeterminismError
from ..runtime import CEnv, Program
from ..runtime.program import parse_time
from ..sema import BoundProgram, bind, check_bounded


@dataclass
class CompiledUnit:
    """A fully analysed Céu program and its derived artifacts."""

    source: str
    bound: BoundProgram
    dfa: Optional[Dfa] = None
    _flow: Optional[FlowGraph] = field(default=None, repr=False)

    # ------------------------------------------------------------ artifacts
    def flow_graph(self) -> FlowGraph:
        if self._flow is None:
            self._flow = build_flow(self.bound)
        return self._flow

    def memory_layout(self, abi: TargetABI = HOST) -> MemLayout:
        return build_layout(self.bound, abi)

    def gate_table(self) -> GateTable:
        return build_gates(self.bound)

    def to_c(self, abi: TargetABI = HOST, with_main: bool = True,
             name: str = "ceu") -> CompiledC:
        return compile_to_c(self.bound, abi=abi, with_main=with_main,
                            name=name)

    # ----------------------------------------------------------- execution
    def instantiate(self, cenv: Optional[CEnv] = None,
                    trace: bool = False, observe: bool = False) -> Program:
        return Program(self.bound, cenv=cenv, trace=trace,
                       observe=observe, check=False)


def analyze(source: str, check_determinism: bool = True,
            max_states: int = 20_000, filename: str = "<ceu>") -> CompiledUnit:
    """Run the full front end and static analyses on Céu source."""
    bound = bind(parse(source, filename))
    check_bounded(bound)
    dfa = None
    if check_determinism:
        dfa = build_dfa(bound, max_states=max_states)
        if dfa.conflicts:
            first = dfa.conflicts[0]
            raise NondeterminismError(first.message(), first.first.span,
                                      state=first.state_index,
                                      witness=(first.first, first.second))
    return CompiledUnit(source, bound, dfa)


def compile_source(source: str, check_determinism: bool = True,
                   filename: str = "<ceu>") -> CompiledUnit:
    """Alias of :func:`analyze` with the conventional name."""
    return analyze(source, check_determinism=check_determinism,
                   filename=filename)


def run(source: str, events: Sequence[tuple[str, Any]] = (),
        until: Union[int, str, None] = None,
        check_determinism: bool = False, trace: bool = False,
        cenv: Optional[CEnv] = None) -> Program:
    """One-shot: compile, boot, feed ``events`` and/or advance time.

    ``events`` items are ``(name, value)`` pairs or ``("@<TIME>", _)``
    markers that advance the clock; ``until`` advances the clock at the
    end.  Returns the (possibly terminated) :class:`Program`.
    """
    unit = analyze(source, check_determinism=check_determinism)
    program = unit.instantiate(cenv=cenv, trace=trace)
    program.start()
    for name, value in events:
        if program.done:
            break
        if name.startswith("@"):
            program.at(parse_time(name[1:]))
        else:
            program.send(name, value)
    if until is not None and not program.done:
        program.at(parse_time(until))
    return program
