"""Public facade of the reproduction.

Typical use::

    from repro.core import compile_source, run

    unit = compile_source(source_text)      # parse + bind + all analyses
    program = unit.instantiate()            # a VM-backed Program
    program.start(); program.send("Key")

or one-shot::

    result = run(source_text, events=[("Key", 0)], until="10s")
"""

from .compile import CompiledUnit, analyze, compile_source, run

__all__ = ["compile_source", "analyze", "run", "CompiledUnit"]
