"""nesC-style event-driven baseline (§4.6, experiment 1).

The paper ports four preexisting nesC/TinyOS applications to Céu and
compares ROM/RAM.  This module provides:

* a small but genuine event-driven kernel in the TinyOS mould — split-phase
  commands, event handlers, posted tasks, periodic timers, a radio and a
  sensor — running over the shared discrete-event simulator;
* the four applications (Blink, Sense, Client, Server) written against it;
* a structural ROM/RAM footprint model (constants calibrated once against
  the paper's Blink row; see ``DESIGN.md`` §3 for the substitution note).

Event-driven nesC code must break logic into callbacks with explicit state
machines — visible below in Client/Server, which need send-pending flags,
retry counters and acknowledgement bookkeeping that the Céu versions
express with plain control flow (§5.1).
"""

from __future__ import annotations

import inspect
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim.des import Rng, Simulator

# ---------------------------------------------------------------------------
# kernel
# ---------------------------------------------------------------------------


class NescKernel:
    """TinyOS-like execution: events preempt nothing; tasks run FIFO when
    the current event handler returns (the classic TinyOS scheduler)."""

    def __init__(self, sim: Optional[Simulator] = None):
        self.sim = sim if sim is not None else Simulator()
        self.tasks: deque[Callable[[], None]] = deque()
        self._draining = False

    def post(self, task: Callable[[], None]) -> None:
        self.tasks.append(task)
        if not self._draining:
            self.sim.after(0, self._drain)

    def _drain(self) -> None:
        self._draining = True
        while self.tasks:
            self.tasks.popleft()()
        self._draining = False


class Timer:
    """A TinyOS `Timer<TMilli>`: startPeriodic / startOneShot → `fired`."""

    def __init__(self, kernel: NescKernel, fired: Callable[[], None]):
        self.kernel = kernel
        self.fired = fired
        self.period_us = 0
        self.running = False
        self._handle: Optional[int] = None

    def startPeriodic(self, ms: int) -> None:
        self.period_us = ms * 1000
        self.running = True
        self._arm()

    def startOneShot(self, ms: int) -> None:
        self.period_us = 0
        self.running = True
        self._handle = self.kernel.sim.after(ms * 1000, self._fire)

    def stop(self) -> None:
        self.running = False
        if self._handle is not None:
            self.kernel.sim.cancel(self._handle)
            self._handle = None

    def _arm(self) -> None:
        self._handle = self.kernel.sim.after(self.period_us, self._fire)

    def _fire(self) -> None:
        if not self.running:
            return
        if self.period_us:
            self._arm()
        self.fired()


class Leds:
    def __init__(self, sim: Simulator):
        self.sim = sim
        self.value = 0
        self.history: list[tuple[int, int]] = []

    def set(self, value: int) -> None:
        self.value = value & 7
        self.history.append((self.sim.now, self.value))

    def toggle(self, bit: int) -> None:
        self.set(self.value ^ (1 << bit))


class Sensor:
    """Split-phase read: `read()` → later `readDone(value)`."""

    def __init__(self, kernel: NescKernel, done: Callable[[int], None],
                 latency_us: int = 3_000, seed: int = 5):
        self.kernel = kernel
        self.done = done
        self.latency_us = latency_us
        self.rng = Rng(seed)

    def read(self) -> None:
        value = self.rng.uniform(0, 1023)
        self.kernel.sim.after(self.latency_us, lambda: self.done(value))


class Radio:
    """AMSend/Receive-style radio; `send` → `sendDone`, peer `receive`."""

    def __init__(self, kernel: NescKernel, node_id: int,
                 send_done: Callable[[bool], None],
                 receive: Callable[[int, Any], None],
                 latency_us: int = 5_000):
        self.kernel = kernel
        self.node_id = node_id
        self.send_done = send_done
        self.receive = receive
        self.latency_us = latency_us
        self.network: dict[int, "Radio"] = {}
        self.busy = False
        self.sent: list[tuple[int, int, Any]] = []

    def join(self, network: dict[int, "Radio"]) -> None:
        network[self.node_id] = self
        self.network = network

    def send(self, dest: int, payload: Any) -> bool:
        if self.busy:
            return False
        self.busy = True
        self.sent.append((self.kernel.sim.now, dest, payload))
        peer = self.network.get(dest)

        def complete() -> None:
            self.busy = False
            if peer is not None:
                peer.receive(self.node_id, payload)
            self.send_done(peer is not None)

        self.kernel.sim.after(self.latency_us, complete)
        return True


# ---------------------------------------------------------------------------
# the four ported applications
# ---------------------------------------------------------------------------


class NescApp:
    """Base: introspects handlers for the ROM model, tracks state bytes."""

    name = "app"
    uses_radio = False
    uses_sensor = False
    uses_serial = False

    def __init__(self, kernel: Optional[NescKernel] = None):
        self.kernel = kernel if kernel is not None else NescKernel()
        self.leds = Leds(self.kernel.sim)

    def boot(self) -> None:
        raise NotImplementedError

    # ---------------------------------------------------- footprint model
    def handlers(self) -> list[str]:
        return [name for name, _ in inspect.getmembers(
            self, predicate=inspect.ismethod)
            if not name.startswith("_")
            and name not in ("handlers", "state_bytes", "run_until")]

    def state_bytes(self) -> int:
        total = 0
        for name, value in vars(self).items():
            if isinstance(value, bool):
                total += 1
            elif isinstance(value, int):
                total += 2          # 16-bit target
            elif isinstance(value, list):
                total += 2 * len(value)
        return total

    def run_until(self, time_us: int) -> None:
        self.kernel.sim.run_until(time_us)


class BlinkApp(NescApp):
    """The TinyOS Blink: three periodic timers toggling three leds."""

    name = "Blink"

    def __init__(self, kernel: Optional[NescKernel] = None):
        super().__init__(kernel)
        self.timer0 = Timer(self.kernel, self.fired0)
        self.timer1 = Timer(self.kernel, self.fired1)
        self.timer2 = Timer(self.kernel, self.fired2)

    def boot(self) -> None:
        self.timer0.startPeriodic(250)
        self.timer1.startPeriodic(500)
        self.timer2.startPeriodic(1000)

    def fired0(self) -> None:
        self.leds.toggle(0)

    def fired1(self) -> None:
        self.leds.toggle(1)

    def fired2(self) -> None:
        self.leds.toggle(2)


class SenseApp(NescApp):
    """The TinyOS Sense: sample a sensor periodically, show on leds."""

    name = "Sense"
    uses_sensor = True

    def __init__(self, kernel: Optional[NescKernel] = None):
        super().__init__(kernel)
        self.timer = Timer(self.kernel, self.fired)
        self.sensor = Sensor(self.kernel, self.read_done)
        self.reading = 0

    def boot(self) -> None:
        self.timer.startPeriodic(100)

    def fired(self) -> None:
        self.sensor.read()

    def read_done(self, value: int) -> None:
        self.reading = value
        self.kernel.post(self.show_task)

    def show_task(self) -> None:
        self.leds.set(self.reading >> 7)


class ClientApp(NescApp):
    """Periodic sender with acknowledgement + bounded retry — the manual
    state machine (busy flags, pending counters) nesC is known for."""

    name = "Client"
    uses_radio = True
    MAX_RETRIES = 3
    uses_serial = False

    def __init__(self, kernel: Optional[NescKernel] = None,
                 node_id: int = 1, server_id: int = 0):
        super().__init__(kernel)
        self.node_id = node_id
        self.server_id = server_id
        self.timer = Timer(self.kernel, self.fired)
        self.ack_timer = Timer(self.kernel, self.ack_timeout)
        self.radio = Radio(self.kernel, node_id, self.send_done,
                           self.receive)
        self.counter = 0
        self.pending = False
        self.retries = 0
        self.acked = 0
        self.lost = 0

    def boot(self) -> None:
        self.radio_on = False
        self.start_radio()

    def start_radio(self) -> None:
        # split-phase radio control, as every TinyOS radio app needs
        self.kernel.sim.after(1_000, self.start_done)

    def start_done(self) -> None:
        self.radio_on = True
        self.timer.startPeriodic(1000)

    def stop_done(self) -> None:
        self.radio_on = False

    def fired(self) -> None:
        if self.pending or not self.radio_on:
            return  # previous exchange still in flight
        self.counter += 1
        self.pending = True
        self.retries = 0
        self.send_current()

    def send_current(self) -> None:
        if not self.radio.send(self.server_id, ("DATA", self.counter)):
            self.kernel.post(self.send_current)
            return
        self.ack_timer.startOneShot(200)

    def send_done(self, ok: bool) -> None:
        if not ok:
            self.ack_timeout()

    def ack_timeout(self) -> None:
        if not self.pending:
            return
        if self.retries < self.MAX_RETRIES:
            self.retries += 1
            self.send_current()
        else:
            self.pending = False
            self.lost += 1

    def receive(self, src: int, payload: Any) -> None:
        kind, value = payload
        if kind == "ACK" and self.pending and value == self.counter:
            self.ack_timer.stop()
            self.pending = False
            self.acked += 1
            self.leds.set(value)


class ServerApp(NescApp):
    """Receives DATA, displays it, replies ACK; queues while radio busy."""

    name = "Server"
    uses_radio = True
    uses_serial = True         # the paper's server is a basestation-style
    #                            app forwarding received data over UART

    def __init__(self, kernel: Optional[NescKernel] = None,
                 node_id: int = 0):
        super().__init__(kernel)
        self.node_id = node_id
        self.radio = Radio(self.kernel, node_id, self.send_done,
                           self.receive)
        self.ack_queue: list[tuple[int, int]] = []
        self.uart_queue: list[int] = []
        self.sending = False
        self.uart_busy = False
        self.radio_on = False
        self.received = 0
        self.forwarded = 0
        self.last = 0

    def boot(self) -> None:
        self.kernel.sim.after(1_000, self.start_done)

    def start_done(self) -> None:
        self.radio_on = True

    def stop_done(self) -> None:
        self.radio_on = False

    def receive(self, src: int, payload: Any) -> None:
        kind, value = payload
        if kind != "DATA":
            return
        self.received += 1
        self.last = value
        self.leds.set(value)
        self.ack_queue.append((src, value))
        self.uart_queue.append(value)
        self.kernel.post(self.pump_task)
        self.kernel.post(self.uart_task)

    def pump_task(self) -> None:
        if self.sending or not self.ack_queue:
            return
        src, value = self.ack_queue[0]
        if self.radio.send(src, ("ACK", value)):
            self.sending = True
            self.ack_queue.pop(0)
        else:
            self.kernel.post(self.pump_task)

    def send_done(self, ok: bool) -> None:
        self.sending = False
        if self.ack_queue:
            self.kernel.post(self.pump_task)

    def uart_task(self) -> None:
        if self.uart_busy or not self.uart_queue:
            return
        self.uart_busy = True
        value = self.uart_queue.pop(0)
        self.kernel.sim.after(2_000,
                              lambda: self.uart_send_done(value))

    def uart_send_done(self, value: int) -> None:
        self.uart_busy = False
        self.forwarded += 1
        if self.uart_queue:
            self.kernel.post(self.uart_task)

    def pool_reclaim_task(self) -> None:
        # BaseStation-style message-pool management: bound both queues
        while len(self.ack_queue) > 8:
            self.ack_queue.pop(0)
        while len(self.uart_queue) > 8:
            self.uart_queue.pop(0)


# ---------------------------------------------------------------------------
# footprint model
# ---------------------------------------------------------------------------

#: calibrated once against the paper's Blink row (nesC: 2048 B / 51 B)
NESC_ROM_KERNEL = 1150         # boot + task scheduler
NESC_ROM_PER_HANDLER = 120     # compiled handler/wiring cost
NESC_ROM_TIMER_STACK = 420     # virtualised timers
NESC_ROM_SENSOR_STACK = 1900   # ADC + split-phase read path
NESC_ROM_RADIO_STACK = 7600    # active messages, CSMA, serial stack
NESC_RAM_KERNEL = 24
NESC_RAM_PER_TIMER = 10
NESC_RAM_SENSOR = 18
NESC_RAM_RADIO = 230           # message buffers + radio state
NESC_ROM_SERIAL_STACK = 2600   # UART + serial active messages
NESC_RAM_SERIAL = 48


@dataclass(frozen=True, slots=True)
class NescFootprint:
    rom: int
    ram: int


def nesc_footprint(app: NescApp) -> NescFootprint:
    timers = sum(1 for v in vars(app).values() if isinstance(v, Timer))
    rom = NESC_ROM_KERNEL + NESC_ROM_PER_HANDLER * len(app.handlers())
    ram = NESC_RAM_KERNEL + NESC_RAM_PER_TIMER * timers + app.state_bytes()
    if timers:
        rom += NESC_ROM_TIMER_STACK
    if app.uses_sensor:
        rom += NESC_ROM_SENSOR_STACK
        ram += NESC_RAM_SENSOR
    if app.uses_radio:
        rom += NESC_ROM_RADIO_STACK
        ram += NESC_RAM_RADIO
    if app.uses_serial:
        rom += NESC_ROM_SERIAL_STACK
        ram += NESC_RAM_SERIAL
    return NescFootprint(rom, ram)
