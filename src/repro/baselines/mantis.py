"""MantisOS-style preemptive multithreading baseline (§4.6 experiment 2,
§5.2 blink experiment).

MantisOS schedules threads preemptively with priorities and round-robin
time slices.  The simulator models exactly what the paper's experiments
exercise:

* threads as generators yielding ``("compute", us)`` / ``("sleep", us)`` /
  ``("recv",)`` / ``("toggle", led)`` requests;
* priority scheduling with a fixed quantum; a higher-priority thread
  becoming ready preempts the running one;
* a radio queue feeding ``recv``-blocked threads;
* *scheduling jitter* on sleeps: a woken thread waits for the CPU, so each
  ``sleep(t)`` actually takes ``t + ε`` — the uncompensated residual delta
  (§2.3) whose accumulation makes the naive blink drift (§5.2).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..sim.des import Rng, Simulator

QUANTUM_US = 10_000          # MantisOS default time slice (10 ms)


@dataclass(eq=False)
class MThread:
    name: str
    body: Iterator
    priority: int = 1          # smaller = more urgent
    state: str = "ready"       # ready | running | sleeping | recv | dead
    wake_at: int = 0
    remaining_us: int = 0      # of the current compute burst
    cpu_us: int = 0
    toggles: list[tuple[int, int]] = field(default_factory=list)


class MantisOS:
    """One node running preemptive threads."""

    def __init__(self, jitter_us: int = 800, seed: int = 11,
                 sim: Optional[Simulator] = None):
        self.sim = sim if sim is not None else Simulator()
        self.threads: list[MThread] = []
        self.radio_queue: list[Any] = []
        self.received: list[tuple[int, Any]] = []
        self.jitter_us = jitter_us
        self.rng = Rng(seed)
        self._running: Optional[MThread] = None
        self._slice_handle: Optional[int] = None
        self._seq = itertools.count()

    # ------------------------------------------------------------- threads
    def spawn(self, name: str, gen: Iterator, priority: int = 1) -> MThread:
        thread = MThread(name, gen, priority)
        self.threads.append(thread)
        self._make_ready(thread, immediate=True)
        return thread

    def _make_ready(self, thread: MThread, immediate: bool = False) -> None:
        thread.state = "ready"
        delay = 0 if immediate else self.rng.uniform(0, self.jitter_us)
        self.sim.after(delay, self._schedule)

    # ------------------------------------------------------------ schedule
    def _pick(self) -> Optional[MThread]:
        ready = [t for t in self.threads if t.state == "ready"]
        if not ready:
            return None
        best_prio = min(t.priority for t in ready)
        candidates = [t for t in ready if t.priority == best_prio]
        # round robin: least CPU first among equal priority
        return min(candidates, key=lambda t: (t.cpu_us, t.name))

    def _schedule(self) -> None:
        current = self._running
        nxt = self._pick()
        if nxt is None:
            return
        if current is not None and current.state == "running":
            if current.priority <= nxt.priority:
                return  # current keeps the CPU until its slice ends
            # preemption: put the current thread back on the ready list
            current.state = "ready"
            if self._slice_handle is not None:
                self.sim.cancel(self._slice_handle)
        self._dispatch(nxt)

    def _dispatch(self, thread: MThread) -> None:
        self._running = thread
        thread.state = "running"
        if thread.remaining_us > 0:
            self._burn(thread)
            return
        self._advance(thread)

    def _advance(self, thread: MThread) -> None:
        try:
            req = next(thread.body)
        except StopIteration:
            thread.state = "dead"
            self._running = None
            self.sim.after(0, self._schedule)
            return
        kind = req[0]
        if kind == "compute":
            thread.remaining_us = req[1]
            self._burn(thread)
        elif kind == "sleep":
            thread.state = "sleeping"
            self._running = None
            jitter = self.rng.uniform(0, self.jitter_us)
            self.sim.after(req[1] + jitter,
                           lambda t=thread: self._wake(t))
            self.sim.after(0, self._schedule)
        elif kind == "recv":
            if self.radio_queue:
                msg = self.radio_queue.pop(0)
                self.received.append((self.sim.now, msg))
                self._advance(thread)
            else:
                thread.state = "recv"
                self._running = None
                self.sim.after(0, self._schedule)
        elif kind == "toggle":
            thread.toggles.append((self.sim.now, req[1]))
            self._advance(thread)
        else:  # pragma: no cover
            raise ValueError(f"unknown thread request {req!r}")

    def _burn(self, thread: MThread) -> None:
        slice_us = min(QUANTUM_US, thread.remaining_us)

        def done(t=thread, used=slice_us) -> None:
            if t.state != "running":
                return
            t.remaining_us -= used
            t.cpu_us += used
            if t.remaining_us <= 0:
                self._running = None
                t.state = "ready"
                self._advance_or_requeue(t)
            else:
                # slice expired: yield the CPU (round robin)
                t.state = "ready"
                self._running = None
                self._schedule()

        self._slice_handle = self.sim.after(slice_us, done)

    def _advance_or_requeue(self, thread: MThread) -> None:
        thread.state = "running"
        self._running = thread
        self._advance(thread)

    def _wake(self, thread: MThread) -> None:
        if thread.state == "sleeping":
            self._make_ready(thread, immediate=True)
            self._schedule()

    # -------------------------------------------------------------- radio
    def radio_deliver(self, msg: Any) -> None:
        """A message arrives from the network (interrupt context)."""
        waiter = next((t for t in self.threads if t.state == "recv"), None)
        if waiter is None:
            self.radio_queue.append(msg)
            return
        self.received.append((self.sim.now, msg))
        # the radio ISR marks the thread ready; it still must win the CPU
        waiter.state = "ready"
        self.sim.after(0, self._schedule)

    def run_until(self, time_us: int) -> None:
        self.sim.run_until(time_us)
