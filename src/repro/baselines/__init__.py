"""Comparison systems: nesC-style event-driven (§4.6 exp. 1), MantisOS-style
preemptive multithreading (§4.6 exp. 2), occam-style CSP (§5.2)."""

from .mantis import MantisOS, MThread, QUANTUM_US
from .nesc import (BlinkApp, ClientApp, NescApp, NescKernel, SenseApp,
                   ServerApp, nesc_footprint)
from .occam import Channel, OccamProcess, OccamRuntime

__all__ = ["NescKernel", "NescApp", "BlinkApp", "SenseApp", "ClientApp",
           "ServerApp", "nesc_footprint", "MantisOS", "MThread",
           "QUANTUM_US", "OccamRuntime", "OccamProcess", "Channel"]
