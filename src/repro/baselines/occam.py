"""occam-style message-passing baseline (§5.2).

The paper's blink experiment compares Céu with "Concurrency for Arduino"
(an occam runtime): independent processes coordinated by channels, with
timers read via ``TIM ? t`` and delays via ``TIM ? AFTER t + period``.
The crucial behavioural detail reproduced here: the naive occam blinker
recomputes each deadline from *the time it happened to wake up*, so
scheduler latency accumulates and two blinkers with co-divisible periods
drift out of phase — unlike Céu's residual-delta chaining (§2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..sim.des import Rng, Simulator


class Channel:
    """A synchronous occam channel (rendezvous)."""

    def __init__(self, name: str = "chan"):
        self.name = name
        self.senders: list[tuple["OccamProcess", Any]] = []
        self.receivers: list["OccamProcess"] = []


@dataclass(eq=False)
class OccamProcess:
    name: str
    body: Iterator
    state: str = "ready"       # ready | delaying | sending | receiving | dead
    toggles: list[tuple[int, int]] = field(default_factory=list)
    inbox: Any = None


class OccamRuntime:
    """Cooperative occam-like scheduler with wake-up jitter on delays.

    Process bodies are generators yielding:

    * ``("delay", us)``        — ``TIM ? AFTER now PLUS us``;
    * ``("send", chan, v)`` / ``("recv", chan)`` — channel rendezvous;
    * ``("toggle", led)``      — pin write (recorded);
    * ``("now",)``             — read the timer (sent back into the body).
    """

    def __init__(self, jitter_us: int = 600, seed: int = 23,
                 sim: Optional[Simulator] = None):
        self.sim = sim if sim is not None else Simulator()
        self.processes: list[OccamProcess] = []
        self.jitter_us = jitter_us
        self.rng = Rng(seed)

    def spawn(self, name: str, gen: Iterator) -> OccamProcess:
        proc = OccamProcess(name, gen)
        self.processes.append(proc)
        self.sim.after(0, lambda: self._advance(proc, None))
        return proc

    def _advance(self, proc: OccamProcess, value: Any) -> None:
        if proc.state == "dead":
            return
        proc.state = "ready"
        try:
            req = proc.body.send(value) if value is not None or \
                getattr(proc, "_started", False) else next(proc.body)
            proc._started = True  # type: ignore[attr-defined]
        except StopIteration:
            proc.state = "dead"
            return
        kind = req[0]
        if kind == "delay":
            proc.state = "delaying"
            jitter = self.rng.uniform(0, self.jitter_us)
            self.sim.after(req[1] + jitter,
                           lambda: self._advance(proc, 0))
        elif kind == "toggle":
            proc.toggles.append((self.sim.now, req[1]))
            self.sim.after(0, lambda: self._advance(proc, 0))
        elif kind == "now":
            self.sim.after(0, lambda: self._advance(proc, self.sim.now))
        elif kind == "send":
            _, chan, payload = req
            if chan.receivers:
                other = chan.receivers.pop(0)
                self.sim.after(0, lambda: self._advance(other, payload))
                self.sim.after(0, lambda: self._advance(proc, 0))
            else:
                proc.state = "sending"
                chan.senders.append((proc, payload))
        elif kind == "recv":
            _, chan = req
            if chan.senders:
                other, payload = chan.senders.pop(0)
                self.sim.after(0, lambda: self._advance(other, 0))
                self.sim.after(0, lambda: self._advance(proc, payload))
            else:
                proc.state = "receiving"
                chan.receivers.append(proc)
        else:  # pragma: no cover
            raise ValueError(f"unknown occam request {req!r}")

    def run_until(self, time_us: int) -> None:
        self.sim.run_until(time_us)
