"""Abstract reaction-chain execution for the temporal analysis (§2.6, §4.1).

The DFA's states are *configurations*: which awaits are armed, with what
relative wall-clock offsets, under which parallel structure.  A transition
abstract-executes one full reaction chain: data is unknown, so conditionals
fork the machine; everything else mirrors the concrete scheduler —
priorities, the internal-event stack policy, par/or kills, loop escapes.

Configuration trees are flat dicts ``path → entry``:

=========================  ================================================
``("par", nid, mode)``      a live parallel composition (children at
                            ``path + (i,)``)
``("ext", nid)``            trail awaiting an external event
``("intl", nid)``           trail awaiting an internal event
``("time", nid, rem, ep)``  trail awaiting a literal timeout: ``rem`` µs
                            remain, comparable within epoch ``ep``
``("tunk", nid)``           computed timeout (``await (exp)``): duration
                            statically unknown, fires alone
``("fore", nid)``           ``await forever``
``("async", nid)``          trail awaiting an ``async`` completion
``("done",)``               terminated branch
``("run",)``                transient: trail executing this reaction
``("term",)``               the program returned
=========================  ================================================

Wall-clock epochs: timers armed in the same reaction share an epoch and
their deadlines are numerically comparable (residual-delta chaining, §2.3);
timers armed in reactions triggered by *events* begin a fresh epoch because
the event's arrival instant is unknown.  Within an epoch the minimal
remaining time fires, and equal minima fire in the same reaction —
concurrently — which is exactly how the analysis catches the paper's
``10ms``-loop-vs-``100ms`` race while accepting ``50+49`` vs ``100``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..lang import ast
from ..lang.errors import AnalysisBudgetExceeded
from ..sema.binder import BoundProgram
from .actions import ARM, CALL, EMIT, RD, WR, Action, ChainSet

Path = tuple
Entry = tuple


@dataclass(eq=False)
class RunItem:
    cursor: tuple            # ("enter", node) | ("after", node) |
    #                          ("decl", declvar, index)
    path: Path
    chain: int


@dataclass(eq=False)
class JoinItem:
    prio: tuple
    seq: int
    kind: str                # "join" | "escape"
    path: Path               # par path (join) / escaping leaf path (escape)
    payload: tuple           # join: (par_nid,); escape: (k, target_node)
    cause: Optional[int] = None   # chain that enqueued this join


class MidState:
    """One in-flight abstract reaction (copied at every conditional)."""

    __slots__ = ("tree", "stack", "joinq", "actions", "chains",
                 "timer_epoch", "terminated", "_seq")

    def __init__(self, tree: dict, timer_epoch: int):
        self.tree = tree
        self.stack: list[RunItem] = []
        self.joinq: list[JoinItem] = []
        self.actions: list[Action] = []
        self.chains = ChainSet()
        self.timer_epoch = timer_epoch
        self.terminated = False
        self._seq = 0

    def copy(self) -> "MidState":
        dup = MidState(dict(self.tree), self.timer_epoch)
        dup.stack = [RunItem(i.cursor, i.path, i.chain) for i in self.stack]
        dup.joinq = [JoinItem(j.prio, j.seq, j.kind, j.path, j.payload,
                              j.cause)
                     for j in self.joinq]
        dup.actions = list(self.actions)
        dup.chains = self.chains.copy()
        dup.terminated = self.terminated
        dup._seq = self._seq
        return dup

    def seq(self) -> int:
        self._seq += 1
        return self._seq


def freeze(tree: dict) -> tuple:
    """Canonical hashable form with epochs renumbered by first appearance."""
    items = sorted(tree.items())
    epoch_map: dict[int, int] = {}
    out = []
    for path, entry in items:
        if entry[0] == "time":
            ep = entry[3]
            if ep not in epoch_map:
                epoch_map[ep] = len(epoch_map)
            entry = ("time", entry[1], entry[2], epoch_map[ep])
        out.append((path, entry))
    return tuple(out)


def thaw(frozen: tuple) -> dict:
    return {path: entry for path, entry in frozen}


class AbstractMachine:
    """Executes abstract reaction chains over configuration trees."""

    def __init__(self, bound: BoundProgram, midstate_budget: int = 20_000):
        self.bound = bound
        self.midstate_budget = midstate_budget
        self._epoch_seq = itertools.count(1)
        self._depth = self._compute_depths()

    # ------------------------------------------------------------- prepass
    def _compute_depths(self) -> dict[int, int]:
        depth: dict[int, int] = {}

        def walk(node: ast.Node, d: int) -> None:
            depth[node.nid] = d
            nested = d + 1 if isinstance(node,
                                         (ast.ParStmt, ast.Loop)) else d
            for child in node.children():
                walk(child, nested)

        walk(self.bound.program, 0)
        return depth

    def fresh_epoch(self) -> int:
        return next(self._epoch_seq)

    # --------------------------------------------------------- transitions
    def boot(self) -> list[tuple[tuple, list[Action], ChainSet]]:
        ms = MidState({(): ("run",)}, self.fresh_epoch())
        chain = ms.chains.new()
        ms.stack.append(RunItem(("enter", self.bound.program.body), (),
                                chain))
        return self._drain(ms)

    def fire_event(self, frozen: tuple, name: str):
        tree = thaw(frozen)
        ms = MidState(tree, self.fresh_epoch())
        leaves = [(path, entry) for path, entry in sorted(tree.items())
                  if entry[0] == "ext"
                  and self.bound.event_of[entry[1]].name == name]
        self._seed_resumes(ms, leaves)
        return self._drain(ms)

    def fire_timer(self, frozen: tuple, epoch: int):
        tree = thaw(frozen)
        in_epoch = [(path, entry) for path, entry in tree.items()
                    if entry[0] == "time" and entry[3] == epoch]
        if not in_epoch:
            return []
        m = min(entry[2] for _, entry in in_epoch)
        batch = []
        for path, entry in sorted(in_epoch):
            if entry[2] == m:
                batch.append((path, entry))
            else:
                tree[path] = ("time", entry[1], entry[2] - m, epoch)
        ms = MidState(tree, epoch)
        self._seed_resumes(ms, batch)
        return self._drain(ms)

    def fire_unknown_timer(self, frozen: tuple, path: Path):
        tree = thaw(frozen)
        entry = tree.get(path)
        if entry is None or entry[0] != "tunk":
            return []
        ms = MidState(tree, self.fresh_epoch())
        self._seed_resumes(ms, [(path, entry)])
        return self._drain(ms)

    def fire_async(self, frozen: tuple, path: Path):
        tree = thaw(frozen)
        entry = tree.get(path)
        if entry is None or entry[0] != "async":
            return []
        ms = MidState(tree, self.fresh_epoch())
        node = self._node_by_nid(entry[1])
        ms.tree[path] = ("run",)
        chain = ms.chains.new()
        ms.stack.append(RunItem(("after", node), path, chain))
        return self._drain(ms)

    def _seed_resumes(self, ms: MidState, leaves: list) -> None:
        """Arrange independent (mutually concurrent) resumes of leaves."""
        items = []
        for path, entry in leaves:
            ms.tree[path] = ("run",)
            node = self._node_by_nid(entry[1])
            chain = ms.chains.new()
            items.append(RunItem(("after_await", node), path, chain))
        ms.stack.extend(reversed(items))

    # ----------------------------------------------------------- the drain
    def _drain(self, first: MidState):
        """Run the abstract reaction to quiescence in every fork.

        Returns ``[(frozen_tree, actions, chains), ...]`` — one result per
        distinct data path through the reaction.
        """
        results = []
        worklist = [first]
        spent = 0
        while worklist:
            spent += 1
            if spent > self.midstate_budget:
                raise AnalysisBudgetExceeded(
                    "temporal analysis transition exceeded its fork budget")
            ms = worklist.pop()
            if ms.terminated:
                results.append((freeze(ms.tree), ms.actions, ms.chains))
                continue
            if ms.stack:
                item = ms.stack.pop()
                self._run(ms, item, worklist)
                worklist.append(ms)
                continue
            if ms.joinq:
                ms.joinq.sort(key=lambda j: (j.prio, j.seq))
                join = ms.joinq.pop(0)
                self._dispatch_join(ms, join)
                worklist.append(ms)
                continue
            results.append((freeze(ms.tree), ms.actions, ms.chains))
        return results

    # ---------------------------------------------------------- run cursor
    def _run(self, ms: MidState, item: RunItem, worklist: list) -> None:
        """Advance one chain until it suspends/ends (forks go to worklist)."""
        cursor = item.cursor
        path = item.path
        chain = item.chain
        guard = 0
        while True:
            guard += 1
            if guard > 100_000:
                raise AnalysisBudgetExceeded(
                    "abstract chain did not reach an await — tight loop?")
            kind, node = cursor[0], cursor[1]
            if kind == "enter":
                nxt = self._enter(ms, node, path, chain, worklist)
            elif kind == "after":
                nxt = self._after(ms, node, path, chain)
            elif kind == "after_await":
                # resuming from an await: value assignment (if any) is
                # handled by the generic successor walk
                nxt = self._after(ms, node, path, chain)
            elif kind == "decl":
                nxt = self._decl_step(ms, cursor, path, chain)
            else:  # pragma: no cover
                raise AssertionError(cursor)
            if nxt is None:
                return  # suspended / branch ended / stacked
            cursor = nxt

    # returns next cursor, or None when the chain stops
    def _enter(self, ms: MidState, node: ast.Node, path: Path, chain: int,
               worklist: list) -> Optional[tuple]:
        bound = self.bound
        if isinstance(node, ast.Block):
            if not node.stmts:
                return ("after", node)
            return ("enter", node.stmts[0])
        if isinstance(node, (ast.Nothing, ast.DeclEvent, ast.PureDecl,
                             ast.DeterministicDecl, ast.CBlockStmt)):
            return ("after", node)
        if isinstance(node, ast.DeclVar):
            return ("decl", node, 0)
        if isinstance(node, ast.AwaitExt):
            ms.tree[path] = ("ext", node.nid)
            return None
        if isinstance(node, ast.AwaitInt):
            sym = bound.event_of[node.nid]
            self._act(ms, chain, ARM, ("evt", sym.uid, sym.name), node.span)
            ms.tree[path] = ("intl", node.nid)
            return None
        if isinstance(node, ast.AwaitTime):
            ms.tree[path] = ("time", node.nid, node.time.us, ms.timer_epoch)
            return None
        if isinstance(node, ast.AwaitExp):
            self._reads(ms, chain, node.exp)
            ms.tree[path] = ("tunk", node.nid)
            return None
        if isinstance(node, ast.AwaitForever):
            ms.tree[path] = ("fore", node.nid)
            return None
        if isinstance(node, ast.AsyncBlock):
            # async bodies are globally asynchronous (§2.9) — not analysed
            ms.tree[path] = ("async", node.nid)
            return None
        if isinstance(node, ast.EmitInt):
            return self._emit_internal(ms, node, path, chain)
        if isinstance(node, ast.EmitExt):
            sym = bound.event_of[node.nid]
            if node.value is not None:
                self._reads(ms, chain, node.value)
            self._act(ms, chain, EMIT, ("evt", sym.uid, sym.name), node.span)
            return ("after", node)
        if isinstance(node, ast.If):
            self._reads(ms, chain, node.cond)
            fork = ms.copy()
            if node.orelse is not None:
                fork.stack.append(RunItem(("enter", node.orelse), path,
                                          chain))
            else:
                fork.stack.append(RunItem(("after", node), path, chain))
            worklist.append(fork)
            return ("enter", node.then)
        if isinstance(node, ast.Loop):
            return ("enter", node.body)
        if isinstance(node, ast.Break):
            target = bound.break_target[node.nid]
            k = self._pars_crossed(node, target)
            if k == 0:
                return ("after", target)
            self._enqueue_escape(ms, path, k, target, chain)
            return None
        if isinstance(node, ast.Return):
            if node.value is not None:
                self._reads(ms, chain, node.value)
            boundary = bound.ret_boundary.get(node.nid)
            if boundary is None:
                ms.terminated = True
                ms.tree = {(): ("term",)}
                ms.stack.clear()
                ms.joinq.clear()
                return None
            k = self._pars_crossed(node, boundary)
            if k == 0:
                return ("after", boundary)
            self._enqueue_escape(ms, path, k, boundary, chain)
            return None
        if isinstance(node, ast.ParStmt):
            ms.tree[path] = ("par", node.nid, node.mode)
            items = []
            for i, block in enumerate(node.blocks):
                child_path = path + (i,)
                ms.tree[child_path] = ("run",)
                child_chain = ms.chains.new(cause=chain)
                items.append(RunItem(("enter", block), child_path,
                                     child_chain))
            ms.stack.extend(reversed(items))
            return None
        if isinstance(node, ast.CCallStmt):
            self._reads(ms, chain, node.call)
            return ("after", node)
        if isinstance(node, ast.CallStmt):
            self._reads(ms, chain, node.exp)
            return ("after", node)
        if isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Exp):
                self._reads(ms, chain, node.value)
                self._write_target(ms, chain, node.target)
                return ("after", node)
            return ("enter", node.value)
        if isinstance(node, ast.DoBlock):
            return ("enter", node.body)
        raise AssertionError(f"abstract: unhandled {type(node).__name__}")

    def _decl_step(self, ms: MidState, cursor: tuple, path: Path,
                   chain: int) -> Optional[tuple]:
        _, declvar, index = cursor
        while index < len(declvar.decls):
            declarator = declvar.decls[index]
            sym = self.bound.sym_of_decl[declarator.nid]
            if declarator.init is None:
                self._act(ms, chain, WR, ("var", sym.uid, sym.name),
                          declarator.span)
                index += 1
                continue
            if isinstance(declarator.init, ast.Exp):
                self._reads(ms, chain, declarator.init)
                self._act(ms, chain, WR, ("var", sym.uid, sym.name),
                          declarator.span)
                index += 1
                continue
            # statement-valued initializer: run it; the successor walk
            # through the Declarator records the write and resumes here
            return ("enter", declarator.init)
        return ("after", declvar)

    # ------------------------------------------------------ successor walk
    def _after(self, ms: MidState, node: ast.Node, path: Path,
               chain: int) -> Optional[tuple]:
        parent = self.bound.parent.get(node.nid)
        if parent is None or isinstance(parent, ast.Program):
            # root trail code ended
            ms.tree[path] = ("done",)
            return None
        if isinstance(parent, ast.Block):
            idx = _index_of(parent.stmts, node)
            if idx + 1 < len(parent.stmts):
                return ("enter", parent.stmts[idx + 1])
            return ("after", parent)
        if isinstance(parent, ast.Loop):
            return ("enter", parent.body)  # iterate (bounded by §2.5)
        if isinstance(parent, (ast.If, ast.DoBlock)):
            return ("after", parent)
        if isinstance(parent, ast.ParStmt):
            return self._branch_end(ms, parent, path, chain)
        if isinstance(parent, ast.Declarator):
            sym = self.bound.sym_of_decl[parent.nid]
            self._act(ms, chain, WR, ("var", sym.uid, sym.name),
                      parent.span)
            declvar = self.bound.parent[parent.nid]
            idx = _index_of(declvar.decls, parent)
            return ("decl", declvar, idx + 1)
        if isinstance(parent, ast.Assign):
            self._write_target(ms, chain, parent.target)
            return ("after", parent)
        if isinstance(parent, ast.AsyncBlock):  # pragma: no cover
            return ("after", parent)
        raise AssertionError(
            f"abstract successor: unhandled parent {type(parent).__name__}")

    def _branch_end(self, ms: MidState, par: ast.ParStmt,
                    path: Path, chain: int) -> None:
        ms.tree[path] = ("done",)
        par_path = path[:-1]
        entry = ms.tree.get(par_path)
        if entry is None or entry[0] != "par" or entry[1] != par.nid:
            return None  # the composition is gone (killed)
        rejoins = (par.mode in ("or", "and")
                   or par.nid in self.bound.value_boundaries)
        if not rejoins:
            return None
        if par.mode == "and":
            all_done = all(
                ms.tree.get(par_path + (i,)) == ("done",)
                for i in range(len(par.blocks)))
            if not all_done:
                return None
        if any(j.kind == "join" and j.path == par_path for j in ms.joinq):
            return None  # already scheduled this reaction
        prio = (1, -self._depth[par.nid])
        ms.joinq.append(JoinItem(prio, ms.seq(), "join", par_path,
                                 (par.nid,), cause=chain))
        return None

    def _enqueue_escape(self, ms: MidState, path: Path, k: int,
                        target: ast.Node, chain: int) -> None:
        ms.tree[path] = ("done",)
        prio = (1, -self._depth.get(target.nid, 0))
        ms.joinq.append(JoinItem(prio, ms.seq(), "escape", path,
                                 (k, target), cause=chain))

    def _dispatch_join(self, ms: MidState, join: JoinItem) -> None:
        if join.kind == "join":
            par_nid, = join.payload
            entry = ms.tree.get(join.path)
            if entry is None or entry[0] != "par" or entry[1] != par_nid:
                return
            node = self._node_by_nid(par_nid)
            self._kill_subtree(ms, join.path)
            ms.tree[join.path] = ("run",)
            chain = ms.chains.new(prio=join.prio, cause=join.cause)
            ms.stack.append(RunItem(("after", node), join.path, chain))
            return
        # escape: the leaf marker must have survived any earlier kill
        if ms.tree.get(join.path) != ("done",):
            return
        k, target = join.payload
        land = join.path[:len(join.path) - k]
        self._kill_subtree(ms, land)
        ms.tree[land] = ("run",)
        chain = ms.chains.new(prio=join.prio, cause=join.cause)
        ms.stack.append(RunItem(("after", target), land, chain))

    def _kill_subtree(self, ms: MidState, prefix: Path) -> None:
        for path in [p for p in ms.tree if p[:len(prefix)] == prefix]:
            del ms.tree[path]
        ms.joinq = [j for j in ms.joinq
                    if j.path[:len(prefix)] != prefix]
        ms.stack = [i for i in ms.stack
                    if i.path[:len(prefix)] != prefix]

    # ----------------------------------------------------- internal events
    def _emit_internal(self, ms: MidState, node: ast.EmitInt, path: Path,
                       chain: int) -> Optional[tuple]:
        sym = self.bound.event_of[node.nid]
        if node.value is not None:
            self._reads(ms, chain, node.value)
        self._act(ms, chain, EMIT, ("evt", sym.uid, sym.name), node.span)
        awaiting = [(p, e) for p, e in sorted(ms.tree.items())
                    if e[0] == "intl"
                    and self.bound.event_of[e[1]].uid == sym.uid]
        if not awaiting:
            return ("after", node)
        # stack policy: continuation below, awakened trails on top (LIFO)
        ms.stack.append(RunItem(("after", node), path, chain))
        items = []
        for p, e in awaiting:
            ms.tree[p] = ("run",)
            sub_chain = ms.chains.new(prio=ms.chains.prio[chain],
                                      cause=chain)
            items.append(RunItem(("after_await", self._node_by_nid(e[1])),
                                 p, sub_chain))
        ms.stack.extend(reversed(items))
        return None

    # ------------------------------------------------------------- helpers
    def _pars_crossed(self, node: ast.Node, target: ast.Node) -> int:
        """Parallel compositions crossed when escaping `node` → `target`
        (a target that *is* a par counts as crossed — or-completion)."""
        k = 0
        cur = self.bound.parent.get(node.nid)
        while cur is not None and cur is not target:
            if isinstance(cur, ast.ParStmt):
                k += 1
            cur = self.bound.parent.get(cur.nid)
        if isinstance(target, ast.ParStmt):
            k += 1
        return k

    def _node_by_nid(self, nid: int):
        cache = getattr(self, "_nid_cache", None)
        if cache is None:
            cache = {n.nid: n for n in self.bound.program.walk()}
            self._nid_cache = cache
        return cache[nid]

    def _act(self, ms: MidState, chain: int, kind: str, key: tuple,
             span) -> None:
        ms.actions.append(Action(chain, kind, key, span))

    def _reads(self, ms: MidState, chain: int, e: ast.Exp) -> None:
        bound = self.bound
        if isinstance(e, ast.NameInt):
            sym = bound.var_of[e.nid]
            self._act(ms, chain, RD, ("var", sym.uid, sym.name), e.span)
            return
        if isinstance(e, ast.NameC):
            return  # bare C global read: harmless
        if isinstance(e, (ast.Num, ast.Str, ast.Null, ast.SizeOf)):
            return
        if isinstance(e, ast.Unop):
            if e.op == "&" and isinstance(e.operand, ast.NameInt):
                # address taken and handed to C: assume it may be written
                sym = bound.var_of[e.operand.nid]
                self._act(ms, chain, WR, ("var", sym.uid, sym.name), e.span)
                return
            self._reads(ms, chain, e.operand)
            return
        if isinstance(e, ast.Binop):
            self._reads(ms, chain, e.left)
            self._reads(ms, chain, e.right)
            return
        if isinstance(e, ast.Index):
            self._reads(ms, chain, e.base)
            self._reads(ms, chain, e.index)
            return
        if isinstance(e, ast.CallExp):
            name = _callee_name(e)
            if name is not None:
                self._act(ms, chain, CALL, ("cfun", name), e.span)
            for a in e.args:
                self._reads(ms, chain, a)
            return
        if isinstance(e, ast.FieldAccess):
            self._reads(ms, chain, e.base)
            return
        if isinstance(e, ast.Cast):
            self._reads(ms, chain, e.operand)
            return

    def _write_target(self, ms: MidState, chain: int, target: ast.Exp) -> None:
        bound = self.bound
        if isinstance(target, ast.NameInt):
            sym = bound.var_of[target.nid]
            self._act(ms, chain, WR, ("var", sym.uid, sym.name), target.span)
            return
        if isinstance(target, ast.NameC):
            self._act(ms, chain, WR, ("cglobal", target.c_name), target.span)
            return
        if isinstance(target, ast.Index):
            self._reads(ms, chain, target.index)
            self._write_target(ms, chain, target.base)
            return
        if isinstance(target, ast.FieldAccess):
            self._write_target(ms, chain, target.base)
            return
        if isinstance(target, ast.Unop) and target.op == "*":
            if isinstance(target.operand, ast.NameInt):
                sym = bound.var_of[target.operand.nid]
                self._act(ms, chain, RD, ("var", sym.uid, sym.name),
                          target.span)
                self._act(ms, chain, WR, ("deref", sym.uid, sym.name),
                          target.span)
            else:
                self._reads(ms, chain, target.operand)
            return
        self._reads(ms, chain, target)


def _index_of(seq: list, node: ast.Node) -> int:
    for i, item in enumerate(seq):
        if item is node:
            return i
    raise ValueError("node not in parent sequence")


def _callee_name(e: ast.CallExp) -> Optional[str]:
    if isinstance(e.func, ast.NameC):
        return e.func.c_name
    if isinstance(e.func, ast.FieldAccess):
        parts = [e.func.name]
        base = e.func.base
        while isinstance(base, ast.FieldAccess):
            parts.append(base.name)
            base = base.base
        if isinstance(base, ast.NameC):
            parts.append(base.c_name)
        return ".".join(reversed(parts))
    return None
