"""DFA construction (§2.6, §4.1, Figure `dfa`).

Breadth-first exploration of abstract configurations: from every reachable
state, fire every enabled trigger (each awaited input event, each timer
epoch's next expiry, each computed timeout, each async completion) and
abstract-execute the reaction chain.  The DFA "covers exactly all possible
paths a program can reach during runtime"; conflicting concurrent accesses
found along any transition are the paper's nondeterminism witnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang.errors import AnalysisBudgetExceeded, NondeterminismError
from ..sema.binder import BoundProgram
from .abstract import AbstractMachine, freeze
from .actions import EMIT, Conflict, find_conflicts


@dataclass(eq=False)
class DfaState:
    index: int
    config: tuple          # frozen configuration tree
    terminal: bool = False

    def awaiting(self) -> list[tuple]:
        return [entry for _, entry in self.config
                if entry[0] in ("ext", "intl", "time", "tunk", "fore",
                                "async")]

    def describe(self, bound: BoundProgram) -> str:
        parts = []
        for path, entry in self.config:
            tag = entry[0]
            if tag in ("ext", "intl"):
                name = bound.event_of[entry[1]].name
                parts.append(f"await {name}")
            elif tag == "time":
                parts.append(f"await {entry[2]}us[e{entry[3]}]")
            elif tag == "tunk":
                parts.append("await (exp)")
            elif tag == "fore":
                parts.append("await forever")
            elif tag == "async":
                parts.append("async")
            elif tag == "term":
                parts.append("terminated")
            elif tag == "done" and path == ():
                parts.append("done")
        return "; ".join(parts) if parts else "(empty)"


@dataclass(eq=False)
class Dfa:
    """The automaton plus every conflict discovered while building it."""

    states: list[DfaState] = field(default_factory=list)
    #: (src_index, trigger_label, dst_index)
    edges: list[tuple[int, str, int]] = field(default_factory=list)
    conflicts: list[Conflict] = field(default_factory=list)
    truncated: bool = False
    #: most internal-event emits any single reaction chain can perform —
    #: an upper bound on the §2.2 event-stack depth (each emit pushes once)
    max_internal_emits: int = 0

    @property
    def deterministic(self) -> bool:
        return not self.conflicts

    def state_count(self) -> int:
        return len(self.states)

    def transition_count(self) -> int:
        return len(self.edges)

    def successors(self, index: int) -> list[tuple[str, int]]:
        return [(label, dst) for src, label, dst in self.edges
                if src == index]

    # ----------------------------------------------------------------- dot
    def to_dot(self, bound: Optional[BoundProgram] = None,
               title: str = "dfa") -> str:
        """Graphviz export in the style of the paper's Figure `dfa`
        (conflicting states outlined)."""
        bad = {c.state_index for c in self.conflicts}
        lines = [f"digraph {title} {{", "  rankdir=TB;",
                 '  node [fontname="Helvetica", fontsize=10, shape=box];']
        for st in self.states:
            label = f"DFA #{st.index}"
            if bound is not None:
                label += "\\n" + st.describe(bound).replace('"', "'")
            attrs = [f'label="{label}"']
            if st.index in bad:
                attrs.append("color=red")
                attrs.append("penwidth=2")
            if st.terminal:
                attrs.append("peripheries=2")
            lines.append(f"  s{st.index} [{', '.join(attrs)}];")
        for src, trig, dst in self.edges:
            lines.append(f'  s{src} -> s{dst} [label="{trig}"];')
        lines.append("}")
        return "\n".join(lines)


class DfaBuilder:
    def __init__(self, bound: BoundProgram, max_states: int = 20_000,
                 stop_at_first_conflict: bool = False):
        self.bound = bound
        self.machine = AbstractMachine(bound)
        self.max_states = max_states
        self.stop_at_first = stop_at_first_conflict

    def build(self) -> Dfa:
        dfa = Dfa()
        index_of: dict[tuple, int] = {}
        internal_uids = {sym.uid for sym in self.bound.events.values()
                         if sym.is_internal}

        def note_emits(actions) -> None:
            n = sum(1 for a in actions
                    if a.kind == EMIT and a.key[0] == "evt"
                    and a.key[1] in internal_uids)
            if n > dfa.max_internal_emits:
                dfa.max_internal_emits = n

        def intern(config: tuple) -> tuple[int, bool]:
            if config in index_of:
                return index_of[config], False
            state = DfaState(len(dfa.states), config,
                             terminal=self._is_terminal(config))
            dfa.states.append(state)
            index_of[config] = state.index
            return state.index, True

        # boot is itself a transition: a virtual pre-state feeds it
        worklist: list[int] = []
        for config, actions, chains in self.machine.boot():
            conflicts = find_conflicts(actions, chains,
                                       self.bound.annotations, "boot", 0)
            dfa.conflicts.extend(conflicts)
            note_emits(actions)
            idx, fresh = intern(config)
            dfa.edges.append((-1, "boot", idx))
            if fresh:
                worklist.append(idx)
        if self.stop_at_first and dfa.conflicts:
            return dfa

        while worklist:
            if len(dfa.states) > self.max_states:
                dfa.truncated = True
                raise AnalysisBudgetExceeded(
                    f"DFA exceeded {self.max_states} states — the "
                    f"conversion is exponential in the worst case (§6)")
            src = worklist.pop(0)
            for trigger, results in self._fire_all(dfa.states[src].config):
                for config, actions, chains in results:
                    conflicts = find_conflicts(
                        actions, chains, self.bound.annotations, trigger,
                        src)
                    dfa.conflicts.extend(conflicts)
                    note_emits(actions)
                    if self.stop_at_first and dfa.conflicts:
                        idx, _ = intern(config)
                        dfa.edges.append((src, trigger, idx))
                        return dfa
                    idx, fresh = intern(config)
                    dfa.edges.append((src, trigger, idx))
                    if fresh:
                        worklist.append(idx)
        return dfa

    # ------------------------------------------------------------ triggers
    def _fire_all(self, config: tuple):
        events: list[str] = []
        epochs: list[int] = []
        tunks: list[tuple] = []
        asyncs: list[tuple] = []
        for path, entry in config:
            tag = entry[0]
            if tag == "ext":
                name = self.bound.event_of[entry[1]].name
                if name not in events:
                    events.append(name)
            elif tag == "time":
                if entry[3] not in epochs:
                    epochs.append(entry[3])
            elif tag == "tunk":
                tunks.append(path)
            elif tag == "async":
                asyncs.append(path)
        out = []
        for name in events:
            out.append((f"event {name}",
                        self.machine.fire_event(config, name)))
        for epoch in epochs:
            out.append((f"timer e{epoch}",
                        self.machine.fire_timer(config, epoch)))
        for path in tunks:
            out.append((f"timeout@{'.'.join(map(str, path)) or 'root'}",
                        self.machine.fire_unknown_timer(config, path)))
        for path in asyncs:
            out.append((f"async@{'.'.join(map(str, path)) or 'root'}",
                        self.machine.fire_async(config, path)))
        return out

    @staticmethod
    def _is_terminal(config: tuple) -> bool:
        return all(entry[0] in ("done", "term", "par")
                   for _, entry in config)


def build_dfa(bound: BoundProgram, max_states: int = 20_000,
              stop_at_first_conflict: bool = False) -> Dfa:
    """Run the temporal analysis; returns the DFA with any conflicts."""
    return DfaBuilder(bound, max_states, stop_at_first_conflict).build()


def check_determinism(bound: BoundProgram,
                      max_states: int = 20_000) -> Dfa:
    """Build the DFA and raise :class:`NondeterminismError` on the first
    conflict — the compile-time refusal of §2.6."""
    dfa = build_dfa(bound, max_states)
    if dfa.conflicts:
        first = dfa.conflicts[0]
        raise NondeterminismError(first.message(), first.first.span,
                                  state=first.state_index,
                                  witness=(first.first, first.second))
    return dfa
