"""Actions, chains and the concurrency/conflict model of the temporal
analysis (§2.6).

During one abstract reaction chain, every executed access is recorded as an
:class:`Action` tagged with the *chain* that performed it.  A chain is one
run-to-halt execution (the abstract counterpart of a track, §4.4).  Two
chains are **ordered** (deterministically sequenced) when:

* one transitively *caused* the other — an emitter is ordered before the
  trails its ``emit`` awakes (stack policy, §2.2), and a parent is ordered
  before the branches it spawns; or
* they run at different priorities — join/termination continuations run
  after all normal work, inner joins before outer ones (§4.1).

Any other pair of chains in the same reaction is **concurrent**, and the
paper's three nondeterminism sources are checked across concurrent pairs:

* variables: write vs. read/write of the same variable;
* internal events: emit vs. emit, and emit vs. *arming* an await;
* C calls: any two calls not allowed by ``pure``/``deterministic``
  annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.errors import SourceSpan
from ..sema.symbols import Annotations

# access kinds
RD, WR, EMIT, ARM, CALL = "rd", "wr", "emit", "arm", "call"


@dataclass(frozen=True, slots=True)
class Action:
    chain: int
    kind: str          # rd | wr | emit | arm | call
    key: tuple         # ("var", uid, name) | ("evt", uid, name) |
    #                    ("cfun", name) | ("cglobal", name) | ("deref", uid, name)
    span: SourceSpan

    def describe(self) -> str:
        kind_text = {RD: "read of", WR: "write to", EMIT: "emit of",
                     ARM: "await of", CALL: "call to"}[self.kind]
        return f"{kind_text} {self.key_name()} at {self.span}"

    def key_name(self) -> str:
        tag = self.key[0]
        if tag == "var":
            return f"variable `{self.key[2]}`"
        if tag == "evt":
            return f"event `{self.key[2]}`"
        if tag == "cfun":
            return f"C function `_{self.key[1]}`"
        if tag == "cglobal":
            return f"C global `_{self.key[1]}`"
        if tag == "deref":
            return f"*{self.key[2]}"
        return str(self.key)


class ChainSet:
    """Chain registry for one abstract reaction."""

    def __init__(self) -> None:
        self._next = 0
        self.prio: dict[int, tuple] = {}
        self.cause: dict[int, Optional[int]] = {}

    def new(self, prio: tuple = (0,), cause: Optional[int] = None) -> int:
        cid = self._next
        self._next += 1
        self.prio[cid] = prio
        self.cause[cid] = cause
        return cid

    def copy(self) -> "ChainSet":
        dup = ChainSet()
        dup._next = self._next
        dup.prio = dict(self.prio)
        dup.cause = dict(self.cause)
        return dup

    def ordered(self, a: int, b: int) -> bool:
        """Is the relative execution order of chains a and b fixed?"""
        if a == b:
            return True
        if self.prio[a] != self.prio[b]:
            return True
        return self._ancestor(a, b) or self._ancestor(b, a)

    def _ancestor(self, anc: int, cid: int) -> bool:
        cur: Optional[int] = self.cause[cid]
        while cur is not None:
            if cur == anc:
                return True
            cur = self.cause[cur]
        return False


@dataclass(frozen=True, slots=True)
class Conflict:
    """A witnessed pair of concurrent conflicting actions."""

    first: Action
    second: Action
    trigger: str
    state_index: int

    def message(self) -> str:
        return (f"nondeterminism on {self.first.key_name()}: concurrent "
                f"{self.first.describe()} and {self.second.describe()} "
                f"(reachable in DFA state #{self.state_index} on "
                f"{self.trigger})")


def _conflicting(a: Action, b: Action, ann: Annotations) -> bool:
    if a.kind == CALL and b.kind == CALL:
        return not ann.compatible(a.key[1], b.key[1])
    if a.key != b.key:
        return False
    tag = a.key[0]
    if tag in ("var", "deref", "cglobal"):
        return a.kind == WR or b.kind == WR
    if tag == "evt":
        kinds = {a.kind, b.kind}
        return EMIT in kinds and kinds <= {EMIT, ARM}
    return False


def find_conflicts(actions: list[Action], chains: ChainSet,
                   ann: Annotations, trigger: str,
                   state_index: int) -> list[Conflict]:
    """All conflicting concurrent pairs in one abstract reaction."""
    conflicts: list[Conflict] = []
    n = len(actions)
    for i in range(n):
        a = actions[i]
        for j in range(i + 1, n):
            b = actions[j]
            if chains.ordered(a.chain, b.chain):
                continue
            if _conflicting(a, b, ann):
                conflicts.append(Conflict(a, b, trigger, state_index))
    return conflicts
