"""Temporal analysis: abstract reaction execution, DFA construction, and
the three nondeterminism checks of §2.6."""

from .actions import Action, ChainSet, Conflict, find_conflicts
from .builder import Dfa, DfaState, build_dfa, check_determinism

__all__ = ["build_dfa", "check_determinism", "Dfa", "DfaState",
           "Action", "Conflict", "ChainSet", "find_conflicts"]
