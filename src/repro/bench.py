"""Benchmark snapshots and the perf regression gate (``repro bench``).

One command measures the repo's performance-sensitive surfaces and
writes a machine-readable snapshot:

* **VM reaction throughput** over the standard fan-out workload, in
  five instrumentation configurations — ``off`` (no subscribers ever),
  ``detached`` (subscribed then unsubscribed: the hooks-off fast path
  after a profiling session ends), ``metrics``, ``full`` (metrics +
  both exporters), and ``causal`` (a :class:`~repro.obs.CausalGraph`
  subscribed; recorded for the trajectory, not gated);
* **reaction-latency percentiles** (p50/p95/p99 µs) from the profiler;
* **deterministic counters** (reactions, steps, emits …) from the
  metrics run — machine-independent, gated *exactly*;
* **DES + streaming-exporter throughput** with the exporter's resident
  high-water mark.

Snapshots are written as timestamped ``BENCH_<UTCSTAMP>.json`` files
under ``benchmarks/`` (never the repo root) so a perf trajectory
accumulates across commits.  ``--check`` compares a fresh snapshot
against the committed baseline (``benchmarks/BENCH_baseline.json``):
deterministic counters must match exactly; instrumentation-overhead
*ratios* (metrics/off, full/off, detached/off) must stay within
``--tolerance`` of the baseline ratios.  Absolute wall-clock times are
recorded for the trajectory but never gated — they measure the CI
machine, not the code.

``--farm`` additionally measures the reactor farm
(:mod:`repro.runtime.farm`): instance-spawn and event throughput with
fleet telemetry attached vs detached, cross-instance reaction-latency
percentiles, and resident bytes per instance beside the
:mod:`repro.analysis.bounds` static prediction.  The farm section is
recorded in the snapshot *and* as ``benchmarks/BENCH_farm.json``; it is
never gated (yet) — the numbers seed the trajectory the compiled tier
will be measured against.
"""

from __future__ import annotations

import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

from .obs import (ChromeTraceExporter, JsonlExporter, Profiler,
                  StreamingJsonlExporter)
from .obs.hooks import HookBus
from .runtime import Program
from .sim.des import Simulator

SCHEMA = 1

#: every benchmark artifact lives here — snapshots, the baseline, the
#: farm record; ``repro bench`` never writes into the repo root
BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"

#: the committed regression baseline (see ``--update-baseline``)
BASELINE_PATH = BENCH_DIR / "BENCH_baseline.json"

#: the reactor-farm record (``--farm``; recorded, not gated)
FARM_PATH = BENCH_DIR / "BENCH_farm.json"

#: the incremental-analysis record (``--analysis``; recorded, not gated)
ANALYSIS_PATH = BENCH_DIR / "BENCH_analysis.json"

#: the telemetry-plane serving-path record (``--serve``; the idle-server
#: drive ratio IS gated — see SERVE_BUDGET)
SERVE_PATH = BENCH_DIR / "BENCH_serve.json"

#: hard ceiling on attached-server drive overhead: an idle admin server
#: must cost the reaction path <= 5% (the near-zero-cost instrumentation
#: budget; scraped-under-load is recorded, not gated)
SERVE_BUDGET = 1.05

#: the checkpoint-plane record (``--checkpoint``; both ratios gated)
CHECKPOINT_PATH = BENCH_DIR / "BENCH_checkpoint.json"

#: hard ceiling on journal-recording drive overhead: keeping every
#: instance checkpointable must cost the farm drive loop <= 5%
CHECKPOINT_BUDGET = 1.05

#: floor on the warm-start speedup: replaying a checkpoint into a fresh
#: instance (telemetry attached only after the replay) must beat a cold
#: fully-instrumented boot-and-drive to the same state by >= 5x
WARM_SPEEDUP_MIN = 5.0

#: overhead ratios gated against the baseline.  The ``causal`` mode
#: (CausalGraph subscribed) is *recorded* in snapshots but not gated:
#: older baselines predate it, and its cost tracks the full-export modes
#: that already are.
RATIO_KEYS = ("metrics_vs_off", "full_vs_off", "detached_vs_off")

TRAILS = 16
EVENTS = 300
DES_EVENTS = 20_000
FARM_INSTANCES = 5_000
FARM_SIM_US = 1_000_000
FARM_MEM_SAMPLE = 500


def make_fanout(n: int) -> str:
    """The standard reaction-throughput workload: ``n`` parallel trails
    all waking on one broadcast event (same shape as
    ``benchmarks/test_vm_throughput.py``)."""
    decls = "\n".join(f"int n{i} = 0;" for i in range(n))
    branches = "\nwith\n".join(
        f"   loop do\n      await A;\n      n{i} = n{i} + 1;\n   end"
        for i in range(n))
    return f"input void A;\n{decls}\npar do\n{branches}\nend"


def _drive(program: Program, events: Optional[int] = None) -> float:
    if events is None:
        events = EVENTS          # late-bound so tests can shrink it
    start = time.perf_counter()
    program.start()
    for _ in range(events):
        program.send("A")
    return time.perf_counter() - start


def _time_mode(mode: str, repeats: int) -> tuple[float, Optional[dict]]:
    """Best-of-``repeats`` seconds for one instrumentation mode; the
    metrics mode also returns its (deterministic) stats snapshot."""
    best = float("inf")
    stats = None
    for _ in range(repeats):
        program = Program(make_fanout(TRAILS),
                          observe=mode in ("metrics", "full"))
        if mode == "full":
            program.observe(ChromeTraceExporter())
            program.observe(JsonlExporter())
        elif mode == "causal":
            from .obs import CausalGraph

            program.observe(CausalGraph(program.hooks))
        elif mode == "detached":
            # subscribe + unsubscribe: the bus must drop back to the
            # guarded no-op fast path once the last subscriber leaves
            probe = program.observe(Profiler())
            program.hooks.unsubscribe(probe)
        best = min(best, _drive(program))
        if mode == "metrics" and stats is None:
            stats = program.stats()
    return best, stats


def bench_vm(repeats: int = 3) -> dict:
    """Reaction throughput in all five instrumentation modes, plus the
    deterministic counters and the profiler's latency percentiles."""
    timings = {}
    counters = {}
    for mode in ("off", "detached", "metrics", "full", "causal"):
        secs, stats = _time_mode(mode, repeats)
        timings[mode] = secs
        if stats is not None:
            counters = stats["counters"]
    program = Program(make_fanout(TRAILS))
    profiler = program.observe(Profiler())
    _drive(program)
    latency = {family: h.percentiles()
               for family, h in sorted(profiler.latency.items())}
    off = timings["off"]
    return {
        "workload": {"trails": TRAILS, "events": EVENTS},
        "timings_s": timings,
        "ratios": {
            "metrics_vs_off": timings["metrics"] / off,
            "full_vs_off": timings["full"] / off,
            "detached_vs_off": timings["detached"] / off,
            "causal_vs_off": timings["causal"] / off,
        },
        "reactions_per_s": (EVENTS + 1) / off,
        "counters": counters,
        "latency_us": latency,
    }


def bench_stream(tmpdir: Path, n_events: Optional[int] = None) -> dict:
    """DES calendar churn with the streaming exporter attached: export
    throughput and the exporter's bounded-memory high-water mark."""
    if n_events is None:
        n_events = DES_EVENTS    # late-bound so tests can shrink it
    path = Path(tmpdir) / "stream.jsonl"
    bus = HookBus()
    sim = Simulator(hooks=bus)
    with StreamingJsonlExporter(path, flush_every=512) as exporter:
        bus.subscribe(exporter)

        def tick(i: int = 0):
            if i < n_events:
                sim.after(10, lambda: tick(i + 1))

        start = time.perf_counter()
        tick()
        sim.run()
        elapsed = time.perf_counter() - start
        resident_high = exporter.resident_high
    return {
        "des_events": sim.events_fired,
        "records": exporter.seq,
        "elapsed_s": elapsed,
        "records_per_s": exporter.seq / elapsed if elapsed else 0.0,
        "resident_high": resident_high,
        "flush_every": exporter.flush_every,
    }


def _farm_mode(source: str, n: int, sim_us: int,
               observe: bool) -> tuple[dict, dict]:
    """Spawn + drive one farm; returns (timings, fleet snapshot)."""
    from .runtime.farm import Farm

    start = time.perf_counter()
    farm = Farm(source, n=n, program="blink", observe=observe)
    spawn_s = time.perf_counter() - start
    start = time.perf_counter()
    farm.run_until(sim_us)
    drive_s = time.perf_counter() - start
    reactions = sum(inst.program.sched.reaction_count
                    for inst in farm.instances)
    timings = {
        "spawn_s": spawn_s,
        "drive_s": drive_s,
        "instances_per_s": n / spawn_s if spawn_s else 0.0,
        "reactions": reactions,
        "events_per_s": reactions / drive_s if drive_s else 0.0,
    }
    return timings, farm.fleet_snapshot()


def _farm_resident(source: str, n: int, observe: bool) -> float:
    """Heap bytes per instance (tracemalloc delta over ``n`` spawns,
    timers armed so the steady-state structures exist)."""
    import gc
    import tracemalloc

    from .runtime.farm import Farm

    gc.collect()
    tracemalloc.start()
    try:
        farm = Farm(source, observe=observe)
        farm.add_program("blink", source)
        gc.collect()
        base, _ = tracemalloc.get_traced_memory()
        farm.spawn(n, program="blink")
        gc.collect()
        current, _ = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return (current - base) / n if n else 0.0


def bench_farm(n_instances: Optional[int] = None,
               sim_us: Optional[int] = None) -> dict:
    """The reactor-farm section: spawn/drive throughput with telemetry
    attached vs detached, cross-instance latency percentiles, and
    resident bytes per instance beside the static-bounds prediction."""
    from .apps import load

    if n_instances is None:
        n_instances = FARM_INSTANCES   # late-bound so tests can shrink it
    if sim_us is None:
        sim_us = FARM_SIM_US
    source = load("blink")
    attached, fleet = _farm_mode(source, n_instances, sim_us, True)
    detached, _ = _farm_mode(source, n_instances, sim_us, False)
    latency = fleet["merged"]["histograms"].get("reaction_latency_us", {})
    mem_sample = min(FARM_MEM_SAMPLE, n_instances)
    resident = {
        "sample_instances": mem_sample,
        "attached_bytes": _farm_resident(source, mem_sample, True),
        "detached_bytes": _farm_resident(source, mem_sample, False),
    }
    from .analysis import compute_bounds
    from .dfa import build_dfa
    from .lang import parse
    from .sema import bind

    bound = bind(parse(source, "blink.ceu"))
    bounds = compute_bounds(bound, build_dfa(bound))
    return {
        "workload": {"program": "blink", "instances": n_instances,
                     "sim_us": sim_us},
        "attached": attached,
        "detached": detached,
        "overhead": {
            "attached_vs_detached_spawn":
                attached["spawn_s"] / detached["spawn_s"]
                if detached["spawn_s"] else 0.0,
            "attached_vs_detached_drive":
                attached["drive_s"] / detached["drive_s"]
                if detached["drive_s"] else 0.0,
        },
        "latency_us": {k: latency.get(k)
                       for k in ("p50", "p95", "p99", "mean", "max")},
        "resident_bytes_per_instance": resident,
        "bounds": bounds.as_dict(),
        "counters": fleet["merged"]["counters"],
    }


SERVE_INSTANCES = 2_000
SERVE_SIM_US = 1_000_000


def _serve_drive(source: str, n: int, sim_us: int,
                 mode: str) -> tuple[float, int]:
    """Time one detached-farm drive with the admin server absent
    (``noserver``), attached but idle (``idle``), or attached and
    scraped from a background thread (``scraped``)."""
    import urllib.request

    from .obs import AdminServer
    from .runtime.farm import Farm

    farm = Farm(source, n=n, program="blink", observe=False)
    server = None
    stop = None
    scraper = None
    if mode != "noserver":
        server = AdminServer(farm.fleet_snapshot,
                             health_fn=farm.watchdog).start()
    if mode == "scraped":
        import threading

        stop = threading.Event()
        url = server.address + "/metrics"

        def hammer() -> None:
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(url, timeout=2) as resp:
                        resp.read()
                except OSError:
                    pass

        scraper = threading.Thread(target=hammer, daemon=True)
        scraper.start()
    try:
        start = time.perf_counter()
        farm.run_until(sim_us)
        elapsed = time.perf_counter() - start
    finally:
        if stop is not None:
            stop.set()
            scraper.join(timeout=2)
        if server is not None:
            server.close()
    reactions = sum(inst.program.sched.reaction_count
                    for inst in farm.instances)
    return elapsed, reactions


def bench_serve(n_instances: Optional[int] = None,
                sim_us: Optional[int] = None, repeats: int = 3) -> dict:
    """The serving-path overhead section (``bench --serve``).

    Interleaved best-of-``repeats`` drives of a *detached* farm (no
    per-instance metrics — the worst case for relative overhead, since
    the baseline is as fast as the farm gets) in the three modes, plus
    one measured scrape of ``/metrics`` and ``/snapshot``.  The
    ``idle_vs_noserver`` ratio is gated at :data:`SERVE_BUDGET`."""
    import json as _json
    import urllib.request

    from .apps import load
    from .obs import AdminServer
    from .runtime.farm import Farm

    if n_instances is None:
        n_instances = SERVE_INSTANCES  # late-bound so tests can shrink it
    if sim_us is None:
        sim_us = SERVE_SIM_US
    source = load("blink")
    best = {"noserver": float("inf"), "idle": float("inf"),
            "scraped": float("inf")}
    reactions = 0
    for _ in range(repeats):
        for mode in best:
            elapsed, reactions = _serve_drive(source, n_instances,
                                              sim_us, mode)
            best[mode] = min(best[mode], elapsed)

    # one served farm, scraped once per endpoint, for latency/size
    farm = Farm(source, n=n_instances, program="blink", observe=False)
    farm.run_until(sim_us)
    server = AdminServer(farm.fleet_snapshot,
                         health_fn=farm.watchdog).start()
    endpoints = {}
    try:
        for path in ("/metrics", "/healthz", "/snapshot"):
            start = time.perf_counter()
            with urllib.request.urlopen(server.address + path,
                                        timeout=5) as resp:
                body = resp.read()
            endpoints[path] = {
                "latency_ms": (time.perf_counter() - start) * 1e3,
                "bytes": len(body),
            }
        snap = _json.loads(
            urllib.request.urlopen(server.address + "/snapshot",
                                   timeout=5).read())
    finally:
        server.close()
    idle_ratio = best["idle"] / best["noserver"] \
        if best["noserver"] else 0.0
    scraped_ratio = best["scraped"] / best["noserver"] \
        if best["noserver"] else 0.0
    return {
        "workload": {"program": "blink", "instances": n_instances,
                     "sim_us": sim_us, "repeats": repeats,
                     "detached": True},
        "drive_s": best,
        "reactions": reactions,
        "events_per_s": {mode: reactions / secs if secs else 0.0
                         for mode, secs in best.items()},
        "overhead": {
            "idle_vs_noserver": idle_ratio,
            "scraped_vs_noserver": scraped_ratio,
        },
        "budget": {"idle_vs_noserver_max": SERVE_BUDGET,
                   "within_budget": idle_ratio <= SERVE_BUDGET},
        "endpoints": endpoints,
        "snapshot_counters": snap.get("merged", {}).get("counters", {}),
    }


CKPT_INSTANCES = 200
#: long enough that steady-state reaction work dominates the fixed
#: per-instance spawn cost both sides pay — the regime warm starts are
#: for (short horizons under-report the speedup)
CKPT_SIM_US = 5_000_000


def _ckpt_drive(source: str, n: int, sim_us: int, record: bool) -> float:
    """One detached-farm drive with journal recording on or off."""
    from .runtime.farm import Farm

    farm = Farm(source, n=n, program="blink", observe=False,
                record=record)
    start = time.perf_counter()
    farm.run_until(sim_us)
    return time.perf_counter() - start


def _instrumented_farm(source: str, tmp: Path, tag: str):
    """A farm with the full telemetry stack a production fleet runs:
    per-instance metrics plus the streaming JSONL tap."""
    from .runtime.farm import Farm

    stream = StreamingJsonlExporter(Path(tmp) / f"{tag}.jsonl",
                                    flush_every=1024)
    farm = Farm(source, observe=True, stream=stream, record=True)
    farm.add_program("blink", source)
    return farm


def bench_checkpoint(n_instances: Optional[int] = None,
                     sim_us: Optional[int] = None,
                     repeats: int = 3) -> dict:
    """The checkpoint-plane section (``bench --checkpoint``).

    Three measurements:

    * **journal-recording overhead** — interleaved best-of-``repeats``
      detached-farm drives with ``record=True`` vs ``record=False``;
      the ratio is gated at :data:`CHECKPOINT_BUDGET` (keeping every
      instance checkpointable must be near-free on the reaction path);
    * **capture/restore cost** — best-of-``repeats`` ``snapshot()`` and
      ``restore()`` round trips on one driven instance, plus the
      serialized size (recorded, not gated);
    * **warm-start speedup** — time to stand up ``n`` fully-telemetered
      instances at a target state, cold (boot + drive with metrics and
      the JSONL tap attached) vs warm (``Farm.spawn(warm_from=ckpt)``:
      detached journal replay, telemetry attached after); gated at
      >= :data:`WARM_SPEEDUP_MIN`.
    """
    import tempfile

    from .apps import load
    from .obs.fleet import FleetRegistry
    from .runtime.checkpoint import restore
    from .runtime.farm import Farm, _StubCEnv

    if n_instances is None:
        n_instances = CKPT_INSTANCES   # late-bound so tests can shrink it
    if sim_us is None:
        sim_us = CKPT_SIM_US
    source = load("blink")

    # 1) journal-recording overhead on the farm drive loop (gated)
    best = {"norecord": float("inf"), "record": float("inf")}
    for _ in range(repeats):
        best["norecord"] = min(best["norecord"],
                               _ckpt_drive(source, n_instances, sim_us,
                                           False))
        best["record"] = min(best["record"],
                             _ckpt_drive(source, n_instances, sim_us,
                                         True))
    record_ratio = best["record"] / best["norecord"] \
        if best["norecord"] else 0.0

    # 2) capture + restore cost and size on one driven instance
    seed = Farm(source, n=1, program="blink", observe=False, record=True)
    seed.run_until(sim_us)
    snapshot_s = restore_s = float("inf")
    ck = None
    for _ in range(repeats):
        start = time.perf_counter()
        ck = seed.checkpoint(0)
        snapshot_s = min(snapshot_s, time.perf_counter() - start)
    # blink calls platform C stubs — restore needs the same auto-stubbing
    # environment the farm gives its instances
    stub_calls = FleetRegistry().counter_family(
        "bench_c_calls_total", ("symbol",))
    for _ in range(repeats):
        cenv = _StubCEnv(stub_calls)
        start = time.perf_counter()
        restore(ck, cenv=cenv)
        restore_s = min(restore_s, time.perf_counter() - start)

    # 3) warm-start vs cold instrumented boot to the same state (gated)
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
        cold_s = float("inf")
        for r in range(repeats):
            farm = _instrumented_farm(source, Path(tmp), f"cold{r}")
            start = time.perf_counter()
            farm.spawn(n_instances, program="blink")
            farm.run_until(sim_us)
            cold_s = min(cold_s, time.perf_counter() - start)
            farm.close()
        warm_s = float("inf")
        for r in range(repeats):
            farm = _instrumented_farm(source, Path(tmp), f"warm{r}")
            start = time.perf_counter()
            farm.spawn(n_instances, program="blink", warm_from=ck)
            warm_s = min(warm_s, time.perf_counter() - start)
            farm.close()
    warm_speedup = cold_s / warm_s if warm_s else 0.0
    within = (record_ratio <= CHECKPOINT_BUDGET
              and warm_speedup >= WARM_SPEEDUP_MIN)
    return {
        "workload": {"program": "blink", "instances": n_instances,
                     "sim_us": sim_us, "repeats": repeats},
        "drive_s": best,
        "overhead": {"record_vs_norecord": record_ratio},
        "capture": {
            "snapshot_s": snapshot_s,
            "restore_s": restore_s,
            "bytes": len(ck.to_bytes()),
            "journal_entries": len(ck.journal),
            "reactions": ck.reaction_count,
        },
        "warm_start": {
            "cold_boot_s": cold_s,
            "warm_s": warm_s,
            "speedup": warm_speedup,
            "cold_per_instance_ms": cold_s / n_instances * 1e3,
            "warm_per_instance_ms": warm_s / n_instances * 1e3,
        },
        "budget": {
            "record_vs_norecord_max": CHECKPOINT_BUDGET,
            "warm_speedup_min": WARM_SPEEDUP_MIN,
            "within_budget": within,
        },
    }


def _analysis_corpus() -> list[Path]:
    root = Path(__file__).resolve().parents[2]
    return (sorted((root / "examples" / "ceu").glob("*.ceu"))
            + sorted((root / "tests" / "corpus").glob("*.ceu")))


def _comment_edit(source: str) -> str:
    """A single-region edit: one comment line inserted mid-file."""
    lines = source.splitlines(keepends=True)
    mid = len(lines) // 2
    return "".join(lines[:mid]) + "// bench edit\n" + "".join(lines[mid:])


def _literal_edit(source: str) -> Optional[str]:
    """A single-region edit that changes program values: the first
    ``= <int>`` initializer/assignment bumped by one."""
    import re

    for match in re.finditer(r"=\s*(\d+)\b", source):
        head = source[:match.start()].rsplit("\n", 1)[-1]
        if "//" in head:
            continue                   # inside a line comment
        return (source[:match.start(1)] + str(int(match.group(1)) + 1)
                + source[match.end(1):])
    return None


def bench_analysis(repeats: int = 3) -> dict:
    """Incremental-vs-cold lint latency over examples + corpus.

    For each file, times a cold ``run_analysis`` and the
    :class:`~repro.analysis.IncrementalAnalyzer` re-analysis of two
    single-region edit kinds — a comment insertion (token stream
    unchanged: full DFA replay) and an integer-literal bump (masked
    token stream unchanged: DFA replay unless the file has conflicts).
    Every incremental report is verified byte-identical to the cold run
    of the same text.  Recorded, never gated — absolute times measure
    the machine; the per-file speedups and the identical flags are the
    trajectory."""
    from .analysis import IncrementalAnalyzer, run_analysis

    per_file = []
    identical = True
    for path in _analysis_corpus():
        source = path.read_text()
        name = str(path.relative_to(path.parents[2]))
        cold_s = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            run_analysis(source, name)
            cold_s = min(cold_s, time.perf_counter() - start)
        entry = {"file": name, "cold_s": cold_s}
        edits = {"comment": _comment_edit(source)}
        literal = _literal_edit(source)
        if literal is not None and literal != source:
            edits["literal"] = literal
        analyzer = IncrementalAnalyzer(filename=name)
        analyzer.analyze(source)
        for kind, edited in edits.items():
            ok = (analyzer.analyze(edited).to_json()
                  == run_analysis(edited, name).to_json())
            analyzer.analyze(source)   # prime back to the unedited text
            inc_s = float("inf")
            for r in range(repeats):
                start = time.perf_counter()
                analyzer.analyze(edited)
                inc_s = min(inc_s, time.perf_counter() - start)
                analyzer.analyze(source)
            identical = identical and ok
            entry[kind] = {
                "incremental_s": inc_s,
                "speedup": cold_s / inc_s if inc_s else 0.0,
                "identical": ok,
            }
        entry["stats"] = dict(analyzer.stats)
        per_file.append(entry)

    def _geomean(values: list[float]) -> float:
        import math

        values = [v for v in values if v > 0]
        if not values:
            return 0.0
        return math.exp(sum(math.log(v) for v in values) / len(values))

    comment_speedups = [e["comment"]["speedup"] for e in per_file]
    return {
        "workload": {"files": len(per_file), "repeats": repeats},
        "per_file": per_file,
        "summary": {
            "comment_speedup_geomean": _geomean(comment_speedups),
            "comment_speedup_min": min(comment_speedups, default=0.0),
            "literal_speedup_geomean": _geomean(
                [e["literal"]["speedup"] for e in per_file
                 if "literal" in e]),
            "all_identical": identical,
        },
    }


def snapshot(repeats: int = 3, farm: bool = False,
             analysis: bool = False, serve: bool = False,
             checkpoint: bool = False) -> dict:
    """The full ``repro bench`` measurement (pure data, JSON-ready)."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        stream = bench_stream(Path(tmp))
    snap = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "vm": bench_vm(repeats),
        "stream": stream,
    }
    if farm:
        snap["farm"] = bench_farm()
    if analysis:
        snap["analysis"] = bench_analysis(repeats)
    if serve:
        snap["serve"] = bench_serve(repeats=repeats)
    if checkpoint:
        snap["checkpoint"] = bench_checkpoint(repeats=repeats)
    return snap


def stamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")


def write_snapshot(snap: dict, out_dir: Path) -> Path:
    out = Path(out_dir) / f"BENCH_{stamp()}.json"
    out.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    return out


def check_regression(snap: dict, baseline: dict,
                     tolerance: float = 0.5) -> list[str]:
    """Compare a snapshot against the committed baseline.

    Returns a list of human-readable violations (empty = gate passes):

    * every deterministic counter must match the baseline exactly — the
      same workload must do the same work, on any machine;
    * each instrumentation-overhead ratio must stay within
      ``tolerance`` (relative) of the baseline ratio, and the detached
      ratio additionally below an absolute cap — a detached bus must
      stay indistinguishable from one that never had subscribers.
    """
    problems: list[str] = []
    base_counters = baseline.get("vm", {}).get("counters", {})
    counters = snap.get("vm", {}).get("counters", {})
    for key, expect in sorted(base_counters.items()):
        got = counters.get(key)
        if got != expect:
            problems.append(f"counter {key}: expected {expect}, got {got}")
    base_ratios = baseline.get("vm", {}).get("ratios", {})
    ratios = snap.get("vm", {}).get("ratios", {})
    for key in RATIO_KEYS:
        expect = base_ratios.get(key)
        got = ratios.get(key)
        if expect is None or got is None:
            problems.append(f"ratio {key}: missing "
                            f"(baseline={expect}, snapshot={got})")
            continue
        if got > expect * (1.0 + tolerance):
            problems.append(f"ratio {key}: {got:.2f} exceeds baseline "
                            f"{expect:.2f} by more than {tolerance:.0%}")
    got = ratios.get("detached_vs_off")
    if got is not None and got > 1.5:
        problems.append(f"ratio detached_vs_off: {got:.2f} > 1.5 — the "
                        f"unsubscribed bus is no longer a no-op")
    base_resident = baseline.get("stream", {}).get("resident_high")
    resident = snap.get("stream", {}).get("resident_high")
    flush = snap.get("stream", {}).get("flush_every")
    if (base_resident is not None and resident is not None
            and flush and resident > flush):
        problems.append(f"stream resident_high {resident} exceeds "
                        f"flush_every {flush}: streaming is buffering")
    return problems


def main(args) -> int:
    """``repro bench`` entry point (wired up in :mod:`repro.cli`)."""
    import sys

    with_farm = getattr(args, "farm", False)
    with_analysis = getattr(args, "analysis", False)
    with_serve = getattr(args, "serve", False)
    with_checkpoint = getattr(args, "checkpoint", False)
    snap = snapshot(repeats=args.repeats, farm=with_farm,
                    analysis=with_analysis, serve=with_serve,
                    checkpoint=with_checkpoint)
    out_dir = Path(args.out) if args.out else BENCH_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    out = write_snapshot(snap, out_dir)
    vm = snap["vm"]
    print(f"wrote {out}")
    print(f"vm: {vm['reactions_per_s']:.0f} reactions/s off; ratios "
          + ", ".join(f"{k}={vm['ratios'][k]:.2f}" for k in RATIO_KEYS))
    print(f"stream: {snap['stream']['records_per_s']:.0f} records/s, "
          f"resident high {snap['stream']['resident_high']}")
    if with_farm:
        farm = snap["farm"]
        farm_path = out_dir / FARM_PATH.name if args.out else FARM_PATH
        farm_path.write_text(
            json.dumps(farm, indent=2, sort_keys=True) + "\n")
        att = farm["attached"]
        print(f"wrote {farm_path}")
        print(f"farm: {farm['workload']['instances']} instances, "
              f"{att['instances_per_s']:.0f} spawns/s, "
              f"{att['events_per_s']:.0f} reactions/s attached, "
              f"p99 {farm['latency_us']['p99']} us, "
              f"{farm['resident_bytes_per_instance']['attached_bytes']:.0f}"
              f" B/instance "
              f"(drive overhead "
              f"{farm['overhead']['attached_vs_detached_drive']:.2f}x)")
    if with_analysis:
        analysis = snap["analysis"]
        analysis_path = out_dir / ANALYSIS_PATH.name if args.out \
            else ANALYSIS_PATH
        analysis_path.write_text(
            json.dumps(analysis, indent=2, sort_keys=True) + "\n")
        summary = analysis["summary"]
        print(f"wrote {analysis_path}")
        print(f"analysis: {analysis['workload']['files']} files, "
              f"comment-edit speedup geomean "
              f"{summary['comment_speedup_geomean']:.1f}x "
              f"(min {summary['comment_speedup_min']:.1f}x), "
              f"literal-edit geomean "
              f"{summary['literal_speedup_geomean']:.1f}x, "
              f"identical={summary['all_identical']}")
    if with_serve:
        serve = snap["serve"]
        serve_path = out_dir / SERVE_PATH.name if args.out else SERVE_PATH
        serve_path.write_text(
            json.dumps(serve, indent=2, sort_keys=True) + "\n")
        over = serve["overhead"]
        print(f"wrote {serve_path}")
        print(f"serve: {serve['workload']['instances']} instances, "
              f"{serve['events_per_s']['noserver']:.0f} "
              f"reactions/s detached; overhead idle "
              f"{over['idle_vs_noserver']:.3f}x, scraped "
              f"{over['scraped_vs_noserver']:.3f}x "
              f"(budget {serve['budget']['idle_vs_noserver_max']:.2f}x)")
        if not serve["budget"]["within_budget"]:
            print(f"REGRESSION serve: idle overhead "
                  f"{over['idle_vs_noserver']:.3f}x exceeds "
                  f"{serve['budget']['idle_vs_noserver_max']:.2f}x budget",
                  file=sys.stderr)
            return 1
    if with_checkpoint:
        ckpt = snap["checkpoint"]
        ckpt_path = out_dir / CHECKPOINT_PATH.name if args.out \
            else CHECKPOINT_PATH
        ckpt_path.write_text(
            json.dumps(ckpt, indent=2, sort_keys=True) + "\n")
        cap = ckpt["capture"]
        warm = ckpt["warm_start"]
        ratio = ckpt["overhead"]["record_vs_norecord"]
        print(f"wrote {ckpt_path}")
        print(f"checkpoint: {ckpt['workload']['instances']} instances; "
              f"recording overhead {ratio:.3f}x "
              f"(budget {ckpt['budget']['record_vs_norecord_max']:.2f}x); "
              f"snapshot {cap['snapshot_s'] * 1e3:.2f}ms / "
              f"restore {cap['restore_s'] * 1e3:.2f}ms / "
              f"{cap['bytes']} B; warm start "
              f"{warm['warm_per_instance_ms']:.3f}ms/inst vs cold "
              f"{warm['cold_per_instance_ms']:.3f}ms/inst "
              f"= {warm['speedup']:.1f}x "
              f"(floor {ckpt['budget']['warm_speedup_min']:.0f}x)")
        if ratio > ckpt["budget"]["record_vs_norecord_max"]:
            print(f"REGRESSION checkpoint: recording overhead "
                  f"{ratio:.3f}x exceeds "
                  f"{ckpt['budget']['record_vs_norecord_max']:.2f}x "
                  f"budget", file=sys.stderr)
            return 1
        if warm["speedup"] < ckpt["budget"]["warm_speedup_min"]:
            print(f"REGRESSION checkpoint: warm-start speedup "
                  f"{warm['speedup']:.1f}x below "
                  f"{ckpt['budget']['warm_speedup_min']:.0f}x floor",
                  file=sys.stderr)
            return 1
    baseline_path = Path(args.baseline) if args.baseline \
        else BASELINE_PATH
    if args.update_baseline:
        baseline_path.write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n")
        print(f"updated baseline {baseline_path}")
        return 0
    if args.check:
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path} — run with "
                  f"--update-baseline first", file=sys.stderr)
            return 1
        baseline = json.loads(baseline_path.read_text())
        problems = check_regression(snap, baseline,
                                    tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION {problem}", file=sys.stderr)
            return 1
        print(f"regression gate passed (baseline {baseline_path.name}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


__all__ = ["SCHEMA", "bench_vm", "bench_stream", "bench_farm",
           "bench_analysis", "bench_serve", "bench_checkpoint",
           "snapshot", "write_snapshot", "check_regression",
           "make_fanout"]
