"""Benchmark snapshots and the perf regression gate (``repro bench``).

One command measures the repo's performance-sensitive surfaces and
writes a machine-readable snapshot:

* **VM reaction throughput** over the standard fan-out workload, in
  five instrumentation configurations — ``off`` (no subscribers ever),
  ``detached`` (subscribed then unsubscribed: the hooks-off fast path
  after a profiling session ends), ``metrics``, ``full`` (metrics +
  both exporters), and ``causal`` (a :class:`~repro.obs.CausalGraph`
  subscribed; recorded for the trajectory, not gated);
* **reaction-latency percentiles** (p50/p95/p99 µs) from the profiler;
* **deterministic counters** (reactions, steps, emits …) from the
  metrics run — machine-independent, gated *exactly*;
* **DES + streaming-exporter throughput** with the exporter's resident
  high-water mark.

Snapshots are written as timestamped ``BENCH_<UTCSTAMP>.json`` files so
a perf trajectory accumulates across commits.  ``--check`` compares a
fresh snapshot against the committed baseline
(``benchmarks/BENCH_baseline.json``): deterministic counters must match
exactly; instrumentation-overhead *ratios* (metrics/off, full/off,
detached/off) must stay within ``--tolerance`` of the baseline ratios.
Absolute wall-clock times are recorded for the trajectory but never
gated — they measure the CI machine, not the code.
"""

from __future__ import annotations

import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional

from .obs import (ChromeTraceExporter, JsonlExporter, Profiler,
                  StreamingJsonlExporter)
from .obs.hooks import HookBus
from .runtime import Program
from .sim.des import Simulator

SCHEMA = 1

#: the committed regression baseline (see ``--update-baseline``)
BASELINE_PATH = Path(__file__).resolve().parents[2] \
    / "benchmarks" / "BENCH_baseline.json"

#: overhead ratios gated against the baseline.  The ``causal`` mode
#: (CausalGraph subscribed) is *recorded* in snapshots but not gated:
#: older baselines predate it, and its cost tracks the full-export modes
#: that already are.
RATIO_KEYS = ("metrics_vs_off", "full_vs_off", "detached_vs_off")

TRAILS = 16
EVENTS = 300
DES_EVENTS = 20_000


def make_fanout(n: int) -> str:
    """The standard reaction-throughput workload: ``n`` parallel trails
    all waking on one broadcast event (same shape as
    ``benchmarks/test_vm_throughput.py``)."""
    decls = "\n".join(f"int n{i} = 0;" for i in range(n))
    branches = "\nwith\n".join(
        f"   loop do\n      await A;\n      n{i} = n{i} + 1;\n   end"
        for i in range(n))
    return f"input void A;\n{decls}\npar do\n{branches}\nend"


def _drive(program: Program, events: Optional[int] = None) -> float:
    if events is None:
        events = EVENTS          # late-bound so tests can shrink it
    start = time.perf_counter()
    program.start()
    for _ in range(events):
        program.send("A")
    return time.perf_counter() - start


def _time_mode(mode: str, repeats: int) -> tuple[float, Optional[dict]]:
    """Best-of-``repeats`` seconds for one instrumentation mode; the
    metrics mode also returns its (deterministic) stats snapshot."""
    best = float("inf")
    stats = None
    for _ in range(repeats):
        program = Program(make_fanout(TRAILS),
                          observe=mode in ("metrics", "full"))
        if mode == "full":
            program.observe(ChromeTraceExporter())
            program.observe(JsonlExporter())
        elif mode == "causal":
            from .obs import CausalGraph

            program.observe(CausalGraph(program.hooks))
        elif mode == "detached":
            # subscribe + unsubscribe: the bus must drop back to the
            # guarded no-op fast path once the last subscriber leaves
            probe = program.observe(Profiler())
            program.hooks.unsubscribe(probe)
        best = min(best, _drive(program))
        if mode == "metrics" and stats is None:
            stats = program.stats()
    return best, stats


def bench_vm(repeats: int = 3) -> dict:
    """Reaction throughput in all five instrumentation modes, plus the
    deterministic counters and the profiler's latency percentiles."""
    timings = {}
    counters = {}
    for mode in ("off", "detached", "metrics", "full", "causal"):
        secs, stats = _time_mode(mode, repeats)
        timings[mode] = secs
        if stats is not None:
            counters = stats["counters"]
    program = Program(make_fanout(TRAILS))
    profiler = program.observe(Profiler())
    _drive(program)
    latency = {family: h.percentiles()
               for family, h in sorted(profiler.latency.items())}
    off = timings["off"]
    return {
        "workload": {"trails": TRAILS, "events": EVENTS},
        "timings_s": timings,
        "ratios": {
            "metrics_vs_off": timings["metrics"] / off,
            "full_vs_off": timings["full"] / off,
            "detached_vs_off": timings["detached"] / off,
            "causal_vs_off": timings["causal"] / off,
        },
        "reactions_per_s": (EVENTS + 1) / off,
        "counters": counters,
        "latency_us": latency,
    }


def bench_stream(tmpdir: Path, n_events: Optional[int] = None) -> dict:
    """DES calendar churn with the streaming exporter attached: export
    throughput and the exporter's bounded-memory high-water mark."""
    if n_events is None:
        n_events = DES_EVENTS    # late-bound so tests can shrink it
    path = Path(tmpdir) / "stream.jsonl"
    bus = HookBus()
    sim = Simulator(hooks=bus)
    with StreamingJsonlExporter(path, flush_every=512) as exporter:
        bus.subscribe(exporter)

        def tick(i: int = 0):
            if i < n_events:
                sim.after(10, lambda: tick(i + 1))

        start = time.perf_counter()
        tick()
        sim.run()
        elapsed = time.perf_counter() - start
        resident_high = exporter.resident_high
    return {
        "des_events": sim.events_fired,
        "records": exporter.seq,
        "elapsed_s": elapsed,
        "records_per_s": exporter.seq / elapsed if elapsed else 0.0,
        "resident_high": resident_high,
        "flush_every": exporter.flush_every,
    }


def snapshot(repeats: int = 3) -> dict:
    """The full ``repro bench`` measurement (pure data, JSON-ready)."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        stream = bench_stream(Path(tmp))
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "vm": bench_vm(repeats),
        "stream": stream,
    }


def stamp() -> str:
    return datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")


def write_snapshot(snap: dict, out_dir: Path) -> Path:
    out = Path(out_dir) / f"BENCH_{stamp()}.json"
    out.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
    return out


def check_regression(snap: dict, baseline: dict,
                     tolerance: float = 0.5) -> list[str]:
    """Compare a snapshot against the committed baseline.

    Returns a list of human-readable violations (empty = gate passes):

    * every deterministic counter must match the baseline exactly — the
      same workload must do the same work, on any machine;
    * each instrumentation-overhead ratio must stay within
      ``tolerance`` (relative) of the baseline ratio, and the detached
      ratio additionally below an absolute cap — a detached bus must
      stay indistinguishable from one that never had subscribers.
    """
    problems: list[str] = []
    base_counters = baseline.get("vm", {}).get("counters", {})
    counters = snap.get("vm", {}).get("counters", {})
    for key, expect in sorted(base_counters.items()):
        got = counters.get(key)
        if got != expect:
            problems.append(f"counter {key}: expected {expect}, got {got}")
    base_ratios = baseline.get("vm", {}).get("ratios", {})
    ratios = snap.get("vm", {}).get("ratios", {})
    for key in RATIO_KEYS:
        expect = base_ratios.get(key)
        got = ratios.get(key)
        if expect is None or got is None:
            problems.append(f"ratio {key}: missing "
                            f"(baseline={expect}, snapshot={got})")
            continue
        if got > expect * (1.0 + tolerance):
            problems.append(f"ratio {key}: {got:.2f} exceeds baseline "
                            f"{expect:.2f} by more than {tolerance:.0%}")
    got = ratios.get("detached_vs_off")
    if got is not None and got > 1.5:
        problems.append(f"ratio detached_vs_off: {got:.2f} > 1.5 — the "
                        f"unsubscribed bus is no longer a no-op")
    base_resident = baseline.get("stream", {}).get("resident_high")
    resident = snap.get("stream", {}).get("resident_high")
    flush = snap.get("stream", {}).get("flush_every")
    if (base_resident is not None and resident is not None
            and flush and resident > flush):
        problems.append(f"stream resident_high {resident} exceeds "
                        f"flush_every {flush}: streaming is buffering")
    return problems


def main(args) -> int:
    """``repro bench`` entry point (wired up in :mod:`repro.cli`)."""
    import sys

    snap = snapshot(repeats=args.repeats)
    out = write_snapshot(snap, Path(args.out))
    vm = snap["vm"]
    print(f"wrote {out}")
    print(f"vm: {vm['reactions_per_s']:.0f} reactions/s off; ratios "
          + ", ".join(f"{k}={vm['ratios'][k]:.2f}" for k in RATIO_KEYS))
    print(f"stream: {snap['stream']['records_per_s']:.0f} records/s, "
          f"resident high {snap['stream']['resident_high']}")
    baseline_path = Path(args.baseline) if args.baseline \
        else BASELINE_PATH
    if args.update_baseline:
        baseline_path.write_text(
            json.dumps(snap, indent=2, sort_keys=True) + "\n")
        print(f"updated baseline {baseline_path}")
        return 0
    if args.check:
        if not baseline_path.exists():
            print(f"no baseline at {baseline_path} — run with "
                  f"--update-baseline first", file=sys.stderr)
            return 1
        baseline = json.loads(baseline_path.read_text())
        problems = check_regression(snap, baseline,
                                    tolerance=args.tolerance)
        if problems:
            for problem in problems:
                print(f"REGRESSION {problem}", file=sys.stderr)
            return 1
        print(f"regression gate passed (baseline {baseline_path.name}, "
              f"tolerance {args.tolerance:.0%})")
    return 0


__all__ = ["SCHEMA", "bench_vm", "bench_stream", "snapshot",
           "write_snapshot", "check_regression", "make_fanout"]
