"""Discrete-event simulation kernel.

The substrate that stands in for the paper's physical testbeds (motes,
radios, RTOS boards).  Time is integer microseconds; callbacks fire in
deterministic ``(time, seq)`` order, so every experiment in the benchmark
harness replays bit-identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from ..obs.hooks import HookBus


class Simulator:
    """A classic event-calendar simulator.

    Pass a :class:`~repro.obs.hooks.HookBus` to observe the calendar
    (``des_schedule`` / ``des_fire`` / ``des_cancel`` events); kernel
    counters are always kept and exposed via :meth:`stats`.
    """

    def __init__(self, hooks: Optional[HookBus] = None) -> None:
        self.now = 0
        self.hooks = hooks if hooks is not None else HookBus()
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        self.events_scheduled = 0
        self.events_fired = 0
        self.events_cancelled = 0
        self.max_heap_size = 0

    def at(self, time_us: int, fn: Callable[[], None]) -> int:
        """Schedule ``fn`` at absolute time; returns a cancellable handle."""
        if time_us < self.now:
            raise ValueError(f"cannot schedule in the past "
                             f"({time_us} < {self.now})")
        seq = next(self._seq)
        heapq.heappush(self._heap, (time_us, seq, fn))
        self.events_scheduled += 1
        if len(self._heap) > self.max_heap_size:
            self.max_heap_size = len(self._heap)
        if self.hooks.enabled:
            self.hooks.des_schedule(seq, time_us, self.now)
        return seq

    def after(self, delay_us: int, fn: Callable[[], None]) -> int:
        return self.at(self.now + delay_us, fn)

    def cancel(self, handle: int) -> None:
        self._cancelled.add(handle)
        self.events_cancelled += 1
        if self.hooks.enabled:
            self.hooks.des_cancel(handle, self.now)

    def pending(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[int]:
        while self._heap and self._heap[0][1] in self._cancelled:
            _, seq, _ = heapq.heappop(self._heap)
            self._cancelled.discard(seq)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the earliest callback; False when the calendar is empty."""
        when = self.peek_time()
        if when is None:
            return False
        when, seq, fn = heapq.heappop(self._heap)
        if seq in self._cancelled:
            self._cancelled.discard(seq)
            return True
        self.now = when
        self.events_fired += 1
        if self.hooks.enabled:
            self.hooks.des_fire(seq, when)
        fn()
        return True

    def run_until(self, time_us: int) -> None:
        """Run every callback scheduled strictly up to ``time_us``."""
        while True:
            when = self.peek_time()
            if when is None or when > time_us:
                break
            self.step()
        self.now = max(self.now, time_us)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the calendar drains (bounded against runaways)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError("simulation exceeded its event budget")

    def stats(self) -> dict:
        """Kernel counters (always on — plain integer bumps)."""
        return {
            "now_us": self.now,
            "events_scheduled": self.events_scheduled,
            "events_fired": self.events_fired,
            "events_cancelled": self.events_cancelled,
            "pending": len(self._heap),
            "max_heap_size": self.max_heap_size,
        }


class Rng:
    """xorshift32 — a tiny deterministic stream, one per consumer so
    adding a consumer never perturbs the others."""

    def __init__(self, seed: int = 0x9E3779B9):
        self.state = seed & 0xFFFFFFFF or 1

    def next_u32(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def uniform(self, lo: int, hi: int) -> int:
        """Integer in [lo, hi]."""
        if hi <= lo:
            return lo
        return lo + self.next_u32() % (hi - lo + 1)

    def chance(self, p: float) -> bool:
        return self.next_u32() < p * 4294967296.0
