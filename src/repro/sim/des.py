"""Discrete-event simulation kernel.

The substrate that stands in for the paper's physical testbeds (motes,
radios, RTOS boards).  Time is integer microseconds; callbacks fire in
deterministic ``(time, seq)`` order, so every experiment in the benchmark
harness replays bit-identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional


class Simulator:
    """A classic event-calendar simulator."""

    def __init__(self) -> None:
        self.now = 0
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()

    def at(self, time_us: int, fn: Callable[[], None]) -> int:
        """Schedule ``fn`` at absolute time; returns a cancellable handle."""
        if time_us < self.now:
            raise ValueError(f"cannot schedule in the past "
                             f"({time_us} < {self.now})")
        seq = next(self._seq)
        heapq.heappush(self._heap, (time_us, seq, fn))
        return seq

    def after(self, delay_us: int, fn: Callable[[], None]) -> int:
        return self.at(self.now + delay_us, fn)

    def cancel(self, handle: int) -> None:
        self._cancelled.add(handle)

    def pending(self) -> int:
        return len(self._heap)

    def peek_time(self) -> Optional[int]:
        while self._heap and self._heap[0][1] in self._cancelled:
            _, seq, _ = heapq.heappop(self._heap)
            self._cancelled.discard(seq)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Run the earliest callback; False when the calendar is empty."""
        when = self.peek_time()
        if when is None:
            return False
        when, seq, fn = heapq.heappop(self._heap)
        if seq in self._cancelled:
            self._cancelled.discard(seq)
            return True
        self.now = when
        fn()
        return True

    def run_until(self, time_us: int) -> None:
        """Run every callback scheduled strictly up to ``time_us``."""
        while True:
            when = self.peek_time()
            if when is None or when > time_us:
                break
            self.step()
        self.now = max(self.now, time_us)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the calendar drains (bounded against runaways)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError("simulation exceeded its event budget")


class Rng:
    """xorshift32 — a tiny deterministic stream, one per consumer so
    adding a consumer never perturbs the others."""

    def __init__(self, seed: int = 0x9E3779B9):
        self.state = seed & 0xFFFFFFFF or 1

    def next_u32(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def uniform(self, lo: int, hi: int) -> int:
        """Integer in [lo, hi]."""
        if hi <= lo:
            return lo
        return lo + self.next_u32() % (hi - lo + 1)

    def chance(self, p: float) -> bool:
        return self.next_u32() < p * 4294967296.0
