"""Discrete-event simulation substrate (replaces the paper's testbeds)."""

from .des import Rng, Simulator

__all__ = ["Simulator", "Rng"]
