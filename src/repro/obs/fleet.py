"""Fleet metrics: labelled metric families and cross-instance rollup.

A single :class:`~repro.obs.metrics.MetricsRegistry` describes one
program instance.  A *farm* (:mod:`repro.runtime.farm`) runs thousands,
so this module adds the two missing pieces:

* **labelled families** — :class:`CounterFamily` / :class:`GaugeFamily`
  / :class:`HistogramFamily` key one logical metric by a tuple of label
  values (``instance``, ``program``, ``trigger``, …).  The hot path is
  one dict lookup returning the same plain-int ``Counter`` / ``Gauge`` /
  ``Histogram`` objects :mod:`repro.obs.metrics` uses everywhere, so a
  labelled bump costs what an unlabelled one does plus the lookup;

* **rollup** — :func:`merge_snapshots` folds N per-instance registry
  snapshots into one fleet snapshot: counters sum, gauges aggregate
  (sum of values, min of mins, max of maxes), and histograms merge
  bucket-by-bucket so the result yields true **cross-instance
  percentiles** (the p99 over every reaction on every instance, not an
  average of per-instance p99s).

Everything stays pure data: a family snapshot is a nested dict of
primitives, directly JSON-serialisable and renderable by
:func:`repro.obs.prom.render_prom`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .metrics import POW2_BUCKETS, Counter, Gauge, Histogram

LabelValues = tuple


def _label_key(values: Sequence) -> tuple:
    return tuple(str(v) for v in values)


class _Family:
    """One named metric, many label-keyed children.

    ``labels(*values)`` is the hot path: a single dict lookup when the
    series exists, lazy creation when it does not.  ``values`` must match
    ``labelnames`` positionally.
    """

    __slots__ = ("name", "labelnames", "children")

    kind = "untyped"

    def __init__(self, name: str, labelnames: Sequence[str]):
        self.name = name
        self.labelnames = tuple(labelnames)
        self.children: dict[tuple, object] = {}

    def labels(self, *values):
        key = _label_key(values)
        child = self.children.get(key)
        if child is None:
            if len(key) != len(self.labelnames):
                raise ValueError(
                    f"family {self.name!r} takes {len(self.labelnames)} "
                    f"label(s) {self.labelnames}, got {len(key)}")
            child = self.children[key] = self._make()
        return child

    def _make(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _value(self, child) -> object:  # pragma: no cover - overridden
        raise NotImplementedError

    def series(self) -> list[tuple[tuple, object]]:
        """Sorted ``(label_values, child)`` pairs."""
        return sorted(self.children.items())

    def snapshot(self) -> dict:
        return {
            "kind": self.kind,
            "labels": list(self.labelnames),
            "series": [[list(key), self._value(child)]
                       for key, child in self.series()],
        }


class CounterFamily(_Family):
    """``Counter`` per label tuple."""

    kind = "counter"

    def _make(self) -> Counter:
        return Counter()

    def _value(self, child: Counter) -> int:
        return child.value

    def total(self) -> int:
        return sum(c.value for c in self.children.values())


class GaugeFamily(_Family):
    """``Gauge`` per label tuple."""

    kind = "gauge"

    def _make(self) -> Gauge:
        return Gauge()

    def _value(self, child: Gauge) -> dict:
        return {"value": child.value, "min": child.min, "max": child.max}


class HistogramFamily(_Family):
    """``Histogram`` per label tuple (shared bucket bounds)."""

    __slots__ = ("bounds",)

    kind = "histogram"

    def __init__(self, name: str, labelnames: Sequence[str],
                 bounds: Sequence[int] = POW2_BUCKETS):
        super().__init__(name, labelnames)
        self.bounds = tuple(bounds)

    def _make(self) -> Histogram:
        return Histogram(self.bounds)

    def _value(self, child: Histogram) -> dict:
        return child.snapshot()

    def aggregate(self) -> Histogram:
        """Merge every series into one histogram (cross-series
        percentiles come from its bucket counts)."""
        merged = Histogram(self.bounds)
        for child in self.children.values():
            merge_histogram(merged, child)
        return merged


class FleetRegistry:
    """Named labelled families, lazily created — the fleet-level
    analogue of :class:`~repro.obs.metrics.MetricsRegistry`.

    Re-requesting a family checks the label schema, so two call sites
    cannot silently create incompatible series under one name.
    """

    def __init__(self) -> None:
        self.families: dict[str, _Family] = {}

    def _family(self, cls, name: str, labelnames: Sequence[str],
                **kwargs) -> _Family:
        fam = self.families.get(name)
        if fam is None:
            fam = self.families[name] = cls(name, labelnames, **kwargs)
            return fam
        if not isinstance(fam, cls) or fam.labelnames != tuple(labelnames):
            raise ValueError(
                f"family {name!r} already registered as {fam.kind} with "
                f"labels {fam.labelnames}")
        return fam

    def counter_family(self, name: str,
                       labelnames: Sequence[str]) -> CounterFamily:
        return self._family(CounterFamily, name, labelnames)

    def gauge_family(self, name: str,
                     labelnames: Sequence[str]) -> GaugeFamily:
        return self._family(GaugeFamily, name, labelnames)

    def histogram_family(self, name: str, labelnames: Sequence[str],
                         bounds: Sequence[int] = POW2_BUCKETS
                         ) -> HistogramFamily:
        return self._family(HistogramFamily, name, labelnames,
                            bounds=bounds)

    def snapshot(self) -> dict:
        return {name: fam.snapshot()
                for name, fam in sorted(self.families.items())}


# ------------------------------------------------------------------ merge
def merge_histogram(into: Histogram, other: Histogram) -> Histogram:
    """Fold ``other`` into ``into`` bucket-by-bucket (bounds must match)."""
    if into.bounds != other.bounds:
        raise ValueError(f"histogram bounds differ: {into.bounds} vs "
                         f"{other.bounds}")
    for i, c in enumerate(other.counts):
        into.counts[i] += c
    into.count += other.count
    into.total += other.total
    if other.min is not None and (into.min is None or other.min < into.min):
        into.min = other.min
    if other.max is not None and (into.max is None or other.max > into.max):
        into.max = other.max
    return into


def _histogram_from_snapshot(snap: dict) -> Histogram:
    """Rehydrate a :meth:`Histogram.snapshot` dict (buckets carry the
    bounds, so no out-of-band schema is needed)."""
    bounds = tuple(b for b, _ in snap["buckets"] if b != "inf")
    h = Histogram(bounds)
    h.counts = [c for _, c in snap["buckets"]]
    h.count = snap["count"]
    h.total = snap["sum"]
    h.min = snap["min"]
    h.max = snap["max"]
    return h


def merge_histogram_snapshots(snaps: Sequence[dict]) -> dict:
    """Merge N histogram snapshots; percentiles are recomputed from the
    merged buckets, so they are true cross-instance percentiles."""
    merged: Optional[Histogram] = None
    for snap in snaps:
        h = _histogram_from_snapshot(snap)
        if merged is None:
            merged = h
        else:
            merge_histogram(merged, h)
    return merged.snapshot() if merged is not None else Histogram().snapshot()


def merge_snapshots(snaps: Sequence[dict]) -> dict:
    """Roll N :meth:`MetricsRegistry.snapshot` dicts up into one.

    * counters — summed;
    * gauges — ``value`` summed (fleet occupancy), ``min``/``max``
      folded across instances (a pre-``min`` snapshot contributes its
      value);
    * histograms — bucket-merged via :func:`merge_histogram_snapshots`.

    The result has the exact shape of a single-instance snapshot plus an
    ``instances`` count, so every renderer (``render_stats``,
    ``render_prom``) works on it unchanged.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, dict] = {}
    histograms: dict[str, list[dict]] = {}
    for snap in snaps:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, g in snap.get("gauges", {}).items():
            agg = gauges.get(name)
            gmin = g.get("min", g["value"])
            if agg is None:
                gauges[name] = {"value": g["value"], "min": gmin,
                                "max": g["max"]}
            else:
                agg["value"] += g["value"]
                agg["min"] = min(agg["min"], gmin)
                agg["max"] = max(agg["max"], g["max"])
        for name, h in snap.get("histograms", {}).items():
            histograms.setdefault(name, []).append(h)
    return {
        "instances": len(snaps),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {name: merge_histogram_snapshots(parts)
                       for name, parts in sorted(histograms.items())},
    }


def merge_family_snapshots(snaps: Sequence[dict]) -> dict:
    """Roll N :meth:`FleetRegistry.snapshot` dicts up into one.

    The cross-*shard* analogue of :func:`merge_snapshots` (which rolls
    per-instance registries): series are keyed on (family, label
    values), counters sum, gauges sum values and fold min/max, and
    histograms bucket-merge.  Disjoint families pass through; the same
    family appearing with different label schemas or kinds raises —
    shards disagreeing about a schema is a deploy skew worth surfacing,
    not averaging away.
    """
    merged: dict[str, dict] = {}
    for snap in snaps:
        for name, fam in snap.items():
            into = merged.get(name)
            if into is None:
                merged[name] = {"kind": fam["kind"],
                                "labels": list(fam["labels"]),
                                "series": [[list(k), _copy_value(fam, v)]
                                           for k, v in fam["series"]]}
                continue
            if (into["kind"] != fam["kind"]
                    or into["labels"] != list(fam["labels"])):
                raise ValueError(
                    f"family {name!r} schema skew across shards: "
                    f"{into['kind']}{into['labels']} vs "
                    f"{fam['kind']}{list(fam['labels'])}")
            series = {tuple(k): v for k, v in into["series"]}
            for key, value in fam["series"]:
                key = tuple(key)
                if key not in series:
                    series[key] = _copy_value(fam, value)
                elif fam["kind"] == "counter":
                    series[key] = series[key] + value
                elif fam["kind"] == "gauge":
                    agg = series[key]
                    agg["value"] += value["value"]
                    agg["min"] = min(agg["min"], value["min"])
                    agg["max"] = max(agg["max"], value["max"])
                else:
                    series[key] = merge_histogram_snapshots(
                        [series[key], value])
            into["series"] = [[list(k), v]
                              for k, v in sorted(series.items())]
    return dict(sorted(merged.items()))


def _copy_value(fam: dict, value):
    """Deep-enough copy of one series value so merging never mutates a
    caller's snapshot in place."""
    if fam["kind"] == "counter":
        return value
    if fam["kind"] == "gauge":
        return dict(value)
    return merge_histogram_snapshots([value])


__all__ = ["CounterFamily", "GaugeFamily", "HistogramFamily",
           "FleetRegistry", "merge_histogram",
           "merge_histogram_snapshots", "merge_snapshots",
           "merge_family_snapshots"]
