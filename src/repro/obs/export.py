"""Trace export: Chrome trace-event JSON (Perfetto-loadable) and JSONL.

The Chrome format (``chrome://tracing`` / https://ui.perfetto.dev) maps
naturally onto the VM: one *process* is the VM, one *thread track* per
trail (plus track 0 for the scheduler), one slice per reaction on the
scheduler track, one slice per trail run (resume → halt) on the trail's
track, and instant events for internal emits, output emits, timer
activity, and kills.

Timestamps are VM microseconds.  Within one reaction the VM clock does
not advance, so the exporter keeps a *monotone* timeline: whenever the
clock stands still, successive events are nudged forward by 1 ns
(0.001 µs) — orders stay exact, slices stay properly nested, and the
Perfetto zoom level at which the nudges are visible is far below any
real deadline spacing.

Causality (:mod:`repro.obs.causal`) is drawn with Chrome **flow
events**: pass ``flows_from=program.hooks`` and every trail resume and
reaction start gets an arrow from the occurrence that caused it (an
``emit``, a timer fire, an async completion) plus a ``wake`` arrow from
the await / timer arm that registered the wakeup — Perfetto renders them
as curves between the tracks.  Each arrow is one ``ph:"s"`` at the
source occurrence's coordinates and one binding-point ``ph:"f"``
(``bp:"e"``) at the destination, sharing a unique ``id`` derived from
the destination's span (``span*2`` for the cause arrow, ``span*2+1`` for
the wake arrow).  With ``flows_from`` unset the output is byte-identical
to what this exporter always produced.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from .hooks import HOOK_EVENTS, HookBus, HookSubscriber

_SCHED_TID = 0


class ChromeTraceExporter(HookSubscriber):
    """Collects Chrome trace events; ``write()`` emits the JSON file."""

    def __init__(self, pid: int = 1, process_name: str = "repro-vm",
                 flows_from: Optional[HookBus] = None):
        self.pid = pid
        self.events: list[dict] = []
        self._tids: dict[str, int] = {}
        self._open: dict[int, int] = {}    # tid -> open "B" depth
        self._ts = 0.0
        self._clock = 0
        self._bus = flows_from
        self._flow_src: dict[int, tuple[int, float]] = {}  # span -> coords
        self._meta("process_name", {"name": process_name})
        self._thread(_SCHED_TID, "scheduler")

    # ------------------------------------------------------------ plumbing
    def _meta(self, name: str, args: dict, tid: int = _SCHED_TID) -> None:
        self.events.append({"ph": "M", "name": name, "pid": self.pid,
                            "tid": tid, "args": args})

    def _thread(self, tid: int, name: str) -> None:
        self._meta("thread_name", {"name": name}, tid=tid)

    def _tid(self, trail: str) -> int:
        tid = self._tids.get(trail)
        if tid is None:
            tid = self._tids[trail] = len(self._tids) + 1
            self._thread(tid, trail)
        return tid

    def _tick(self, time_us: int) -> float:
        """Monotone event timestamp in µs.

        The ``max`` keeps the timeline monotone even when a long run of
        zero-duration reactions has accumulated more than 1 µs of 1 ns
        nudges and the VM clock then advances by less than that.
        """
        if time_us > self._clock:
            self._clock = time_us
            self._ts = max(float(time_us), self._ts + 0.001)
        else:
            self._ts += 0.001
        return self._ts

    def _begin(self, tid: int, name: str, time_us: int,
               args: dict) -> None:
        self.events.append({"ph": "B", "name": name, "pid": self.pid,
                            "tid": tid, "ts": self._tick(time_us),
                            "args": args})
        self._open[tid] = self._open.get(tid, 0) + 1

    def _end(self, tid: int, time_us: int, args: dict) -> None:
        if self._open.get(tid, 0) <= 0:
            return  # never emit an unmatched "E"
        self._open[tid] -= 1
        self.events.append({"ph": "E", "pid": self.pid, "tid": tid,
                            "ts": self._tick(time_us), "args": args})

    def _instant(self, tid: int, name: str, time_us: int,
                 args: dict) -> None:
        self.events.append({"ph": "i", "name": name, "pid": self.pid,
                            "tid": tid, "ts": self._tick(time_us),
                            "s": "t", "args": args})

    # ---------------------------------------------------------------- flows
    def _flow_here(self, tid: int) -> None:
        """Remember the just-dispatched span's trace coordinates so a
        later arrow can start here (``self._ts`` is the timestamp the
        enclosing handler just minted)."""
        self._flow_src[self._bus.last_span] = (tid, self._ts)

    def _arrow(self, src_span: int, dest_tid: int, flow_id: int,
               name: str) -> None:
        """One causal arrow: lazy ``"s"`` at the recorded source
        coordinates, ``"f"`` (bp:"e") at the current destination."""
        src = self._flow_src.get(src_span)
        if src is None:
            return
        src_tid, src_ts = src
        self.events.append({"ph": "s", "id": flow_id, "name": name,
                            "cat": "causal", "pid": self.pid,
                            "tid": src_tid, "ts": src_ts})
        self.events.append({"ph": "f", "bp": "e", "id": flow_id,
                            "name": name, "cat": "causal", "pid": self.pid,
                            "tid": dest_tid, "ts": self._ts})

    # --------------------------------------------------------------- hooks
    def on_reaction_begin(self, index, trigger, value, time_us) -> None:
        self._begin(_SCHED_TID, f"reaction {trigger}", time_us,
                    {"index": index, "value": repr(value)})
        if self._bus is not None:
            span = self._bus.last_span
            self._flow_here(_SCHED_TID)
            # async completions / timer fires seed reactions causally
            self._arrow(self._bus.last_parent, _SCHED_TID, span * 2,
                        "cause")

    def on_reaction_end(self, index, trigger, steps, wall_ns) -> None:
        self._end(_SCHED_TID, self._clock,
                  {"steps": steps, "wall_ns": wall_ns})

    def on_trail_spawn(self, trail, path, time_us) -> None:
        tid = self._tid(trail)
        self._instant(tid, "spawn", time_us, {"path": list(path)})
        if self._bus is not None:
            self._flow_here(tid)

    def on_trail_resume(self, trail, path, time_us) -> None:
        tid = self._tid(trail)
        self._begin(tid, trail, time_us, {"path": list(path)})
        if self._bus is not None:
            span = self._bus.last_span
            self._flow_here(tid)
            self._arrow(self._bus.last_parent, tid, span * 2, "cause")
            self._arrow(self._bus.wake, tid, span * 2 + 1, "wake")

    def on_trail_halt(self, trail, path, waiting, time_us) -> None:
        self._end(self._tid(trail), time_us, {"waiting": waiting})

    def on_trail_kill(self, trail, path, time_us) -> None:
        tid = self._tid(trail)
        # a kill may interrupt a halted trail with no open slice
        self._end(tid, time_us, {"waiting": "killed"})
        self._instant(tid, "kill", time_us, {"path": list(path)})

    def on_await_begin(self, trail, target, time_us) -> None:
        # only materialised for flow export: the await is the source of
        # the eventual wake arrow (byte-identical output otherwise)
        if self._bus is not None:
            tid = self._tid(trail)
            self._instant(tid, f"await {target}", time_us, {})
            self._flow_here(tid)

    def on_emit_internal(self, name, depth, trail, time_us) -> None:
        tid = self._tid(trail)
        self._instant(tid, f"emit {name}", time_us, {"depth": depth})
        if self._bus is not None:
            self._flow_here(tid)

    def on_emit_output(self, name, value, time_us) -> None:
        self._instant(_SCHED_TID, f"output {name}", time_us,
                      {"value": repr(value)})

    def on_timer_schedule(self, deadline_us, trail, time_us) -> None:
        tid = self._tid(trail)
        self._instant(tid, "timer armed", time_us,
                      {"deadline_us": deadline_us})
        if self._bus is not None:
            self._flow_here(tid)

    def on_timer_fire(self, deadline_us, delta_us, n_trails) -> None:
        self._instant(_SCHED_TID, "timer fire", deadline_us,
                      {"deadline_us": deadline_us, "delta_us": delta_us,
                       "n_trails": n_trails})
        if self._bus is not None:
            self._flow_here(_SCHED_TID)

    def on_async_step(self, job, kind, time_us) -> None:
        self._instant(_SCHED_TID, f"async {kind}", time_us,
                      {"job": job})
        if self._bus is not None:
            self._flow_here(_SCHED_TID)

    def on_region_kill(self, region, n_trails, time_us) -> None:
        self._instant(_SCHED_TID, "region kill", time_us,
                      {"region": list(region), "n_trails": n_trails})

    # -------------------------------------------------------------- output
    def to_json(self) -> dict:
        events = list(self.events)
        # close any slices left open by an aborted run
        ts = self._ts
        for tid, depth in self._open.items():
            for _ in range(depth):
                ts += 0.001
                events.append({"ph": "E", "pid": self.pid, "tid": tid,
                               "ts": ts, "args": {}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh)


def jsonl_record(event: str, fields: tuple[str, ...], args: tuple,
                 seq: int) -> dict:
    """The canonical JSONL record for one hook event.  Both the buffered
    :class:`JsonlExporter` and the streaming exporter
    (:mod:`repro.obs.stream`) build records here, so their output is
    byte-identical line for line."""
    rec = {"ev": event, "seq": seq}
    rec.update(zip(fields, args))
    return rec


def jsonl_line(rec: dict) -> str:
    """Render one record exactly as every JSONL exporter in the repo
    does (``default=repr`` keeps arbitrary payloads serialisable)."""
    return json.dumps(rec, default=repr)


class JsonlExporter(HookSubscriber):
    """Machine-readable export: one JSON object per hook event, fields
    named per :data:`~repro.obs.hooks.HOOK_EVENTS`.

    This exporter **buffers every record in memory** — right for tests
    and bounded runs, wrong for long-running servers; use
    :class:`repro.obs.stream.StreamingJsonlExporter` (same byte-for-byte
    output, bounded memory) for those."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def lines(self) -> list[str]:
        return [jsonl_line(r) for r in self.records]

    def write(self, path) -> None:
        with open(path, "w") as fh:
            for line in self.lines():
                fh.write(line + "\n")


def _jsonl_recorder(event: str, fields: tuple[str, ...]) -> Callable:
    def record(self, *args) -> None:
        self.records.append(jsonl_record(event, fields, args,
                                         len(self.records)))

    record.__name__ = f"on_{event}"
    return record


for _name, _fields in HOOK_EVENTS.items():
    setattr(JsonlExporter, f"on_{_name}", _jsonl_recorder(_name, _fields))
del _name, _fields
