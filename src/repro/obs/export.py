"""Trace export: Chrome trace-event JSON (Perfetto-loadable) and JSONL.

The Chrome format (``chrome://tracing`` / https://ui.perfetto.dev) maps
naturally onto the VM: one *process* is the VM, one *thread track* per
trail (plus track 0 for the scheduler), one slice per reaction on the
scheduler track, one slice per trail run (resume → halt) on the trail's
track, and instant events for internal emits, output emits, timer
activity, and kills.

Timestamps are VM microseconds.  Within one reaction the VM clock does
not advance, so the exporter keeps a *monotone* timeline: whenever the
clock stands still, successive events are nudged forward by 1 ns
(0.001 µs) — orders stay exact, slices stay properly nested, and the
Perfetto zoom level at which the nudges are visible is far below any
real deadline spacing.
"""

from __future__ import annotations

import json
from typing import Callable

from .hooks import HOOK_EVENTS, HookSubscriber

_SCHED_TID = 0


class ChromeTraceExporter(HookSubscriber):
    """Collects Chrome trace events; ``write()`` emits the JSON file."""

    def __init__(self, pid: int = 1, process_name: str = "repro-vm"):
        self.pid = pid
        self.events: list[dict] = []
        self._tids: dict[str, int] = {}
        self._open: dict[int, int] = {}    # tid -> open "B" depth
        self._ts = 0.0
        self._clock = 0
        self._meta("process_name", {"name": process_name})
        self._thread(_SCHED_TID, "scheduler")

    # ------------------------------------------------------------ plumbing
    def _meta(self, name: str, args: dict, tid: int = _SCHED_TID) -> None:
        self.events.append({"ph": "M", "name": name, "pid": self.pid,
                            "tid": tid, "args": args})

    def _thread(self, tid: int, name: str) -> None:
        self._meta("thread_name", {"name": name}, tid=tid)

    def _tid(self, trail: str) -> int:
        tid = self._tids.get(trail)
        if tid is None:
            tid = self._tids[trail] = len(self._tids) + 1
            self._thread(tid, trail)
        return tid

    def _tick(self, time_us: int) -> float:
        """Monotone event timestamp in µs.

        The ``max`` keeps the timeline monotone even when a long run of
        zero-duration reactions has accumulated more than 1 µs of 1 ns
        nudges and the VM clock then advances by less than that.
        """
        if time_us > self._clock:
            self._clock = time_us
            self._ts = max(float(time_us), self._ts + 0.001)
        else:
            self._ts += 0.001
        return self._ts

    def _begin(self, tid: int, name: str, time_us: int,
               args: dict) -> None:
        self.events.append({"ph": "B", "name": name, "pid": self.pid,
                            "tid": tid, "ts": self._tick(time_us),
                            "args": args})
        self._open[tid] = self._open.get(tid, 0) + 1

    def _end(self, tid: int, time_us: int, args: dict) -> None:
        if self._open.get(tid, 0) <= 0:
            return  # never emit an unmatched "E"
        self._open[tid] -= 1
        self.events.append({"ph": "E", "pid": self.pid, "tid": tid,
                            "ts": self._tick(time_us), "args": args})

    def _instant(self, tid: int, name: str, time_us: int,
                 args: dict) -> None:
        self.events.append({"ph": "i", "name": name, "pid": self.pid,
                            "tid": tid, "ts": self._tick(time_us),
                            "s": "t", "args": args})

    # --------------------------------------------------------------- hooks
    def on_reaction_begin(self, index, trigger, value, time_us) -> None:
        self._begin(_SCHED_TID, f"reaction {trigger}", time_us,
                    {"index": index, "value": repr(value)})

    def on_reaction_end(self, index, trigger, steps, wall_ns) -> None:
        self._end(_SCHED_TID, self._clock,
                  {"steps": steps, "wall_ns": wall_ns})

    def on_trail_spawn(self, trail, path, time_us) -> None:
        self._instant(self._tid(trail), "spawn", time_us,
                      {"path": list(path)})

    def on_trail_resume(self, trail, path, time_us) -> None:
        self._begin(self._tid(trail), trail, time_us,
                    {"path": list(path)})

    def on_trail_halt(self, trail, path, waiting, time_us) -> None:
        self._end(self._tid(trail), time_us, {"waiting": waiting})

    def on_trail_kill(self, trail, path, time_us) -> None:
        tid = self._tid(trail)
        # a kill may interrupt a halted trail with no open slice
        self._end(tid, time_us, {"waiting": "killed"})
        self._instant(tid, "kill", time_us, {"path": list(path)})

    def on_emit_internal(self, name, depth, trail, time_us) -> None:
        self._instant(self._tid(trail), f"emit {name}", time_us,
                      {"depth": depth})

    def on_emit_output(self, name, value, time_us) -> None:
        self._instant(_SCHED_TID, f"output {name}", time_us,
                      {"value": repr(value)})

    def on_timer_schedule(self, deadline_us, trail, time_us) -> None:
        self._instant(self._tid(trail), "timer armed", time_us,
                      {"deadline_us": deadline_us})

    def on_timer_fire(self, deadline_us, delta_us, n_trails) -> None:
        self._instant(_SCHED_TID, "timer fire", deadline_us,
                      {"deadline_us": deadline_us, "delta_us": delta_us,
                       "n_trails": n_trails})

    def on_async_step(self, job, kind, time_us) -> None:
        self._instant(_SCHED_TID, f"async {kind}", time_us,
                      {"job": job})

    def on_region_kill(self, region, n_trails, time_us) -> None:
        self._instant(_SCHED_TID, "region kill", time_us,
                      {"region": list(region), "n_trails": n_trails})

    # -------------------------------------------------------------- output
    def to_json(self) -> dict:
        events = list(self.events)
        # close any slices left open by an aborted run
        ts = self._ts
        for tid, depth in self._open.items():
            for _ in range(depth):
                ts += 0.001
                events.append({"ph": "E", "pid": self.pid, "tid": tid,
                               "ts": ts, "args": {}})
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_json(), fh)


def jsonl_record(event: str, fields: tuple[str, ...], args: tuple,
                 seq: int) -> dict:
    """The canonical JSONL record for one hook event.  Both the buffered
    :class:`JsonlExporter` and the streaming exporter
    (:mod:`repro.obs.stream`) build records here, so their output is
    byte-identical line for line."""
    rec = {"ev": event, "seq": seq}
    rec.update(zip(fields, args))
    return rec


def jsonl_line(rec: dict) -> str:
    """Render one record exactly as every JSONL exporter in the repo
    does (``default=repr`` keeps arbitrary payloads serialisable)."""
    return json.dumps(rec, default=repr)


class JsonlExporter(HookSubscriber):
    """Machine-readable export: one JSON object per hook event, fields
    named per :data:`~repro.obs.hooks.HOOK_EVENTS`.

    This exporter **buffers every record in memory** — right for tests
    and bounded runs, wrong for long-running servers; use
    :class:`repro.obs.stream.StreamingJsonlExporter` (same byte-for-byte
    output, bounded memory) for those."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def lines(self) -> list[str]:
        return [jsonl_line(r) for r in self.records]

    def write(self, path) -> None:
        with open(path, "w") as fh:
            for line in self.lines():
                fh.write(line + "\n")


def _jsonl_recorder(event: str, fields: tuple[str, ...]) -> Callable:
    def record(self, *args) -> None:
        self.records.append(jsonl_record(event, fields, args,
                                         len(self.records)))

    record.__name__ = f"on_{event}"
    return record


for _name, _fields in HOOK_EVENTS.items():
    setattr(JsonlExporter, f"on_{_name}", _jsonl_recorder(_name, _fields))
del _name, _fields
