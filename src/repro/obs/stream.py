"""Bounded-memory trace streaming: incremental JSONL and a flight
recorder.

The buffered :class:`~repro.obs.export.JsonlExporter` holds every record
in memory — fine for tests, fatal for an unbounded DES run.  This module
provides the two long-running modes:

* :class:`StreamingJsonlExporter` — writes each record to disk as it
  arrives, holding at most ``flush_every`` rendered lines in memory.
  Output is **byte-identical** to the buffered exporter's (both build
  records via :func:`~repro.obs.export.jsonl_record`), so downstream
  tooling cannot tell which produced a file.  An optional rotation
  policy caps file size: when the current file exceeds ``rotate_bytes``
  it is shifted to ``path.1`` (older generations to ``.2`` … ``.keep``)
  and a fresh file is started.

* :class:`FlightRecorder` — the "dump the last N events on error" mode:
  a ring of the most recent ``maxlen`` rendered lines, written out only
  when :meth:`dump` is called.  Resident memory is ≤ the ring size no
  matter how long the run.

Both keep a global ``seq`` counter, so records carry their true position
in the full event stream even after rotation or ring eviction.
"""

from __future__ import annotations

import os
import queue
import sys
import threading
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Optional

from .export import jsonl_line, jsonl_record
from .hooks import HOOK_EVENTS, HookSubscriber


class _LineSink(HookSubscriber):
    """Base for subscribers that consume rendered JSONL lines: one
    generated ``on_<event>`` per taxonomy entry, each calling
    ``self._line(line)`` with the canonical rendering."""

    def __init__(self) -> None:
        self.seq = 0

    def _line(self, line: str) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


def _streamer(event: str, fields: tuple[str, ...]) -> Callable:
    def record(self, *args) -> None:
        line = jsonl_line(jsonl_record(event, fields, args, self.seq))
        self.seq += 1
        self._line(line)

    record.__name__ = f"on_{event}"
    return record


for _name, _fields in HOOK_EVENTS.items():
    setattr(_LineSink, f"on_{_name}", _streamer(_name, _fields))
del _name, _fields


class StreamingJsonlExporter(_LineSink):
    """Incremental JSONL export with flush and rotation policies.

    ``flush_every`` bounds resident memory: at most that many rendered
    lines are pending at any instant (``resident()``/``resident_high``
    expose the live count and its high-water mark, which the acceptance
    tests pin).  ``rotate_bytes`` caps the size of any one output file;
    ``keep`` older generations are retained as ``path.1`` … ``path.N``.
    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(self, path, flush_every: int = 1024,
                 rotate_bytes: Optional[int] = None, keep: int = 3):
        super().__init__()
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = Path(path)
        self.flush_every = flush_every
        self.rotate_bytes = rotate_bytes
        self.keep = keep
        self.rotations = 0
        self.resident_high = 0
        self._pending: list[str] = []
        self._bytes = 0
        self._fh = open(self.path, "w")
        self._closed = False

    # ------------------------------------------------------------- sink
    def _line(self, line: str) -> None:
        if self._closed:
            return
        self._pending.append(line)
        if len(self._pending) > self.resident_high:
            self.resident_high = len(self._pending)
        if len(self._pending) >= self.flush_every:
            self.flush()

    def resident(self) -> int:
        """Number of records currently held in memory."""
        return len(self._pending)

    # ----------------------------------------------------------- policy
    def flush(self) -> None:
        for line in self._pending:
            self._bytes += self._fh.write(line + "\n")
        self._pending.clear()
        self._fh.flush()
        if self.rotate_bytes is not None and self._bytes >= self.rotate_bytes:
            self._rotate()

    def _rotate(self) -> None:
        self._fh.close()
        oldest = self.path.with_name(f"{self.path.name}.{self.keep}")
        if oldest.exists():
            oldest.unlink()
        for gen in range(self.keep - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{gen}")
            if src.exists():
                os.replace(src, self.path.with_name(
                    f"{self.path.name}.{gen + 1}"))
        if self.keep >= 1:
            os.replace(self.path,
                       self.path.with_name(f"{self.path.name}.1"))
        else:
            self.path.unlink()
        self._fh = open(self.path, "w")
        self._bytes = 0
        self.rotations += 1

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._fh.close()
            self._closed = True

    def __enter__(self) -> "StreamingJsonlExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LineTee(_LineSink):
    """Fan rendered JSONL lines out to live subscriber queues.

    The seam the telemetry plane's ``/events`` endpoint taps: the tee
    sits beside the :class:`StreamingJsonlExporter` in a farm's sink
    list (so every record it sees is byte-identical to the exported
    line), keeps a ring of the most recent ``maxlen`` lines for
    catch-up, and pushes each new line into every subscribed queue.
    Slow consumers never block the reaction path: a full queue drops
    the line and counts it (per-subscriber ``dropped``).

    Producer side runs on the drive thread; :meth:`subscribe` /
    :meth:`unsubscribe` run on HTTP handler threads — the subscriber
    table is lock-guarded, queue hand-off is the stdlib's.
    """

    def __init__(self, maxlen: int = 1024):
        super().__init__()
        self.ring: deque[str] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self._subs: dict[int, queue.Queue] = {}
        self._dropped: dict[int, int] = {}
        #: cumulative drops across every subscriber ever — survives
        #: unsubscribe, so ``/metrics`` can export it as a counter
        self.total_dropped = 0
        self._next_sub = 0

    def _line(self, line: str) -> None:
        self.ring.append(line)
        with self._lock:
            subs = list(self._subs.items())
        for key, q in subs:
            try:
                q.put_nowait(line)
            except queue.Full:
                with self._lock:
                    self._dropped[key] = self._dropped.get(key, 0) + 1
                    self.total_dropped += 1

    # ------------------------------------------------------ subscribers
    def subscribe(self, maxsize: int = 1024) -> "queue.Queue[str]":
        """Register a live consumer; returns its bounded queue."""
        q: queue.Queue = queue.Queue(maxsize=maxsize)
        with self._lock:
            key = self._next_sub
            self._next_sub += 1
            self._subs[key] = q
            q._tee_key = key            # opaque cookie for unsubscribe
        return q

    def unsubscribe(self, q) -> int:
        """Drop a consumer; returns how many of its lines were lost to
        backpressure while it was subscribed."""
        key = getattr(q, "_tee_key", None)
        with self._lock:
            self._subs.pop(key, None)
            return self._dropped.pop(key, 0)

    def subscribers(self) -> int:
        with self._lock:
            return len(self._subs)

    def tail(self, n: int) -> list[str]:
        """The most recent ``n`` ring lines (catch-up before live)."""
        if n <= 0:
            return []
        return list(self.ring)[-n:]


class FlightRecorder(_LineSink):
    """Ring-buffer "flight recorder": remembers the last ``maxlen``
    events, dumps them on demand (typically from an error handler).

    ``seq`` counts every event ever seen; ``dropped`` is how many have
    fallen off the ring.  :meth:`dump` writes the surviving lines (true
    ``seq`` numbers intact) and returns how many it wrote.
    """

    def __init__(self, maxlen: int = 4096):
        super().__init__()
        self.maxlen = maxlen
        self.ring: deque[str] = deque(maxlen=maxlen)

    def _line(self, line: str) -> None:
        self.ring.append(line)

    @property
    def dropped(self) -> int:
        return self.seq - len(self.ring)

    def lines(self) -> list[str]:
        return list(self.ring)

    def dump(self, path) -> int:
        with open(path, "w") as fh:
            for line in self.ring:
                fh.write(line + "\n")
        return len(self.ring)

    @contextmanager
    def dump_on_exception(self, path=None, stream=None):
        """Write the ring out if the guarded block raises, then re-raise.

        The crash-forensics mode: wrap the program drive in this and a
        failing run leaves the last ``maxlen`` hook events behind —
        JSONL to ``path`` when given, human-bannered lines to ``stream``
        (default ``sys.stderr``) otherwise or additionally.  A clean
        exit writes nothing.

        >>> rec = program.observe(FlightRecorder(maxlen=256))
        >>> with rec.dump_on_exception(path="crash.jsonl"):
        ...     program.send("I")
        """
        try:
            yield self
        except BaseException:
            if path is not None:
                self.dump(path)
            if stream is not None or path is None:
                out = stream if stream is not None else sys.stderr
                out.write(f"--- flight recorder: last {len(self.ring)} "
                          f"of {self.seq} events ---\n")
                for line in self.ring:
                    out.write(line + "\n")
                out.write("--- end flight recorder ---\n")
            raise
