"""Continuous profiling: attribute reaction cost to trails, source
lines, and triggers.

:class:`Profiler` is a hook-bus subscriber that turns the raw ``step`` /
``reaction_begin`` / ``reaction_end`` stream into the questions a
developer actually asks of a reactive program:

* **where do the steps go?** — per-source-line and per-trail step
  counts (``hot_lines`` / ``hot_trails``, rendered by :meth:`report`);
* **which triggers are slow?** — per-trigger reaction-latency
  histograms (fine 1-2-5 buckets) with p50/p95/p99, the WCRT view of
  the synchronous-language literature;
* **what does the whole run look like?** — collapsed-stack output
  (``trigger;trail;kind:line count``), directly consumable by any
  flamegraph renderer (``flamegraph.pl``, speedscope, inferno).

Attribution is streaming and O(1) per event — only the aggregate maps
grow (bounded by program size × trigger alphabet), never the event
stream — so the profiler is safe to leave attached to unbounded runs.
"""

from __future__ import annotations

from typing import Optional

from .hooks import HookSubscriber
from .metrics import DEPTH_BUCKETS, FINE_LATENCY_BUCKETS, Histogram


def trigger_family(trigger: str) -> str:
    """Collapse unbounded trigger names (``async:NNN``) to a family."""
    return "async" if trigger.startswith("async:") else trigger


class Profiler(HookSubscriber):
    """Aggregating profiler subscriber (see module docstring).

    ``source`` (the program text) is optional; when given, the hot-path
    report quotes the offending source lines.
    """

    def __init__(self, source: Optional[str] = None):
        self.source_lines = source.splitlines() if source else None
        #: steps attributed to each source line
        self.line_cost: dict[int, int] = {}
        #: steps attributed to each trail label
        self.trail_cost: dict[str, int] = {}
        #: steps attributed to each (trigger family, trail, kind, line)
        self.stacks: dict[tuple[str, str, str, int], int] = {}
        #: per-trigger-family reaction latency (µs) and steps/reaction
        self.latency: dict[str, Histogram] = {}
        self.steps: dict[str, Histogram] = {}
        self.reactions = 0
        self.total_steps = 0
        self._trigger = "?"

    # ------------------------------------------------------------- hooks
    def on_reaction_begin(self, index, trigger, value, time_us) -> None:
        self._trigger = trigger_family(trigger)

    def on_reaction_end(self, index, trigger, steps, wall_ns) -> None:
        family = trigger_family(trigger)
        lat = self.latency.get(family)
        if lat is None:
            lat = self.latency[family] = Histogram(FINE_LATENCY_BUCKETS)
            self.steps[family] = Histogram(DEPTH_BUCKETS)
        lat.record(wall_ns // 1000)
        self.steps[family].record(steps)
        self.reactions += 1

    def on_step(self, trail, path, kind, line) -> None:
        self.total_steps += 1
        self.line_cost[line] = self.line_cost.get(line, 0) + 1
        self.trail_cost[trail] = self.trail_cost.get(trail, 0) + 1
        key = (self._trigger, trail, kind, line)
        self.stacks[key] = self.stacks.get(key, 0) + 1

    # ---------------------------------------------------------- analysis
    def hot_lines(self, k: int = 10) -> list[tuple[int, int]]:
        """Top-``k`` ``(line, steps)`` — the hot reaction paths."""
        return sorted(self.line_cost.items(),
                      key=lambda item: (-item[1], item[0]))[:k]

    def hot_trails(self, k: int = 10) -> list[tuple[str, int]]:
        return sorted(self.trail_cost.items(),
                      key=lambda item: (-item[1], item[0]))[:k]

    def report(self, k: int = 10) -> str:
        """The ``repro profile --hot`` text report."""
        lines = [f"profile: {self.reactions} reactions, "
                 f"{self.total_steps} steps"]
        if self.latency:
            lines.append("per-trigger reaction latency (us)")
            lines.append(f"  {'trigger':<16} {'count':>7} {'p50':>8} "
                         f"{'p95':>8} {'p99':>8} {'max':>8} {'steps':>6}")
            for family in sorted(self.latency,
                                 key=lambda f: -self.latency[f].count):
                h = self.latency[family]
                p = h.percentiles()
                lines.append(
                    f"  {family:<16} {h.count:>7} {p['p50']:>8.1f} "
                    f"{p['p95']:>8.1f} {p['p99']:>8.1f} {h.max:>8} "
                    f"{self.steps[family].mean:>6.1f}")
        if self.line_cost:
            lines.append(f"hot lines (top {k})")
            for line, cost in self.hot_lines(k):
                share = 100.0 * cost / self.total_steps
                text = ""
                if (self.source_lines
                        and 1 <= line <= len(self.source_lines)):
                    text = "  " + self.source_lines[line - 1].strip()
                lines.append(f"  line {line:<5} {cost:>8} steps "
                             f"({share:4.1f}%){text}")
        if self.trail_cost:
            lines.append(f"hot trails (top {k})")
            for trail, cost in self.hot_trails(k):
                share = 100.0 * cost / self.total_steps
                lines.append(f"  {trail:<24} {cost:>8} steps "
                             f"({share:4.1f}%)")
        return "\n".join(lines)

    # ------------------------------------------------------- flamegraphs
    def collapsed(self) -> list[str]:
        """Collapsed-stack lines: ``trigger;trail;kind:line count``."""
        out = []
        for (trigger, trail, kind, line), count in sorted(
                self.stacks.items()):
            out.append(f"{trigger};{trail};{kind}:{line} {count}")
        return out

    def write_collapsed(self, path) -> int:
        """Write flamegraph-compatible collapsed stacks; returns the
        number of distinct stacks."""
        lines = self.collapsed()
        with open(path, "w") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)
