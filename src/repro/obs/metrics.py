"""Metrics: counters, gauges, fixed-bucket histograms, and the collector
that populates them from the hook bus.

Everything is plain Python over plain ints — zero dependencies, cheap
enough to leave attached during benchmarks.  A snapshot is a nested dict
of primitives, directly JSON-serialisable (the ``BENCH_observability``
format and ``repro profile --json`` both emit it verbatim).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .hooks import HookSubscriber

#: default histogram bucket upper bounds (values above the last bound
#: land in the overflow bucket)
POW2_BUCKETS: tuple[int, ...] = tuple(1 << i for i in range(0, 21, 2))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value; remembers its high- and low-water marks.

    Occupancy-style gauges (live instances, queued events) move by
    deltas — :meth:`inc`/:meth:`dec` keep that a single call instead of
    a read-modify-``set()`` at every site.
    """

    __slots__ = ("value", "max", "min")

    def __init__(self) -> None:
        self.value = 0
        self.max = 0
        self.min = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value

    def inc(self, n: int = 1) -> None:
        self.set(self.value + n)

    def dec(self, n: int = 1) -> None:
        self.set(self.value - n)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[int] = POW2_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-th percentile (0–100) from the buckets.

        Linear interpolation inside the bucket that holds the target
        rank, clamped to the exact observed ``min``/``max`` so small
        sample counts never extrapolate past reality.  ``None`` when
        empty.
        """
        if not self.count:
            return None
        target = q / 100.0 * self.count
        cum = 0
        lo = 0
        for bound, c in zip(self.bounds, self.counts):
            cum += c
            if cum >= target and c:
                frac = (target - (cum - c)) / c
                value = lo + (bound - lo) * frac
                return float(min(max(value, self.min), self.max))
            lo = bound
        return float(self.max)  # target rank lives in the overflow bucket

    def percentiles(self, qs=(50, 95, 99)) -> dict:
        return {f"p{q:g}": self.percentile(q) for q in qs}

    def snapshot(self) -> dict:
        snap = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [[bound, c] for bound, c
                        in zip(self.bounds, self.counts)] +
                       [["inf", self.counts[-1]]],
        }
        snap.update(self.percentiles())
        return snap


class MetricsRegistry:
    """Named metrics, lazily created; ``snapshot()`` is pure data."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str,
                  bounds: Sequence[int] = POW2_BUCKETS) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(bounds)
        return h

    def snapshot(self) -> dict:
        return {
            "counters": {k: c.value
                         for k, c in sorted(self.counters.items())},
            "gauges": {k: {"value": g.value, "min": g.min, "max": g.max}
                       for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.snapshot()
                           for k, h in sorted(self.histograms.items())},
        }


#: µs latency buckets: 1µs … ~1s
LATENCY_BUCKETS = tuple(10 ** i for i in range(7))
#: finer 1-2-5 µs buckets (profiler latency histograms, where the decade
#: buckets above are too coarse for percentile interpolation)
FINE_LATENCY_BUCKETS = tuple(d * 10 ** e
                             for e in range(7) for d in (1, 2, 5))
#: small-integer buckets (stack depths, steps per reaction)
DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


class MetricsCollector(HookSubscriber):
    """Subscribes to a hook bus and aggregates the documented metric set
    into a :class:`MetricsRegistry`.

    ``sampled`` (typically the owning scheduler) is polled at each
    reaction end for the live gauges — trail count, timer-heap size,
    queue depths — so gauges track reality without per-operation cost.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 sampled=None):
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.sampled = sampled
        r = self.registry
        self.reactions = r.counter("reactions_total")
        self.steps = r.counter("steps_total")
        self.emits_internal = r.counter("emits_internal_total")
        self.emits_output = r.counter("emits_output_total")
        self.trails_spawned = r.counter("trails_spawned_total")
        self.trails_killed = r.counter("trails_killed_total")
        self.timers_scheduled = r.counter("timers_scheduled_total")
        self.timers_fired = r.counter("timers_fired_total")
        self.async_steps = r.counter("async_steps_total")
        self.region_kills = r.counter("region_kills_total")
        self.steps_per_reaction = r.histogram("steps_per_reaction",
                                              DEPTH_BUCKETS)
        self.reaction_latency = r.histogram("reaction_latency_us",
                                            LATENCY_BUCKETS)
        self.emit_depth = r.histogram("emit_stack_depth", DEPTH_BUCKETS)
        self._emits_this_reaction = 0

    # ------------------------------------------------------------ hooks
    def on_reaction_begin(self, index, trigger, value, time_us) -> None:
        self.reactions.inc()
        self.registry.counter(f"reactions_by_trigger.{_family(trigger)}") \
            .inc()
        self._emits_this_reaction = 0

    def on_reaction_end(self, index, trigger, steps, wall_ns) -> None:
        self.steps_per_reaction.record(steps)
        self.reaction_latency.record(wall_ns // 1000)
        r = self.registry
        r.gauge("emits_per_reaction").set(self._emits_this_reaction)
        s = self.sampled
        if s is not None:
            r.gauge("live_trails").set(len(s._live))
            r.gauge("timer_heap_size").set(len(s.timers))
            r.gauge("async_jobs").set(len(s.async_jobs))
            r.gauge("input_queue_depth").set(len(s.input_queue))
            # precise variants sampled for the static-bounds cross-check
            # (the heap/deque sizes above can include dead entries)
            r.gauge("armed_timers").set(
                sum(1 for entry in s.timers
                    if entry[-1].alive and entry[-1].waiting == "time"))
            r.gauge("async_jobs_live").set(
                sum(1 for job in s.async_jobs
                    if not job.aborted and not job.done))
            r.gauge("memory_slots").set(s.memory.slot_count())

    def on_step(self, trail, path, kind, line) -> None:
        self.steps.inc()

    def on_trail_spawn(self, trail, path, time_us) -> None:
        self.trails_spawned.inc()

    def on_trail_kill(self, trail, path, time_us) -> None:
        self.trails_killed.inc()

    def on_await_begin(self, trail, target, time_us) -> None:
        self.registry.counter(f"awaits_by_target.{target}").inc()

    def on_emit_internal(self, name, depth, trail, time_us) -> None:
        self.emits_internal.inc()
        self.emit_depth.record(depth)
        self._emits_this_reaction += 1
        self.registry.counter(f"emits_by_event.{name}").inc()

    def on_emit_output(self, name, value, time_us) -> None:
        self.emits_output.inc()

    def on_timer_schedule(self, deadline_us, trail, time_us) -> None:
        self.timers_scheduled.inc()

    def on_timer_fire(self, deadline_us, delta_us, n_trails) -> None:
        self.timers_fired.inc()

    def on_async_step(self, job, kind, time_us) -> None:
        self.async_steps.inc()

    def on_region_kill(self, region, n_trails, time_us) -> None:
        self.region_kills.inc()


def _family(trigger: str) -> str:
    """Collapse `async:NNN` triggers so counters stay bounded."""
    return "async" if trigger.startswith("async:") else trigger


# ---------------------------------------------------------------- report
def render_stats(stats: dict) -> str:
    """Human-readable metrics report (``repro profile`` / ``--stats``)."""
    lines: list[str] = []
    runtime = stats.get("runtime", {})
    if runtime:
        lines.append("runtime")
        for key, value in runtime.items():
            lines.append(f"  {key:<24} {value}")
    derived = stats.get("derived", {})
    if derived:
        lines.append("derived")
        for key, value in derived.items():
            shown = f"{value:.1f}" if isinstance(value, float) else value
            lines.append(f"  {key:<24} {shown}")
    counters = stats.get("counters", {})
    if counters:
        lines.append("counters")
        for key, value in counters.items():
            lines.append(f"  {key:<40} {value}")
    gauges = stats.get("gauges", {})
    if gauges:
        lines.append("gauges")
        for key, g in gauges.items():
            lines.append(f"  {key:<24} {g['value']} (max {g['max']})")
    histograms = stats.get("histograms", {})
    if histograms:
        lines.append("histograms")
        for key, h in histograms.items():
            line = (f"  {key:<24} count={h['count']} mean={h['mean']:.2f} "
                    f"min={h['min']} max={h['max']}")
            if h.get("p50") is not None:
                line += (f" p50={h['p50']:.0f} p95={h['p95']:.0f} "
                         f"p99={h['p99']:.0f}")
            lines.append(line)
    return "\n".join(lines)
