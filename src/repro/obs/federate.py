"""Cross-shard federation: one exposition for a farm of farms.

A single process tops out at one core's worth of reactions; the scale
path is N shard processes, each running ``repro farm --serve`` as its
own synchronous reactive world, observed asynchronously from outside
(the GALS boundary the "Reactive concurrent programming revisited"
line of work draws).  :class:`Federator` is that outside observer:

* it scrapes each shard's ``/snapshot`` endpoint (injectable ``fetch``
  — tests run shards in-process, no sockets);
* rolls every shard's per-instance registry rollup through
  :func:`~repro.obs.fleet.merge_snapshots` — so the federated
  ``reaction_latency_us`` histogram is bucket-merged and its p99 is a
  **true cross-shard percentile**, not an average of shard p99s — and
  the labelled farm families through
  :func:`~repro.obs.fleet.merge_family_snapshots`;
* keeps per-shard summaries under a ``shard`` label
  (``repro_shard_up``, ``_instances``, ``_reactions_total`` …);
* reports its own scraping as first-class metrics: per-shard scrape
  latency histograms, response bytes, scrape outcomes, and staleness
  (seconds since the last successful scrape — the number an alert
  should page on, because an `up`-flap hides behind averages but
  staleness only grows).

The federated snapshot has the same ``merged``/``farm`` shape a single
farm's has, so :func:`~repro.obs.prom.render_prom`, ``repro top``, and
even a second-level federator consume it unchanged — federation
composes.
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Callable, Optional, Sequence

from .fleet import (FleetRegistry, merge_family_snapshots,
                    merge_snapshots)
from .metrics import FINE_LATENCY_BUCKETS
from .prom import render_prom


def _default_fetch(url: str, timeout_s: float) -> bytes:
    with urllib.request.urlopen(url, timeout=timeout_s) as resp:
        return resp.read()


def _shard_name(target: str, index: int) -> str:
    """A stable short label for one shard URL (host:port when
    parseable, else the index)."""
    from urllib.parse import urlparse

    netloc = urlparse(target).netloc
    return netloc or f"shard{index}"


class Federator:
    """Scrape N shard ``/snapshot`` endpoints into one telemetry plane.

    ``targets`` are shard base URLs (``http://host:port`` — the
    ``/snapshot`` path is appended when missing) or full snapshot URLs.
    ``min_interval_s`` rate-limits scraping when the federator itself
    is served (every ``/metrics`` hit triggers at most one upstream
    sweep per interval; between sweeps the cached shard state is
    rendered with growing staleness).

    >>> fed = Federator(["http://10.0.0.1:9464", "http://10.0.0.2:9464"])
    >>> fed.scrape()
    2
    >>> print(fed.render()[:13])
    # TYPE repro_
    """

    def __init__(self, targets: Sequence[str], *,
                 fetch: Optional[Callable[[str, float], bytes]] = None,
                 timeout_s: float = 2.0, min_interval_s: float = 0.0,
                 clock: Callable[[], float] = time.monotonic):
        if not targets:
            raise ValueError("at least one shard target is required")
        self.targets = [t if t.rstrip("/").endswith("/snapshot")
                        else t.rstrip("/") + "/snapshot" for t in targets]
        self.names = [_shard_name(t, i)
                      for i, t in enumerate(self.targets)]
        if len(set(self.names)) != len(self.names):
            self.names = [f"{n}#{i}" for i, n in enumerate(self.names)]
        self.fetch = fetch if fetch is not None else _default_fetch
        self.timeout_s = timeout_s
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._last_sweep: Optional[float] = None
        #: per-shard cache: name -> (snapshot dict | None, last-ok time)
        self._shards: dict[str, dict] = {
            name: {"snapshot": None, "ok_at": None, "error": None}
            for name in self.names}

        self.registry = FleetRegistry()
        self._scrapes = self.registry.counter_family(
            "federation_scrapes_total", ("shard", "outcome"))
        self._latency = self.registry.histogram_family(
            "federation_scrape_latency_us", ("shard",),
            FINE_LATENCY_BUCKETS)
        self._bytes = self.registry.counter_family(
            "federation_scrape_bytes_total", ("shard",))
        self._up = self.registry.gauge_family(
            "federation_shard_up", ("shard",))
        self._staleness = self.registry.gauge_family(
            "federation_shard_staleness_seconds", ("shard",))

    # ------------------------------------------------------------- scrape
    def scrape(self, force: bool = False) -> int:
        """One sweep over every shard (rate-limited unless ``force``);
        returns how many shards answered."""
        now = self._clock()
        if (not force and self._last_sweep is not None
                and self.min_interval_s
                and now - self._last_sweep < self.min_interval_s):
            return sum(1 for s in self._shards.values()
                       if s["snapshot"] is not None)
        self._last_sweep = now
        ok = 0
        for name, target in zip(self.names, self.targets):
            state = self._shards[name]
            start = self._clock()
            try:
                raw = self.fetch(target, self.timeout_s)
                snap = json.loads(raw)
            except Exception as exc:  # noqa: BLE001 - any shard failure
                self._scrapes.labels(name, "error").inc()
                self._up.labels(name).set(0)
                state["error"] = f"{type(exc).__name__}: {exc}"
                continue
            us = int((self._clock() - start) * 1_000_000)
            self._scrapes.labels(name, "ok").inc()
            self._latency.labels(name).record(us)
            self._bytes.labels(name).inc(len(raw))
            self._up.labels(name).set(1)
            state.update(snapshot=snap, ok_at=self._clock(), error=None)
            ok += 1
        return ok

    # ----------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """The federated fleet snapshot (same shape as one farm's,
        plus per-shard summaries).  Does **not** scrape — callers pick
        the cadence (:meth:`collect` does both)."""
        now = self._clock()
        shard_snaps = []
        shards = {}
        for name in self.names:
            state = self._shards[name]
            snap = state["snapshot"]
            age = (now - state["ok_at"]) if state["ok_at"] is not None \
                else None
            self._staleness.labels(name).set(
                round(age, 3) if age is not None else -1)
            summary = {"up": snap is not None and state["error"] is None,
                       "staleness_s": age, "error": state["error"]}
            if snap is not None:
                merged = snap.get("merged", {})
                latency = merged.get("histograms", {}).get(
                    "reaction_latency_us", {})
                summary.update(
                    instances=snap.get("instances"),
                    spawned=snap.get("spawned"),
                    now_us=snap.get("now_us"),
                    reactions_total=merged.get("counters", {}).get(
                        "reactions_total", 0),
                    p99_us=latency.get("p99"))
                shard_snaps.append(snap)
            shards[name] = summary
        merged = merge_snapshots(
            [s.get("merged", {}) for s in shard_snaps])
        merged["instances"] = sum(s.get("instances", 0)
                                  for s in shard_snaps)
        return {
            "schema": 1,
            "federated": True,
            "shards": shards,
            "instances": merged["instances"],
            "spawned": sum(s.get("spawned", 0) for s in shard_snaps),
            "now_us": max([s.get("now_us", 0) for s in shard_snaps],
                          default=0),
            "farm": merge_family_snapshots(
                [s.get("farm", {}) for s in shard_snaps]),
            "merged": merged,
        }

    def collect(self) -> dict:
        """Scrape (rate-limited) then snapshot — the provider an
        :class:`~repro.obs.serve.AdminServer` serves directly."""
        self.scrape()
        return self.snapshot()

    # ------------------------------------------------------------- render
    def render(self, prefix: str = "repro_") -> str:
        """One Prometheus exposition: the cross-shard rollup, the
        per-shard summary series (``shard`` label), and the federator's
        own scrape metrics."""
        snap = self.snapshot()
        shard_reg = FleetRegistry()
        up = shard_reg.gauge_family("shard_up", ("shard",))
        inst = shard_reg.gauge_family("shard_instances", ("shard",))
        reactions = shard_reg.counter_family(
            "shard_reactions_total", ("shard",))
        now_us = shard_reg.gauge_family("shard_now_us", ("shard",))
        for name, summary in snap["shards"].items():
            up.labels(name).set(1 if summary["up"] else 0)
            if summary.get("instances") is not None:
                inst.labels(name).set(summary["instances"])
                now_us.labels(name).set(summary.get("now_us") or 0)
                reactions.labels(name).inc(
                    summary.get("reactions_total") or 0)
        parts = [render_prom(snap, prefix=prefix),
                 render_prom(shard_reg.snapshot(), prefix=prefix),
                 render_prom(self.registry.snapshot(), prefix=prefix)]
        return "".join(p for p in parts if p)


__all__ = ["Federator"]
