"""Causal tracing: a per-reaction DAG over hook-bus occurrences.

Céu's synchronous semantics make every state change attributable to one
external event plus a deterministic chain of trail wakeups, internal
emits (the §2.2 stack policy), and ``par/or`` cancellations.  The plain
trace records *what* fired; this module records *why*: every hook-bus
occurrence gets a **span id** and a **parent edge** to the occurrence
that caused it, producing a DAG whose roots are the external triggers.

Edges are exact, not inferred.  The scheduler threads cause ids through
its emit paths (see :class:`~repro.obs.hooks.HookBus`): the bus assigns
span ids at dispatch, the scheduler maintains the *current cause* across
deferred work (heap-queued resumes, rejoin continuations, timer fires),
and deferred wakeups carry their registration span (the await / timer
arm / spawn) as an auxiliary ``wake`` edge.  Two edge kinds result:

* ``cause`` — the occurrence that made this one happen *now* (an emit
  waking an awaiting trail, a timer fire seeding a reaction, a branch
  completion dispatching a rejoin);
* ``wake``  — the earlier occurrence that registered the wakeup (why the
  trail was listening at all).

The graph answers the debugger's questions (``repro why``): the *causal
slice* of a target occurrence is the set of its ancestors — the minimal
chain of events explaining why a trail ran or was killed.  Because
dispatch is synchronous and the §2.2 emit stack runs awakened trails to
completion before resuming the emitter, span order **is** the stack
(LIFO) execution order, so a slice printed in span order reads exactly
like the paper's walk-throughs.  The same cone powers the fuzz
shrinker's slice-first pass (:mod:`repro.fuzz.shrink`) and the Perfetto
flow-event export (:mod:`repro.obs.export`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .hooks import HOOK_EVENTS, HookBus, HookSubscriber


@dataclass(slots=True)
class CausalNode:
    """One hook-bus occurrence in the causal DAG."""

    span: int          # unique, monotone (bus dispatch order)
    event: str         # hook taxonomy name
    fields: dict       # taxonomy fields for the occurrence
    parent: int        # causing span (0 = the external world)
    wake: int          # aux cause: await/arm/spawn registration (or 0)
    reaction: int      # reaction index it happened in (-1 = pre-boot)

    def describe(self) -> str:
        """One-line human rendering used by slices and ``repro why``."""
        f = self.fields
        if self.event == "reaction_begin":
            extra = "" if f.get("value") is None else f" value={f['value']}"
            return f"reaction #{f['index']} {f['trigger']}{extra}"
        if self.event == "reaction_end":
            return f"reaction #{f['index']} quiesced ({f['steps']} steps)"
        if self.event == "trail_resume":
            return f"resume {f['trail']}"
        if self.event == "trail_halt":
            return f"halt {f['trail']} ({f['waiting']})"
        if self.event == "trail_spawn":
            return f"spawn {f['trail']}"
        if self.event == "trail_kill":
            return f"kill {f['trail']}"
        if self.event == "emit_internal":
            return f"emit {f['name']} (depth {f['depth']}) by {f['trail']}"
        if self.event == "emit_output":
            return f"output {f['name']}={f['value']}"
        if self.event == "await_begin":
            return f"{f['trail']} awaits {f['target']}"
        if self.event == "timer_schedule":
            return f"{f['trail']} arms timer @{f['deadline_us']}us"
        if self.event == "timer_fire":
            return (f"timer fires @{f['deadline_us']}us "
                    f"({f['n_trails']} trail(s))")
        if self.event == "region_kill":
            return f"region kill ({f['n_trails']} trail(s))"
        if self.event == "async_step":
            return f"async {f['job']} {f['kind']}"
        if self.event == "step":
            return f"{f['trail']} {f['kind']}@{f['line']}"
        return f"{self.event} {f}"


class CausalGraph(HookSubscriber):
    """Hook-bus subscriber materialising the causal DAG.

    Needs the bus it is subscribed to (to read the span bookkeeping)::

        graph = program.observe(CausalGraph(program.hooks))

    or just ``program.causal()``.
    """

    def __init__(self, bus: HookBus) -> None:
        self.bus = bus
        self.nodes: dict[int, CausalNode] = {}
        self.order: list[int] = []
        self._reaction = -1

    # ------------------------------------------------------------ recording
    def _record(self, event: str, fields: dict) -> CausalNode:
        bus = self.bus
        node = CausalNode(
            span=bus.last_span, event=event, fields=fields,
            parent=bus.last_parent,
            wake=bus.wake if event == "trail_resume" else 0,
            reaction=self._reaction)
        self.nodes[node.span] = node
        self.order.append(node.span)
        return node

    def on_reaction_begin(self, index, trigger, value, time_us) -> None:
        self._reaction = index
        self._record("reaction_begin",
                     {"index": index, "trigger": trigger, "value": value,
                      "time_us": time_us})

    # ------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.order)

    def node(self, span: int) -> Optional[CausalNode]:
        return self.nodes.get(span)

    def edges(self) -> list[tuple[int, int, str]]:
        """All edges as ``(src_span, dst_span, kind)`` with kind in
        ``{"cause", "wake"}`` (src caused dst)."""
        out: list[tuple[int, int, str]] = []
        for span in self.order:
            node = self.nodes[span]
            if node.parent:
                out.append((node.parent, span, "cause"))
            if node.wake:
                out.append((node.wake, span, "wake"))
        return out

    def of(self, *events: str) -> list[CausalNode]:
        wanted = set(events)
        return [self.nodes[s] for s in self.order
                if self.nodes[s].event in wanted]

    def roots(self) -> list[CausalNode]:
        """Externally-caused occurrences (parent = 0)."""
        return [self.nodes[s] for s in self.order
                if self.nodes[s].parent == 0]

    # ----------------------------------------------------- target resolution
    def find(self, at: str,
             before: Optional[int] = None) -> Optional[CausalNode]:
        """Resolve a ``repro why --at`` target to its *last* occurrence.

        Accepted forms: ``trail:LABEL`` (last resume or kill of the
        trail), ``line:N`` (last interpreter step at source line N),
        ``event:NAME`` (last internal/output emit of NAME),
        ``reaction:N``; a bare token tries trail, then event, then — if
        numeric — line.  With ``before`` set, only occurrences in
        reactions ``< before`` are visible — the time-travel debugger
        uses this so a rewound position cannot see its own future.
        """
        kind, _, name = at.partition(":")
        if name:
            if kind == "trail":
                return self._last(lambda n: n.event in
                                  ("trail_resume", "trail_kill")
                                  and n.fields["trail"] == name, before)
            if kind == "line":
                return self._last(lambda n: n.event == "step"
                                  and n.fields["line"] == int(name),
                                  before)
            if kind == "event":
                return self._last(lambda n: n.event in
                                  ("emit_internal", "emit_output")
                                  and n.fields["name"] == name, before)
            if kind == "reaction":
                return self._last(lambda n: n.event == "reaction_begin"
                                  and n.fields["index"] == int(name),
                                  before)
            return None
        token = at
        node = self.find(f"trail:{token}", before)
        if node is None:
            node = self.find(f"event:{token}", before)
        if node is None and token.isdigit():
            node = self.find(f"line:{token}", before)
        return node

    def _last(self, pred: Callable[[CausalNode], bool],
              before: Optional[int] = None) -> Optional[CausalNode]:
        for span in reversed(self.order):
            node = self.nodes[span]
            if before is not None and node.reaction >= before:
                continue
            if pred(node):
                return node
        return None

    # --------------------------------------------------------------- slices
    def slice(self, span: int, wake_edges: bool = True) -> list[CausalNode]:
        """The causal slice of ``span``: the target plus every ancestor
        along ``cause`` (and, by default, ``wake``) edges, in span order
        — which, by the §2.2 stack policy, is LIFO execution order."""
        keep: set[int] = set()
        stack = [span]
        while stack:
            s = stack.pop()
            if s in keep or s not in self.nodes:
                continue
            keep.add(s)
            node = self.nodes[s]
            if node.parent:
                stack.append(node.parent)
            if wake_edges and node.wake:
                stack.append(node.wake)
        return [self.nodes[s] for s in sorted(keep)]

    def reaction_cone(self, reaction: int) -> set[int]:
        """Reaction indices inside the causal cone of ``reaction``: the
        reaction itself plus every reaction an ancestor of any of its
        occurrences belongs to.  Feeds the shrinker's slice-first pass —
        stimuli whose reactions fall outside the cone of the failing
        reaction cannot have contributed to the failure."""
        targets = [s for s in self.order
                   if self.nodes[s].reaction == reaction]
        cone = {reaction}
        seen: set[int] = set()
        stack = list(targets)
        while stack:
            s = stack.pop()
            if s in seen or s not in self.nodes:
                continue
            seen.add(s)
            node = self.nodes[s]
            if node.reaction >= 0:
                cone.add(node.reaction)
            if node.parent:
                stack.append(node.parent)
            if node.wake:
                stack.append(node.wake)
        return cone

    # ------------------------------------------------------------ rendering
    def render_slice(self, span: int, steps: bool = False,
                     normalize: bool = False) -> str:
        """Human rendering of :meth:`slice`, one occurrence per line::

            [12] reaction #2 event:I  <- external
            [14]   resume trail1  <- [12] (awaited at [7])
            [16]   emit a (depth 1) by trail1  <- [14]

        Lines appear in span order (= stack/LIFO execution order);
        ``<-`` names the causal parent, ``awaited/armed at`` the wake
        edge.  ``steps=False`` elides interpreter ``step`` occurrences
        (unless the target itself is one).

        ``normalize=True`` renumbers span ids 1..n *within the slice*
        (slice order), so two replays of diverging runs — whose absolute
        span counters drift apart at the first divergence — still
        produce byte-identical lines for the shared causal prefix.
        That is what makes :func:`diff_slices` output stable.
        """
        nodes = self.slice(span)
        ids: dict[int, int] = {}
        if normalize:
            ids = {node.span: i + 1 for i, node in enumerate(nodes)}

        def sid(s: int) -> int:
            return ids.get(s, s) if normalize else s

        lines: list[str] = []
        depth_of: dict[int, int] = {}
        for node in nodes:
            if node.event == "step" and not steps and node.span != span:
                continue
            depth = depth_of.get(node.parent, -1) + 1
            depth_of[node.span] = depth
            ref = (f"<- [{sid(node.parent)}]" if node.parent
                   else "<- external")
            wake = ""
            if node.wake:
                verb = ("armed" if self.nodes.get(node.wake) is not None
                        and self.nodes[node.wake].event == "timer_schedule"
                        else "awaited")
                wake = f" ({verb} at [{sid(node.wake)}])"
            mark = " *" if node.span == span else ""
            lines.append(f"[{sid(node.span)}] {'  ' * depth}"
                         f"{node.describe()}  {ref}{wake}{mark}")
        return "\n".join(lines)

    def why(self, at: str, steps: bool = False,
            before: Optional[int] = None) -> str:
        """``render_slice(find(at))`` with a clear miss message."""
        node = self.find(at, before)
        if node is None:
            known = sorted({n.fields["trail"]
                            for n in self.of("trail_resume")})
            return (f"no occurrence matches {at!r} "
                    f"(known trails: {', '.join(known) or 'none'})")
        return self.render_slice(node.span, steps=steps)


def diff_slices(graph_a: CausalGraph, span_a: int,
                graph_b: CausalGraph, span_b: int,
                steps: bool = False,
                label_a: str = "a", label_b: str = "b") -> str:
    """Unified diff of two causal slices (``repro why --diff``).

    Both slices are rendered with *normalized* span ids, so the shared
    causal prefix of two diverging replays compares byte-equal and the
    diff shows exactly where the histories fork.  Returns ``""`` when
    the slices are identical.
    """
    import difflib

    a = graph_a.render_slice(span_a, steps=steps,
                             normalize=True).splitlines()
    b = graph_b.render_slice(span_b, steps=steps,
                             normalize=True).splitlines()
    if a == b:
        return ""
    return "\n".join(difflib.unified_diff(a, b, fromfile=label_a,
                                          tofile=label_b, lineterm=""))


def _recorder(event: str, fields: tuple[str, ...]) -> Callable:
    def record(self, *args) -> None:
        self._record(event, dict(zip(fields, args)))

    record.__name__ = f"on_{event}"
    return record


for _name, _fields in HOOK_EVENTS.items():
    if _name != "reaction_begin":   # handled explicitly (reaction index)
        setattr(CausalGraph, f"on_{_name}", _recorder(_name, _fields))
del _name, _fields
