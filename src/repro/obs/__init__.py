"""Runtime observability: hook bus, metrics, and trace exporters.

Zero-dependency and off by default — with no subscribers the hook bus is
a guarded no-op and the VM behaves (and performs) exactly as before.
See ``docs/OBSERVABILITY.md`` for the taxonomy and usage.
"""

from .causal import CausalGraph, CausalNode, diff_slices
from .coverage import (CoverageMap, DfaEdgeCoverage, collect_coverage,
                       coverage_signature)
from .debug import TimeTravelDebugger
from .export import ChromeTraceExporter, JsonlExporter
from .federate import Federator
from .fleet import (CounterFamily, FleetRegistry, GaugeFamily,
                    HistogramFamily, merge_family_snapshots,
                    merge_histogram, merge_histogram_snapshots,
                    merge_snapshots)
from .hooks import HOOK_EVENTS, EventLog, HookBus, HookSubscriber
from .metrics import (Counter, Gauge, Histogram, MetricsCollector,
                      MetricsRegistry, render_stats)
from .profile import Profiler
from .prom import PROM_CONTENT_TYPE, render_prom, write_prom
from .serve import AdminServer
from .stream import FlightRecorder, LineTee, StreamingJsonlExporter
from .top import Top, snapshot_url_source

__all__ = [
    "HOOK_EVENTS", "HookBus", "HookSubscriber", "EventLog",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "MetricsCollector", "render_stats",
    "CounterFamily", "GaugeFamily", "HistogramFamily", "FleetRegistry",
    "merge_histogram", "merge_histogram_snapshots", "merge_snapshots",
    "merge_family_snapshots",
    "render_prom", "write_prom", "PROM_CONTENT_TYPE",
    "AdminServer", "Federator", "Top", "snapshot_url_source",
    "ChromeTraceExporter", "JsonlExporter",
    "StreamingJsonlExporter", "FlightRecorder", "LineTee", "Profiler",
    "CausalGraph", "CausalNode", "TimeTravelDebugger",
    "diff_slices",
    "CoverageMap", "DfaEdgeCoverage", "collect_coverage",
    "coverage_signature",
]
