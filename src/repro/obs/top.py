"""``repro top`` — a live ANSI dashboard over any fleet snapshot.

The terminal-native view of the telemetry plane: point it at an
in-process farm (it boots one under the wall-clock driver), a remote
``repro farm --serve`` URL, or a federator, and it renders one frame
per interval from successive ``/snapshot``-shaped dicts:

* throughput — reactions/s and sim events/s, computed from counter
  deltas between frames (the same derivative a Prometheus ``rate()``
  would take);
* cross-instance reaction latency p50/p95/p99 (bucket-merged, so the
  p99 is the fleet's, not an average);
* watchdog state — stuck / lagging counts and the worst offenders with
  their per-instance median lag vs the fleet median;
* per-shard table when the snapshot is federated — up, instances,
  reactions, p99, staleness.

Keybindings: ``q`` quit · ``p`` pause/resume sampling · ``w`` toggle
the watchdog detail pane.  Rendering is pure (``frame()`` returns a
string), the clock and the source are injectable, and ``frames=`` caps
the loop — so the dashboard is testable to the byte and usable as a
one-shot (``repro top URL --frames 1``) in scripts.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional

CLEAR = "\x1b[2J\x1b[H"
BOLD = "\x1b[1m"
DIM = "\x1b[2m"
RED = "\x1b[31m"
YELLOW = "\x1b[33m"
GREEN = "\x1b[32m"
RESET = "\x1b[0m"


def _fmt(n, digits: int = 1) -> str:
    """Human-scale a number (12345 -> ``12.3k``)."""
    if n is None:
        return "-"
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(n) >= factor:
            return f"{n / factor:.{digits}f}{suffix}"
    if isinstance(n, float):
        return f"{n:.{digits}f}"
    return str(n)


def snapshot_url_source(url: str, *, timeout_s: float = 2.0,
                        fetch=None) -> Callable[[], dict]:
    """A source that GETs a remote ``/snapshot`` endpoint."""
    import json
    import urllib.request

    if not url.rstrip("/").endswith("/snapshot"):
        url = url.rstrip("/") + "/snapshot"

    def _fetch(u, t):
        with urllib.request.urlopen(u, timeout=t) as resp:
            return resp.read()

    fetch = fetch if fetch is not None else _fetch

    def source() -> dict:
        return json.loads(fetch(url, timeout_s))

    return source


class Top:
    """Render a fleet snapshot stream as a terminal dashboard.

    ``source`` returns one snapshot per call (in-process
    ``driver.snapshot``, a :func:`snapshot_url_source`, or a
    ``Federator().collect``).
    """

    def __init__(self, source: Callable[[], dict], *,
                 interval_s: float = 1.0, out=None,
                 clock: Callable[[], float] = time.monotonic,
                 color: Optional[bool] = None, title: str = "fleet"):
        self.source = source
        self.interval_s = interval_s
        self.out = out if out is not None else sys.stdout
        self._clock = clock
        self.title = title
        self.color = color if color is not None \
            else bool(getattr(self.out, "isatty", lambda: False)())
        self.paused = False
        self.show_watchdog = True
        self._prev: Optional[tuple[float, dict]] = None
        self.frames_rendered = 0

    # ------------------------------------------------------------ painting
    def _c(self, code: str, text: str) -> str:
        return f"{code}{text}{RESET}" if self.color else text

    def _rates(self, now: float, snap: dict) -> dict:
        merged = snap.get("merged", {})
        counters = merged.get("counters", {})
        reactions = counters.get("reactions_total", 0)
        fired = snap.get("sim", {}).get("events_fired", 0)
        rates = {"reactions_per_s": None, "events_per_s": None,
                 "reactions_total": reactions}
        if self._prev is not None:
            t0, prev = self._prev
            dt = now - t0
            if dt > 0:
                prev_counters = prev.get("merged", {}).get("counters", {})
                rates["reactions_per_s"] = (
                    reactions - prev_counters.get("reactions_total", 0)
                ) / dt
                prev_fired = prev.get("sim", {}).get("events_fired", 0)
                rates["events_per_s"] = (fired - prev_fired) / dt
        return rates

    def frame(self) -> str:
        """Sample the source once and render one frame."""
        now = self._clock()
        snap = self.source() if not self.paused or self._prev is None \
            else self._prev[1]
        rates = self._rates(now, snap)
        if not self.paused:
            self._prev = (now, snap)
        lines = []
        state = self._c(DIM, "paused") if self.paused else \
            self._c(GREEN, "live")
        lines.append(
            self._c(BOLD, f"repro top — {self.title}")
            + f"  [{state}]  sim now {_fmt(snap.get('now_us', 0) / 1e6)}s"
            + self._c(DIM, "   q quit · p pause · w watchdog"))
        live = snap.get("instances", 0)
        spawned = snap.get("spawned", 0)
        done = snap.get("done", 0)
        lines.append(
            f"instances {self._c(BOLD, str(live))} live / {spawned} "
            f"spawned / {done} done    reactions "
            f"{_fmt(rates['reactions_total'], 0)} total"
            + (f"  ({_fmt(rates['reactions_per_s'])}/s)"
               if rates["reactions_per_s"] is not None else "")
            + (f"   sim events {_fmt(rates['events_per_s'])}/s"
               if rates["events_per_s"] is not None else ""))
        latency = snap.get("merged", {}).get("histograms", {}).get(
            "reaction_latency_us", {})
        if latency.get("count"):
            lines.append(
                "latency us  "
                + "  ".join(f"{k} {_fmt(latency.get(k))}"
                            for k in ("p50", "p95", "p99", "max")))
        # a snapshot may predate the wallclock/watchdog blocks (older
        # shard, detached farm, postmortem fleet.json) — render visible
        # placeholders instead of silently dropping the lines
        wall = snap.get("wallclock")
        if wall:
            lines.append(
                f"wallclock  speed {wall.get('speed', '--')}x   misses "
                f"{wall.get('deadline_misses', '--')}")
        else:
            lines.append(self._c(DIM, "wallclock  speed --   misses --"))
        lines.extend(self._watchdog_lines(snap))
        lines.extend(self._shard_lines(snap))
        self.frames_rendered += 1
        return "\n".join(lines) + "\n"

    def _watchdog_lines(self, snap: dict) -> list[str]:
        report = snap.get("watchdog")
        if not report:
            return [f"watchdog   {self._c(DIM, '--')}"]
        flagged = report.get("flagged", [])
        stuck = [f for f in flagged if f.get("reason") == "stuck"]
        lagging = [f for f in flagged if f.get("reason") == "lagging"]
        verdict = "ok" if not flagged else \
            f"{len(stuck)} stuck, {len(lagging)} lagging"
        color = GREEN if not flagged else (RED if stuck else YELLOW)
        lines = [f"watchdog   {self._c(color, verdict)}"
                 + (f"   fleet p50 {_fmt(report.get('fleet_p50_us'))}us"
                    if report.get("fleet_p50_us") is not None else "")]
        if self.show_watchdog and flagged:
            worst = sorted(
                lagging, key=lambda f: -(f.get("p50_us") or 0))[:5]
            for f in stuck[:5]:
                lines.append(self._c(RED,
                             f"  inst {f['instance']:>6} stuck — "
                             f"overdue={f.get('overdue_deadline')} "
                             f"queued={f.get('queued_inputs')}"))
            for f in worst:
                lines.append(self._c(YELLOW,
                             f"  inst {f['instance']:>6} lagging — "
                             f"p50 {_fmt(f.get('p50_us'))}us vs fleet "
                             f"{_fmt(f.get('fleet_p50_us'))}us"))
        return lines

    def _shard_lines(self, snap: dict) -> list[str]:
        shards = snap.get("shards")
        if not shards:
            return []
        lines = [self._c(BOLD, f"{'shard':<20} {'up':>3} {'inst':>7} "
                               f"{'reactions':>10} {'p99us':>8} "
                               f"{'stale_s':>8}")]
        for name, s in sorted(shards.items()):
            up = self._c(GREEN, "up") if s.get("up") else \
                self._c(RED, "DOWN")
            stale = s.get("staleness_s")
            lines.append(
                f"{name:<20} {up:>3} {_fmt(s.get('instances'), 0):>7} "
                f"{_fmt(s.get('reactions_total'), 0):>10} "
                f"{_fmt(s.get('p99_us')):>8} "
                f"{(f'{stale:.1f}' if stale is not None else '-'):>8}")
        return lines

    # ---------------------------------------------------------------- keys
    def handle_key(self, key: str) -> bool:
        """Apply one keypress; returns False when the key quits."""
        if key in ("q", "Q", "\x03"):
            return False
        if key in ("p", "P", " "):
            self.paused = not self.paused
        elif key in ("w", "W"):
            self.show_watchdog = not self.show_watchdog
        return True

    # ---------------------------------------------------------------- loop
    def run(self, frames: Optional[int] = None) -> int:
        """Paint frames until ``frames`` is exhausted, a quit key
        arrives, or the source raises; returns frames painted."""
        painted = 0
        restore = self._enter_cbreak()
        try:
            while frames is None or painted < frames:
                text = self.frame()
                if self.color:
                    self.out.write(CLEAR)
                self.out.write(text)
                self.out.flush()
                painted += 1
                if frames is not None and painted >= frames:
                    break
                if not self._poll_keys(self.interval_s):
                    break
        except KeyboardInterrupt:
            pass
        finally:
            restore()
        return painted

    @staticmethod
    def _enter_cbreak() -> Callable[[], None]:
        """Unbuffered key delivery on a TTY; no-op restore elsewhere."""
        stdin = sys.stdin
        if not (hasattr(stdin, "fileno")
                and getattr(stdin, "isatty", lambda: False)()):
            return lambda: None
        try:
            import termios
            import tty

            fd = stdin.fileno()
            saved = termios.tcgetattr(fd)
            tty.setcbreak(fd)
            return lambda: termios.tcsetattr(fd, termios.TCSADRAIN, saved)
        except Exception:  # noqa: BLE001 - exotic terminals
            return lambda: None

    def _poll_keys(self, duration_s: float) -> bool:
        """Sleep ``duration_s`` while watching stdin for keys (TTY
        only); returns False when a quit key arrived."""
        import select

        stdin = sys.stdin
        if not (hasattr(stdin, "fileno")
                and getattr(stdin, "isatty", lambda: False)()):
            time.sleep(duration_s)
            return True
        deadline = time.monotonic() + duration_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return True
            ready, _, _ = select.select([stdin], [], [], remaining)
            if not ready:
                continue
            key = stdin.read(1)
            if not key or not self.handle_key(key):
                return False


__all__ = ["Top", "snapshot_url_source"]
