"""The telemetry plane's HTTP admin server — stdlib only.

Every metric in this repo used to leave the process as a file; this
module is the live path.  :class:`AdminServer` wraps a
``ThreadingHTTPServer`` (zero dependencies, daemon threads) around a
set of injected providers so any metric source — a wall-clock-driven
:class:`~repro.runtime.farm.Farm`, a single instrumented
:class:`~repro.runtime.program.Program`, or a cross-shard
:class:`~repro.obs.federate.Federator` — can answer scrapers:

=============  ========================================================
``/metrics``    Prometheus text exposition 0.0.4
                (:func:`~repro.obs.prom.render_prom` over
                ``snapshot_fn()``, plus the server's own request
                metrics)
``/healthz``    liveness from the farm watchdog: 200 unless any
                instance is *stuck* (owes work at the current virtual
                time); body carries the full verdicts
``/readyz``     readiness: 200 once the source reports ready and the
                server is not draining (503 during graceful shutdown,
                so load balancers stop routing before the process
                exits)
``/snapshot``   the full JSON fleet snapshot — what
                :mod:`~repro.obs.federate` scrapes and ``repro top``
                renders
``/events``     chunked live tail of the shared JSONL telemetry
                stream, via a :class:`~repro.obs.stream.LineTee`
                (``?last=N`` ring catch-up, ``?max=N`` to bound,
                ``?timeout_s=S`` to cut a poll short)
``/flamegraph`` collapsed stacks (``trigger;trail;kind:line count``)
                from a shared :class:`~repro.obs.profile.Profiler` —
                pipe straight into ``flamegraph.pl`` / speedscope
``/checkpoint`` **POST** — serialize one instance at its current
                reaction boundary via the injected ``checkpoint_fn``
                (``?instance=N``, default 0); the body is whatever the
                provider returns (typically the checkpoint's describe
                line and the path it was saved to)
``/postmortems``index of captured black-box bundles from the injected
                ``postmortems_fn`` (manifests, as
                :func:`repro.runtime.checkpoint.list_postmortems`
                returns them)
``/``           a plain-text index of the above
=============  ========================================================

Overhead discipline (the type-state paper's near-zero-cost
instrumentation budget, enforced by ``repro bench --serve``): the
server touches the farm **only inside a request**, under the driver's
lock, at reaction boundaries.  No request → no work on the reaction
path; the ≤5 % attached-vs-detached budget is pinned in
``benchmarks/BENCH_serve.json``.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional, Sequence
from urllib.parse import parse_qs, urlparse

from .fleet import FleetRegistry
from .metrics import FINE_LATENCY_BUCKETS
from .prom import PROM_CONTENT_TYPE, render_prom


class AdminServer:
    """Serve one telemetry source over HTTP (see module docstring).

    ``snapshot_fn`` is the only required provider; the rest degrade to
    404/501-style answers when absent.  ``lock`` (typically the
    :class:`~repro.runtime.wallclock.WallClockDriver`'s) is held around
    every provider call so concurrent handler threads observe reaction
    boundaries only.

    >>> server = AdminServer(driver.snapshot, lock=driver.lock,
    ...                      health_fn=farm.watchdog, events=tee)
    >>> server.start()
    >>> server.address
    'http://127.0.0.1:9464'
    """

    def __init__(self, snapshot_fn: Callable[[], dict], *,
                 health_fn: Optional[Callable[[], dict]] = None,
                 ready_fn: Optional[Callable[[], bool]] = None,
                 events=None,
                 flamegraph_fn: Optional[Callable[[], Sequence[str]]] = None,
                 metrics_fn: Optional[Callable[[], str]] = None,
                 checkpoint_fn: Optional[Callable[[int], dict]] = None,
                 postmortems_fn: Optional[Callable[[], list]] = None,
                 lock=None, host: str = "127.0.0.1", port: int = 0,
                 prefix: str = "repro_"):
        self.snapshot_fn = snapshot_fn
        self.metrics_fn = metrics_fn
        self.health_fn = health_fn
        self.ready_fn = ready_fn
        self.events = events
        self.flamegraph_fn = flamegraph_fn
        self.checkpoint_fn = checkpoint_fn
        self.postmortems_fn = postmortems_fn
        self.lock = lock if lock is not None else threading.RLock()
        self.prefix = prefix
        self.draining = threading.Event()
        self._meter_lock = threading.Lock()
        self.registry = FleetRegistry()
        self._requests = self.registry.counter_family(
            "telemetry_requests_total", ("endpoint", "code"))
        self._latency = self.registry.histogram_family(
            "telemetry_request_latency_us", ("endpoint",),
            FINE_LATENCY_BUCKETS)
        self._bytes = self.registry.counter_family(
            "telemetry_response_bytes_total", ("endpoint",))
        # /events backpressure drops, mirrored from the tee's cumulative
        # count at scrape time (satellite of the checkpoint plane)
        self._events_dropped = None if events is None else \
            self.registry.counter_family(
                "telemetry_events_dropped_total", ()).labels()
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.admin = self
        self.host, self.port = self.httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # ----------------------------------------------------------- lifecycle
    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AdminServer":
        """Serve on a daemon thread; returns self (port is bound)."""
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="repro-admin",
                                        kwargs={"poll_interval": 0.1},
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Drain: flip readiness, stop accepting, join the acceptor."""
        self.draining.set()
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    # ------------------------------------------------------------ metering
    def _observe(self, endpoint: str, code: int, us: int,
                 nbytes: int) -> None:
        with self._meter_lock:
            self._requests.labels(endpoint, code).inc()
            self._latency.labels(endpoint).record(us)
            self._bytes.labels(endpoint).inc(nbytes)

    def _self_metrics(self) -> str:
        with self._meter_lock:
            if self._events_dropped is not None:
                self._events_dropped.value = self.events.total_dropped
            snap = self.registry.snapshot()
        return render_prom(snap, prefix=self.prefix) if snap else ""

    # ----------------------------------------------------------- renderers
    def render_metrics(self) -> str:
        with self.lock:
            if self.metrics_fn is not None:
                text = self.metrics_fn()
            else:
                text = render_prom(self.snapshot_fn(), prefix=self.prefix)
        return text + self._self_metrics()

    def render_snapshot(self) -> str:
        with self.lock:
            snap = self.snapshot_fn()
        return json.dumps(snap, indent=2, sort_keys=True,
                          default=repr) + "\n"

    def health(self) -> tuple[bool, dict]:
        """Liveness verdict: unhealthy iff the watchdog reports a stuck
        instance (lagging degrades the body, not the code)."""
        if self.health_fn is None:
            return True, {"status": "ok"}
        with self.lock:
            report = self.health_fn()
        stuck = [f for f in report.get("flagged", [])
                 if f.get("reason") == "stuck"]
        lagging = [f for f in report.get("flagged", [])
                   if f.get("reason") == "lagging"]
        ok = not stuck
        return ok, {"status": "ok" if ok else "stuck",
                    "stuck": len(stuck), "lagging": len(lagging),
                    "watchdog": report}

    def ready(self) -> tuple[bool, dict]:
        if self.draining.is_set():
            return False, {"status": "draining"}
        if self.ready_fn is not None and not self.ready_fn():
            return False, {"status": "starting"}
        return True, {"status": "ready"}

    def take_checkpoint(self, instance: int) -> dict:
        """Run the checkpoint provider under the driver lock, so the
        snapshot lands on a reaction boundary (POST /checkpoint)."""
        with self.lock:
            return self.checkpoint_fn(instance)

    def postmortems(self) -> list:
        with self.lock:
            return list(self.postmortems_fn())


class _Handler(BaseHTTPRequestHandler):
    """One request; dispatch on path.  Never logs to stderr."""

    server_version = "repro-admin/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # --------------------------------------------------------------- plumb
    def _send_text(self, code: int, body: str,
                   content_type: str = "text/plain; charset=utf-8") -> int:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        return len(data)

    def _send_json(self, code: int, payload: dict) -> int:
        return self._send_text(code, json.dumps(payload, sort_keys=True,
                                                default=repr) + "\n",
                               "application/json")

    # ----------------------------------------------------------- endpoints
    def do_GET(self) -> None:  # noqa: N802 - stdlib signature
        admin: AdminServer = self.server.admin
        url = urlparse(self.path)
        endpoint = url.path.rstrip("/") or "/"
        start = time.perf_counter()
        code, nbytes = 500, 0
        try:
            if endpoint == "/metrics":
                code = 200
                nbytes = self._send_text(200, admin.render_metrics(),
                                         PROM_CONTENT_TYPE)
            elif endpoint == "/healthz":
                ok, body = admin.health()
                code = 200 if ok else 503
                nbytes = self._send_json(code, body)
            elif endpoint == "/readyz":
                ok, body = admin.ready()
                code = 200 if ok else 503
                nbytes = self._send_json(code, body)
            elif endpoint == "/snapshot":
                code = 200
                nbytes = self._send_text(200, admin.render_snapshot(),
                                         "application/json")
            elif endpoint == "/flamegraph":
                if admin.flamegraph_fn is None:
                    code = 404
                    nbytes = self._send_json(404, {
                        "error": "no profiler attached"})
                else:
                    with admin.lock:
                        stacks = list(admin.flamegraph_fn())
                    code = 200
                    body = "\n".join(stacks) + ("\n" if stacks else "")
                    nbytes = self._send_text(200, body)
            elif endpoint == "/events":
                if admin.events is None:
                    code = 404
                    nbytes = self._send_json(404, {
                        "error": "no event stream attached"})
                else:
                    code = 200
                    nbytes = self._stream_events(admin, url.query)
            elif endpoint == "/postmortems":
                if admin.postmortems_fn is None:
                    code = 404
                    nbytes = self._send_json(404, {
                        "error": "no postmortem provider attached"})
                else:
                    bundles = admin.postmortems()
                    code = 200
                    nbytes = self._send_json(200, {
                        "count": len(bundles), "postmortems": bundles})
            elif endpoint == "/":
                code = 200
                nbytes = self._send_text(200, _INDEX)
            else:
                code = 404
                nbytes = self._send_json(404, {"error": "unknown "
                                               "endpoint", "see": "/"})
        except (BrokenPipeError, ConnectionResetError):
            code = 499            # client went away mid-stream
        finally:
            us = int((time.perf_counter() - start) * 1_000_000)
            admin._observe(endpoint, code, us, nbytes)

    def do_POST(self) -> None:  # noqa: N802 - stdlib signature
        admin: AdminServer = self.server.admin
        url = urlparse(self.path)
        endpoint = url.path.rstrip("/") or "/"
        start = time.perf_counter()
        code, nbytes = 500, 0
        try:
            # drain any body so keep-alive connections stay in sync
            length = int(self.headers.get("Content-Length") or 0)
            if length:
                self.rfile.read(length)
            if endpoint == "/checkpoint":
                code, nbytes = self._post_checkpoint(admin, url.query)
            else:
                code = 405
                nbytes = self._send_json(405, {
                    "error": "POST not supported here", "see": "/"})
        except (BrokenPipeError, ConnectionResetError):
            code = 499
        finally:
            us = int((time.perf_counter() - start) * 1_000_000)
            admin._observe(endpoint, code, us, nbytes)

    def _post_checkpoint(self, admin: AdminServer,
                         query: str) -> tuple[int, int]:
        if admin.checkpoint_fn is None:
            return 404, self._send_json(404, {
                "error": "no checkpoint provider attached"})
        raw = parse_qs(query).get("instance", ["0"])[0]
        try:
            instance = int(raw)
        except ValueError:
            return 400, self._send_json(400, {
                "error": f"instance must be an integer, got {raw!r}"})
        try:
            body = admin.take_checkpoint(instance)
        except Exception as exc:  # noqa: BLE001 - surfaced to the caller
            return 400, self._send_json(400, {"error": str(exc)})
        return 200, self._send_json(200, body)

    # ----------------------------------------------------- chunked /events
    def _chunk(self, line: str) -> int:
        data = (line + "\n").encode("utf-8")
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        return len(data)

    def _stream_events(self, admin: AdminServer, query: str) -> int:
        """Chunked JSONL tail: ring catch-up, then live lines until
        ``max`` is reached, the timeout lapses, or the server drains."""
        params = parse_qs(query)

        def _int(name: str, default: int) -> int:
            try:
                return int(params[name][0])
            except (KeyError, ValueError, IndexError):
                return default

        last = _int("last", 0)
        limit = _int("max", 0)
        timeout_s = float(_int("timeout_s", 0)) or None
        tee = admin.events
        sub = tee.subscribe()
        sent = nbytes = 0
        deadline = (time.monotonic() + timeout_s) if timeout_s else None
        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            for line in tee.tail(last):
                nbytes += self._chunk(line)
                sent += 1
                if limit and sent >= limit:
                    break
            while (not limit or sent < limit) \
                    and not admin.draining.is_set():
                if deadline is not None and time.monotonic() >= deadline:
                    break
                try:
                    line = sub.get(timeout=0.25)
                except queue.Empty:
                    continue
                nbytes += self._chunk(line)
                sent += 1
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        finally:
            tee.unsubscribe(sub)
            self.close_connection = True
        return nbytes


_INDEX = """\
repro telemetry plane
  /metrics     Prometheus text exposition (0.0.4)
  /healthz     watchdog liveness (503 when any instance is stuck)
  /readyz      readiness (503 while starting or draining)
  /snapshot    full fleet snapshot (JSON)
  /events      live JSONL tail (?last=N&max=N&timeout_s=S)
  /flamegraph  collapsed stacks (flamegraph.pl / speedscope)
  /checkpoint  POST — serialize one instance (?instance=N)
  /postmortems index of captured black-box bundles
"""


__all__ = ["AdminServer"]
