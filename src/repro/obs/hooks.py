"""The instrumentation hook bus.

Every interesting runtime event — a reaction chain starting, a trail
resuming or halting, an internal ``emit`` (with its §2.2 stack depth), a
timer arming or firing, an async step, a region kill — is announced on a
:class:`HookBus`.  Subscribers (the :class:`~repro.runtime.trace.Trace`
recorder, the metrics collector, the Perfetto/JSONL exporters, or any
user-supplied :class:`HookSubscriber`) receive the events they care about
and ignore the rest.

The bus is **off by default**: with no subscribers, ``bus.enabled`` is
``False`` and the emitting sites (scheduler, interpreter, DES kernel,
platforms) skip dispatch entirely — one attribute load and a branch per
potential event, so the reference VM's speed and semantics are untouched.

The event taxonomy lives in :data:`HOOK_EVENTS`; the dispatch methods on
:class:`HookBus` and the JSONL exporter are both generated from it, so
the taxonomy, the bus, and the machine-readable export cannot drift
apart.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

#: The full hook taxonomy: event name → ordered field names.
#: ``time_us`` is always the VM wall-clock (integer microseconds);
#: ``wall_ns`` is host wall-clock (``perf_counter_ns``) and the only
#: nondeterministic field in the taxonomy.
HOOK_EVENTS: dict[str, tuple[str, ...]] = {
    # reaction chains (§2, §4.5)
    "reaction_begin": ("index", "trigger", "value", "time_us"),
    "reaction_end": ("index", "trigger", "steps", "wall_ns"),
    # one interpreter statement (the unit of `note_step`)
    "step": ("trail", "path", "kind", "line"),
    # trail lifecycle (§2.1, §4.3)
    "trail_spawn": ("trail", "path", "time_us"),
    "trail_resume": ("trail", "path", "time_us"),
    "trail_halt": ("trail", "path", "waiting", "time_us"),
    "trail_kill": ("trail", "path", "time_us"),
    # an await about to suspend (emitted by the interpreter;
    # target is "ext:NAME" | "int:NAME" | "time" | "forever")
    "await_begin": ("trail", "target", "time_us"),
    # internal events: depth is the §2.2 emit-stack depth (1 = outermost)
    "emit_internal": ("name", "depth", "trail", "time_us"),
    "emit_output": ("name", "value", "time_us"),
    # timers (§2.3)
    "timer_schedule": ("deadline_us", "trail", "time_us"),
    "timer_fire": ("deadline_us", "delta_us", "n_trails"),
    # asyncs (§2.7); kind is "tick" | "emit_ext" | "emit_time" | "done"
    "async_step": ("job", "kind", "time_us"),
    # region destruction (§4.3)
    "region_kill": ("region", "n_trails", "time_us"),
    # discrete-event simulation kernel
    "des_schedule": ("handle", "at_us", "now_us"),
    "des_fire": ("handle", "now_us"),
    "des_cancel": ("handle", "now_us"),
}


class HookSubscriber:
    """Base class for hook consumers: a no-op ``on_<event>`` per taxonomy
    entry.  Override only what you need."""


def _noop(self, *args) -> None:
    return None


for _name in HOOK_EVENTS:
    setattr(HookSubscriber, f"on_{_name}", _noop)


class HookBus:
    """Fans events out to subscribers.

    ``bus.enabled`` is kept in sync with the subscriber list so emitting
    sites can guard with a single cheap check::

        if self.hooks.enabled:
            self.hooks.reaction_begin(i, trigger, value, now)

    Every dispatch also assigns the occurrence a **span id** and records
    the causal context it fired under (see :mod:`repro.obs.causal`):

    * ``last_span`` — the span id of the occurrence just dispatched
      (monotone, 1-based; subscribers read it from their handlers);
    * ``last_parent`` — the span of the occurrence *causing* this one
      (0 = the external world).  Emitting sites maintain ``cause``: the
      scheduler sets it to the current reaction / trail-resume / internal
      emit span for their dynamic extent, so parent edges are exact
      rather than inferred from event adjacency;
    * ``wake`` — an auxiliary cause published only around
      ``trail_resume`` dispatches: the span of the await / timer-arm /
      spawn occurrence that registered the wakeup.

    The bookkeeping is three attribute stores per dispatched event and
    none at all while the bus is disabled, so the hooks-off fast path is
    untouched.
    """

    __slots__ = ("subscribers", "enabled", "span_seq", "last_span",
                 "last_parent", "cause", "wake")

    def __init__(self) -> None:
        self.subscribers: list[HookSubscriber] = []
        self.enabled = False
        self.span_seq = 0       # last span id handed out
        self.last_span = 0      # span of the most recent dispatch
        self.last_parent = 0    # its causal parent (0 = external world)
        self.cause = 0          # span of the occurrence now executing
        self.wake = 0           # aux cause for the next trail_resume

    def subscribe(self, subscriber: HookSubscriber) -> HookSubscriber:
        if subscriber not in self.subscribers:
            self.subscribers.append(subscriber)
        self.enabled = True
        return subscriber

    def unsubscribe(self, subscriber: HookSubscriber) -> None:
        if subscriber in self.subscribers:
            self.subscribers.remove(subscriber)
        self.enabled = bool(self.subscribers)


def _dispatcher(event: str) -> Callable:
    handler = f"on_{event}"

    def dispatch(self, *args) -> None:
        span = self.span_seq + 1
        self.span_seq = span
        self.last_span = span
        self.last_parent = self.cause
        for sub in self.subscribers:
            getattr(sub, handler)(*args)

    dispatch.__name__ = event
    dispatch.__doc__ = f"Dispatch ``{event}{HOOK_EVENTS[event]}``."
    return dispatch


for _name in HOOK_EVENTS:
    setattr(HookBus, _name, _dispatcher(_name))


class EventLog(HookSubscriber):
    """Records every event as ``(name, {field: value})`` — the simplest
    subscriber, used by tests and the JSONL exporter's foundation.

    By default (``maxlen=None``) the log is **unbounded** — fine for
    tests and short runs, unsuitable for long-running servers.  Pass
    ``maxlen=N`` to keep only the last N events in a ring buffer;
    ``seen`` always counts every event ever delivered, so
    ``log.dropped`` reports how many fell off the ring.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        self.maxlen = maxlen
        self.events: "deque[tuple[str, dict]] | list[tuple[str, dict]]" = (
            deque(maxlen=maxlen) if maxlen is not None else [])
        self.seen = 0

    @property
    def dropped(self) -> int:
        return self.seen - len(self.events)

    def names(self) -> list[str]:
        return [name for name, _ in self.events]

    def of(self, *names: str) -> list[tuple[str, dict]]:
        wanted = set(names)
        return [(n, f) for n, f in self.events if n in wanted]

    def signature(self) -> tuple:
        """Rebuild :meth:`repro.runtime.trace.Trace.signature` from the
        recorded events.

        A signature computed from a *partial* event stream would silently
        collide with (or diverge from) the true behaviour, so this is
        only legal while every delivered event is still retained: a
        bounded log that has evicted events (``dropped > 0``) raises
        ``ValueError`` instead of fabricating a digest.
        """
        if self.dropped:
            raise ValueError(
                f"cannot compute a signature from a partial event log: "
                f"{self.dropped} of {self.seen} events were dropped by "
                f"the maxlen={self.maxlen} ring (use an unbounded "
                f"EventLog or the Trace recorder)")
        rows: list[tuple] = []
        trigger: Optional[str] = None
        steps: list[tuple] = []
        emitted: list[str] = []
        for name, f in self.events:
            if name == "reaction_begin":
                trigger, steps, emitted = f["trigger"], [], []
            elif trigger is None:
                continue
            elif name == "step":
                steps.append((f["trail"], f["kind"], f["line"]))
            elif name == "emit_internal":
                emitted.append(f["name"])
            elif name == "reaction_end":
                rows.append((trigger, tuple(steps), tuple(emitted)))
                trigger = None
        return tuple(rows)


def _recorder(event: str, fields: tuple[str, ...]) -> Callable:
    def record(self, *args) -> None:
        self.seen += 1
        self.events.append((event, dict(zip(fields, args))))

    record.__name__ = f"on_{event}"
    return record


for _name, _fields in HOOK_EVENTS.items():
    setattr(EventLog, f"on_{_name}", _recorder(_name, _fields))

del _name, _fields
