"""The instrumentation hook bus.

Every interesting runtime event — a reaction chain starting, a trail
resuming or halting, an internal ``emit`` (with its §2.2 stack depth), a
timer arming or firing, an async step, a region kill — is announced on a
:class:`HookBus`.  Subscribers (the :class:`~repro.runtime.trace.Trace`
recorder, the metrics collector, the Perfetto/JSONL exporters, or any
user-supplied :class:`HookSubscriber`) receive the events they care about
and ignore the rest.

The bus is **off by default**: with no subscribers, ``bus.enabled`` is
``False`` and the emitting sites (scheduler, interpreter, DES kernel,
platforms) skip dispatch entirely — one attribute load and a branch per
potential event, so the reference VM's speed and semantics are untouched.

The event taxonomy lives in :data:`HOOK_EVENTS`; the dispatch methods on
:class:`HookBus` and the JSONL exporter are both generated from it, so
the taxonomy, the bus, and the machine-readable export cannot drift
apart.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

#: The full hook taxonomy: event name → ordered field names.
#: ``time_us`` is always the VM wall-clock (integer microseconds);
#: ``wall_ns`` is host wall-clock (``perf_counter_ns``) and the only
#: nondeterministic field in the taxonomy.
HOOK_EVENTS: dict[str, tuple[str, ...]] = {
    # reaction chains (§2, §4.5)
    "reaction_begin": ("index", "trigger", "value", "time_us"),
    "reaction_end": ("index", "trigger", "steps", "wall_ns"),
    # one interpreter statement (the unit of `note_step`)
    "step": ("trail", "path", "kind", "line"),
    # trail lifecycle (§2.1, §4.3)
    "trail_spawn": ("trail", "path", "time_us"),
    "trail_resume": ("trail", "path", "time_us"),
    "trail_halt": ("trail", "path", "waiting", "time_us"),
    "trail_kill": ("trail", "path", "time_us"),
    # an await about to suspend (emitted by the interpreter;
    # target is "ext:NAME" | "int:NAME" | "time" | "forever")
    "await_begin": ("trail", "target", "time_us"),
    # internal events: depth is the §2.2 emit-stack depth (1 = outermost)
    "emit_internal": ("name", "depth", "trail", "time_us"),
    "emit_output": ("name", "value", "time_us"),
    # timers (§2.3)
    "timer_schedule": ("deadline_us", "trail", "time_us"),
    "timer_fire": ("deadline_us", "delta_us", "n_trails"),
    # asyncs (§2.7); kind is "tick" | "emit_ext" | "emit_time" | "done"
    "async_step": ("job", "kind", "time_us"),
    # region destruction (§4.3)
    "region_kill": ("region", "n_trails", "time_us"),
    # discrete-event simulation kernel
    "des_schedule": ("handle", "at_us", "now_us"),
    "des_fire": ("handle", "now_us"),
    "des_cancel": ("handle", "now_us"),
}


class HookSubscriber:
    """Base class for hook consumers: a no-op ``on_<event>`` per taxonomy
    entry.  Override only what you need."""


def _noop(self, *args) -> None:
    return None


for _name in HOOK_EVENTS:
    setattr(HookSubscriber, f"on_{_name}", _noop)


class HookBus:
    """Fans events out to subscribers.

    ``bus.enabled`` is kept in sync with the subscriber list so emitting
    sites can guard with a single cheap check::

        if self.hooks.enabled:
            self.hooks.reaction_begin(i, trigger, value, now)
    """

    __slots__ = ("subscribers", "enabled")

    def __init__(self) -> None:
        self.subscribers: list[HookSubscriber] = []
        self.enabled = False

    def subscribe(self, subscriber: HookSubscriber) -> HookSubscriber:
        if subscriber not in self.subscribers:
            self.subscribers.append(subscriber)
        self.enabled = True
        return subscriber

    def unsubscribe(self, subscriber: HookSubscriber) -> None:
        if subscriber in self.subscribers:
            self.subscribers.remove(subscriber)
        self.enabled = bool(self.subscribers)


def _dispatcher(event: str) -> Callable:
    handler = f"on_{event}"

    def dispatch(self, *args) -> None:
        for sub in self.subscribers:
            getattr(sub, handler)(*args)

    dispatch.__name__ = event
    dispatch.__doc__ = f"Dispatch ``{event}{HOOK_EVENTS[event]}``."
    return dispatch


for _name in HOOK_EVENTS:
    setattr(HookBus, _name, _dispatcher(_name))


class EventLog(HookSubscriber):
    """Records every event as ``(name, {field: value})`` — the simplest
    subscriber, used by tests and the JSONL exporter's foundation.

    By default (``maxlen=None``) the log is **unbounded** — fine for
    tests and short runs, unsuitable for long-running servers.  Pass
    ``maxlen=N`` to keep only the last N events in a ring buffer;
    ``seen`` always counts every event ever delivered, so
    ``log.dropped`` reports how many fell off the ring.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        self.maxlen = maxlen
        self.events: "deque[tuple[str, dict]] | list[tuple[str, dict]]" = (
            deque(maxlen=maxlen) if maxlen is not None else [])
        self.seen = 0

    @property
    def dropped(self) -> int:
        return self.seen - len(self.events)

    def names(self) -> list[str]:
        return [name for name, _ in self.events]

    def of(self, *names: str) -> list[tuple[str, dict]]:
        wanted = set(names)
        return [(n, f) for n, f in self.events if n in wanted]


def _recorder(event: str, fields: tuple[str, ...]) -> Callable:
    def record(self, *args) -> None:
        self.seen += 1
        self.events.append((event, dict(zip(fields, args))))

    record.__name__ = f"on_{event}"
    return record


for _name, _fields in HOOK_EVENTS.items():
    setattr(EventLog, f"on_{_name}", _recorder(_name, _fields))

del _name, _fields
