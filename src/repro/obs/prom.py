"""Prometheus text exposition (version 0.0.4) for metric snapshots.

:func:`render_prom` turns any registry snapshot — a single instance's
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, a fleet rollup from
:func:`~repro.obs.fleet.merge_snapshots`, or a
:class:`~repro.obs.fleet.FleetRegistry` family snapshot — into the
``# TYPE`` / sample-line format every Prometheus-compatible scraper
(Prometheus, VictoriaMetrics, Grafana Agent, ``promtool check metrics``)
ingests.  Two delivery paths ship with the repo: the CLI writes the
exposition to a file (``repro run --prom`` / ``repro farm --prom``,
atomically — temp file + ``os.replace`` — so the textfile collector
never reads a torn exposition), and the stdlib HTTP admin server
(:mod:`repro.obs.serve`, ``repro farm --serve``) serves it live at
``/metrics``; :mod:`repro.obs.federate` merges N shard expositions into
one (docs/OBSERVABILITY.md, "Telemetry plane").

Mapping rules:

* names are sanitised to ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and prefixed
  (default ``repro_``);
* the registry's dotted dynamic counters (``reactions_by_trigger.X``,
  ``awaits_by_target.Y``, ``emits_by_event.Z``) become one family with
  a label derived from the ``_by_<label>`` suffix:
  ``repro_reactions_by_trigger_total{trigger="X"}``;
* gauges emit ``value`` plus ``_min``/``_max`` watermark series;
* histograms emit cumulative ``_bucket{le=…}`` lines, ``_sum`` and
  ``_count`` — percentile estimation moves to the scraper's
  ``histogram_quantile``, which sees exactly the buckets the in-process
  estimator used.
"""

from __future__ import annotations

import os
import re
from typing import Optional, Sequence

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    clean = _NAME_OK.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _labels(names: Sequence[str], values: Sequence) -> str:
    if not names:
        return ""
    inner = ",".join(f'{_sanitize(n)}="{_escape(str(v))}"'
                     for n, v in zip(names, values))
    return "{" + inner + "}"


def _num(value) -> str:
    if value is None:
        return "NaN"
    if value != value:  # NaN
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _split_dynamic(name: str) -> Optional[tuple[str, str, str]]:
    """``reactions_by_trigger.event:A`` → (family, label name, value)."""
    if "." not in name:
        return None
    family, value = name.split(".", 1)
    if "_by_" not in family:
        return None
    label = family.rsplit("_by_", 1)[1]
    return family, label, value


class _Writer:
    def __init__(self, prefix: str):
        self.prefix = prefix
        self.lines: list[str] = []
        self._typed: set[str] = set()

    def type_line(self, name: str, kind: str, help_text: str = "") -> None:
        if name in self._typed:
            return
        self._typed.add(name)
        if help_text:
            self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, labels: str, value) -> None:
        self.lines.append(f"{name}{labels} {_num(value)}")

    def counter(self, name: str, value, labelnames=(), labelvalues=()):
        full = self.prefix + _sanitize(name)
        self.type_line(full, "counter")
        self.sample(full, _labels(labelnames, labelvalues), value)

    def gauge(self, name: str, g: dict, labelnames=(), labelvalues=()):
        full = self.prefix + _sanitize(name)
        self.type_line(full, "gauge")
        labels = _labels(labelnames, labelvalues)
        self.sample(full, labels, g["value"])
        for mark in ("min", "max"):
            if mark in g:
                self.type_line(f"{full}_{mark}", "gauge")
                self.sample(f"{full}_{mark}", labels, g[mark])

    def histogram(self, name: str, h: dict, labelnames=(), labelvalues=()):
        full = self.prefix + _sanitize(name)
        self.type_line(full, "histogram")
        cum = 0
        for bound, count in h["buckets"]:
            cum += count
            le = "+Inf" if bound == "inf" else str(bound)
            labels = _labels(tuple(labelnames) + ("le",),
                             tuple(labelvalues) + (le,))
            self.sample(f"{full}_bucket", labels, cum)
        labels = _labels(labelnames, labelvalues)
        self.sample(f"{full}_sum", labels, h["sum"])
        self.sample(f"{full}_count", labels, h["count"])

    def text(self) -> str:
        return "\n".join(self.lines) + "\n" if self.lines else ""


def _render_registry(w: _Writer, snap: dict) -> None:
    # the scheduler's always-on ``runtime`` block (``program.stats()``)
    # exports as gauges under a ``runtime_`` prefix — several keys
    # (``live_trails`` …) also exist as sampled registry gauges and
    # duplicate sample names are illegal in an exposition
    for name, value in snap.get("runtime", {}).items():
        if isinstance(value, (int, float)):
            w.gauge(f"runtime_{name}", {"value": value})
    for name, value in snap.get("counters", {}).items():
        dynamic = _split_dynamic(name)
        if dynamic is not None:
            family, label, labelvalue = dynamic
            w.counter(family + "_total", value, (label,), (labelvalue,))
        else:
            w.counter(name, value)
    for name, g in snap.get("gauges", {}).items():
        w.gauge(name, g)
    for name, h in snap.get("histograms", {}).items():
        w.histogram(name, h)


def _render_families(w: _Writer, families: dict) -> None:
    for name, fam in families.items():
        labelnames = fam.get("labels", [])
        for labelvalues, value in fam.get("series", []):
            if fam["kind"] == "counter":
                w.counter(name, value, labelnames, labelvalues)
            elif fam["kind"] == "gauge":
                w.gauge(name, value, labelnames, labelvalues)
            else:
                w.histogram(name, value, labelnames, labelvalues)


def render_prom(snapshot: dict, prefix: str = "repro_") -> str:
    """Render a snapshot as Prometheus text exposition.

    Accepts (and auto-detects) any of:

    * a registry snapshot (``counters``/``gauges``/``histograms`` keys),
      including the fleet rollup from
      :func:`~repro.obs.fleet.merge_snapshots` (its ``instances`` count
      becomes a gauge);
    * a :meth:`FleetRegistry.snapshot` family dict (every value carries
      a ``kind``);
    * a farm fleet snapshot holding both (``merged`` + ``farm`` keys,
      see :meth:`repro.runtime.farm.Farm.fleet_snapshot`).
    """
    w = _Writer(prefix)
    if "merged" in snapshot or "farm" in snapshot:
        if snapshot.get("instances") is not None:
            w.gauge("farm_instances", {"value": snapshot["instances"]})
        _render_families(w, snapshot.get("farm", {}))
        _render_registry(w, snapshot.get("merged", {}))
        return w.text()
    if any(k in snapshot for k in ("counters", "gauges", "histograms")):
        if snapshot.get("instances") is not None:
            w.gauge("instances", {"value": snapshot["instances"]})
        _render_registry(w, snapshot)
        return w.text()
    if all(isinstance(v, dict) and "kind" in v
           for v in snapshot.values()) and snapshot:
        _render_families(w, snapshot)
        return w.text()
    raise ValueError("not a metrics snapshot: expected registry, fleet "
                     "rollup, or family snapshot")


#: the Content-Type the exposition format mandates (serve.py sends it)
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def write_prom(snapshot: dict, path, prefix: str = "repro_") -> int:
    """Write the exposition to ``path`` (textfile-collector style);
    returns the number of sample/metadata lines written.

    The write is atomic — rendered to ``<path>.<pid>.tmp`` in the same
    directory, then ``os.replace``d over the target — because the
    Prometheus textfile collector polls the path on its own schedule
    and a torn half-exposition would parse as a truncated scrape.
    """
    text = render_prom(snapshot, prefix=prefix)
    path = str(path)
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    return text.count("\n")


__all__ = ["render_prom", "write_prom", "PROM_CONTENT_TYPE"]
