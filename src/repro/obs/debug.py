"""Time-travel debugging by deterministic re-execution.

The VM is deterministic: a program plus a stimulus script fixes every
reaction (the property the replay fuzz oracle checks).  That makes
time travel cheap — no state snapshots, no undo log.  "Go back to
reaction 7" simply re-executes the program from boot with the
scheduler's :attr:`~repro.runtime.scheduler.Scheduler.pause_at` gate set
to 7: the drivers refuse to *start* reaction 7, leaving the VM frozen at
the exact reaction boundary, fully inspectable (memory, clock, live
trails, the causal DAG so far).  Stepping forward is the same thing with
a larger gate; ``repro debug`` wraps this in a tiny REPL.

Positions are *completed reaction counts*: position ``n`` means
reactions ``0 .. n-1`` (0 is boot) have run.  Re-execution is
byte-identical — the acceptance tests pin that ``goto`` + re-stepping
reproduces the original :meth:`~repro.runtime.trace.Trace.signature`
prefix for prefix.

One caveat worth knowing: when a pause lands inside a time advance
(``T`` script item), the VM clock already shows the advance's *target*
instant — the not-yet-run timer reactions between the pause boundary and
the target are simply still pending.  They run, deterministically, once
the position moves past them.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .causal import CausalGraph


class TimeTravelDebugger:
    """Replay debugger over one program + stimulus script.

    >>> dbg = TimeTravelDebugger(src, script)
    >>> dbg.total            # reactions in the full run
    >>> dbg.goto(2)          # re-execute, pause before reaction 2
    >>> dbg.state()["memory"]
    >>> dbg.step(); dbg.step()
    >>> dbg.signature() == dbg.full_signature   # caught back up
    True

    ``script`` uses the fuzz-driver item format:
    ``("E", name, value)`` sends an input event, ``("T", abs_us)``
    advances the wall clock to an absolute instant
    (:func:`repro.fuzz.gen.parse_script_text` reads the file form).
    """

    def __init__(self, source: str, script: Sequence[tuple] = (),
                 filename: str = "<ceu>"):
        self.source = source
        self.script = list(script)
        self.filename = filename
        self.program, self.graph = self._execute(None)
        #: reactions in the unpaused run — the debugger's horizon
        self.total = self.program.sched.reaction_count
        #: the full run's trace signature (re-steps must reproduce it)
        self.full_signature = self.program.trace.signature()
        self.at = self.total

    # ----------------------------------------------------------- execution
    def _execute(self, pause_at: Optional[int]):
        """Fresh deterministic run, stopped at ``pause_at`` reactions."""
        # deferred: obs is imported by the runtime it drives
        from ..runtime.program import Program

        program = Program(self.source, trace=True, filename=self.filename)
        graph = program.observe(CausalGraph(program.hooks))
        program.sched.pause_at = pause_at
        program.start()
        for item in self.script:
            if program.done or program.sched.paused():
                break
            if item[0] == "E":
                program.send(item[1], item[2])
            else:
                program.at(item[1])
        return program, graph

    # ------------------------------------------------------------ movement
    def goto(self, n: int) -> int:
        """Re-execute from boot up to position ``n`` (clamped to
        ``1 .. total``; boot itself cannot be unwound)."""
        n = max(1, min(n, self.total))
        self.program, self.graph = self._execute(
            None if n >= self.total else n)
        self.at = self.program.sched.reaction_count
        return self.at

    def step(self) -> int:
        """Forward one reaction (no-op at the end of the run)."""
        return self.goto(self.at + 1)

    def back(self) -> int:
        """Backward one reaction (no-op at position 1)."""
        return self.goto(self.at - 1)

    # ---------------------------------------------------------- inspection
    def signature(self) -> tuple:
        """Trace signature of the reactions run so far — at position
        ``total`` this equals :attr:`full_signature` byte for byte."""
        return self.program.trace.signature()

    def state(self) -> dict:
        """Structured snapshot of the paused VM."""
        sched = self.program.sched
        trails = sorted(sched._live, key=lambda t: t.seq)
        return {
            "at": self.at,
            "total": self.total,
            "clock_us": sched.clock,
            "done": sched.done,
            "result": sched.result,
            "memory": sched.memory.snapshot(),
            "trails": [(t.label, t.waiting or "running")
                       for t in trails if t.alive],
        }

    def render_state(self) -> str:
        s = self.state()
        lines = [f"position {s['at']}/{s['total']}  "
                 f"clock {s['clock_us']}us  "
                 + (f"terminated result={s['result']}" if s["done"]
                    else "running")]
        for name, value in sorted(s["memory"].items()):
            lines.append(f"  mem  {name} = {value}")
        for label, waiting in s["trails"]:
            lines.append(f"  trail {label}: {waiting}")
        return "\n".join(lines)

    def render_trace(self) -> str:
        return self.program.trace.render()

    def why(self, at: str, steps: bool = False) -> str:
        """Causal slice (``repro why``) over the *current* position's
        graph — targets in the not-yet-replayed future are not visible."""
        return self.graph.why(at, steps=steps)
