"""Time-travel debugging over reaction checkpoints.

The VM is deterministic: a program plus its top-level driver journal
fixes every reaction (the property the replay fuzz oracle checks).  The
first debugger exploited only the determinism — every ``goto`` was a
fresh re-execution from boot, instrumented, O(run length).  This one
adds the checkpoint layer (:mod:`repro.runtime.checkpoint`):

* **Pass 1** runs the program once, fully instrumented (trace + causal
  graph) and with journal recording on.  Its artifacts — the total
  reaction count, the full trace signature, the causal DAG, the journal
  — are kept and *sliced* for rendering; they are never recomputed.
* A **ring of parked VMs** is then built: detached (no hooks, no trace)
  replicas paused at periodic reaction boundaries, plus the movable
  *cursor* VM that always sits at the current position.
* ``goto n`` takes the nearest parked VM at or below ``n`` (usually the
  cursor itself when moving forward) and drives it the remaining
  distance with the journal — O(distance-from-nearest-checkpoint)
  reactions, all detached.  The displaced cursor is parked in turn, so
  a back-and-forth session keeps seeding its own checkpoints.
  :attr:`last_goto` records the base used and the reactions/steps
  actually replayed; the acceptance tests pin it.

Positions are *completed reaction counts*: position ``n`` means
reactions ``0 .. n-1`` (0 is boot) have run.  Rendered state at every
position is byte-identical to the first debugger's re-execution — the
checkpoint fingerprints guarantee it.

One caveat worth knowing: when a position lands inside a time advance
(``T`` journal entry), the VM clock already shows the advance's *target*
instant — the not-yet-run timer reactions between the pause boundary and
the target are simply still pending.  They run, deterministically, once
the position moves past them (the journal's reaction-count stamps make
the mid-entry pause resumable — see
:func:`~repro.runtime.checkpoint.replay_journal`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from .causal import CausalGraph


class TimeTravelDebugger:
    """Replay debugger over one program + stimulus script.

    >>> dbg = TimeTravelDebugger(src, script)
    >>> dbg.total            # reactions in the full run
    >>> dbg.goto(2)          # nearest checkpoint + journal replay
    >>> dbg.state()["memory"]
    >>> dbg.step(); dbg.step()
    >>> dbg.signature() == dbg.full_signature   # caught back up
    True

    ``script`` uses the fuzz-driver item format:
    ``("E", name, value)`` sends an input event, ``("T", abs_us)``
    advances the wall clock to an absolute instant
    (:func:`repro.fuzz.gen.parse_script_text` reads the file form).

    ``checkpoint_interval`` spaces the parked boundaries (default: the
    run divided evenly over the ring); ``checkpoint_ring`` caps how many
    VMs stay parked at once (oldest evicted first).
    """

    def __init__(self, source: str, script: Sequence[tuple] = (),
                 filename: str = "<ceu>",
                 checkpoint_interval: Optional[int] = None,
                 checkpoint_ring: int = 8):
        self.source = source
        self.script = list(script)
        self.filename = filename
        self._ckpt = None
        # pass 1: the one instrumented run
        program, self.graph = self._instrumented_boot()
        program.start()
        for item in self.script:
            if program.done or program.sched.paused():
                break
            if item[0] == "E":
                program.send(item[1], item[2])
            else:
                program.at(item[1])
        self._finish_init(program, checkpoint_interval, checkpoint_ring)

    @classmethod
    def from_checkpoint(cls, ckpt, *,
                        checkpoint_interval: Optional[int] = None,
                        checkpoint_ring: int = 8) -> "TimeTravelDebugger":
        """Open a :class:`~repro.runtime.checkpoint.Checkpoint` (a saved
        session or a postmortem bundle's) as a debugging session.

        The instrumented pass replays the embedded journal up to the
        checkpoint's boundary — for a crash checkpoint that is one
        reaction short of the crash — and verifies the state fingerprint
        when one is present.  The horizon (:attr:`total`) is the
        boundary; everything before it is navigable as usual.
        """
        from ..runtime.checkpoint import (CheckpointError, replay_journal,
                                          state_fingerprint)

        self = cls.__new__(cls)
        self.source = ckpt.source
        self.script = None
        self.filename = ckpt.filename
        self._ckpt = ckpt
        program, self.graph = self._instrumented_boot()
        sched = program.sched
        boundary = ckpt.reaction_count
        sched.pause_at = boundary
        sched.go_init()
        replay_journal(sched, ckpt.journal, pause_at=boundary)
        if ckpt.fingerprint is not None:
            got = state_fingerprint(sched)
            if got != ckpt.fingerprint:
                raise CheckpointError(
                    f"checkpoint replay diverged: fingerprint "
                    f"{got[:12]}… != {ckpt.fingerprint[:12]}…")
        self._finish_init(program, checkpoint_interval, checkpoint_ring)
        return self

    # ----------------------------------------------------------- execution
    def _instrumented_boot(self):
        """Fresh fully-instrumented program (not yet started)."""
        # deferred: obs is imported by the runtime it drives
        from ..runtime.program import Program

        program = Program(self.source, trace=True, filename=self.filename,
                          record=True)
        if self._ckpt is not None:
            from ..runtime.checkpoint import apply_options
            apply_options(program.sched, self._ckpt)
        graph = program.observe(CausalGraph(program.hooks))
        return program, graph

    def _finish_init(self, program, interval: Optional[int],
                     ring: int) -> None:
        sched = program.sched
        #: reactions in the full run — the debugger's horizon
        self.total = sched.reaction_count
        #: the full run's trace signature (positions slice it)
        self.full_signature = program.trace.signature()
        self._full_trace = program.trace
        self.journal = [tuple(e) for e in sched.journal]
        self.ring = max(1, ring)
        self.interval = max(1, interval if interval is not None
                            else -(-self.total // (self.ring + 1)))
        #: position → parked detached VM ``(program, journal cursor)``
        self._parked: dict[int, tuple] = {}
        self._bound = program.bound
        self._build_ring()
        # pass 1's program doubles as the initial cursor, parked at total
        sched.pause_at = self.total
        self._cursor = (program, len(self.journal))
        self.at = self.total
        #: how the last movement was served — {"base", "mode",
        #: "replayed", "steps_replayed"}; tests pin the O(distance) claim
        self.last_goto = {"base": self.total, "mode": "full-run",
                          "replayed": 0, "steps_replayed": 0}

    def _detached_boot(self):
        """Fresh uninstrumented replica paused right after boot."""
        from ..runtime.program import Program

        program = Program(self._bound, check=False,
                          filename=self.filename)
        if self._ckpt is not None:
            from ..runtime.checkpoint import apply_options
            apply_options(program.sched, self._ckpt)
        program.sched.pause_at = 1
        program.sched.go_init()
        return program, 0

    def _replay_to(self, program, cursor: int, n: int) -> int:
        from ..runtime.checkpoint import replay_journal
        return replay_journal(program.sched, self.journal, cursor,
                              pause_at=n)

    def _build_ring(self) -> None:
        boundaries = list(range(self.interval, self.total, self.interval))
        for b in boundaries[-self.ring:]:
            program, cursor = self._detached_boot()
            cursor = self._replay_to(program, cursor, b)
            self._parked[b] = (program, cursor)

    def _park(self, position: int, entry: tuple) -> None:
        if position in self._parked:
            return                          # already covered; drop dup
        self._parked[position] = entry
        while len(self._parked) > self.ring:
            oldest = next(iter(self._parked))
            del self._parked[oldest]

    # ------------------------------------------------------------ movement
    def goto(self, n: int) -> int:
        """Move to position ``n`` (clamped to ``1 .. total``; boot itself
        cannot be unwound) via the nearest checkpoint at or below it."""
        n = max(1, min(n, self.total))
        if n == self.at:
            self.last_goto = {"base": n, "mode": "cursor", "replayed": 0,
                              "steps_replayed": 0}
            return self.at
        # candidate bases: the cursor (when behind n) and parked VMs
        candidates = [p for p in self._parked if p <= n]
        use_cursor = self.at <= n and (not candidates
                                       or self.at >= max(candidates))
        if use_cursor:
            base, mode = self.at, "cursor"
            program, cursor = self._cursor
        elif candidates:
            base, mode = max(candidates), "checkpoint"
            program, cursor = self._parked.pop(base)
            self._park(self.at, self._cursor)
        else:
            base, mode = 1, "boot"
            program, cursor = self._detached_boot()
            self._park(self.at, self._cursor)
        steps0 = program.sched.steps_executed
        cursor = self._replay_to(program, cursor, n)
        self._cursor = (program, cursor)
        self.at = program.sched.reaction_count
        self.last_goto = {
            "base": base, "mode": mode, "replayed": self.at - base,
            "steps_replayed": program.sched.steps_executed - steps0,
        }
        return self.at

    def step(self) -> int:
        """Forward one reaction (no-op at the end of the run)."""
        return self.goto(self.at + 1)

    def back(self) -> int:
        """Backward one reaction (no-op at position 1)."""
        return self.goto(self.at - 1)

    # --------------------------------------------------------- checkpoints
    @property
    def program(self):
        """The VM at the current position (paused, inspectable)."""
        return self._cursor[0]

    def checkpoints(self) -> dict:
        """The parked-VM ring: positions, spacing, and the cursor."""
        return {"at": self.at, "total": self.total,
                "interval": self.interval, "ring": self.ring,
                "parked": sorted(self._parked),
                "last_goto": dict(self.last_goto)}

    def save(self, path) -> str:
        """Serialize the current position as a checkpoint file; a later
        ``repro debug --from-checkpoint`` (or :meth:`from_checkpoint`)
        reopens the session exactly here."""
        from ..runtime.checkpoint import snapshot

        ckpt = snapshot(self.program, source=self.source,
                        filename=self.filename, journal=self.journal)
        ckpt.save(path)
        return ckpt.describe()

    # ---------------------------------------------------------- inspection
    def signature(self) -> tuple:
        """Trace signature of the reactions run so far — at position
        ``total`` this equals :attr:`full_signature` byte for byte."""
        return tuple(self.full_signature[:self.at])

    def state(self) -> dict:
        """Structured snapshot of the paused VM."""
        sched = self.program.sched
        trails = sorted(sched._live, key=lambda t: t.seq)
        return {
            "at": self.at,
            "total": self.total,
            "clock_us": sched.clock,
            "steps": sched.steps_executed,
            "done": sched.done,
            "result": sched.result,
            "memory": sched.memory.snapshot(),
            "trails": [(t.label, t.waiting or "running")
                       for t in trails if t.alive],
        }

    def render_state(self) -> str:
        s = self.state()
        lines = [f"position {s['at']}/{s['total']}  "
                 f"clock {s['clock_us']}us  "
                 + (f"terminated result={s['result']}" if s["done"]
                    else "running")]
        for name, value in sorted(s["memory"].items()):
            lines.append(f"  mem  {name} = {value}")
        for label, waiting in s["trails"]:
            lines.append(f"  trail {label}: {waiting}")
        return "\n".join(lines)

    def render_checkpoints(self) -> str:
        c = self.checkpoints()
        g = c["last_goto"]
        lines = [f"position {c['at']}/{c['total']}  "
                 f"interval {c['interval']}  ring {c['ring']}",
                 f"parked at: "
                 f"{', '.join(map(str, c['parked'])) or '(none)'}",
                 f"last goto: base {g['base']} ({g['mode']}), "
                 f"{g['replayed']} reaction(s) / "
                 f"{g['steps_replayed']} step(s) replayed"]
        return "\n".join(lines)

    def render_trace(self) -> str:
        return "\n".join(str(r)
                         for r in self._full_trace.reactions[:self.at])

    def why(self, at: str, steps: bool = False) -> str:
        """Causal slice (``repro why``) over the full run's graph,
        restricted to the current position — targets in the
        not-yet-replayed future are not visible."""
        return self.graph.why(at, steps=steps, before=self.at)
