"""Coverage maps built from the hook bus.

Two subscribers turn the instrumentation stream into coverage bitmaps
over a fixed 2^16-slot universe (AFL-style: features are hashed into the
map, collisions are tolerated, and set union / popcount are the only
operations the consumers need):

* :class:`CoverageMap` — **statement** coverage (every source line the
  interpreter stepped, from the ``step`` hook) and **control-flow edge**
  coverage (consecutive ``(prev_line → line)`` pairs per trail — the
  classic branch-edge signal that distinguishes *how* a program ran, not
  just *what* it touched);
* :class:`DfaEdgeCoverage` — coverage of the §2.6 temporal-analysis
  DFA's transitions: the frontier of possible DFA states is advanced on
  every ``reaction_begin`` by trigger label, and each traversed
  transition is marked.  This is coverage of the *abstract* state space
  the static analysis explored — the measure that tells a fuzzer it has
  visited a new region of the automaton.

Both expose ``ids()`` (the hashed feature set), ``merge()``, a stable
``signature()``, and counts; the fuzzer's coverage-guided scheduler
(:mod:`repro.fuzz.runner`) accumulates ``ids()`` across a campaign and
feeds inputs that light new bits into its corpus.

A ``context`` string namespaces the hashes — campaigns over many
generated programs prefix each program's identity so line 7 of program A
and line 7 of program B stay distinct features.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Iterable, Optional

from .hooks import HookSubscriber

#: size of the hashed feature universe (collisions are acceptable noise,
#: exactly as in AFL's 64 KiB edge map)
MAP_SIZE = 1 << 16


def feature_id(*parts) -> int:
    """Stable hash of a coverage feature into the map universe."""
    key = "\x1f".join(str(p) for p in parts).encode()
    return zlib.crc32(key) % MAP_SIZE


def coverage_signature(ids: Iterable[int]) -> str:
    """Stable digest of a coverage set (corpus dedup key)."""
    payload = ",".join(str(i) for i in sorted(ids)).encode()
    return hashlib.sha1(payload).hexdigest()


class CoverageMap(HookSubscriber):
    """Statement + control-flow-edge coverage from ``step`` hooks."""

    def __init__(self, context: str = ""):
        self.context = context
        self.stmts: set[int] = set()
        self.edges: set[int] = set()
        self._prev: dict[str, int] = {}    # trail -> last stepped line

    # ------------------------------------------------------------- hooks
    def on_step(self, trail, path, kind, line) -> None:
        self.stmts.add(feature_id(self.context, "s", line))
        prev = self._prev.get(trail)
        if prev is not None:
            self.edges.add(feature_id(self.context, "e", prev, line))
        self._prev[trail] = line

    # --------------------------------------------------------------- api
    def ids(self) -> set[int]:
        return self.stmts | self.edges

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        self.stmts |= other.stmts
        self.edges |= other.edges
        return self

    def signature(self) -> str:
        return coverage_signature(self.ids())

    def __len__(self) -> int:
        return len(self.stmts) + len(self.edges)


class DfaEdgeCoverage(HookSubscriber):
    """Marks which temporal-analysis DFA transitions a run traversed.

    The concrete VM does not expose its abstract DFA state, so the
    subscriber tracks the *set* of states consistent with the trigger
    history (a determinised view of the automaton): every
    ``reaction_begin`` advances the frontier along all transitions whose
    label matches the trigger, marking each as covered.  Sound — every
    actually-taken transition is marked — and precise enough for seed
    scheduling (frontiers stay small: programs the analysis accepted
    have near-deterministic automata).
    """

    def __init__(self, dfa, context: str = ""):
        self.dfa = dfa
        self.context = context
        self.covered: set[int] = set()
        self._frontier: set[int] = {-1}     # pre-boot pseudo-state
        self._by_src: dict[int, list[tuple[int, str, int]]] = {}
        for i, (src, label, dst) in enumerate(dfa.edges):
            self._by_src.setdefault(src, []).append((i, label, dst))

    # ------------------------------------------------------------- hooks
    def on_reaction_begin(self, index, trigger, value, time_us) -> None:
        if trigger == "boot":
            def match(label: str) -> bool:
                return label == "boot"
        elif trigger.startswith("event:"):
            wanted = f"event {trigger[len('event:'):]}"

            def match(label: str, wanted=wanted) -> bool:
                return label == wanted
        elif trigger == "time":
            def match(label: str) -> bool:
                return label.startswith(("timer ", "timeout@"))
        elif trigger.startswith("async:"):
            def match(label: str) -> bool:
                return label.startswith("async@")
        else:  # pragma: no cover - exhaustive over scheduler triggers
            return
        frontier: set[int] = set()
        for state in self._frontier:
            for i, label, dst in self._by_src.get(state, ()):
                if match(label):
                    self.covered.add(i)
                    frontier.add(dst)
        if frontier:
            self._frontier = frontier
        # an empty frontier means the run outpaced a truncated DFA —
        # keep the old frontier rather than going permanently blind

    # --------------------------------------------------------------- api
    def ids(self) -> set[int]:
        return {feature_id(self.context, "d", i) for i in self.covered}

    def merge(self, other: "DfaEdgeCoverage") -> "DfaEdgeCoverage":
        self.covered |= other.covered
        return self

    def signature(self) -> str:
        return coverage_signature(self.ids())

    def __len__(self) -> int:
        return len(self.covered)


def collect_coverage(program_cls, src: str, script,
                     dfa=None, context: str = "",
                     check: bool = True) -> Optional[set[int]]:
    """Run ``src`` under ``script`` with coverage subscribers attached;
    returns the combined feature-id set (None if the run raised).

    ``program_cls`` is :class:`repro.runtime.Program` — passed in to
    keep this module import-light (obs must not depend on the runtime).
    """
    cov = CoverageMap(context=context)
    dfa_cov = DfaEdgeCoverage(dfa, context=context) if dfa is not None \
        else None
    try:
        program = program_cls(src, check=check)
        program.observe(cov)
        if dfa_cov is not None:
            program.observe(dfa_cov)
        program.start()
        for item in script:
            if program.done:
                break
            if item[0] == "E":
                program.send(item[1], item[2])
            else:
                program.at(item[1])
    except Exception:
        return None
    ids = cov.ids()
    if dfa_cov is not None:
        ids |= dfa_cov.ids()
    return ids
