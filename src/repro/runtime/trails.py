"""Trail and join bookkeeping for the reference VM.

A *trail* (§2) is one line of execution.  The VM realises a trail as a
Python generator produced by the interpreter; the generator yields exactly
when the trail *halts* (awaits an event / timer, waits for a parallel
composition to rejoin, or waits for an ``async``).  All zero-time execution
— assignments, C calls, internal ``emit`` chains — happens inside a single
``send`` on that generator, mirroring the paper's atomic *tracks* (§4.4).

Escaping control flow (``break`` crossing a parallel composition, ``return``
to a value block or to the program) travels as Python exceptions raised
inside trail generators and is converted by the scheduler into prioritised
*join* actions, reproducing the flow-graph priorities of §4.1 (the outer
the terminated construct, the lower the priority — i.e. the later it runs
within the reaction chain).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..lang import ast


class BreakSignal(Exception):
    """``break`` — escapes to its binding ``loop``."""

    def __init__(self, target: ast.Loop):
        self.target = target
        super().__init__("break")


class ReturnSignal(Exception):
    """``return [v]`` — escapes to its value boundary (``None`` = program)."""

    def __init__(self, boundary: Optional[ast.Node], value: Any):
        self.boundary = boundary
        self.value = value
        super().__init__("return")


_trail_seq = itertools.count(1)


class Trail:
    """One line of execution.  ``path`` encodes the spawn tree: each
    parallel composition contributes ``(region_id, branch_index)`` — a
    region kill is a path-prefix test, the VM analogue of the paper's
    contiguous-gate ``memset`` destruction (§4.3)."""

    __slots__ = ("gen", "path", "parent_join", "branch_index", "alive",
                 "started", "time_base", "waiting", "seq", "label",
                 "wake_cause")

    def __init__(self, gen, path: tuple, parent_join: Optional["Join"],
                 branch_index: int = 0, time_base: int = 0,
                 label: str = ""):
        self.gen = gen
        self.path = path
        self.parent_join = parent_join
        self.branch_index = branch_index
        self.alive = True
        self.started = False
        self.time_base = time_base
        #: current suspension kind, for traces: None while running,
        #: else "ext"/"int"/"time"/"forever"/"par"/"async"
        self.waiting: Optional[str] = None
        self.seq = next(_trail_seq)
        self.label = label or f"t{self.seq}"
        #: causality (docs/OBSERVABILITY.md): span id of the occurrence
        #: that registered the pending wakeup — the await / timer arm /
        #: spawn — published on the bus when the trail next resumes
        self.wake_cause = 0

    def in_region(self, prefix: tuple) -> bool:
        return self.path[:len(prefix)] == prefix

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.alive else "dead"
        return f"<Trail {self.label} path={self.path} {state} " \
               f"waiting={self.waiting}>"


@dataclass(eq=False)
class Join:
    """Rejoin bookkeeping for one *execution* of a parallel statement."""

    node: ast.ParStmt
    mode: str                 # "par" | "or" | "and"
    owner: Trail
    region: tuple             # owner.path + (region_id,)
    depth: int                # syntactic nesting depth (priority)
    n_branches: int
    completed: set = field(default_factory=set)   # branch indices done
    or_enqueued: bool = False
    value: Any = None         # first `return` value (value-boundary pars)
    has_value: bool = False
    cancelled: bool = False
    cause: int = 0            # span of the completion that enqueued it

    def branch_done(self, index: int) -> bool:
        """Record a normal branch termination; returns True when an
        and-join becomes complete."""
        self.completed.add(index)
        return self.mode == "and" and len(self.completed) == self.n_branches


@dataclass(eq=False)
class EscapeJoin:
    """A pending one-hop escape (break/return crossing a parallel)."""

    trail: Trail              # the trail whose generator raised the signal
    signal: Exception         # BreakSignal | ReturnSignal
    cancelled: bool = False
    cause: int = 0            # span of the escape that enqueued it
