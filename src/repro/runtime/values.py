"""Value model of the reference VM.

Céu's data model is C's: integers, pointers, fixed vectors, and opaque
values produced by C calls.  The VM represents:

* integers as Python ints with C-style truncating division (`c_div`,
  `c_mod`) so expressions like ``5 * (tf-32) / 9`` match the paper;
* ``null`` as integer ``0`` (C's NULL);
* pointers as :class:`Ref` objects implementing a tiny get/set protocol —
  ``&x`` produces a ref into program memory, and platform C functions may
  hand out refs into their own buffers (``_Radio_getPayload``);
* strings as Python strings; indexing a string yields the character code,
  matching C's ``char`` semantics (``_MAP[ship][step] == '#'``).
"""

from __future__ import annotations

from typing import Any, Callable

from ..lang.errors import RuntimeCeuError


class Ref:
    """Abstract mutable cell — the VM's pointer."""

    __slots__ = ()

    def get(self) -> Any:
        raise NotImplementedError

    def set(self, value: Any) -> None:
        raise NotImplementedError


class CellRef(Ref):
    """Pointer to a slot in a dict-like store (program memory, C globals)."""

    __slots__ = ("store", "key")

    def __init__(self, store, key):
        self.store = store
        self.key = key

    def get(self) -> Any:
        return self.store[self.key]

    def set(self, value: Any) -> None:
        self.store[self.key] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"&{self.key}"


class ItemRef(Ref):
    """Pointer to an element of a Python list (a Céu vector slot)."""

    __slots__ = ("seq", "index")

    def __init__(self, seq: list, index: int):
        self.seq = seq
        self.index = index

    def get(self) -> Any:
        return self.seq[self.index]

    def set(self, value: Any) -> None:
        self.seq[self.index] = value


class FuncRef(Ref):
    """Pointer backed by explicit getter/setter callables — lets platform
    code expose device registers as pointers."""

    __slots__ = ("getter", "setter")

    def __init__(self, getter: Callable[[], Any],
                 setter: Callable[[Any], None]):
        self.getter = getter
        self.setter = setter

    def get(self) -> Any:
        return self.getter()

    def set(self, value: Any) -> None:
        self.setter(value)


def deref_get(value: Any) -> Any:
    if isinstance(value, Ref):
        return value.get()
    raise RuntimeCeuError(f"cannot dereference non-pointer value {value!r}")


def deref_set(value: Any, new: Any) -> None:
    if isinstance(value, Ref):
        value.set(new)
        return
    raise RuntimeCeuError(f"cannot assign through non-pointer value "
                          f"{value!r}")


def truthy(value: Any) -> bool:
    """C truthiness: nonzero / non-null."""
    if value is None:
        return False
    if isinstance(value, (int, float)):
        return value != 0
    return True


def c_div(a: int, b: int) -> int:
    """C integer division (truncates toward zero)."""
    if b == 0:
        raise RuntimeCeuError("division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a: int, b: int) -> int:
    """C remainder: ``a == c_div(a,b)*b + c_mod(a,b)``."""
    if b == 0:
        raise RuntimeCeuError("modulo by zero")
    return a - c_div(a, b) * b


def as_int(value: Any, what: str = "value") -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    raise RuntimeCeuError(f"{what} must be an integer, got {value!r}")
