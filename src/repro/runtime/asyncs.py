"""Asynchronous blocks (§2.7) and in-language simulation (§2.8).

An ``async`` runs detached from the synchronous side, may contain unbounded
loops, and may emit input events and wall-clock time back into the program
— which is how Céu simulates itself.  The VM models each ``async`` as an
:class:`AsyncJob` holding its own generator; ``ceu_go_async`` (the
scheduler's :meth:`~repro.runtime.scheduler.Scheduler.go_async`) steps the
current job by **one loop iteration or one emit**, switching among jobs
round-robin, exactly as §4.5 describes.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from ..lang import ast
from ..lang.errors import RuntimeCeuError
from ..sema.binder import BoundProgram
from .eval import Evaluator
from .trails import BreakSignal, ReturnSignal, Trail
from .values import as_int, truthy

_job_seq = itertools.count(1)


class AsyncJob:
    """One executing ``async`` block."""

    __slots__ = ("node", "owner", "path", "gen", "done", "aborted",
                 "result", "seq")

    def __init__(self, node: ast.AsyncBlock, owner: Trail, gen):
        self.node = node
        self.owner = owner
        self.path = owner.path
        self.gen = gen
        self.done = False
        self.aborted = False
        self.result: Any = None
        self.seq = next(_job_seq)

    def in_region(self, prefix: tuple) -> bool:
        return self.path[:len(prefix)] == prefix


class AsyncInterp:
    """Interpreter for ``async`` bodies.

    Yields:

    * ``("tick",)`` at every loop-back edge — the granularity of
      ``ceu_go_async``;
    * ``("emit_ext", sym, value)`` — an input event for the synchronous
      side (handled as a tail call by the scheduler);
    * ``("emit_time", us)`` — the passage of wall-clock time.

    Completion is signalled by ``StopIteration`` carrying the ``return``
    value (``None`` when the body falls through).
    """

    def __init__(self, bound: BoundProgram, evaluator: Evaluator):
        self.bound = bound
        self.ev = evaluator

    def run(self, node: ast.AsyncBlock):
        try:
            yield from self._block(node.body)
        except ReturnSignal as sig:
            if sig.boundary is node:
                return sig.value
            raise RuntimeCeuError(
                "`return` inside `async` must target the async block",
                node.span)
        return None

    def _block(self, block: ast.Block):
        for stmt in block.stmts:
            yield from self._stmt(stmt)

    def _stmt(self, s: ast.Stmt):
        if isinstance(s, (ast.Nothing, ast.PureDecl, ast.DeterministicDecl,
                          ast.CBlockStmt)):
            return
        if isinstance(s, ast.DeclVar):
            for declarator in s.decls:
                sym = self.bound.sym_of_decl[declarator.nid]
                if declarator.init is None:
                    self.ev.memory.declare(sym)
                elif isinstance(declarator.init, ast.Exp):
                    self.ev.memory.write(sym, self.ev.eval(declarator.init))
                else:
                    raise RuntimeCeuError(
                        "async declarations take plain expressions",
                        declarator.span)
            return
        if isinstance(s, ast.EmitExt):
            sym = self.bound.event_of[s.nid]
            value = None if s.value is None else self.ev.eval(s.value)
            yield ("emit_ext", sym, value)
            return
        if isinstance(s, ast.EmitTime):
            yield ("emit_time", s.time.us)
            return
        if isinstance(s, ast.If):
            if truthy(self.ev.eval(s.cond)):
                yield from self._block(s.then)
            elif s.orelse is not None:
                yield from self._block(s.orelse)
            return
        if isinstance(s, ast.Loop):
            while True:
                try:
                    yield from self._block(s.body)
                except BreakSignal as sig:
                    if sig.target is s:
                        break
                    raise
                yield ("tick",)  # one ceu_go_async step per iteration
            return
        if isinstance(s, ast.Break):
            raise BreakSignal(self.bound.break_target[s.nid])
        if isinstance(s, ast.Return):
            value = None if s.value is None else self.ev.eval(s.value)
            raise ReturnSignal(self.bound.ret_boundary.get(s.nid), value)
        if isinstance(s, ast.CCallStmt):
            self.ev.call(s.call)
            return
        if isinstance(s, ast.CallStmt):
            self.ev.eval(s.exp)
            return
        if isinstance(s, ast.Assign):
            if not isinstance(s.value, ast.Exp):
                raise RuntimeCeuError("async assignments take plain "
                                      "expressions", s.span)
            self.ev.assign(s.target, self.ev.eval(s.value))
            return
        if isinstance(s, ast.DoBlock):
            yield from self._block(s.body)
            return
        raise RuntimeCeuError(
            f"statement {type(s).__name__} is not allowed inside `async`",
            s.span)
