"""High-level program facade: compile + run Céu programs on the VM."""

from __future__ import annotations

from typing import Any, Optional, Union

from ..lang import ast
from ..lang.lexer import tokenize
from ..lang.parser import parse
from ..lang.tokens import TokKind
from ..obs.hooks import HookBus, HookSubscriber
from ..sema.binder import BoundProgram, bind
from ..sema.bounded import check_bounded
from .cenv import CEnv
from .scheduler import RUNNING, TERMINATED, Scheduler
from .trace import Trace


def parse_time(spec: Union[int, str]) -> int:
    """Accept microseconds or a TIME literal string (``"1h35min"``)."""
    if isinstance(spec, int):
        return spec
    toks = tokenize(spec)
    if len(toks) != 2 or toks[0].kind is not TokKind.TIME:
        raise ValueError(f"not a TIME literal: {spec!r}")
    return toks[0].value.us


class Program:
    """One compiled Céu program bound to a VM scheduler.

    >>> p = Program('''
    ...     input int Restart;
    ...     int v = await Restart;
    ...     return v * 2;
    ... ''')
    >>> p.start()
    >>> p.send("Restart", 21)
    >>> p.result
    42
    """

    def __init__(self, source: Union[str, ast.Program, BoundProgram],
                 cenv: Optional[CEnv] = None, trace: bool = False,
                 observe: bool = False, hooks: Optional[HookBus] = None,
                 check: bool = True, filename: str = "<ceu>",
                 compensate_deltas: bool = True, glitch_free: bool = True,
                 reverse_seeds: bool = False, record: bool = False):
        if isinstance(source, str):
            program = parse(source, filename)
            bound = bind(program)
        elif isinstance(source, ast.Program):
            bound = bind(source)
        else:
            bound = source
        if check:
            check_bounded(bound)
        self.bound = bound
        #: source text and filename, kept for checkpointing (a snapshot
        #: embeds the program so a bundle is self-contained)
        self.source: Optional[str] = source if isinstance(source, str) \
            else None
        self.filename = filename
        self.trace = Trace(enabled=trace)
        self.sched = Scheduler(bound, cenv=cenv, trace=self.trace,
                               hooks=hooks,
                               compensate_deltas=compensate_deltas,
                               glitch_free=glitch_free,
                               reverse_seeds=reverse_seeds)
        if record:
            self.sched.journal = []
        if observe:
            self.sched.enable_metrics()

    # ------------------------------------------------------------ plumbing
    @property
    def cenv(self) -> CEnv:
        return self.sched.cenv

    # -------------------------------------------------------- observability
    @property
    def hooks(self) -> HookBus:
        """The scheduler's instrumentation bus (docs/OBSERVABILITY.md)."""
        return self.sched.hooks

    def observe(self, subscriber: HookSubscriber) -> HookSubscriber:
        """Subscribe ``subscriber`` (e.g. an exporter) to the hook bus."""
        return self.sched.hooks.subscribe(subscriber)

    def stats(self) -> dict:
        """Metrics snapshot — see :meth:`Scheduler.stats`."""
        return self.sched.stats()

    @property
    def done(self) -> bool:
        return self.sched.done

    @property
    def result(self) -> Any:
        return self.sched.result

    @property
    def clock(self) -> int:
        return self.sched.clock

    def output(self) -> str:
        """Everything the program printed via ``_printf`` and friends."""
        return self.cenv.output()

    def checkpoint(self, **kw):
        """Serialize the current reaction boundary — see
        :func:`repro.runtime.checkpoint.snapshot` (requires
        ``record=True``)."""
        from .checkpoint import snapshot
        return snapshot(self, **kw)

    # ------------------------------------------------------------- driving
    def start(self) -> str:
        """Boot reaction; drains any asyncs spawned at boot."""
        status = self.sched.go_init()
        if status is RUNNING:
            status = self.run()
        return status

    def send(self, event: str, value: Any = None) -> str:
        """One input event, then drain asyncs it may have unblocked."""
        status = self.sched.go_event(event, value)
        if status is RUNNING:
            status = self.run()
        return status

    def advance(self, spec: Union[int, str]) -> str:
        """Advance wall-clock time by a duration (µs or TIME literal)."""
        status = self.sched.go_time(self.sched.clock + parse_time(spec))
        if status is RUNNING:
            status = self.run()
        return status

    def at(self, spec: Union[int, str]) -> str:
        """Advance wall-clock time to an absolute instant."""
        status = self.sched.go_time(parse_time(spec))
        if status is RUNNING:
            status = self.run()
        return status

    def run(self, max_async_steps: int = 10_000_000) -> str:
        """Drive the program until it needs external input: flush queued
        inputs, then step asyncs (whose emits feed reactions) until no
        asynchronous work remains."""
        steps = 0
        while not self.sched.done and not self.sched.paused():
            if self.sched.input_queue:
                self.sched.flush_inputs()
                continue
            if not self.sched.async_jobs:
                break
            self.sched.go_async()
            steps += 1
            if steps > max_async_steps:
                raise RuntimeError("async budget exhausted — runaway "
                                   "asynchronous block?")
        return TERMINATED if self.sched.done else RUNNING
