"""Expression evaluation and lvalue resolution for the reference VM."""

from __future__ import annotations

from typing import Any

from ..lang import ast
from ..lang.errors import RuntimeCeuError
from ..sema.binder import BoundProgram
from .cenv import CEnv
from .memory import Memory
from .values import (ItemRef, Ref, as_int, c_div, c_mod, deref_get,
                     deref_set, truthy)


class Evaluator:
    """Evaluates bound expressions against program memory and the C env."""

    def __init__(self, bound: BoundProgram, memory: Memory, cenv: CEnv):
        self.bound = bound
        self.memory = memory
        self.cenv = cenv

    # ----------------------------------------------------------- rvalues
    def eval(self, e: ast.Exp) -> Any:
        if isinstance(e, ast.Num):
            return e.value
        if isinstance(e, ast.Str):
            return e.value
        if isinstance(e, ast.Null):
            return 0
        if isinstance(e, ast.NameInt):
            return self.memory.read(self.bound.var_of[e.nid])
        if isinstance(e, ast.NameC):
            return self.cenv.lookup(e.c_name)
        if isinstance(e, ast.Unop):
            return self._unop(e)
        if isinstance(e, ast.Binop):
            return self._binop(e)
        if isinstance(e, ast.Index):
            return self._index_get(e)
        if isinstance(e, ast.CallExp):
            return self.call(e)
        if isinstance(e, ast.FieldAccess):
            return self._field_get(e)
        if isinstance(e, ast.Cast):
            return self.eval(e.operand)  # casts are type-level only
        if isinstance(e, ast.SizeOf):
            return _sizeof(e.type)
        raise RuntimeCeuError(f"cannot evaluate {type(e).__name__}", e.span)

    def _unop(self, e: ast.Unop) -> Any:
        if e.op == "&":
            return self.ref(e.operand)
        operand = self.eval(e.operand)
        if e.op == "*":
            return deref_get(operand)
        if e.op == "!":
            return 0 if truthy(operand) else 1
        if e.op == "-":
            return -as_int(operand, "operand of unary -")
        if e.op == "+":
            return as_int(operand, "operand of unary +")
        if e.op == "~":
            return ~as_int(operand, "operand of ~")
        raise RuntimeCeuError(f"unknown unary operator {e.op}", e.span)

    def _binop(self, e: ast.Binop) -> Any:
        op = e.op
        if op == "&&":
            return 1 if (truthy(self.eval(e.left))
                         and truthy(self.eval(e.right))) else 0
        if op == "||":
            return 1 if (truthy(self.eval(e.left))
                         or truthy(self.eval(e.right))) else 0
        left = self.eval(e.left)
        right = self.eval(e.right)
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        if op == "<":
            return 1 if left < right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return c_div(left, right)
        if op == "%":
            return c_mod(left, right)
        if op == "<<":
            return as_int(left) << as_int(right)
        if op == ">>":
            return as_int(left) >> as_int(right)
        if op == "&":
            return as_int(left) & as_int(right)
        if op == "|":
            return as_int(left) | as_int(right)
        if op == "^":
            return as_int(left) ^ as_int(right)
        raise RuntimeCeuError(f"unknown binary operator {op}", e.span)

    def _index_get(self, e: ast.Index) -> Any:
        base = self.eval(e.base)
        idx = as_int(self.eval(e.index), "vector index")
        if isinstance(base, str):
            if not 0 <= idx < len(base):
                raise RuntimeCeuError("string index out of range", e.span)
            return ord(base[idx])
        if isinstance(base, ItemRef):
            # C pointer arithmetic: p[i] indexes from the pointee onwards
            return base.seq[base.index + idx]
        if isinstance(base, Ref):
            base = base.get()
        try:
            return base[idx]
        except (TypeError, IndexError, KeyError) as exc:
            raise RuntimeCeuError(f"bad indexing: {exc}", e.span) from exc

    def _field_get(self, e: ast.FieldAccess) -> Any:
        base = self.eval(e.base)
        if e.arrow and isinstance(base, Ref):
            base = base.get()
        if isinstance(base, dict):
            try:
                return base[e.name]
            except KeyError as exc:
                raise RuntimeCeuError(f"no field `{e.name}`", e.span) from exc
        try:
            return getattr(base, e.name)
        except AttributeError as exc:
            raise RuntimeCeuError(f"no field `{e.name}` on {base!r}",
                                  e.span) from exc

    def call(self, e: ast.CallExp) -> Any:
        fn = self.eval(e.func)
        args = tuple(self.eval(a) for a in e.args)
        if not callable(fn):
            raise RuntimeCeuError(f"calling non-function {fn!r}", e.span)
        return fn(*args)

    # ----------------------------------------------------------- lvalues
    def ref(self, e: ast.Exp) -> Ref:
        """`&exp` — a pointer to the storage of an lvalue expression."""
        if isinstance(e, ast.NameInt):
            return self.memory.ref(self.bound.var_of[e.nid])
        if isinstance(e, ast.NameC):
            return self.cenv.ref(e.c_name)
        if isinstance(e, ast.Index):
            base = self.eval(e.base)
            if isinstance(base, Ref):
                base = base.get()
            idx = as_int(self.eval(e.index), "vector index")
            if isinstance(base, list):
                return ItemRef(base, idx)
            raise RuntimeCeuError("cannot take address of that element",
                                  e.span)
        if isinstance(e, ast.Unop) and e.op == "*":
            ptr = self.eval(e.operand)
            if isinstance(ptr, Ref):
                return ptr
            raise RuntimeCeuError("cannot take address through non-pointer",
                                  e.span)
        raise RuntimeCeuError("expression is not addressable", e.span)

    def assign(self, target: ast.Exp, value: Any) -> None:
        if isinstance(target, ast.NameInt):
            self.memory.write(self.bound.var_of[target.nid], value)
            return
        if isinstance(target, ast.NameC):
            self.cenv.assign(target.c_name, value)
            return
        if isinstance(target, ast.Unop) and target.op == "*":
            deref_set(self.eval(target.operand), value)
            return
        if isinstance(target, ast.Index):
            base = self.eval(target.base)
            idx = as_int(self.eval(target.index), "vector index")
            if isinstance(base, ItemRef):
                base.seq[base.index + idx] = value
                return
            if isinstance(base, Ref):
                base = base.get()
            try:
                base[idx] = value
            except (TypeError, IndexError, KeyError) as exc:
                raise RuntimeCeuError(f"bad element assignment: {exc}",
                                      target.span) from exc
            return
        if isinstance(target, ast.FieldAccess):
            base = self.eval(target.base)
            if target.arrow and isinstance(base, Ref):
                base = base.get()
            if isinstance(base, dict):
                base[target.name] = value
            else:
                setattr(base, target.name, value)
            return
        raise RuntimeCeuError("invalid assignment target", target.span)


_SIZES = {"char": 1, "u8": 1, "s8": 1, "u16": 2, "s16": 2, "short": 2,
          "int": 4, "u32": 4, "s32": 4, "long": 4, "u64": 8, "s64": 8,
          "void": 1}


def _sizeof(t: ast.TypeRef) -> int:
    if t.pointers:
        return 2  # 16-bit target platforms (§1)
    return _SIZES.get(t.name, 4)
