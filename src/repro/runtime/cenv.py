"""The C environment — Céu's window to the platform (§2.4).

Identifiers prefixed with ``_`` in Céu are resolved *as is* against the C
world.  In the reproduction the "C world" is a :class:`CEnv`: a name → value
registry holding Python callables (C functions), plain values (C globals)
and objects (C structs / C++-ish handles such as the Arduino ``_lcd``).

A default environment provides the libc-ish services the paper's listings
use — ``printf``, ``assert``, ``srand``/``rand`` (a deterministic LCG so
simulations replay exactly), ``time`` — while platforms
(:mod:`repro.platforms`) layer their own services on top.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..lang.errors import RuntimeCeuError
from .values import CellRef, Ref


class CAssertionError(RuntimeCeuError):
    """`_assert(exp)` failed inside a Céu program."""

    kind = "C assertion"


class Rand:
    """The C89 reference LCG — deterministic across runs, which is exactly
    what the Mario record/replay demo relies on (§3.3)."""

    RAND_MAX = 32767

    def __init__(self, seed: int = 1):
        self.state = seed

    def srand(self, seed: int) -> int:
        self.state = seed & 0xFFFFFFFF
        return 0

    def rand(self) -> int:
        self.state = (self.state * 1103515245 + 12345) & 0x7FFFFFFF
        return (self.state >> 16) % (self.RAND_MAX + 1)


class CEnv:
    """Mutable registry of C symbols visible to a program."""

    def __init__(self, parent: Optional["CEnv"] = None):
        self.parent = parent
        self.symbols: dict[str, Any] = {}
        self.stdout: list[str] = [] if parent is None else parent.stdout
        if parent is None:
            self._install_defaults()

    # ------------------------------------------------------------ plumbing
    def define(self, name: str, value: Any) -> None:
        self.symbols[name] = value

    def define_many(self, mapping: dict[str, Any]) -> None:
        self.symbols.update(mapping)

    def lookup(self, name: str) -> Any:
        env: Optional[CEnv] = self
        while env is not None:
            if name in env.symbols:
                return env.symbols[name]
            env = env.parent
        raise RuntimeCeuError(f"undefined C symbol `_{name}`")

    def has(self, name: str) -> bool:
        env: Optional[CEnv] = self
        while env is not None:
            if name in env.symbols:
                return True
            env = env.parent
        return False

    def ref(self, name: str) -> Ref:
        env: Optional[CEnv] = self
        while env is not None:
            if name in env.symbols:
                return CellRef(env.symbols, name)
            env = env.parent
        raise RuntimeCeuError(f"undefined C symbol `_{name}`")

    def assign(self, name: str, value: Any) -> None:
        env: Optional[CEnv] = self
        while env is not None:
            if name in env.symbols:
                env.symbols[name] = value
                return
            env = env.parent
        # C-style: assigning an unknown global defines it here
        self.symbols[name] = value

    def call(self, name: str, args: tuple) -> Any:
        fn = self.lookup(name)
        if not callable(fn):
            raise RuntimeCeuError(f"C symbol `_{name}` is not callable")
        return fn(*args)

    # ------------------------------------------------------------ defaults
    def _install_defaults(self) -> None:
        rng = Rand()
        self.define_many({
            "printf": self._printf,
            "puts": lambda s: self.stdout.append(str(s) + "\n") or 0,
            "assert": self._assert,
            "abs": abs,
            "srand": rng.srand,
            "rand": rng.rand,
            "RAND_MAX": Rand.RAND_MAX,
            "time": lambda _=0: 0,  # deterministic epoch for simulations
            "NULL": 0,
            "rng": rng,
        })

    def _printf(self, fmt: str, *args: Any) -> int:
        try:
            text = _c_format(fmt, args)
        except (TypeError, ValueError) as exc:
            raise RuntimeCeuError(f"printf format error: {exc}") from exc
        self.stdout.append(text)
        return len(text)

    def _assert(self, cond: Any) -> int:
        if not cond:
            raise CAssertionError("assertion failed")
        return 0

    # Debug / test helper
    def output(self) -> str:
        return "".join(self.stdout)


def _c_format(fmt: str, args: tuple) -> str:
    """A small printf: supports %d %i %u %s %c %x %% and width/padding via
    Python's own formatter (enough for the paper's listings)."""
    py_fmt = (fmt.replace("%i", "%d").replace("%u", "%d")
              .replace("%ld", "%d").replace("%lu", "%d"))
    out = []
    ai = 0
    i = 0
    while i < len(py_fmt):
        ch = py_fmt[i]
        if ch == "%" and i + 1 < len(py_fmt):
            j = i + 1
            while j < len(py_fmt) and py_fmt[j] in "-+ 0123456789.":
                j += 1
            spec = py_fmt[i:j + 1]
            kind = py_fmt[j] if j < len(py_fmt) else "%"
            if kind == "%":
                out.append("%")
            elif ai < len(args):
                arg = args[ai]
                ai += 1
                if kind == "c" and isinstance(arg, int):
                    arg = chr(arg)
                out.append(spec % (arg,))
            i = j + 1
            continue
        out.append(ch)
        i += 1
    return "".join(out)
