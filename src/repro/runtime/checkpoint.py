"""Reaction checkpoints: serialize, restore, and ship the VM's state.

The paper's reaction-boundary semantics give a natural, globally
consistent cut of runtime state: between reactions no trail is mid-track,
no emit stack is live, and the whole configuration (scheduler calendar,
trail forest, interpreter frames, memory, timer residues, async
round-robin cursors) is a pure function of the program plus the ordered
top-level driver calls that reached the boundary.  Trails are Python
generator frames and cannot be pickled — so, as record/replay systems do
for deterministic schedulers, a checkpoint *is* the replay recipe plus a
verification digest:

* the **journal** — every top-level driver call since boot, recorded by
  the scheduler itself (``("E", name, value)`` input events,
  ``("T", us)`` time advances, ``("A",)`` async steps, ``("Q", name,
  value)`` queued inputs, ``("F",)`` queue flushes — each stamped with
  the reaction count it reached, which makes replay pausable and
  resumable *inside* a multi-reaction entry);
* the **options** that parameterise execution (delta compensation,
  glitch-free joins, seeding order, step limit);
* the **boundary** (reaction count, step count, clock) the journal
  reaches; and
* a **fingerprint** — a SHA-256 over the canonical structural state at
  that boundary (memory, live trails and what they await, armed timers
  with their §2.3 bases, async queue order, pending inputs, program
  output) that :func:`restore` re-derives and verifies.

:func:`restore` replays the journal on a fresh scheduler with the hook
bus detached — the fast path; the checkpoint is the slow path's
savepoint — and the restored VM is *byte-identical* going forward:
restore-then-run equals run-from-boot on
:meth:`~repro.runtime.trace.Trace.signature` (property-tested over the
corpus, the examples, and fuzz-generated programs).

On top of the serializer sit the flight-data-recorder artifacts:
:func:`write_postmortem` atomically captures a **bundle** directory
(checkpoint + FlightRecorder ring + causal slice of the last reaction +
fleet metrics + manifest) when a farm watchdog trips or a run crashes,
and :func:`load_postmortem` verifies and reopens it — ``repro
postmortem`` feeds it straight into the time-travel debugger.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any, Optional, Union

FORMAT = "repro-checkpoint"
VERSION = 1
POSTMORTEM_FORMAT = "repro-postmortem"
POSTMORTEM_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"
CHECKPOINT_NAME = "checkpoint.json"


class CheckpointError(ValueError):
    """A checkpoint could not be taken, parsed, or restored."""


# ---------------------------------------------------------------------------
# canonical values
# ---------------------------------------------------------------------------

def _canon_value(value: Any) -> Any:
    """JSON-safe canonical form of a journal/state value.

    Tuples become lists (JSON has no tuple); anything non-JSON-native
    falls back to ``repr`` — symbols and refs have deterministic reprs,
    which is all the fingerprint needs."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canon_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon_value(v) for k, v in value.items()}
    return repr(value)


def _dumps(payload: dict) -> bytes:
    """Deterministic byte serialization (sorted keys, no whitespace)."""
    return (json.dumps(payload, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


# ---------------------------------------------------------------------------
# state fingerprint
# ---------------------------------------------------------------------------

def state_doc(sched) -> dict:
    """The canonical structural state of a scheduler at a reaction
    boundary — everything behaviour-relevant, nothing process-local.

    Trail identity is ``(label, path)`` (both deterministic per run);
    raw trail/async sequence numbers are process-global counters and are
    deliberately excluded (only their relative order matters, and that
    is preserved by construction)."""
    trails = sorted((t for t in sched._live if t.alive),
                    key=lambda t: t.seq)
    timers = sorted(
        (deadline, base, computed, t.label, list(t.path))
        for deadline, base, computed, _seq, t in sched.timers
        if t.alive and t.waiting == "time")
    waiting = {
        kind: {name: [t.label for t in lst if t.alive]
               for name, lst in sorted(table.items())
               if any(t.alive for t in lst)}
        for kind, table in (("ext", sched.ext_waiting),
                            ("int", sched.int_waiting))
    }
    return {
        "clock_us": sched.clock,
        "reactions": sched.reaction_count,
        "steps": sched.steps_executed,
        "done": sched.done,
        "result": _canon_value(sched.result),
        "memory": [[sym.name, sym.uid, _canon_value(value)]
                   for sym, value in sched.memory._slots.items()],
        "trails": [[t.label, list(t.path), t.waiting, t.started]
                   for t in trails],
        "waiting": waiting,
        "forever": [t.label for t in sched.forever if t.alive],
        "timers": [list(entry) for entry in timers],
        "asyncs": [[i, job.node.nid, job.owner.label, job.done,
                    job.aborted]
                   for i, job in enumerate(sched.async_jobs)],
        "input_queue": [[name, _canon_value(value)]
                        for name, value in sched.input_queue],
        "output_sha256": _sha256(sched.cenv.output().encode("utf-8")),
    }


def state_fingerprint(sched) -> str:
    """SHA-256 of :func:`state_doc` — the restore-verification digest."""
    return _sha256(_dumps(state_doc(sched)))


# ---------------------------------------------------------------------------
# journal replay
# ---------------------------------------------------------------------------

def replay_journal(sched, journal, start: int = 0,
                   pause_at: Optional[int] = None) -> int:
    """Apply ``journal[start:]`` to a booted scheduler; returns the
    cursor of the first entry not fully consumed.

    Every entry carries, as its last element, the reaction count the
    scheduler showed after the entry was applied in the original run
    (the :meth:`~repro.runtime.scheduler.Scheduler._journal_close`
    stamp).  With ``pause_at`` set (a reaction boundary), replay stops
    exactly there, possibly *inside* a multi-reaction entry — a time
    advance firing several deadlines, a queue flush delivering several
    events.  The stamp makes the pause resumable with no extra state:
    on re-entry, a scheduler whose reaction count sits strictly between
    the previous entry's stamp and the current one is mid-entry, and
    the entry is *continued* rather than re-run —

    * ``T``: re-issuing ``go_time`` to the (already-reached) target
      clock runs the remaining deadline reactions;
    * ``A``: a partial async step can only have paused inside its
      ``emit_time`` tail-call, so ``go_time`` to the current clock
      finishes it (the round-robin rotation already happened);
    * ``F``: re-issuing the flush delivers what is left in the queue;
    * ``E``/``Q`` are single-reaction/zero-reaction and never partial.
    """
    sched.pause_at = pause_at
    i = start
    while i < len(journal) and not sched.done:
        entry = journal[i]
        op = entry[0]
        # Zero-reaction entries at the boundary (pure clock advances,
        # queued inputs, async ticks — stamp == current count) still
        # apply while paused: their effects are part of the boundary
        # state.  Only an entry that would *run* a reaction past the
        # gate stops the replay.
        if sched.paused() and entry[-1] > sched.reaction_count:
            break
        base_rc = journal[i - 1][-1] if i else 1   # go_init leaves count=1
        resuming = sched.reaction_count > base_rc
        if op == "E":
            sched.go_event(entry[1], entry[2])
        elif op == "T":
            sched.go_time(entry[1])
        elif op == "A":
            if resuming:
                sched.go_time(sched.clock)
            else:
                sched.go_async()
        elif op == "Q":
            sched.queue_input(entry[1], entry[2])
        elif op == "F":
            sched.flush_inputs()
        else:
            raise CheckpointError(f"unknown journal op {op!r}")
        if (sched.paused() and not sched.done
                and sched.reaction_count < entry[-1]):
            break                   # partially applied; cursor stays put
        i += 1
    return i


def journal_cursor(journal, reactions: int) -> int:
    """First journal entry not fully applied once ``reactions``
    reactions have completed (each entry's last element is its
    post-application reaction-count stamp)."""
    for i, entry in enumerate(journal):
        if entry[-1] > reactions:
            return i
    return len(journal)


# ---------------------------------------------------------------------------
# the checkpoint
# ---------------------------------------------------------------------------

class Checkpoint:
    """One serialized reaction-boundary configuration (see module doc).

    ``payload`` is the canonical dict; :meth:`to_bytes` is deterministic
    — two checkpoints of identical state are byte-identical.
    """

    def __init__(self, payload: dict):
        if payload.get("format") != FORMAT:
            raise CheckpointError(
                f"not a {FORMAT} payload: format="
                f"{payload.get('format')!r}")
        if payload.get("version") != VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version "
                f"{payload.get('version')!r} (expected {VERSION})")
        self.payload = payload

    # ------------------------------------------------------------ views
    @property
    def source(self) -> str:
        return self.payload["program"]["source"]

    @property
    def filename(self) -> str:
        return self.payload["program"]["filename"]

    @property
    def program_sha(self) -> str:
        return self.payload["program"]["sha256"]

    @property
    def journal(self) -> list[tuple]:
        return [tuple(entry) for entry in self.payload["journal"]]

    @property
    def options(self) -> dict:
        return self.payload["options"]

    @property
    def boundary(self) -> dict:
        return self.payload["boundary"]

    @property
    def reaction_count(self) -> int:
        return self.payload["boundary"]["reactions"]

    @property
    def clock_us(self) -> int:
        return self.payload["boundary"]["clock_us"]

    @property
    def fingerprint(self) -> str:
        return self.payload["fingerprint"]

    @property
    def rng(self) -> Optional[list]:
        return self.payload.get("rng")

    @property
    def watermarks(self) -> dict:
        return self.payload.get("watermarks", {})

    def describe(self) -> str:
        b = self.boundary
        return (f"checkpoint v{VERSION} of {self.filename} at reaction "
                f"{b['reactions']} (clock {b['clock_us']}us, "
                f"{b['steps']} steps, {len(self.payload['journal'])} "
                f"journal entries)")

    # ------------------------------------------------------------ bytes
    def to_bytes(self) -> bytes:
        return _dumps(self.payload)

    def save(self, path) -> Path:
        """Atomic single-file write (pid-tmp + fsync + rename)."""
        path = Path(path)
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
        data = self.to_bytes()
        try:
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if tmp.exists():                # a failed write leaves no tmp
                tmp.unlink()
        return path

    @classmethod
    def from_bytes(cls, data: Union[bytes, str]) -> "Checkpoint":
        if isinstance(data, bytes):
            data = data.decode("utf-8")
        try:
            payload = json.loads(data)
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"unparsable checkpoint: {exc}") \
                from None
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint payload is not an object")
        return cls(payload)

    @classmethod
    def load(cls, path) -> "Checkpoint":
        return cls.from_bytes(Path(path).read_bytes())


def snapshot(program, *, source: Optional[str] = None,
             filename: Optional[str] = None,
             rng: Optional[list] = None,
             watermarks: Optional[dict] = None,
             journal: Optional[list] = None) -> Checkpoint:
    """Serialize one :class:`~repro.runtime.program.Program` (or bare
    scheduler) at its current reaction boundary.

    Requires journal recording (``sched.journal = []`` before boot —
    ``Program(record=True)``, ``Farm(record=True)``, or the debugger do
    this) and a quiescent scheduler (never call mid-reaction).

    ``rng`` carries a workload driver's ``random.Random.getstate()``
    (canonicalised) so a warm-started workload can continue its stimulus
    stream; ``watermarks`` carries telemetry cursors (exporter seq,
    trace length).  Both ride along uninterpreted — neither affects the
    fingerprint."""
    sched = getattr(program, "sched", program)
    if source is None:
        source = getattr(program, "source", None)
    if filename is None:
        filename = getattr(program, "filename", None)
    if source is None:
        raise CheckpointError("snapshot needs the program source text "
                              "(pass source=)")
    if journal is None:
        journal = sched.journal
    if journal is None:
        raise CheckpointError(
            "journal recording is off — set sched.journal = [] before "
            "boot (Program/Farm record=True) to make the run "
            "checkpointable")
    if sched._reacting:
        raise CheckpointError("cannot snapshot mid-reaction — "
                              "checkpoints cut at reaction boundaries")
    payload = {
        "format": FORMAT,
        "version": VERSION,
        "program": {
            "filename": filename or "<ceu>",
            "source": source,
            "sha256": _sha256(source.encode("utf-8")),
        },
        "options": {
            "compensate_deltas": sched.compensate_deltas,
            "glitch_free": sched.glitch_free,
            "reverse_seeds": sched.reverse_seeds,
            "step_limit": sched.step_limit,
        },
        "boundary": {
            "reactions": sched.reaction_count,
            "steps": sched.steps_executed,
            "clock_us": sched.clock,
            "done": sched.done,
        },
        "journal": [list(_canon_value(entry)) for entry in journal],
        "fingerprint": state_fingerprint(sched),
    }
    if rng is not None:
        payload["rng"] = _canon_value(rng)
    if watermarks:
        payload["watermarks"] = _canon_value(watermarks)
    return Checkpoint(payload)


def snapshot_crash(program, *, source: Optional[str] = None,
                   filename: Optional[str] = None) -> Checkpoint:
    """Postmortem checkpoint of a *crashed* run (``--flight-recorder``).

    The VM died mid-reaction, so the current state is not a boundary and
    cannot be fingerprinted; instead the checkpoint targets the last
    completed boundary *before* the crashing reaction and carries no
    fingerprint (``restore`` skips verification).  Replaying it parks
    the VM one reaction short of the crash — exactly where a debugger
    wants to stand."""
    sched = getattr(program, "sched", program)
    if source is None:
        source = getattr(program, "source", None)
    if filename is None:
        filename = getattr(program, "filename", None)
    if source is None:
        raise CheckpointError("snapshot needs the program source text "
                              "(pass source=)")
    if sched.journal is None:
        raise CheckpointError("journal recording is off — the crashed "
                              "run was not checkpointable")
    boundary = max(1, sched.reaction_count - 1)
    payload = {
        "format": FORMAT,
        "version": VERSION,
        "crash": True,
        "program": {
            "filename": filename or "<ceu>",
            "source": source,
            "sha256": _sha256(source.encode("utf-8")),
        },
        "options": {
            "compensate_deltas": sched.compensate_deltas,
            "glitch_free": sched.glitch_free,
            "reverse_seeds": sched.reverse_seeds,
            "step_limit": sched.step_limit,
        },
        "boundary": {
            "reactions": boundary,
            "steps": None,
            "clock_us": sched.clock,
            "done": False,
        },
        "journal": [list(_canon_value(entry))
                    for entry in sched.journal],
        "fingerprint": None,
    }
    return Checkpoint(payload)


def restore(ckpt: Checkpoint, *, bound=None, cenv=None,
            trace: bool = False, observe: bool = False,
            record: bool = True, verify: bool = True,
            check: bool = False):
    """Materialise a checkpoint: boot a fresh VM and replay the journal
    up to the boundary, then verify the state fingerprint.

    The replay runs with whatever instrumentation the caller asked for —
    the default (no trace, no metrics, detached hook bus) is the fast
    path warm starts and ``debug goto`` rely on.  Pass ``bound=`` (a
    shared :class:`~repro.sema.binder.BoundProgram`, e.g. a farm's) to
    skip re-parsing; its identity is guarded by the program SHA the
    caller is expected to have matched.  With ``record=True`` the
    restored scheduler re-records the journal during replay, so further
    checkpoints of the restored VM carry full history.

    Returns the restored, un-paused :class:`Program`.
    """
    from .program import Program

    src = bound if bound is not None else ckpt.source
    program = Program(src, cenv=cenv, trace=trace, observe=observe,
                      check=check, filename=ckpt.filename)
    sched = program.sched
    apply_options(sched, ckpt)
    if record:
        sched.journal = []
    boundary = ckpt.reaction_count
    # Boot with go_init directly — Program.start() also drains boot-time
    # asyncs, but those drains were themselves journaled as "A" ops.
    sched.pause_at = boundary
    sched.go_init()
    replay_journal(sched, ckpt.journal, pause_at=boundary)
    sched.pause_at = None
    if verify and ckpt.fingerprint is not None:
        got = state_fingerprint(sched)
        if got != ckpt.fingerprint:
            raise CheckpointError(
                f"restore diverged from the checkpointed state: "
                f"fingerprint {got[:12]}… != {ckpt.fingerprint[:12]}… "
                f"(reaction {sched.reaction_count} vs {boundary})")
    program.source = ckpt.source
    return program


def apply_options(sched, ckpt: Checkpoint) -> None:
    """Copy a checkpoint's execution options onto a fresh scheduler."""
    opts = ckpt.options
    sched.compensate_deltas = opts["compensate_deltas"]
    sched.glitch_free = opts["glitch_free"]
    sched.reverse_seeds = opts["reverse_seeds"]
    sched.step_limit = opts["step_limit"]


# ---------------------------------------------------------------------------
# postmortem bundles
# ---------------------------------------------------------------------------

def write_postmortem(path, checkpoint: Checkpoint, *, reason: str,
                     program: Optional[str] = None,
                     instance: Optional[int] = None,
                     recorder_lines=None, fleet: Optional[dict] = None,
                     slice_text: Optional[str] = None,
                     detail: Optional[dict] = None,
                     created_at: Optional[str] = None) -> Path:
    """Atomically write a postmortem bundle directory.

    The bundle is staged under a pid-suffixed temp name, every file is
    fsynced, the manifest (with per-file SHA-256s) is written *last*,
    and the staging directory is renamed into place — so a crash, a
    SIGTERM drain, or a concurrent reader ever observes either a
    complete bundle (manifest present, hashes matching) or no bundle at
    all, never a partial one.  Raises if ``path`` already exists."""
    final = Path(path)
    if final.exists():
        raise CheckpointError(f"postmortem bundle {final} already exists")
    final.parent.mkdir(parents=True, exist_ok=True)
    tmp = final.with_name(f".{final.name}.tmp{os.getpid()}")
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    try:
        files: dict[str, dict] = {}

        def put(name: str, data: bytes) -> None:
            with open(tmp / name, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            files[name] = {"sha256": _sha256(data), "bytes": len(data)}

        put(CHECKPOINT_NAME, checkpoint.to_bytes())
        if recorder_lines is not None:
            text = "\n".join(recorder_lines)
            put("flightrecorder.jsonl",
                (text + "\n" if text else "").encode("utf-8"))
        if slice_text is not None:
            put("slice.txt", (slice_text.rstrip("\n") + "\n")
                .encode("utf-8"))
        if fleet is not None:
            put("fleet.json",
                (json.dumps(fleet, indent=2, sort_keys=True, default=repr)
                 + "\n").encode("utf-8"))
        manifest = {
            "format": POSTMORTEM_FORMAT,
            "version": POSTMORTEM_VERSION,
            "checkpoint_version": VERSION,
            "reason": reason,
            "program": program,
            "instance": instance,
            "boundary": checkpoint.boundary,
            "options": checkpoint.options,
            "program_sha256": checkpoint.program_sha,
            "created_at": created_at,
            "detail": _canon_value(detail) if detail else None,
            "files": files,
        }
        with open(tmp / MANIFEST_NAME, "wb") as fh:
            fh.write(json.dumps(manifest, indent=2, sort_keys=True)
                     .encode("utf-8") + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        dirfd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
        os.rename(tmp, final)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return final


class PostmortemBundle:
    """A verified, loaded postmortem bundle."""

    def __init__(self, path: Path, manifest: dict,
                 checkpoint: Checkpoint):
        self.path = path
        self.manifest = manifest
        self.checkpoint = checkpoint

    @property
    def reason(self) -> str:
        return self.manifest.get("reason", "unknown")

    def recorder_lines(self) -> list[str]:
        p = self.path / "flightrecorder.jsonl"
        if not p.exists():
            return []
        return [ln for ln in p.read_text().splitlines() if ln]

    def slice_text(self) -> Optional[str]:
        p = self.path / "slice.txt"
        return p.read_text() if p.exists() else None

    def fleet(self) -> Optional[dict]:
        p = self.path / "fleet.json"
        return json.loads(p.read_text()) if p.exists() else None

    def describe(self) -> str:
        m = self.manifest
        b = m.get("boundary", {})
        inst = f" instance {m['instance']}" if m.get("instance") is not \
            None else ""
        return (f"postmortem [{self.reason}] {m.get('program') or '?'}"
                f"{inst} — reaction {b.get('reactions')} at "
                f"{b.get('clock_us')}us, {len(m.get('files', {}))} "
                f"file(s)")


def load_postmortem(path) -> PostmortemBundle:
    """Open and verify a bundle: manifest present, every listed file
    present with a matching SHA-256, checkpoint parsable."""
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.exists():
        raise CheckpointError(
            f"{root} is not a postmortem bundle (no {MANIFEST_NAME})")
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format") != POSTMORTEM_FORMAT:
        raise CheckpointError(f"{root}: unknown manifest format "
                              f"{manifest.get('format')!r}")
    if manifest.get("version") != POSTMORTEM_VERSION:
        raise CheckpointError(f"{root}: unsupported bundle version "
                              f"{manifest.get('version')!r}")
    for name, meta in manifest.get("files", {}).items():
        fp = root / name
        if not fp.exists():
            raise CheckpointError(f"{root}: manifest lists {name} but "
                                  f"it is missing — partial bundle?")
        got = _sha256(fp.read_bytes())
        if got != meta.get("sha256"):
            raise CheckpointError(f"{root}: {name} is corrupt "
                                  f"(sha256 {got[:12]}… != manifest "
                                  f"{str(meta.get('sha256'))[:12]}…)")
    ckpt = Checkpoint.load(root / CHECKPOINT_NAME)
    return PostmortemBundle(root, manifest, ckpt)


def list_postmortems(directory) -> list[dict]:
    """Manifests of every complete bundle under ``directory`` (sorted by
    name); staging/partial directories are invisible by construction."""
    root = Path(directory)
    if not root.is_dir():
        return []
    out = []
    for entry in sorted(root.iterdir()):
        manifest = entry / MANIFEST_NAME
        if entry.name.startswith(".") or not manifest.is_file():
            continue
        try:
            m = json.loads(manifest.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        m["bundle"] = entry.name
        out.append(m)
    return out


__all__ = ["Checkpoint", "CheckpointError", "PostmortemBundle",
           "snapshot", "snapshot_crash", "restore", "apply_options",
           "replay_journal", "journal_cursor", "state_doc",
           "state_fingerprint", "write_postmortem", "load_postmortem",
           "list_postmortems", "FORMAT", "VERSION"]
