"""Reference VM: the executable semantics of Céu (§2), exposed through the
paper's `ceu_go_*` API (§4.5) plus a high-level `Program` facade."""

from .cenv import CAssertionError, CEnv, Rand
from .checkpoint import (Checkpoint, CheckpointError, PostmortemBundle,
                         list_postmortems, load_postmortem, restore,
                         snapshot, snapshot_crash, write_postmortem)
from .farm import Farm, Instance
from .program import Program, parse_time
from .scheduler import RUNNING, TERMINATED, Scheduler
from .trace import Reaction, Step, Trace
from .values import CellRef, FuncRef, ItemRef, Ref

__all__ = ["Program", "parse_time", "Scheduler", "RUNNING", "TERMINATED",
           "CEnv", "CAssertionError", "Rand", "Trace", "Reaction", "Step",
           "Ref", "CellRef", "ItemRef", "FuncRef", "Farm", "Instance",
           "Checkpoint", "CheckpointError", "PostmortemBundle",
           "snapshot", "snapshot_crash", "restore", "write_postmortem",
           "load_postmortem", "list_postmortems"]
