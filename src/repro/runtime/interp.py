"""Statement interpreter of the reference VM.

Every ``exec_*`` method is a generator; yields are the trail's halt points:

=====================  =====================================================
``("ext", sym)``        await an external input event → resumes with value
``("int", sym)``        await an internal event → resumes with value
``("time", us)``        await wall-clock time → resumes with residual delta
``("forever",)``        halt forever (still counts as *awaiting*, §3.1)
``("par", join)``       halt until the parallel rejoins / escapes
``("async", job)``      halt until the async completes → resumes with value
=====================  =====================================================

Resume values for ``("par", join)`` are ``("done", value)`` or
``("escape", signal)`` — the scheduler decides which.
"""

from __future__ import annotations

from typing import Any

from ..lang import ast
from ..lang.errors import RuntimeCeuError
from ..sema.binder import BoundProgram
from .eval import Evaluator
from .trails import BreakSignal, ReturnSignal, Trail
from .values import as_int


class Interp:
    """Stateless walker (all state lives in the scheduler/memory)."""

    def __init__(self, bound: BoundProgram, evaluator: Evaluator, scheduler):
        self.bound = bound
        self.ev = evaluator
        self.sched = scheduler

    # ------------------------------------------------------------- blocks
    def exec_block(self, block: ast.Block, trail: Trail):
        for stmt in block.stmts:
            yield from self.exec_stmt(stmt, trail)

    # --------------------------------------------------------- statements
    def exec_stmt(self, s: ast.Stmt, trail: Trail):
        self.sched.note_step(trail, s)
        if isinstance(s, (ast.Nothing, ast.DeclEvent, ast.PureDecl,
                          ast.DeterministicDecl, ast.CBlockStmt)):
            return
        if isinstance(s, ast.DeclVar):
            for declarator in s.decls:
                sym = self._declared_sym(declarator)
                if declarator.init is None:
                    self.sched.memory.declare(sym)
                else:
                    value = yield from self.exec_setexp(declarator.init,
                                                        trail)
                    self.sched.memory.write(sym, value)
            return
        if isinstance(s, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime,
                          ast.AwaitExp, ast.AwaitForever)):
            yield from self.exec_await(s, trail)
            return
        if isinstance(s, ast.EmitInt):
            value = None if s.value is None else self.ev.eval(s.value)
            self.sched.emit_internal(self.bound.event_of[s.nid], value,
                                     trail)
            return
        if isinstance(s, ast.EmitExt):
            # binder guarantees: output event (input emits live in asyncs)
            value = None if s.value is None else self.ev.eval(s.value)
            self.sched.emit_output(self.bound.event_of[s.nid], value)
            return
        if isinstance(s, ast.If):
            from .values import truthy
            if truthy(self.ev.eval(s.cond)):
                yield from self.exec_block(s.then, trail)
            elif s.orelse is not None:
                yield from self.exec_block(s.orelse, trail)
            return
        if isinstance(s, ast.Loop):
            while True:
                try:
                    yield from self.exec_block(s.body, trail)
                except BreakSignal as sig:
                    if sig.target is s:
                        break
                    raise
            return
        if isinstance(s, ast.Break):
            raise BreakSignal(self.bound.break_target[s.nid])
        if isinstance(s, ast.Return):
            value = None if s.value is None else self.ev.eval(s.value)
            raise ReturnSignal(self.bound.ret_boundary.get(s.nid), value)
        if isinstance(s, ast.ParStmt):
            yield from self.exec_par(s, trail)
            return
        if isinstance(s, ast.CCallStmt):
            self.ev.call(s.call)
            return
        if isinstance(s, ast.CallStmt):
            self.ev.eval(s.exp)
            return
        if isinstance(s, ast.Assign):
            value = yield from self.exec_setexp(s.value, trail)
            self.ev.assign(s.target, value)
            return
        if isinstance(s, ast.DoBlock):
            yield from self.exec_do(s, trail)
            return
        if isinstance(s, ast.AsyncBlock):
            yield from self.exec_async(s, trail)
            return
        raise RuntimeCeuError(f"unhandled statement {type(s).__name__}",
                              s.span)

    # ------------------------------------------------------------- pieces
    def _declared_sym(self, declarator: ast.Declarator):
        return self.bound.sym_of_decl[declarator.nid]

    def exec_await(self, s: ast.Stmt, trail: Trail):
        if isinstance(s, ast.AwaitExt):
            self._note_await(trail, f"ext:{self.bound.event_of[s.nid].name}")
            value = yield ("ext", self.bound.event_of[s.nid])
            return value
        if isinstance(s, ast.AwaitInt):
            self._note_await(trail, f"int:{self.bound.event_of[s.nid].name}")
            value = yield ("int", self.bound.event_of[s.nid])
            return value
        if isinstance(s, ast.AwaitTime):
            self._note_await(trail, "time")
            delta = yield ("time", s.time.us)
            return delta
        if isinstance(s, ast.AwaitExp):
            us = as_int(self.ev.eval(s.exp), "await timeout")
            self._note_await(trail, "time")
            # the `computed` marker makes the scheduler fire this timeout
            # in its own reaction, matching the analysis' `tunk` trigger
            delta = yield ("time", us, True)
            return delta
        if isinstance(s, ast.AwaitForever):
            self._note_await(trail, "forever")
            yield ("forever",)
            raise RuntimeCeuError("awoke from `await forever`", s.span)
        raise RuntimeCeuError("bad await", s.span)

    def _note_await(self, trail: Trail, target: str) -> None:
        """Announce an await about to suspend on the observability bus
        (the interpreter knows the *target name*; the scheduler's later
        ``trail_halt`` only knows the suspension kind)."""
        hooks = self.sched.hooks
        if hooks.enabled:
            hooks.await_begin(trail.label, target, self.sched.clock)
            # the registration is the aux cause of the eventual wakeup
            # (timer arms overwrite this with the timer_schedule span)
            trail.wake_cause = hooks.last_span

    def exec_setexp(self, value: ast.Node, trail: Trail):
        if isinstance(value, ast.Exp):
            return self.ev.eval(value)
        if isinstance(value, (ast.AwaitExt, ast.AwaitInt, ast.AwaitTime,
                              ast.AwaitExp)):
            result = yield from self.exec_await(value, trail)
            return result
        if isinstance(value, ast.DoBlock):
            result = yield from self.exec_do(value, trail)
            return result
        if isinstance(value, ast.ParStmt):
            result = yield from self.exec_par(value, trail)
            return result
        if isinstance(value, ast.AsyncBlock):
            result = yield from self.exec_async(value, trail)
            return result
        raise RuntimeCeuError("invalid right-hand side", value.span)

    def exec_do(self, s: ast.DoBlock, trail: Trail):
        if s.nid in self.bound.value_boundaries:
            try:
                yield from self.exec_block(s.body, trail)
            except ReturnSignal as sig:
                if sig.boundary is s:
                    return sig.value
                raise
            return 0  # block fell through without `return`
        yield from self.exec_block(s.body, trail)
        return 0

    def exec_par(self, s: ast.ParStmt, trail: Trail):
        join = self.sched.spawn_par(s, trail)
        kind, payload = yield ("par", join)
        if kind == "escape":
            raise payload
        if kind != "done":  # pragma: no cover - scheduler invariant
            raise RuntimeCeuError(f"bad par resume {kind!r}", s.span)
        return payload

    def exec_async(self, s: ast.AsyncBlock, trail: Trail):
        job = self.sched.spawn_async(s, trail)
        value = yield ("async", job)
        return value

    # -------------------------------------------------------------- trail
    def trail_body(self, block: ast.Block, trail: Trail):
        """Top generator of a trail: executes the block to completion."""
        yield from self.exec_block(block, trail)
