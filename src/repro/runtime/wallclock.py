"""Wall-clock driving: map the DES calendar onto real time.

The farm's calendar (:class:`~repro.sim.des.Simulator`) is *virtual* —
``run_until`` drains it as fast as Python executes, which is what the
benchmarks and tests want but not what a *served* farm wants: a farm
answering ``/metrics`` scrapes must advance its timers at the rate the
wall clock does, so the telemetry plane observes a live system instead
of a finished one.

:class:`WallClockDriver` is that mapping.  It anchors virtual time 0 at
the real instant :meth:`run` starts and then alternates between

* **sleeping** until the next calendar deadline's real instant (in
  bounded slices, so :meth:`stop` stays responsive), and
* **firing** everything due at that virtual instant under
  :attr:`lock` — the same lock the HTTP admin server
  (:mod:`repro.obs.serve`) takes around snapshots, so a scrape always
  sees a reaction boundary, never a half-driven instance.

The clock is injectable (``clock=`` / ``sleep=``): tests drive hours of
virtual time through a fake clock in milliseconds of real time, and
``speed=`` compresses real time for smoke runs (``speed=50`` serves a
50×-accelerated farm).  Local synchrony, global asynchrony: inside the
lock each shard remains the deterministic synchronous world the paper
describes; the telemetry plane observes it asynchronously from outside.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class WallClockDriver:
    """Drive a :class:`~repro.runtime.farm.Farm` in real time.

    ``speed`` maps virtual to real time: ``speed=1.0`` serves virtual
    microseconds as real microseconds; larger values compress (a 250 ms
    virtual timer fires after 250/speed real milliseconds).

    >>> driver = WallClockDriver(farm, speed=10.0)
    >>> threading.Thread(target=driver.run, daemon=True).start()
    >>> ...                      # farm serves scrapes while timers fire
    >>> driver.stop(); driver.drain()
    """

    def __init__(self, farm, *, speed: float = 1.0,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Optional[Callable[[float], None]] = None,
                 slice_s: float = 0.05):
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.farm = farm
        self.speed = speed
        self.slice_s = slice_s
        self._clock = clock
        self._sleep = sleep if sleep is not None else time.sleep
        #: guards every farm mutation *and* every snapshot taken while
        #: the driver is live — share it with the admin server
        self.lock = threading.RLock()
        self._stop = threading.Event()
        self._running = False
        self._drained = False
        self.epoch: Optional[float] = None
        self.deadline_misses = 0      # fired later than one slice behind

    # ------------------------------------------------------------ clocks
    def now_us(self) -> int:
        """Virtual time corresponding to the current real instant."""
        if self.epoch is None:
            return self.farm.sim.now
        elapsed = self._clock() - self.epoch
        return max(self.farm.sim.now, int(elapsed * 1_000_000 * self.speed))

    @property
    def running(self) -> bool:
        return self._running

    # ----------------------------------------------------------- control
    def stop(self) -> None:
        """Ask :meth:`run` to return at the next slice boundary."""
        self._stop.set()

    def run(self, until_us: Optional[int] = None) -> None:
        """Serve the calendar in real time until ``until_us`` virtual
        microseconds have elapsed (``None``: until :meth:`stop`)."""
        self.epoch = self._clock() - self.farm.sim.now / (1_000_000
                                                          * self.speed)
        self._running = True
        try:
            while not self._stop.is_set():
                with self.lock:
                    nd = self.farm.sim.peek_time()
                if until_us is not None and (nd is None or nd > until_us):
                    if self._wait_until(until_us):
                        break
                    continue
                if nd is None:
                    # idle calendar: poll for late work (sends arriving
                    # through other threads re-populate it)
                    self._sleep(self.slice_s)
                    continue
                if not self._wait_until(nd):
                    continue            # slept a slice; re-check stop
                behind = self.now_us() - nd
                if behind > self.slice_s * 2_000_000 * self.speed:
                    self.deadline_misses += 1
                with self.lock:
                    self.farm.sim.run_until(nd)
        finally:
            self._running = False

    def _wait_until(self, target_us: int) -> bool:
        """Sleep one bounded slice toward ``target_us``; True when the
        target's real instant has passed (or a stop was requested and
        honoured by the caller's loop)."""
        wait_s = (target_us / (1_000_000 * self.speed)
                  + self.epoch - self._clock())
        if wait_s <= 0:
            return True
        self._sleep(min(wait_s, self.slice_s))
        return False

    def drain(self, until_us: Optional[int] = None) -> int:
        """Final alignment for a graceful shutdown: fire everything due
        up to the current (or given) virtual instant and bring every
        live instance's clock to it.  Returns the drain time."""
        t = until_us if until_us is not None else self.now_us()
        with self.lock:
            self.farm.run_until(t)
        self._drained = True
        return t

    # ------------------------------------------------------------- serve
    def snapshot(self) -> dict:
        """Fleet snapshot + watchdog verdicts at a reaction boundary —
        the ``/snapshot`` payload."""
        with self.lock:
            snap = self.farm.fleet_snapshot()
            snap["watchdog"] = self.farm.watchdog()
            snap["wallclock"] = {
                "running": self._running,
                "speed": self.speed,
                "now_us": self.now_us(),
                "deadline_misses": self.deadline_misses,
            }
        return snap


__all__ = ["WallClockDriver"]
