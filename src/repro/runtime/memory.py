"""Program memory for the reference VM.

Céu is fully static: every variable has exactly one live instance (§4.2).
Memory is therefore a flat map ``VarSymbol → value``.  Vectors are Python
lists created at declaration.  Re-entering a block (a new loop iteration)
re-runs declarations, which simply re-initialises the slot — mirroring the
slot-reuse behaviour of the static layout.
"""

from __future__ import annotations

from typing import Any

from ..lang.errors import RuntimeCeuError
from ..sema.symbols import VarSymbol
from .values import CellRef, Ref


def default_value(sym: VarSymbol) -> Any:
    if sym.is_array:
        return [0] * (sym.array_size or 0)
    return 0


class Memory:
    """Flat variable store with pointer (`&var`) support."""

    def __init__(self) -> None:
        self._slots: dict[VarSymbol, Any] = {}

    def declare(self, sym: VarSymbol) -> None:
        self._slots[sym] = default_value(sym)

    def read(self, sym: VarSymbol) -> Any:
        try:
            return self._slots[sym]
        except KeyError:
            raise RuntimeCeuError(
                f"variable `{sym.name}` read before its declaration "
                f"executed") from None

    def write(self, sym: VarSymbol, value: Any) -> None:
        self._slots[sym] = value

    def ref(self, sym: VarSymbol) -> Ref:
        if sym not in self._slots:
            self.declare(sym)
        return CellRef(self._slots, sym)

    def slot_count(self) -> int:
        """Live slots — bounded by the program's variable count (slots are
        keyed per symbol and re-declaration reuses the key)."""
        return len(self._slots)

    def snapshot(self) -> dict[str, Any]:
        """Debug view: name → value (later declarations shadow earlier)."""
        return {sym.name: value for sym, value in self._slots.items()}
