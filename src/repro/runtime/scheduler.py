"""The reaction engine (§2 execution model, §4.5 API).

The scheduler exposes the paper's four-entry C API:

* :meth:`go_init`  — boot reaction;
* :meth:`go_event` — one reaction chain for one external input event;
* :meth:`go_time`  — advance wall-clock time, running one reaction chain
  per expiring deadline (residual-delta semantics of §2.3);
* :meth:`go_async` — one round-robin step of one ``async`` block, whose
  emits tail-call back into ``go_event``/``go_time`` (§4.5).

Within a reaction chain, runnable items live in a single priority queue.
Normal awakenings run first; rejoin/termination continuations of parallel
compositions and loops run later, **the outer the construct, the lower the
priority** (§4.1) — the glitch-avoidance order of the paper's flow graph.
Internal events are *not* queued: an ``emit`` runs its awaiting trails to
halt synchronously and only then resumes the emitter — the stack policy of
§2.2, realised here directly on the Python call stack.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import deque
from typing import Any, Callable, Optional

from ..lang import ast
from ..lang.errors import RuntimeCeuError
from ..obs.hooks import HookBus
from ..obs.metrics import MetricsCollector, MetricsRegistry
from ..sema.binder import BoundProgram
from ..sema.symbols import EventSymbol
from .asyncs import AsyncInterp, AsyncJob
from .cenv import CEnv
from .eval import Evaluator
from .interp import Interp
from .memory import Memory
from .trace import Trace
from .trails import BreakSignal, EscapeJoin, Join, ReturnSignal, Trail

#: status codes, mirroring the paper's C API returns
RUNNING = "running"
TERMINATED = "terminated"


class Scheduler:
    """Executes one Céu program."""

    def __init__(self, bound: BoundProgram, cenv: Optional[CEnv] = None,
                 trace: Optional[Trace] = None,
                 hooks: Optional[HookBus] = None,
                 step_limit: int = 5_000_000,
                 compensate_deltas: bool = True,
                 glitch_free: bool = True,
                 reverse_seeds: bool = False):
        self.bound = bound
        #: ablation switches (§2.3 residual deltas, §4.1 join priorities);
        #: both default to the paper's design — disabling them reproduces
        #: the failure modes the paper designs against
        self.compensate_deltas = compensate_deltas
        self.glitch_free = glitch_free
        #: schedule-diversity switch for the analyzer-soundness oracle:
        #: seed every reaction in reversed arrival order.  Any program the
        #: temporal analysis accepts must behave identically either way.
        self.reverse_seeds = reverse_seeds
        self.memory = Memory()
        self.cenv = cenv if cenv is not None else CEnv()
        self.ev = Evaluator(bound, self.memory, self.cenv)
        self.interp = Interp(bound, self.ev, self)
        self.async_interp = AsyncInterp(bound, self.ev)
        #: instrumentation (docs/OBSERVABILITY.md) — a no-op unless
        #: someone subscribes; the Trace recorder is one subscriber
        self.hooks = hooks if hooks is not None else HookBus()
        self.trace = trace if trace is not None else Trace(enabled=False)
        if self.trace.enabled:
            self.hooks.subscribe(self.trace)
        self.metrics = MetricsRegistry()
        self._metrics_collector: Optional[MetricsCollector] = None

        self.clock = 0                     # wall-clock, microseconds
        self.done = False
        self.result: Any = None
        self.reaction_count = 0
        self.steps_executed = 0
        self.step_limit = step_limit
        #: time-travel support (repro debug): when set, the scheduler
        #: refuses to *start* reaction number ``pause_at`` — go_time and
        #: the input/async drains stop at the boundary, leaving the VM
        #: inspectable exactly after ``pause_at`` completed reactions
        self.pause_at: Optional[int] = None

        # awaiting registries ("gates", §4.3)
        self.ext_waiting: dict[str, list[Trail]] = {}
        self.int_waiting: dict[str, list[Trail]] = {}
        self.forever: list[Trail] = []
        #: heap of (deadline, arming_base, computed?, seq, trail) — the
        #: base/computed components partition coincident deadlines into
        #: per-epoch reactions (see :meth:`go_time`)
        self.timers: list[tuple[int, int, int, int, Trail]] = []
        self.async_jobs: deque[AsyncJob] = deque()
        self.input_queue: deque[tuple[str, Any]] = deque()
        self.output_handler: Optional[Callable[[str, Any], None]] = None
        #: checkpoint support (repro.runtime.checkpoint): when a list is
        #: assigned, every *top-level* driver call — go_event/go_time/
        #: go_async plus queue_input/flush_inputs — appends one journal
        #: op.  Nested calls (an async's emit tail-calling go_event, a
        #: flush delivering queued inputs) are consequences of the
        #: recorded op and are not journaled; replaying the journal in
        #: order reproduces the run exactly (the determinism property
        #: the replay fuzz oracle checks).
        self.journal: Optional[list[tuple]] = None
        self._drive_depth = 0

        # reaction-chain state
        self._heap: list = []
        self._seq = itertools.count()
        self._region_seq = itertools.count(1)
        self._reacting = False
        self._current_base = 0
        self._steps_this_reaction = 0
        self._emit_depth = 0               # §2.2 emit-stack depth
        self._live: set[Trail] = set()
        self.root: Optional[Trail] = None

        self._depth = self._compute_depths()

    # ------------------------------------------------------------ prepass
    def _compute_depths(self) -> dict[int, int]:
        depth: dict[int, int] = {}

        def walk(node: ast.Node, d: int) -> None:
            depth[node.nid] = d
            nested = d + 1 if isinstance(
                node, (ast.ParStmt, ast.Loop, ast.DoBlock,
                       ast.AsyncBlock)) else d
            for child in node.children():
                walk(child, nested)

        walk(self.bound.program, 0)
        return depth

    def depth(self, node: Optional[ast.Node]) -> int:
        if node is None:
            return 0
        return self._depth.get(node.nid, 0)

    # ------------------------------------------------------- observability
    def enable_metrics(self) -> MetricsRegistry:
        """Attach (once) a metrics collector to the hook bus."""
        if self._metrics_collector is None:
            self._metrics_collector = MetricsCollector(self.metrics,
                                                       sampled=self)
            self.hooks.subscribe(self._metrics_collector)
        return self.metrics

    def stats(self) -> dict:
        """Snapshot of the documented metric set (docs/OBSERVABILITY.md).

        The ``runtime`` block is always live (sampled on demand); the
        counter/histogram blocks fill in once :meth:`enable_metrics` (or
        ``Program(..., observe=True)``) has attached the collector.
        """
        snap = self.metrics.snapshot()
        snap["runtime"] = {
            "clock_us": self.clock,
            "reactions_total": self.reaction_count,
            "steps_total": self.steps_executed,
            "live_trails": len(self._live),
            "awaiting": self.awaiting_count(),
            "timer_heap_size": len(self.timers),
            "async_jobs": len(self.async_jobs),
            "input_queue_depth": len(self.input_queue),
            "done": self.done,
            "observed": self._metrics_collector is not None,
        }
        latency = self.metrics.histograms.get("reaction_latency_us")
        if latency is not None and latency.total:
            snap["derived"] = {
                "reactions_per_sec": latency.count * 1e6 / latency.total,
                "steps_per_reaction_mean":
                    self.metrics.histograms["steps_per_reaction"].mean,
            }
        return snap

    # ---------------------------------------------------------- public API
    def paused(self) -> bool:
        """True when the reaction-boundary pause (:attr:`pause_at`) has
        been reached — drivers must stop feeding stimuli."""
        return (self.pause_at is not None
                and self.reaction_count >= self.pause_at)

    def go_init(self) -> str:
        """Boot reaction (``ceu_go_init``)."""
        if self.root is not None:
            raise RuntimeCeuError("program already initialised")
        trail = Trail(gen=None, path=(), parent_join=None, label="main")
        trail.gen = self.interp.trail_body(self.bound.program.body, trail)
        self.root = trail
        self._live.add(trail)
        if self.hooks.enabled:
            self.hooks.trail_spawn(trail.label, trail.path, self.clock)
            trail.wake_cause = self.hooks.last_span
        self._react("boot", None,
                    lambda: self._enqueue_resume(trail, None))
        return TERMINATED if self.done else RUNNING

    def _journal_op(self, op: tuple) -> Optional[int]:
        """Record one top-level driver call for checkpoint replay.
        Returns the entry index so :meth:`_journal_close` can stamp it."""
        if self.journal is not None and self._drive_depth == 0:
            self.journal.append(op)
            return len(self.journal) - 1
        return None

    def _journal_close(self, idx: Optional[int]) -> None:
        """Stamp an entry with the reaction count after its application.
        Replay uses the stamp to detect a partially applied entry (a
        pause — or a crash — landed inside a multi-reaction op) and
        resume it instead of re-running it."""
        if idx is not None and self.journal is not None:
            self.journal[idx] = self.journal[idx] + (self.reaction_count,)

    def go_event(self, name: str, value: Any = None) -> str:
        """One reaction chain for input event ``name`` (``ceu_go_event``)."""
        if self.done:
            return TERMINATED
        sym = self.bound.events.get(name)
        if sym is None or sym.kind != "input":
            raise RuntimeCeuError(f"`{name}` is not a declared input event")
        rec = self._journal_op(("E", name, value))
        self._drive_depth += 1

        def seed() -> None:
            waiting = self.ext_waiting.get(name, [])
            self.ext_waiting[name] = []
            if self.reverse_seeds:
                waiting = list(reversed(waiting))
            for trail in waiting:
                if trail.alive:
                    self._enqueue_resume(trail, value)

        try:
            self._react(f"event:{name}", value, seed)
        finally:
            self._drive_depth -= 1
            self._journal_close(rec)
        return TERMINATED if self.done else RUNNING

    def go_time(self, now: int) -> str:
        """Advance wall-clock time to ``now`` µs (``ceu_go_time``).

        Runs one reaction chain per expiring *logical* deadline; deadlines
        chain (`await 10ms; await 1ms` expires at 10 and 11 ms regardless
        of how late ``go_time`` is called), reproducing the residual-delta
        handling of §2.3.
        """
        if self.done:
            return TERMINATED
        if now < self.clock:
            raise RuntimeCeuError(
                f"time goes backwards ({now} < {self.clock})")
        rec = self._journal_op(("T", now))
        self._drive_depth += 1
        try:
            self._go_time(now)
        finally:
            self._drive_depth -= 1
            self._journal_close(rec)
        return TERMINATED if self.done else RUNNING

    def _go_time(self, now: int) -> None:
        self.clock = now
        while not self.done and not self.paused():
            deadline = self._next_deadline()
            if deadline is None or deadline > now:
                break
            # Pop everything at this absolute deadline, then partition it:
            # timers armed in the same reaction (same base) fire together,
            # cross-epoch coincidences fire as separate reactions, and
            # computed timeouts (`await (exp)`) always fire alone.  This is
            # exactly the batching the temporal analysis explores (one
            # epoch per `fire_timer`, one `tunk` per `fire_unknown_timer`),
            # so its per-reaction bounds hold for the concrete scheduler.
            popped: list[tuple[int, int, int, Trail]] = []
            while self.timers and self.timers[0][0] == deadline:
                _, base, computed, seq, trail = heapq.heappop(self.timers)
                if trail.alive and trail.waiting == "time":
                    popped.append((computed, base, seq, trail))
            # most recently armed epoch first (the freshly re-armed short
            # timer beats the long-armed watchdog expiring with it),
            # computed timeouts last
            popped.sort(key=lambda item: (item[0], -item[1], item[2]))
            parts: list[list[Trail]] = []
            last_key: Optional[tuple] = None
            for computed, base, seq, trail in popped:
                key = (computed, base, seq if computed else -1)
                if key != last_key:
                    parts.append([])
                    last_key = key
                parts[-1].append(trail)
            delta = now - deadline
            for part in parts:
                if self.done or self.paused():
                    break
                # an earlier partition's reaction may have killed these
                live = [t for t in part
                        if t.alive and t.waiting == "time"]
                if not live:
                    continue
                hooked = self.hooks.enabled
                if hooked:
                    prev_cause = self.hooks.cause
                    self.hooks.timer_fire(deadline, delta, len(live))
                    # the fire is the cause of the reaction it seeds
                    self.hooks.cause = self.hooks.last_span

                def seed(live=live, delta=delta) -> None:
                    order = reversed(live) if self.reverse_seeds else live
                    for trail in order:
                        self._enqueue_resume(trail, delta)

                self._react("time", deadline, seed, base=deadline)
                if hooked:
                    self.hooks.cause = prev_cause

    def advance_time(self, us: int) -> str:
        """Convenience: ``go_time(clock + us)``."""
        return self.go_time(self.clock + us)

    def go_async(self) -> str:
        """One async step (``ceu_go_async``): a single loop iteration or a
        single emit of the current job, round-robin across jobs."""
        if self.done:
            return TERMINATED
        rec = self._journal_op(("A",))
        self._drive_depth += 1
        try:
            return self._go_async()
        finally:
            self._drive_depth -= 1
            self._journal_close(rec)

    def _go_async(self) -> str:
        if self.input_queue:
            # asynchronous code cannot run with pending inputs (§2.7)
            self.flush_inputs()
            return TERMINATED if self.done else RUNNING
        job = self._next_job()
        if job is None:
            return RUNNING
        try:
            req = next(job.gen)
        except StopIteration as stop:
            self._complete_async(job, stop.value)
            return TERMINATED if self.done else RUNNING
        kind = req[0]
        hooked = self.hooks.enabled
        if hooked:
            self.hooks.async_step(job.seq, kind, self.clock)
            # the async step causes the reaction(s) its emit triggers
            self.hooks.cause = self.hooks.last_span
        if kind == "emit_ext":
            _, sym, value = req
            if job.aborted:
                if hooked:
                    self.hooks.cause = 0
                return RUNNING
            self.go_event(sym.name, value)
        elif kind == "emit_time":
            if not job.aborted:
                self.go_time(self.clock + req[1])
        # "tick": nothing — one loop iteration consumed
        if hooked:
            self.hooks.cause = 0
        if not job.aborted and not job.done:
            self._rotate_job(job)
        return TERMINATED if self.done else RUNNING

    # input queue (events arriving while a reaction runs / DES platforms)
    def queue_input(self, name: str, value: Any = None) -> None:
        rec = self._journal_op(("Q", name, value))
        self.input_queue.append((name, value))
        self._journal_close(rec)

    def flush_inputs(self) -> None:
        rec = self._journal_op(("F",))
        self._drive_depth += 1
        try:
            while self.input_queue and not self.done and not self.paused():
                name, value = self.input_queue.popleft()
                self.go_event(name, value)
        finally:
            self._drive_depth -= 1
            self._journal_close(rec)

    def has_work(self) -> bool:
        """Anything left that could run without external stimulus?"""
        return bool(self.input_queue or self.async_jobs) and not self.done

    def awaiting_count(self) -> int:
        ext = sum(1 for lst in self.ext_waiting.values()
                  for t in lst if t.alive)
        internal = sum(1 for lst in self.int_waiting.values()
                       for t in lst if t.alive)
        # count timer waiters from the live set, not the heap: go_time
        # pops every same-deadline entry before running the per-epoch
        # partitions, so between two coincident-deadline reactions a
        # still-waiting trail has no heap entry — counting the heap
        # would declare quiescence with a resume still owed
        timers = sum(1 for t in self._live
                     if t.alive and t.waiting == "time")
        forever = sum(1 for t in self.forever if t.alive)
        return ext + internal + timers + forever

    def next_deadline(self) -> Optional[int]:
        """Earliest pending wall-clock deadline (for platform drivers)."""
        return self._next_deadline()

    # ------------------------------------------------------ reaction chain
    def _react(self, trigger: str, value: Any, seed: Callable[[], None],
               base: Optional[int] = None) -> None:
        if self._reacting:
            raise RuntimeCeuError(
                "reaction chains must not be interleaved (§4.5)")
        if self.done:
            return
        self._reacting = True
        self._current_base = self.clock if base is None else base
        index = self.reaction_count
        self.reaction_count += 1
        self._steps_this_reaction = 0
        hooked = self.hooks.enabled
        if hooked:
            start_ns = time.perf_counter_ns()
            self.hooks.reaction_begin(index, trigger, value,
                                      self._current_base)
            # the reaction span is the causal parent of everything it
            # runs (seeded resumes, rejoins); its own parent is whatever
            # triggered it (0 = external, an async step, a timer fire)
            prev_cause = self.hooks.cause
            self.hooks.cause = self.hooks.last_span
        try:
            seed()
            while self._heap and not self.done:
                _, _, kind, payload = heapq.heappop(self._heap)
                if kind == "resume":
                    trail, send_value = payload
                    if trail.alive:
                        self._run_trail(trail, send_value)
                elif kind == "join":
                    self._dispatch_join(payload)
                else:  # escape
                    self._dispatch_escape(payload)
        finally:
            self._heap.clear()
            self._reacting = False
            if hooked:
                self.hooks.reaction_end(
                    index, trigger, self._steps_this_reaction,
                    time.perf_counter_ns() - start_ns)
                self.hooks.cause = prev_cause
        self._check_termination()

    def _enqueue_resume(self, trail: Trail, value: Any) -> None:
        heapq.heappush(self._heap,
                       ((0, 0), next(self._seq), "resume", (trail, value)))

    def _enqueue_join(self, join: Join) -> None:
        prio = (1, -self.depth(join.node)) if self.glitch_free else (0, 0)
        if self.hooks.enabled:
            # causal parent of the deferred rejoin: the halt of the
            # branch whose completion enqueued it (the dispatch may run
            # much later in the reaction, under a different context)
            join.cause = self.hooks.last_span
        heapq.heappush(self._heap, (prio, next(self._seq), "join", join))

    def _enqueue_escape(self, trail: Trail, signal: Exception) -> None:
        if isinstance(signal, BreakSignal):
            target_depth = self.depth(signal.target)
        else:
            boundary = signal.boundary  # type: ignore[attr-defined]
            target_depth = self.depth(boundary)
        prio = (1, -target_depth) if self.glitch_free else (0, 0)
        ej = EscapeJoin(trail, signal)
        if self.hooks.enabled:
            ej.cause = self.hooks.last_span
        heapq.heappush(self._heap, (prio, next(self._seq), "escape", ej))

    def _dispatch_join(self, join: Join) -> None:
        if join.cancelled or not join.owner.alive:
            return
        hooked = self.hooks.enabled
        if hooked:
            prev_cause = self.hooks.cause
            if join.cause:
                self.hooks.cause = join.cause
        if join.mode == "or" or join.has_value:
            self.kill_region(join.region)
        value = join.value if join.has_value else 0
        self._run_trail(join.owner, ("done", value))
        if hooked:
            self.hooks.cause = prev_cause

    def _dispatch_escape(self, ej: EscapeJoin) -> None:
        if ej.cancelled:
            return
        join = ej.trail.parent_join
        if join is None:  # pragma: no cover - guarded at enqueue time
            return
        hooked = self.hooks.enabled
        if hooked:
            prev_cause = self.hooks.cause
            if ej.cause:
                self.hooks.cause = ej.cause
        self.kill_region(join.region)
        owner = join.owner
        if owner.alive:
            self._run_trail(owner, ("escape", ej.signal))
        if hooked:
            self.hooks.cause = prev_cause

    # --------------------------------------------------------- trail steps
    def _run_trail(self, trail: Trail, value: Any) -> None:
        """Run one trail until it halts (one atomic *track*, §4.4)."""
        trail.waiting = None
        trail.time_base = self._current_base
        hooks = self.hooks
        hooked = hooks.enabled
        if hooked:
            # publish the aux wake cause (await/arm/spawn span) for the
            # resume dispatch, then open the resume's causal context
            hooks.wake = trail.wake_cause
            hooks.trail_resume(trail.label, trail.path, self.clock)
            hooks.wake = 0
            trail.wake_cause = 0
            prev_cause = hooks.cause
            hooks.cause = hooks.last_span
        try:
            if not trail.started:
                trail.started = True
                req = next(trail.gen)
            else:
                req = trail.gen.send(value)
        except StopIteration:
            if hooked:
                hooks.trail_halt(trail.label, trail.path, "done",
                                 self.clock)
            self._trail_completed(trail)
            if hooked:
                hooks.cause = prev_cause
            return
        except (BreakSignal, ReturnSignal) as sig:
            if hooked:
                hooks.trail_halt(trail.label, trail.path, "escape",
                                 self.clock)
            self._trail_signal(trail, sig)
            if hooked:
                hooks.cause = prev_cause
            return
        self._register(trail, req)
        if hooked:
            hooks.trail_halt(trail.label, trail.path, req[0], self.clock)
            hooks.cause = prev_cause

    def _register(self, trail: Trail, req: tuple) -> None:
        kind = req[0]
        trail.waiting = kind
        if kind == "ext":
            self.ext_waiting.setdefault(req[1].name, []).append(trail)
        elif kind == "int":
            self.int_waiting.setdefault(req[1].name, []).append(trail)
        elif kind == "time":
            timeout = req[1]
            if timeout < 0:
                raise RuntimeCeuError("negative timeout")
            computed = 1 if len(req) > 2 and req[2] else 0
            base = trail.time_base if self.compensate_deltas else self.clock
            deadline = base + timeout
            heapq.heappush(self.timers,
                           (deadline, base, computed, next(self._seq),
                            trail))
            if self.hooks.enabled:
                self.hooks.timer_schedule(deadline, trail.label, self.clock)
                trail.wake_cause = self.hooks.last_span
            # an already-late deadline is picked up by the next go_time
        elif kind == "forever":
            self.forever.append(trail)
        elif kind in ("par", "async"):
            pass  # join/job structures hold the owner
        else:  # pragma: no cover - interpreter invariant
            raise RuntimeCeuError(f"unknown suspension {kind!r}")

    def _trail_completed(self, trail: Trail) -> None:
        trail.alive = False
        self._live.discard(trail)
        join = trail.parent_join
        if join is None:
            return  # root trail finished; liveness check decides the rest
        if join.mode == "and":
            if join.branch_done(trail.branch_index):
                self._enqueue_join(join)
        elif join.mode == "or":
            join.branch_done(trail.branch_index)
            if not join.or_enqueued:
                join.or_enqueued = True
                self._enqueue_join(join)
        # plain `par` never rejoins: the trail simply dies

    def _trail_signal(self, trail: Trail, sig: Exception) -> None:
        trail.alive = False
        self._live.discard(trail)
        join = trail.parent_join
        if join is None:
            if isinstance(sig, ReturnSignal):
                self._terminate(sig.value)
                return
            raise RuntimeCeuError("`break` escaped the program")
        if isinstance(sig, ReturnSignal) and sig.boundary is join.node:
            # `return` from a value-parallel: completes the whole par
            if not join.has_value:
                join.has_value = True
                join.value = sig.value
            if not join.or_enqueued:
                join.or_enqueued = True
                self._enqueue_join(join)
            return
        self._enqueue_escape(trail, sig)

    # ------------------------------------------------------------- regions
    def spawn_par(self, node: ast.ParStmt, owner: Trail) -> Join:
        region = owner.path + (next(self._region_seq),)
        join = Join(node=node, mode=node.mode, owner=owner, region=region,
                    depth=self.depth(node), n_branches=len(node.blocks))
        branches = list(enumerate(node.blocks))
        if self.reverse_seeds:
            branches.reverse()
        for i, block in branches:
            label = f"{owner.label}.{i + 1}" if owner.label != "main" \
                else f"trail{i + 1}"
            child = Trail(gen=None, path=region + (i,), parent_join=join,
                          branch_index=i, label=label)
            child.gen = self.interp.trail_body(block, child)
            self._live.add(child)
            if self.hooks.enabled:
                self.hooks.trail_spawn(child.label, child.path, self.clock)
                child.wake_cause = self.hooks.last_span
            self._enqueue_resume(child, None)
        return join

    def kill_region(self, prefix: tuple) -> None:
        """Destroy every trail/async in ``prefix`` — the VM analogue of
        clearing a contiguous gate range with ``memset`` (§4.3)."""
        victims = [t for t in self._live if t.in_region(prefix)]
        hooked = self.hooks.enabled
        if hooked and victims:
            self.hooks.region_kill(prefix, len(victims), self.clock)
            # the region kill is the cause of each trail's death
            prev_cause = self.hooks.cause
            self.hooks.cause = self.hooks.last_span
        for trail in victims:
            trail.alive = False
            self._live.discard(trail)
            trail.gen.close()
            if hooked:
                self.hooks.trail_kill(trail.label, trail.path, self.clock)
        if hooked and victims:
            self.hooks.cause = prev_cause
        if self.async_jobs:
            kept = deque()
            for job in self.async_jobs:
                if job.in_region(prefix):
                    job.aborted = True
                else:
                    kept.append(job)
            self.async_jobs = kept
        for item in self._heap:
            if item[2] == "escape" and item[3].trail.in_region(prefix):
                item[3].cancelled = True
            elif item[2] == "join" and item[3].owner.in_region(prefix):
                item[3].cancelled = True

    # ------------------------------------------------------ internal events
    def emit_internal(self, sym: EventSymbol, value: Any,
                      emitter: Trail) -> None:
        """Stack policy (§2.2): run every awaiting trail to halt *now*,
        then return control to the emitter (the Python call stack is the
        emit stack).  ``_emit_depth`` measures that stack: 1 for a
        top-level emit, +1 per nested emit triggered from an awakened
        trail."""
        self._emit_depth += 1
        hooked = self.hooks.enabled
        if hooked:
            self.hooks.emit_internal(sym.name, self._emit_depth,
                                     emitter.label, self.clock)
            # the emit is the causal parent of every trail it wakes
            prev_cause = self.hooks.cause
            self.hooks.cause = self.hooks.last_span
        try:
            waiting = self.int_waiting.get(sym.name)
            if not waiting:
                return  # no one awaiting: the occurrence is discarded
            self.int_waiting[sym.name] = []
            if self.reverse_seeds:
                waiting = list(reversed(waiting))
            for trail in waiting:
                if trail.alive and trail.waiting == "int":
                    self._run_trail(trail, value)
        finally:
            self._emit_depth -= 1
            if hooked:
                self.hooks.cause = prev_cause

    def emit_output(self, sym: EventSymbol, value: Any) -> None:
        if self.hooks.enabled:
            self.hooks.emit_output(sym.name, value, self.clock)
        if self.output_handler is not None:
            self.output_handler(sym.name, value)

    # -------------------------------------------------------------- asyncs
    def spawn_async(self, node: ast.AsyncBlock, owner: Trail) -> AsyncJob:
        job = AsyncJob(node, owner, self.async_interp.run(node))
        self.async_jobs.append(job)
        return job

    def _next_job(self) -> Optional[AsyncJob]:
        while self.async_jobs:
            job = self.async_jobs[0]
            if job.aborted or job.done:
                self.async_jobs.popleft()
                continue
            return job
        return None

    def _rotate_job(self, job: AsyncJob) -> None:
        if self.async_jobs and self.async_jobs[0] is job:
            self.async_jobs.rotate(-1)

    def _complete_async(self, job: AsyncJob, value: Any) -> None:
        job.done = True
        job.result = value
        hooked = self.hooks.enabled
        if hooked:
            self.hooks.async_step(job.seq, "done", self.clock)
            done_span = self.hooks.last_span
        if self.async_jobs and self.async_jobs[0] is job:
            self.async_jobs.popleft()
        if job.aborted or not job.owner.alive:
            return
        # completion is a synthetic input event back to the owner (§2.7)
        if hooked:
            prev_cause = self.hooks.cause
            self.hooks.cause = done_span
        self._react(f"async:{job.seq}", value,
                    lambda: self._enqueue_resume(job.owner, value))
        if hooked:
            self.hooks.cause = prev_cause

    # ------------------------------------------------------------- helpers
    def _next_deadline(self) -> Optional[int]:
        while self.timers:
            entry = self.timers[0]
            if entry[-1].alive and entry[-1].waiting == "time":
                return entry[0]
            heapq.heappop(self.timers)
        return None

    def _terminate(self, value: Any) -> None:
        self.done = True
        self.result = value
        self._heap.clear()
        hooked = self.hooks.enabled
        for trail in list(self._live):
            trail.alive = False
            trail.gen.close()
            if hooked:
                self.hooks.trail_kill(trail.label, trail.path, self.clock)
        self._live.clear()
        self.ext_waiting.clear()
        self.int_waiting.clear()
        self.forever.clear()
        self.timers.clear()
        for job in self.async_jobs:
            job.aborted = True
        self.async_jobs.clear()

    def _check_termination(self) -> None:
        if self.done:
            return
        if (self.awaiting_count() == 0 and not self.async_jobs
                and not self.input_queue):
            self.done = True

    # ---------------------------------------------------------------- hooks
    def note_step(self, trail: Trail, stmt: ast.Stmt) -> None:
        self.steps_executed += 1
        self._steps_this_reaction += 1
        if self._steps_this_reaction > self.step_limit:
            raise RuntimeCeuError(
                "reaction chain exceeded the step limit — unbounded "
                "execution (should have been caught by §2.5 analysis)")
        if self.hooks.enabled:
            self.hooks.step(trail.label, trail.path,
                            type(stmt).__name__, stmt.span.start.line)
