"""Structured execution traces.

The trace reproduces the diagrams of the paper (Figure 1's reaction chains,
the §2.2 internal-event stack walk-through) and backs the determinism
property tests: two runs fed the same input order must produce *identical*
traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass(frozen=True, slots=True)
class Step:
    """One statement executed by one trail within a reaction chain."""

    trail: str        # trail label
    path: tuple       # trail spawn path
    kind: str         # AST node class name
    line: int         # source line

    def __str__(self) -> str:
        return f"{self.trail}:{self.kind}@{self.line}"


@dataclass(slots=True)
class Reaction:
    """One reaction chain: the trigger plus every step it executed."""

    index: int
    trigger: str          # "boot" | "event:NAME" | "time" | "async:NNN"
    value: Any = None
    time_us: int = 0
    steps: list[Step] = field(default_factory=list)
    emitted_internal: list[str] = field(default_factory=list)
    discarded: bool = False   # no trail was awaiting the trigger

    def trails(self) -> list[str]:
        seen: list[str] = []
        for step in self.steps:
            if step.trail not in seen:
                seen.append(step.trail)
        return seen

    def __str__(self) -> str:
        body = " ".join(str(s) for s in self.steps)
        mark = " (discarded)" if self.discarded else ""
        return f"#{self.index} {self.trigger}{mark}: {body}"


class Trace:
    """Recorder installed on a scheduler (``Program(..., trace=True)``)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.reactions: list[Reaction] = []
        self._current: Optional[Reaction] = None

    # hooks called by the scheduler -----------------------------------
    def begin(self, trigger: str, value: Any, time_us: int) -> None:
        if not self.enabled:
            return
        self._current = Reaction(len(self.reactions), trigger, value,
                                 time_us)
        self.reactions.append(self._current)

    def step(self, trail_label: str, path: tuple, kind: str,
             line: int) -> None:
        if self._current is not None:
            self._current.steps.append(Step(trail_label, path, kind, line))

    def emit_internal(self, name: str) -> None:
        if self._current is not None:
            self._current.emitted_internal.append(name)

    def end(self) -> None:
        if self._current is not None and not self._current.steps:
            self._current.discarded = True
        self._current = None

    # reporting --------------------------------------------------------
    def render(self) -> str:
        return "\n".join(str(r) for r in self.reactions)

    def triggers(self) -> list[str]:
        return [r.trigger for r in self.reactions]

    def signature(self) -> tuple:
        """A hashable digest used by determinism property tests."""
        return tuple(
            (r.trigger, tuple((s.trail, s.kind, s.line) for s in r.steps))
            for r in self.reactions)
