"""Structured execution traces.

The trace reproduces the diagrams of the paper (Figure 1's reaction chains,
the §2.2 internal-event stack walk-through) and backs the determinism
property tests: two runs fed the same input order must produce *identical*
traces.

Since the observability layer landed, :class:`Trace` is one subscriber of
the scheduler's hook bus (:mod:`repro.obs.hooks`) rather than a privileged
recorder: the scheduler announces reactions, steps, and internal emits on
the bus, and the trace materialises them into :class:`Reaction` rows.  Its
reporting surface (``reactions`` / ``render`` / ``triggers`` /
``signature``) is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs.hooks import HookSubscriber


@dataclass(frozen=True, slots=True)
class Step:
    """One statement executed by one trail within a reaction chain."""

    trail: str        # trail label
    path: tuple       # trail spawn path
    kind: str         # AST node class name
    line: int         # source line

    def __str__(self) -> str:
        return f"{self.trail}:{self.kind}@{self.line}"


@dataclass(slots=True)
class Reaction:
    """One reaction chain: the trigger plus every step it executed."""

    index: int
    trigger: str          # "boot" | "event:NAME" | "time" | "async:NNN"
    value: Any = None
    time_us: int = 0
    steps: list[Step] = field(default_factory=list)
    emitted_internal: list[str] = field(default_factory=list)
    discarded: bool = False   # no trail was awaiting the trigger

    def trails(self) -> list[str]:
        seen: list[str] = []
        for step in self.steps:
            if step.trail not in seen:
                seen.append(step.trail)
        return seen

    def __str__(self) -> str:
        body = " ".join(str(s) for s in self.steps)
        mark = " (discarded)" if self.discarded else ""
        return f"#{self.index} {self.trigger}{mark}: {body}"


class Trace(HookSubscriber):
    """Recorder subscribed to a scheduler's hook bus
    (``Program(..., trace=True)``)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.reactions: list[Reaction] = []
        self._current: Optional[Reaction] = None

    # hook-bus subscription --------------------------------------------
    def on_reaction_begin(self, index: int, trigger: str, value: Any,
                          time_us: int) -> None:
        self._current = Reaction(len(self.reactions), trigger, value,
                                 time_us)
        self.reactions.append(self._current)

    def on_step(self, trail: str, path: tuple, kind: str,
                line: int) -> None:
        if self._current is not None:
            self._current.steps.append(Step(trail, path, kind, line))

    def on_emit_internal(self, name: str, depth: int, trail: str,
                         time_us: int) -> None:
        if self._current is not None:
            self._current.emitted_internal.append(name)

    def on_reaction_end(self, index: int, trigger: str, steps: int,
                        wall_ns: int) -> None:
        if self._current is not None and not self._current.steps:
            self._current.discarded = True
        self._current = None

    # reporting --------------------------------------------------------
    def render(self) -> str:
        return "\n".join(str(r) for r in self.reactions)

    def triggers(self) -> list[str]:
        return [r.trigger for r in self.reactions]

    def signature(self) -> tuple:
        """A hashable digest used by determinism property tests.

        Includes the internal-event emission order: two runs that execute
        the same steps but emit internal events in a different order are
        *different* behaviours and must not collide.
        """
        return tuple(
            (r.trigger,
             tuple((s.trail, s.kind, s.line) for s in r.steps),
             tuple(r.emitted_internal))
            for r in self.reactions)

    def portable_signature(self) -> tuple:
        """The backend-portable projection of :meth:`signature`.

        Per reaction: the trigger (``"boot"`` / ``"event:NAME"`` /
        ``"time"``) and the internal-event emission order — exactly what
        the §4.4 C backend reports when compiled with ``-DCEU_HOOKS``
        (see :mod:`repro.fuzz.oracles` and docs/FUZZING.md).  Per-step
        details are VM-internal and async completions have no C
        analogue, so both are dropped.
        """
        return tuple(
            (r.trigger, tuple(r.emitted_internal))
            for r in self.reactions
            if not r.trigger.startswith("async:"))
