"""The reactor farm: thousands of program instances, one process.

Céu reactions are run-to-completion and programs are tiny, which is
exactly the shape of a multi-tenant event server.  :class:`Farm`
multiplexes N instances — same or different programs — over the DES
kernel (:class:`~repro.sim.des.Simulator`):

* the program is parsed/bound/analysed **once** and every instance runs
  the shared :class:`~repro.sema.binder.BoundProgram` (compilation is
  amortised across the fleet);
* each instance keeps its own VM clock, offset by its spawn time, and
  the farm arms exactly one calendar entry per instance — the earliest
  pending deadline — re-armed after every drive, so calendar pressure is
  O(instances), not O(armed timers);
* external events flow through **per-instance queues** realised on the
  calendar (:meth:`send` / :meth:`broadcast`), delivered in
  deterministic ``(time, seq)`` order;
* every instance's hook bus can feed **one shared telemetry pipeline**:
  per-instance :class:`~repro.obs.metrics.MetricsRegistry` collectors,
  plus a :class:`~repro.obs.stream.StreamingJsonlExporter` and/or
  :class:`~repro.obs.stream.FlightRecorder` receiving every instance's
  events (tagged ``"inst"``) under one global ``seq``;
* farm-level occurrences the per-instance registries cannot see live in
  a :class:`~repro.obs.fleet.FleetRegistry` of labelled families —
  instances spawned/retired/live, queued and delivered events, output
  emits, stubbed C calls, watchdog flags;
* :meth:`fleet_snapshot` rolls every per-instance registry up via
  :func:`~repro.obs.fleet.merge_snapshots` (cross-instance latency
  percentiles included) and :meth:`watchdog` flags stuck or lagging
  instances from those histograms.

Undefined C symbols (``_Leds_led0Toggle`` and friends) resolve to
counting no-op stubs by default — any platform-flavoured program runs
unmodified, and the calls surface as ``farm_c_calls_total{symbol=…}``.
Pass ``cenv_factory`` to bind real services instead.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Union

from ..lang import ast
from ..lang.errors import RuntimeCeuError
from ..lang.parser import parse
from ..obs.fleet import FleetRegistry, merge_histogram, merge_snapshots
from ..obs.hooks import HOOK_EVENTS, HookSubscriber
from ..obs.metrics import Histogram
from ..obs.stream import FlightRecorder, StreamingJsonlExporter
from ..obs.export import jsonl_line, jsonl_record
from ..sema.binder import BoundProgram, bind
from ..sema.bounded import check_bounded
from ..sim.des import Simulator
from .cenv import CEnv
from .program import Program, parse_time


class _StubCEnv(CEnv):
    """A :class:`CEnv` that turns undefined C symbols into counting
    no-op stubs (shared across the fleet via ``calls``)."""

    def __init__(self, calls) -> None:
        super().__init__()
        self._calls = calls
        #: muted during a warm-start replay: the re-executed C calls were
        #: already counted when the checkpointed instance first ran them
        self.muted = False

    def lookup(self, name: str) -> Any:
        try:
            return super().lookup(name)
        except RuntimeCeuError:
            counter = self._calls.labels(name)

            def stub(*args, _c=counter, _env=self):
                if not _env.muted:
                    _c.inc()
                return 0

            self.define(name, stub)
            return stub


class InstanceTap(HookSubscriber):
    """Forwards one instance's hook events into the farm's shared line
    sinks, tagging each record with the instance id.

    Each sink keeps its own global ``seq`` across every instance, so the
    merged stream carries true fleet-wide ordering — the farm's exact
    interleaved-writers usage of the streaming exporter.
    """

    __slots__ = ("sinks", "instance")

    def __init__(self, sinks, instance: int):
        self.sinks = sinks
        self.instance = instance


def _tap(event: str, fields: tuple[str, ...]) -> Callable:
    def record(self, *args) -> None:
        for sink in self.sinks:
            rec = jsonl_record(event, fields, args, sink.seq)
            rec["inst"] = self.instance
            sink.seq += 1
            sink._line(jsonl_line(rec))

    record.__name__ = f"on_{event}"
    return record


for _name, _fields in HOOK_EVENTS.items():
    setattr(InstanceTap, f"on_{_name}", _tap(_name, _fields))
del _name, _fields


class Instance:
    """One live program in the farm."""

    __slots__ = ("index", "program_name", "program", "t0", "handle",
                 "armed_deadline", "alive")

    def __init__(self, index: int, program_name: str, program: Program,
                 t0: int):
        self.index = index
        self.program_name = program_name
        self.program = program
        self.t0 = t0                     # sim time of spawn (clock offset)
        self.handle: Optional[int] = None
        self.armed_deadline: Optional[int] = None   # in sim time
        self.alive = True

    def local(self, sim_now: int) -> int:
        """Translate simulator time into this instance's VM clock."""
        return sim_now - self.t0


class Farm:
    """N bound program instances multiplexed over one DES calendar.

    >>> farm = Farm(load("blink"), n=1000, program="blink")
    >>> farm.run_until("1s")
    >>> snap = farm.fleet_snapshot()
    >>> snap["merged"]["counters"]["reactions_total"]
    4000
    """

    def __init__(self, source: Union[str, ast.Program, BoundProgram,
                                     None] = None,
                 n: int = 0, *, program: str = "prog",
                 sim: Optional[Simulator] = None, observe: bool = True,
                 stream: Optional[StreamingJsonlExporter] = None,
                 recorder: Optional[FlightRecorder] = None,
                 cenv_factory: Optional[Callable[[], CEnv]] = None,
                 check: bool = True, sinks: Sequence = (),
                 subscribers: Sequence = (), record: bool = False,
                 postmortem_dir=None):
        self.sim = sim if sim is not None else Simulator()
        self.observe = observe
        self.check = check
        self.cenv_factory = cenv_factory
        self.stream = stream
        self.recorder = recorder
        #: journal recording per instance — the prerequisite for
        #: :meth:`checkpoint` / :meth:`postmortem` / warm starts
        self.record = record
        #: when set, the watchdog auto-captures a postmortem bundle for
        #: every newly flagged instance (one per instance, deduplicated)
        self.postmortem_dir = postmortem_dir
        self._postmortemmed: set[int] = set()
        #: extra line sinks (e.g. the /events LineTee) ride beside the
        #: exporter/recorder; extra hook subscribers (e.g. one shared
        #: Profiler feeding /flamegraph) attach to every instance's bus
        self._sinks = [s for s in (stream, recorder) if s is not None] \
            + list(sinks)
        self._subscribers = list(subscribers)

        self.programs: dict[str, BoundProgram] = {}
        self.instances: list[Instance] = []

        self.fleet = FleetRegistry()
        self._spawned = self.fleet.counter_family(
            "farm_instances_spawned_total", ("program",))
        self._retired = self.fleet.counter_family(
            "farm_instances_retired_total", ("program",))
        self._live_gauge = self.fleet.gauge_family(
            "farm_instances_live", ("program",))
        self._queued = self.fleet.gauge_family(
            "farm_queued_events", ("program",))
        self._events = self.fleet.counter_family(
            "farm_events_total", ("program", "event"))
        self._dropped = self.fleet.counter_family(
            "farm_events_dropped_total", ("program", "event"))
        self._outputs = self.fleet.counter_family(
            "farm_outputs_total", ("program", "event"))
        self._c_calls = self.fleet.counter_family(
            "farm_c_calls_total", ("symbol",))
        self._flags = self.fleet.counter_family(
            "farm_watchdog_flags_total", ("reason",))
        self._checkpoints = self.fleet.counter_family(
            "farm_checkpoints_total", ("program",))
        self._postmortems = self.fleet.counter_family(
            "farm_postmortems_total", ("reason",))
        self._warm_starts = self.fleet.counter_family(
            "farm_warm_starts_total", ("program",))

        #: program name → source text (when known) for checkpoint
        #: self-containment
        self.sources: dict[str, Optional[str]] = {}

        if source is not None:
            self.add_program(program, source)
            if n:
                self.spawn(n, program=program)

    # --------------------------------------------------------------- fleet
    def add_program(self, name: str, source: Union[str, ast.Program,
                                                   BoundProgram]) -> None:
        """Bind (and bound-check) a program once for the whole fleet."""
        if isinstance(source, str):
            bound = bind(parse(source, f"<farm:{name}>"))
            self.sources[name] = source
        elif isinstance(source, ast.Program):
            bound = bind(source)
            self.sources[name] = None
        else:
            bound = source
            self.sources[name] = None
        if self.check:
            check_bounded(bound)
        self.programs[name] = bound

    def spawn(self, n: int = 1, program: Optional[str] = None, *,
              warm_from=None) -> list[Instance]:
        """Create and boot ``n`` instances at the current virtual time.

        With ``warm_from`` (a :class:`~repro.runtime.checkpoint
        .Checkpoint`), each instance *warm-starts*: instead of booting
        from reaction 0 it replays the checkpoint's journal — detached,
        with C-call counting muted and telemetry unattached, so the
        already-accounted work is not double-counted — and joins the
        fleet standing at the checkpoint's boundary with its clock
        offset so VM time continues from ``checkpoint.clock_us``.  This
        is the farm-migration seam: a bundle captured on one shard
        respawns on another mid-flight.
        """
        if warm_from is not None:
            return self._spawn_warm(n, program, warm_from)
        if program is None:
            if len(self.programs) != 1:
                raise ValueError("program= is required when the farm "
                                 "holds several programs")
            program = next(iter(self.programs))
        bound = self.programs[program]
        born = []
        for _ in range(n):
            index = len(self.instances)
            cenv = (self.cenv_factory() if self.cenv_factory is not None
                    else _StubCEnv(self._c_calls))
            prog = Program(bound, cenv=cenv, observe=self.observe,
                           check=False, record=self.record)
            prog.sched.output_handler = self._output_handler(program)
            if self._sinks:
                prog.observe(InstanceTap(self._sinks, index))
            for sub in self._subscribers:
                prog.observe(sub)
            inst = Instance(index, program, prog, self.sim.now)
            self.instances.append(inst)
            self._spawned.labels(program).inc()
            self._live_gauge.labels(program).inc()
            prog.start()
            self._post_drive(inst)
            born.append(inst)
        return born

    def _spawn_warm(self, n: int, program: Optional[str],
                    ckpt) -> list[Instance]:
        from .checkpoint import (replay_journal, state_fingerprint,
                                 CheckpointError, apply_options)

        if program is None:
            program = "warm"
        if program not in self.programs:
            self.add_program(program, ckpt.source)
            self.sources[program] = ckpt.source
        bound = self.programs[program]
        boundary = ckpt.reaction_count
        born = []
        for _ in range(n):
            index = len(self.instances)
            cenv = (self.cenv_factory() if self.cenv_factory is not None
                    else _StubCEnv(self._c_calls))
            prog = Program(bound, cenv=cenv, observe=False, check=False,
                           record=self.record)
            prog.source = ckpt.source
            sched = prog.sched
            apply_options(sched, ckpt)
            # detached replay to the boundary (telemetry off, stubs muted)
            muted = isinstance(cenv, _StubCEnv)
            if muted:
                cenv.muted = True
            sched.pause_at = boundary
            sched.go_init()
            replay_journal(sched, ckpt.journal, pause_at=boundary)
            sched.pause_at = None
            if muted:
                cenv.muted = False
            if ckpt.fingerprint is not None:
                got = state_fingerprint(sched)
                if got != ckpt.fingerprint:
                    raise CheckpointError(
                        f"warm start diverged from checkpoint "
                        f"(instance {index}): fingerprint {got[:12]}… "
                        f"!= {ckpt.fingerprint[:12]}…")
            # attach the fleet telemetry only now — the replayed past is
            # the checkpointed instance's history, not this one's
            if self.observe:
                sched.enable_metrics()
            sched.output_handler = self._output_handler(program)
            if self._sinks:
                prog.observe(InstanceTap(self._sinks, index))
            for sub in self._subscribers:
                prog.observe(sub)
            # VM time continues from the checkpoint clock
            inst = Instance(index, program, prog,
                            self.sim.now - ckpt.clock_us)
            self.instances.append(inst)
            self._spawned.labels(program).inc()
            self._warm_starts.labels(program).inc()
            self._live_gauge.labels(program).inc()
            self._post_drive(inst)
            born.append(inst)
        return born

    def _output_handler(self, program: str) -> Callable[[str, Any], None]:
        outputs = self._outputs

        def on_output(name: str, value: Any) -> None:
            outputs.labels(program, name).inc()

        return on_output

    def live(self) -> int:
        return sum(1 for inst in self.instances if inst.alive)

    # ------------------------------------------------------------ calendar
    def _arm(self, inst: Instance) -> None:
        """(Re-)arm the instance's single calendar entry at its earliest
        pending deadline."""
        nd = inst.program.sched.next_deadline()
        if nd is None:
            if inst.handle is not None:
                self.sim.cancel(inst.handle)
                inst.handle = None
                inst.armed_deadline = None
            return
        at = max(nd + inst.t0, self.sim.now)
        if inst.armed_deadline == at and inst.handle is not None:
            return
        if inst.handle is not None:
            self.sim.cancel(inst.handle)
        inst.armed_deadline = at
        inst.handle = self.sim.at(at, lambda: self._fire(inst))

    def _fire(self, inst: Instance) -> None:
        inst.handle = None
        inst.armed_deadline = None
        if not inst.alive:
            return
        inst.program.at(inst.local(self.sim.now))
        self._post_drive(inst)

    def _post_drive(self, inst: Instance) -> None:
        if inst.program.done:
            self._retire(inst)
        else:
            self._arm(inst)

    def _retire(self, inst: Instance) -> None:
        if not inst.alive:
            return
        inst.alive = False
        if inst.handle is not None:
            self.sim.cancel(inst.handle)
            inst.handle = None
        self._retired.labels(inst.program_name).inc()
        self._live_gauge.labels(inst.program_name).dec()

    # -------------------------------------------------------------- events
    def send(self, index: int, event: str, value: Any = None,
             at: Optional[int] = None) -> None:
        """Queue one external event for one instance (delivered via the
        calendar at ``at``, default: the current virtual time)."""
        inst = self.instances[index]
        queued = self._queued.labels(inst.program_name)
        queued.inc()

        def deliver() -> None:
            queued.dec()
            if not inst.alive or inst.program.done:
                self._dropped.labels(inst.program_name, event).inc()
                return
            inst.program.at(inst.local(self.sim.now))
            inst.program.send(event, value)
            self._events.labels(inst.program_name, event).inc()
            self._post_drive(inst)

        self.sim.at(self.sim.now if at is None else at, deliver)

    def broadcast(self, event: str, value: Any = None,
                  at: Optional[int] = None) -> None:
        """Queue one event for every live instance."""
        for inst in self.instances:
            if inst.alive:
                self.send(inst.index, event, value, at=at)

    # ------------------------------------------------------------- driving
    def run_until(self, spec: Union[int, str]) -> None:
        """Drive the calendar (deliveries + timer wakeups) to a virtual
        time, then align every live instance's clock with it."""
        t = parse_time(spec)
        self.sim.run_until(t)
        for inst in self.instances:
            if inst.alive and not inst.program.done:
                inst.program.at(inst.local(t))
                self._post_drive(inst)

    def run_script(self, script) -> None:
        """Apply a fuzz/witness-format stimulus script to the fleet:
        ``("E", name, value)`` broadcasts, ``("T", us)`` advances the
        calendar to an absolute virtual time."""
        for item in script:
            if item[0] == "E":
                self.broadcast(item[1], item[2])
                self.sim.run_until(self.sim.now)
            else:
                self.run_until(item[1])

    # ------------------------------------------------------------ watchdog
    def watchdog(self, factor: float = 4.0, min_count: int = 8,
                 min_lag_us: float = 1000.0) -> dict:
        """Flag stuck or lagging instances.

        * **lagging** — the instance's *median* reaction latency exceeds
          ``factor`` × the fleet-wide median AND the ``min_lag_us``
          absolute floor (from the ``reaction_latency_us`` histograms;
          medians so one GC pause or scheduler blip cannot flag a
          healthy instance — a lagging instance is *consistently* slow;
          instances with fewer than ``min_count`` reactions are skipped
          as statistically silent, and the floor keeps sub-millisecond
          jitter from flagging a fleet whose baseline is tens of µs);
        * **stuck** — the instance still owes work at the current
          virtual time: a pending deadline or queued input it never
          drained (a correctly driven farm has neither).

        Each flag bumps ``farm_watchdog_flags_total{reason=…}``.
        """
        flagged: list[dict] = []
        fleet_p50 = fleet_p99 = None
        per_instance: list[tuple[Instance, Optional[Histogram]]] = []
        if self.observe:
            hists = []
            for inst in self.instances:
                h = inst.program.sched.metrics.histograms.get(
                    "reaction_latency_us")
                per_instance.append((inst, h))
                if h is not None and h.count:
                    hists.append(h)
            if hists:
                merged = Histogram(hists[0].bounds)
                for h in hists:
                    merge_histogram(merged, h)
                fleet_p50 = merged.percentile(50)
                fleet_p99 = merged.percentile(99)
        for inst, h in per_instance:
            if (fleet_p50 and h is not None and h.count >= min_count):
                p50 = h.percentile(50)
                if p50 is not None and p50 > max(factor * fleet_p50,
                                                 min_lag_us):
                    self._flags.labels("lagging").inc()
                    flagged.append({"instance": inst.index,
                                    "reason": "lagging",
                                    "p50_us": p50,
                                    "fleet_p50_us": fleet_p50})
        for inst in self.instances:
            if not inst.alive or inst.program.done:
                continue
            sched = inst.program.sched
            nd = sched.next_deadline()
            overdue = nd is not None and nd + inst.t0 < self.sim.now \
                and inst.handle is None
            backlog = bool(sched.input_queue)
            if overdue or backlog:
                self._flags.labels("stuck").inc()
                flagged.append({"instance": inst.index, "reason": "stuck",
                                "overdue_deadline": overdue,
                                "queued_inputs": len(sched.input_queue)})
        if self.postmortem_dir is not None:
            self._auto_postmortem(flagged)
        return {"fleet_p50_us": fleet_p50, "fleet_p99_us": fleet_p99,
                "factor": factor, "flagged": flagged}

    def _auto_postmortem(self, flagged: list[dict]) -> None:
        """Black-box capture for newly flagged instances — once per
        instance, and never allowed to take the watchdog down with it."""
        from .checkpoint import CheckpointError

        for flag in flagged:
            index = flag["instance"]
            if index in self._postmortemmed:
                continue
            try:
                flag["postmortem"] = str(self.postmortem(
                    index, reason=flag["reason"], detail=dict(flag)))
            except (CheckpointError, OSError) as exc:
                flag["postmortem_error"] = str(exc)

    # --------------------------------------------- checkpoints / postmortems
    def checkpoint(self, index: int):
        """Serialize one instance at its current reaction boundary
        (requires ``record=True``)."""
        from .checkpoint import snapshot

        inst = self.instances[index]
        ck = snapshot(inst.program,
                      source=self.sources.get(inst.program_name),
                      filename=f"<farm:{inst.program_name}>")
        self._checkpoints.labels(inst.program_name).inc()
        return ck

    def postmortem(self, index: int, *, reason: str = "manual",
                   directory=None, detail: Optional[dict] = None):
        """Capture a black-box bundle for one instance: its checkpoint,
        the FlightRecorder ring, the causal slice of its last reaction,
        and the fleet snapshot — written atomically (complete with
        manifest, or absent).  Returns the bundle path."""
        import time as _time
        from pathlib import Path

        from .checkpoint import write_postmortem

        directory = directory if directory is not None \
            else self.postmortem_dir
        if directory is None:
            raise ValueError("no postmortem directory (pass directory= "
                             "or construct the farm with postmortem_dir=)")
        inst = self.instances[index]
        ck = self.checkpoint(index)
        bundle = Path(directory) / (f"{inst.program_name}-i{index}"
                                    f"-r{ck.reaction_count}")
        lines = self.recorder.lines() if self.recorder is not None \
            else None
        path = write_postmortem(
            bundle, ck, reason=reason, program=inst.program_name,
            instance=index, recorder_lines=lines,
            fleet=self.fleet_snapshot(),
            slice_text=self._causal_slice(inst, ck), detail=detail,
            created_at=_time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                      _time.gmtime()))
        self._postmortems.labels(reason).inc()
        self._postmortemmed.add(index)
        return path

    def _causal_slice(self, inst: Instance, ck) -> Optional[str]:
        """Causal slice of the checkpoint's last reaction, derived by an
        instrumented detached replay (best-effort — a bundle without a
        slice is still a bundle)."""
        try:
            from ..obs.causal import CausalGraph
            from .checkpoint import apply_options, replay_journal

            prog = Program(self.programs[inst.program_name], check=False)
            apply_options(prog.sched, ck)
            graph = prog.observe(CausalGraph(prog.hooks))
            boundary = ck.reaction_count
            prog.sched.pause_at = boundary
            prog.sched.go_init()
            replay_journal(prog.sched, ck.journal, pause_at=boundary)
            node = graph.find(f"reaction:{boundary - 1}")
            if node is None:
                return None
            return graph.render_slice(node.span)
        except Exception:
            return None

    # ------------------------------------------------------------ snapshot
    def fleet_snapshot(self) -> dict:
        """One JSON-ready snapshot of the whole fleet: the labelled farm
        families, the DES kernel counters, and the cross-instance rollup
        of every per-instance registry."""
        merged = merge_snapshots(
            [inst.program.sched.metrics.snapshot()
             for inst in self.instances]) if self.observe \
            else merge_snapshots([])
        done = sum(1 for inst in self.instances if inst.program.done)
        return {
            "schema": 1,
            "instances": self.live(),
            "spawned": len(self.instances),
            "done": done,
            "programs": {name: sum(1 for i in self.instances
                                   if i.program_name == name)
                         for name in sorted(self.programs)},
            "now_us": self.sim.now,
            "sim": self.sim.stats(),
            "farm": self.fleet.snapshot(),
            "merged": merged,
        }

    def close(self) -> None:
        if self.stream is not None:
            self.stream.close()


__all__ = ["Farm", "Instance", "InstanceTap"]
