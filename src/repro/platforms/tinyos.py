"""Simulated TinyOS/WSN platform (§3, §3.1).

The paper's first demo runs on *micaz* motes under TinyOS, with the Céu
binding intercepting every OS event and re-emitting it as a Céu input
event.  Here the binding's surface is reproduced over the discrete-event
simulator:

* ``_TOS_NODE_ID`` — the mote id;
* ``_Leds_set / _Leds_led0Toggle / _Leds_led1Toggle / _Leds_led2Toggle``;
* ``_Radio_send(dest, msg)`` / ``_Radio_getPayload(msg)`` and the input
  event ``Radio_receive`` (carrying the received message);
* wall-clock time, driven from the shared simulation clock.

Failures (a mote going down / coming back) and message loss are injectable,
which is how the ring demo's network-down behaviour is exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs.hooks import HookBus
from ..obs.metrics import MetricsRegistry
from ..runtime import CEnv, Program
from ..runtime.values import ItemRef, Ref
from ..sim.des import Rng, Simulator


class Message:
    """A `_message_t`: a small payload vector (ints)."""

    __slots__ = ("payload",)

    def __init__(self, payload: Optional[list] = None):
        self.payload = list(payload) if payload is not None else [0, 0, 0, 0]

    def copy(self) -> "Message":
        return Message(self.payload)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Message({self.payload})"


@dataclass
class LedState:
    """Led history of one mote: (time_us, value 0..7)."""

    value: int = 0
    history: list[tuple[int, int]] = field(default_factory=list)

    def set(self, now: int, value: int) -> None:
        self.value = value & 7
        self.history.append((now, self.value))

    def toggle(self, now: int, bit: int) -> None:
        self.set(now, self.value ^ (1 << bit))


class Mote:
    """One sensor node running a Céu program."""

    def __init__(self, world: "TinyOsWorld", node_id: int, source: str,
                 extra_env: Optional[dict] = None):
        self.world = world
        self.id = node_id
        self.leds = LedState()
        self.up = True
        self.sent: list[tuple[int, int, Message]] = []     # (t, dest, msg)
        self.received: list[tuple[int, Message]] = []      # (t, msg)
        cenv = CEnv(world.base_env)
        cenv.define_many({
            "TOS_NODE_ID": node_id,
            "Leds_set": self._leds_set,
            "Leds_led0Toggle": lambda: self._leds_toggle(0),
            "Leds_led1Toggle": lambda: self._leds_toggle(1),
            "Leds_led2Toggle": lambda: self._leds_toggle(2),
            "Radio_send": self._radio_send,
            "Radio_getPayload": radio_get_payload,
        })
        if extra_env:
            cenv.define_many(extra_env)
        # each mote gets its own hook bus: reaction streams of different
        # schedulers must not interleave on one exporter track set
        self.program = Program(source, cenv=cenv, observe=world.observe,
                               filename=f"mote{node_id}.ceu")
        self.cenv = cenv

    # --------------------------------------------------------- C bindings
    def _leds_set(self, value: int) -> int:
        self.leds.set(self.world.sim.now, value)
        return 0

    def _leds_toggle(self, bit: int) -> int:
        self.leds.toggle(self.world.sim.now, bit)
        return 0

    def _radio_send(self, dest: int, msg: Any) -> int:
        message = coerce_message(msg)
        self.sent.append((self.world.sim.now, dest, message.copy()))
        self.world.deliver(self.id, dest, message.copy())
        return 0

    # ----------------------------------------------------------- lifecycle
    def boot(self) -> None:
        self.program.start()
        self.world.arm_timer(self)

    def receive(self, msg: Message) -> None:
        if not self.up or self.program.done:
            return
        self.received.append((self.world.sim.now, msg.copy()))
        self.sync_time()
        self.program.send("Radio_receive", msg)
        self.world.arm_timer(self)

    def sync_time(self) -> None:
        if self.program.clock < self.world.sim.now:
            self.program.at(self.world.sim.now)

    def fail(self) -> None:
        """Take the mote down (it stops reacting and transmitting)."""
        self.up = False

    def recover(self) -> None:
        self.up = True
        self.sync_time()
        self.world.arm_timer(self)


def radio_get_payload(msg: Any) -> Ref:
    """`_Radio_getPayload` — pointer to the first payload word.  Accepts a
    `_message_t` value or a pointer to one (initialising it on demand, as
    TinyOS's accessor does for a stack-allocated message)."""
    if isinstance(msg, Ref):
        inner = msg.get()
        if not isinstance(inner, Message):
            inner = Message()
            msg.set(inner)
        msg = inner
    if not isinstance(msg, Message):
        raise TypeError(f"not a message: {msg!r}")
    return ItemRef(msg.payload, 0)


def coerce_message(msg: Any) -> Message:
    if isinstance(msg, Ref):
        msg = msg.get()
    if not isinstance(msg, Message):
        raise TypeError(f"not a message: {msg!r}")
    return msg


class TinyOsWorld:
    """A network of motes over the DES.

    ``latency_us`` is the radio flight+stack time; ``loss`` an optional
    probability of dropping each unicast (seeded, deterministic).
    """

    def __init__(self, latency_us: int = 5_000, loss: float = 0.0,
                 seed: int = 7, observe: bool = False,
                 hooks: Optional[HookBus] = None):
        self.hooks = hooks if hooks is not None else HookBus()
        self.observe = observe
        self.sim = Simulator(hooks=self.hooks)
        self.metrics = MetricsRegistry()
        self.base_env = CEnv()
        self.motes: dict[int, Mote] = {}
        self.latency_us = latency_us
        self.loss = loss
        self.rng = Rng(seed)
        self.dropped: list[tuple[int, int, int]] = []   # (t, src, dest)
        self._timer_handles: dict[int, int] = {}

    # ----------------------------------------------------------- topology
    def add_mote(self, node_id: int, source: str,
                 extra_env: Optional[dict] = None) -> Mote:
        mote = Mote(self, node_id, source, extra_env)
        self.motes[node_id] = mote
        return mote

    def boot(self) -> None:
        for mote in self.motes.values():
            mote.boot()

    # ------------------------------------------------------------- radio
    def deliver(self, src: int, dest: int, msg: Message) -> None:
        self.metrics.counter("radio.sent").inc()
        sender = self.motes.get(src)
        if sender is not None and not sender.up:
            self.metrics.counter("radio.suppressed_down").inc()
            return  # a downed mote transmits nothing
        if self.loss and self.rng.chance(self.loss):
            self.dropped.append((self.sim.now, src, dest))
            self.metrics.counter("radio.dropped").inc()
            return
        target = self.motes.get(dest)
        if target is None:
            self.metrics.counter("radio.unroutable").inc()
            return
        self.metrics.counter("radio.delivered").inc()
        self.sim.after(self.latency_us, lambda: target.receive(msg))

    # ------------------------------------------------------------- timers
    def arm_timer(self, mote: Mote) -> None:
        """(Re)schedule the DES wake-up for the mote's next Céu deadline."""
        handle = self._timer_handles.pop(mote.id, None)
        if handle is not None:
            self.sim.cancel(handle)
        if mote.program.done or not mote.up:
            return
        deadline = mote.program.sched.next_deadline()
        if deadline is None:
            return
        when = max(deadline, self.sim.now)
        self._timer_handles[mote.id] = self.sim.at(
            when, lambda m=mote: self._fire_timer(m))

    def _fire_timer(self, mote: Mote) -> None:
        self._timer_handles.pop(mote.id, None)
        if not mote.up or mote.program.done:
            return
        mote.sync_time()
        self.arm_timer(mote)

    # ------------------------------------------------------- observability
    def stats(self) -> dict:
        """World-level snapshot: DES kernel, radio counters, and (when
        ``observe=True``) each mote's VM metrics."""
        return {
            "sim": self.sim.stats(),
            "radio": self.metrics.snapshot()["counters"],
            "dropped": len(self.dropped),
            "motes": {node_id: mote.program.stats()
                      for node_id, mote in sorted(self.motes.items())},
        }

    # ---------------------------------------------------------------- run
    def run_until(self, time_us: int) -> None:
        for mote in self.motes.values():
            self.arm_timer(mote)
        while True:
            when = self.sim.peek_time()
            if when is None or when > time_us:
                break
            self.sim.step()
        self.sim.now = max(self.sim.now, time_us)
        for mote in self.motes.values():
            if mote.up and not mote.program.done:
                mote.sync_time()
