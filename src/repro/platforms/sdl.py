"""Simulated SDL "standalone" platform (§3.3).

The Mario demo uses the standalone binding: the program generates all of
its own input from ``async`` blocks, polling SDL for key events and
emitting time/``Step`` events itself.  The binding surface:

* ``_SDL_PollEvent(&event)`` — pops a scripted key queue (writes the event
  struct through the pointer, returns 0/1);
* ``_SDL_Delay(ms)`` — advances a *virtual* SDL clock only (simulation does
  not wait, §2.8);
* ``_SDL_KEYDOWN`` — the event-type constant;
* ``_redraw(...)`` / ``_redraw_on(flag)`` — the demo's single side effect:
  a recorded frame list with an enable toggle (used by the backwards
  replay, §3.3);
* ``_time(0)`` — a fixed seed source so replays are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..runtime import CEnv, Program
from ..runtime.values import Ref

SDL_KEYDOWN = 2          # arbitrary nonzero tag, as in SDL headers


@dataclass
class SdlEventRecord:
    type: int = 0
    key: int = 0


@dataclass
class Screen:
    enabled: bool = True
    frames: list[tuple] = field(default_factory=list)

    def redraw(self, *args) -> int:
        if self.enabled:
            self.frames.append(tuple(args))
        return 0

    def redraw_on(self, flag: int) -> int:
        self.enabled = bool(flag)
        return 0


class SdlHost:
    """Hosts one standalone Céu program with scripted key presses.

    ``key_script`` holds poll indices: the n-th call to ``SDL_PollEvent``
    returns a KEYDOWN iff ``n`` is in the script — this mirrors how the
    demo's generator polls once per 10 ms step, so a poll index *is* a
    game step.
    """

    def __init__(self, source: str, key_script: Optional[set] = None,
                 seed: int = 42, extra_env: Optional[dict] = None,
                 trace: bool = False, observe: bool = False):
        self.screen = Screen()
        self.key_script = set(key_script or ())
        self.poll_count = 0
        self.sdl_clock_ms = 0
        cenv = CEnv()
        cenv.define_many({
            "SDL_KEYDOWN": SDL_KEYDOWN,
            "SDL_PollEvent": self._poll_event,
            "SDL_Delay": self._delay,
            "SDL_Event": 0,
            "redraw": self.screen.redraw,
            "redraw_on": self.screen.redraw_on,
            "time": lambda _=0: seed,
        })
        if extra_env:
            cenv.define_many(extra_env)
        self.program = Program(source, cenv=cenv, trace=trace,
                               observe=observe, filename="sdl.ceu")

    def _poll_event(self, event_ptr) -> int:
        self.poll_count += 1
        if (self.poll_count - 1) in self.key_script:
            record = SdlEventRecord(type=SDL_KEYDOWN, key=1)
            if isinstance(event_ptr, Ref):
                event_ptr.set(record)
            return 1
        if isinstance(event_ptr, Ref) and not isinstance(
                event_ptr.get(), SdlEventRecord):
            event_ptr.set(SdlEventRecord())
        return 0

    def _delay(self, ms: int) -> int:
        self.sdl_clock_ms += ms
        return 0

    def run(self, max_async_steps: int = 10_000_000) -> None:
        """Standalone mode: boot and let the program drive itself."""
        self.program.start()
        self.program.run(max_async_steps=max_async_steps)

    def stats(self) -> dict:
        """Host snapshot: VM metrics plus SDL-side activity."""
        stats = self.program.stats()
        stats["sdl"] = {
            "polls": self.poll_count,
            "frames": len(self.screen.frames),
            "sdl_clock_ms": self.sdl_clock_ms,
        }
        return stats
