"""Simulated platforms: TinyOS/WSN motes (§3.1), Arduino (§3.2), and the
standalone SDL binding (§3.3)."""

from .arduino import AnalogScript, ArduinoBoard, Lcd
from .sdl import SdlHost, Screen
from .tinyos import Message, Mote, TinyOsWorld, radio_get_payload

__all__ = ["TinyOsWorld", "Mote", "Message", "radio_get_payload",
           "ArduinoBoard", "Lcd", "AnalogScript", "SdlHost", "Screen"]
