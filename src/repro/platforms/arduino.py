"""Simulated Arduino platform (§3.2).

The paper's second demo programs "bare metal": a two-row LCD, analog-read
push buttons, and wall-clock time.  The binding surface:

* ``_analogRead(pin)`` — scripted analog levels over time;
* ``_lcd`` — a 2×16 character LCD object (``setCursor``/``write``/
  ``print``/``clear``) whose frames are recorded for assertions;
* ``_digitalWrite/_digitalRead`` — pin registers (used by the blink demo);
* ``run_for(duration)`` — drive the program's wall-clock from the board.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from ..runtime import CEnv, Program
from ..runtime.program import parse_time

LCD_COLS = 16
LCD_ROWS = 2


class Lcd:
    """A 2×16 text LCD; every write snapshots a frame."""

    def __init__(self) -> None:
        self.rows = [[" "] * LCD_COLS for _ in range(LCD_ROWS)]
        self.col = 0
        self.row = 0
        self.frames: list[tuple[int, str]] = []
        self._clock: Callable[[], int] = lambda: 0

    def bind_clock(self, fn: Callable[[], int]) -> None:
        self._clock = fn

    def setCursor(self, col: int, row: int) -> int:
        self.col = max(0, min(LCD_COLS - 1, col))
        self.row = max(0, min(LCD_ROWS - 1, row))
        return 0

    def write(self, ch: Union[int, str]) -> int:
        text = chr(ch) if isinstance(ch, int) else str(ch)
        for c in text:
            self.rows[self.row][self.col] = c
            self.col = min(LCD_COLS - 1, self.col + 1)
        self._snapshot()
        return 0

    def print(self, value) -> int:
        return self.write(str(value))

    def clear(self) -> int:
        self.rows = [[" "] * LCD_COLS for _ in range(LCD_ROWS)]
        self.col = self.row = 0
        self._snapshot()
        return 0

    def _snapshot(self) -> None:
        self.frames.append((self._clock(), self.screen()))

    def screen(self) -> str:
        return "\n".join("".join(row) for row in self.rows)


@dataclass
class AnalogScript:
    """Analog level of one pin as a step function of time."""

    steps: list[tuple[int, int]] = field(default_factory=list)  # (t, level)
    default: int = 1023

    def at(self, t: int) -> int:
        level = self.default
        for when, value in self.steps:
            if when <= t:
                level = value
            else:
                break
        return level


class ArduinoBoard:
    """A board hosting one Céu program."""

    def __init__(self, source: str, extra_env: Optional[dict] = None,
                 trace: bool = False, observe: bool = False):
        self.lcd = Lcd()
        self.analog: dict[int, AnalogScript] = {}
        self.pins: dict[int, int] = {}
        self.pin_history: list[tuple[int, int, int]] = []  # (t, pin, value)
        cenv = CEnv()
        cenv.define_many({
            "lcd": self.lcd,
            "analogRead": self._analog_read,
            "digitalWrite": self._digital_write,
            "digitalRead": lambda pin: self.pins.get(pin, 0),
            "HIGH": 1,
            "LOW": 0,
            "millis": lambda: self.program.clock // 1000,
        })
        if extra_env:
            cenv.define_many(extra_env)
        self.program = Program(source, cenv=cenv, trace=trace,
                               observe=observe, filename="arduino.ceu")
        self.lcd.bind_clock(lambda: self.program.clock)

    # ----------------------------------------------------------- bindings
    def _analog_read(self, pin: int) -> int:
        script = self.analog.get(pin)
        if script is None:
            return 1023
        return script.at(self.program.clock)

    def _digital_write(self, pin: int, value: int) -> int:
        self.pins[pin] = value
        self.pin_history.append((self.program.clock, pin, value))
        return 0

    # ------------------------------------------------------------ control
    def script_analog(self, pin: int, steps: list[tuple[Union[int, str], int]],
                      default: int = 1023) -> None:
        """Program pin levels: ``steps`` are (time, level) pairs."""
        normal = sorted((parse_time(t), v) for t, v in steps)
        self.analog[pin] = AnalogScript(normal, default)

    def boot(self) -> None:
        self.program.start()

    def run_for(self, duration: Union[int, str],
                tick: Union[int, str] = "10ms") -> None:
        """Advance wall-clock in ``tick`` steps (so scripted analog edges
        land between reactions, like a sampled real board)."""
        total = parse_time(duration)
        step = max(1, parse_time(tick))
        end = self.program.clock + total
        while self.program.clock < end and not self.program.done:
            nxt = min(end, self.program.clock + step)
            self.program.at(nxt)

    def send_key_event(self, name: str, value: int = 0) -> None:
        self.program.send(name, value)

    def stats(self) -> dict:
        """Board snapshot: VM metrics plus board-side activity."""
        stats = self.program.stats()
        stats["board"] = {
            "lcd_frames": len(self.lcd.frames),
            "pin_writes": len(self.pin_history),
        }
        return stats
