"""Diagnostic records and the accumulating report.

A :class:`Diagnostic` is one finding: a stable code (``CEU-Wddd``), a
severity, a message, a source span, optional related locations, an
optional replayable :class:`~repro.analysis.witness.Witness`, and an
optional machine-readable payload.  A :class:`Report` accumulates them
(analyses never raise past the engine) and renders deterministically —
two runs over the same input produce byte-identical output.

Diagnostic codes
================

=========  ========  ====================================================
code       severity  meaning
=========  ========  ====================================================
CEU-E001   error     lex / parse error
CEU-E002   error     binding error (names, declarations, scoping)
CEU-E003   error     ``async`` restriction violated (§2.7)
CEU-E101   error     tight loop — unbounded reaction chain (§2.5)
CEU-E201   error     concurrent variable access conflict (§2.6)
CEU-E202   error     concurrent internal-event emit conflict (§2.6)
CEU-E203   error     concurrent non-annotated C calls (§2.6)
CEU-W301   warning   unreachable statement
CEU-W302   warning   internal event awaited but never emitted
CEU-W303   warning   internal event emitted but never awaited
CEU-W304   warning   ``par/or``/``par/and`` that can never rejoin
CEU-W305   warning   trails permanently stuck (deadlocked DFA state)
CEU-W401   warning   analysis budget exceeded — results incomplete
CEU-I501   note      static resource bounds (informational)
=========  ========  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..lang.errors import UNKNOWN_SPAN, SourceSpan

Severity = str  # "error" | "warning" | "note"

#: code → (severity, one-line description) — the rule registry shared by
#: the text renderer and the SARIF exporter
RULES: dict[str, tuple[Severity, str]] = {
    "CEU-E001": ("error", "Lex or parse error"),
    "CEU-E002": ("error", "Binding error"),
    "CEU-E003": ("error", "Async restriction violated (§2.7)"),
    "CEU-E101": ("error", "Tight loop: unbounded reaction chain (§2.5)"),
    "CEU-E201": ("error", "Concurrent variable access conflict (§2.6)"),
    "CEU-E202": ("error",
                 "Concurrent internal-event emit conflict (§2.6)"),
    "CEU-E203": ("error", "Concurrent non-annotated C calls (§2.6)"),
    "CEU-W301": ("warning", "Unreachable statement"),
    "CEU-W302": ("warning", "Internal event awaited but never emitted"),
    "CEU-W303": ("warning", "Internal event emitted but never awaited"),
    "CEU-W304": ("warning", "Parallel composition can never rejoin"),
    "CEU-W305": ("warning", "Trails permanently stuck (deadlock)"),
    "CEU-W401": ("warning", "Analysis budget exceeded; results partial"),
    "CEU-I501": ("note", "Static resource bounds"),
}

_SEV_RANK = {"error": 0, "warning": 1, "note": 2}


def span_dict(span: SourceSpan) -> Optional[dict]:
    """JSON view of a span; ``None`` for the unknown span."""
    if span.start.line == 0:
        return None
    return {
        "file": span.filename,
        "line": span.start.line,
        "col": span.start.col,
        "end_line": span.end.line,
        "end_col": span.end.col,
    }


@dataclass
class Diagnostic:
    code: str
    message: str
    span: SourceSpan = UNKNOWN_SPAN
    #: related locations: (label, span)
    notes: list[tuple[str, SourceSpan]] = field(default_factory=list)
    witness: Optional[object] = None       # analysis.witness.Witness
    data: Optional[dict] = None            # machine-readable payload

    @property
    def severity(self) -> Severity:
        return RULES[self.code][0]

    def location(self) -> str:
        if self.span.start.line == 0:
            return self.span.filename
        return f"{self.span.filename}:{self.span.start.line}:" \
               f"{self.span.start.col}"

    def render(self) -> str:
        lines = [f"{self.location()}: {self.severity}[{self.code}]: "
                 f"{self.message}"]
        for label, span in self.notes:
            where = f"{span.filename}:{span.start.line}:{span.start.col}" \
                if span.start.line else span.filename
            lines.append(f"  note: {where}: {label}")
        if self.witness is not None:
            lines.append(f"  witness: {self.witness.render()}")
        return "\n".join(lines)

    def sort_key(self) -> tuple:
        # (path, line, col, severity, code, message): fully deterministic
        # ordering, independent of pass scheduling, so incremental-vs-cold
        # comparisons and goldens are stable
        return (self.span.filename, self.span.start.line,
                self.span.start.col, _SEV_RANK[self.severity], self.code,
                self.message)

    def to_dict(self) -> dict:
        out: dict = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": span_dict(self.span),
        }
        if self.notes:
            out["notes"] = [{"label": label, "span": span_dict(span)}
                            for label, span in self.notes]
        if self.witness is not None:
            out["witness"] = self.witness.as_dict()
        if self.data is not None:
            out["data"] = self.data
        return out


@dataclass
class Report:
    """Accumulated findings of one analysis run over one source file."""

    filename: str = "<ceu>"
    diagnostics: list[Diagnostic] = field(default_factory=list)
    bounds: Optional[object] = None        # analysis.bounds.ResourceBounds
    #: which pipeline stages ran ("parse", "bind", "bounded", "dfa", ...)
    stages: list[str] = field(default_factory=list)
    dfa_states: Optional[int] = None
    dfa_transitions: Optional[int] = None

    def add(self, code: str, message: str,
            span: SourceSpan = UNKNOWN_SPAN, *,
            notes: Optional[list[tuple[str, SourceSpan]]] = None,
            witness=None, data: Optional[dict] = None) -> Diagnostic:
        diag = Diagnostic(code=code, message=message, span=span,
                          notes=list(notes or []), witness=witness,
                          data=data)
        self.diagnostics.append(diag)
        return diag

    # ----------------------------------------------------------- queries
    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def exit_code(self) -> int:
        """Non-zero iff any error-severity diagnostic."""
        return 1 if self.errors else 0

    # --------------------------------------------------------- rendering
    def render_text(self) -> str:
        lines = [d.render() for d in self.sorted()]
        lines.append(
            f"{self.filename}: {self.count('error')} error(s), "
            f"{self.count('warning')} warning(s), "
            f"{self.count('note')} note(s)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        out: dict = {
            "file": self.filename,
            "stages": list(self.stages),
            "summary": {
                "errors": self.count("error"),
                "warnings": self.count("warning"),
                "notes": self.count("note"),
            },
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }
        if self.dfa_states is not None:
            out["dfa"] = {"states": self.dfa_states,
                          "transitions": self.dfa_transitions}
        if self.bounds is not None:
            out["bounds"] = self.bounds.as_dict()
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"
