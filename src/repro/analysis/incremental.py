"""Incremental analysis engine: keystroke-latency re-lint.

:class:`IncrementalAnalyzer` keeps the full pipeline's products —
tokens → AST → ``BoundProgram`` → DFA → diagnostics — cached per
**top-level region**, with a recursive *entry tree* inside each region
that mirrors the block structure of the statements, and splices only
the damaged parts on every edit.

The contract is mechanical: ``analyze(source)`` returns a
:class:`~repro.analysis.diagnostics.Report` that is **byte-identical**
to a cold :func:`~repro.analysis.engine.run_analysis` over the same
source, for every input.  Everything that could possibly diverge falls
back to a transparent cold run (counted in :attr:`stats`), so the fast
paths are a pure optimisation.

How an edit is processed
========================

1. The old and new sources are diffed at **line** granularity
   (``difflib.SequenceMatcher``).  A region whose whole line extent
   lands inside one equal block *survives*: its AST, token signature and
   memoized diagnostics are kept, with every span shifted by a constant
   ``(dline, doffset)``.
2. A damaged region is repaired through its entry tree: each top-level
   statement is an entry carrying its own line extent, token signature,
   and — for compound statements — a *template* of literal token runs
   interleaved with child blocks, each block holding entries for its own
   statements, recursively.  Recovery keeps every entry whose extent
   survived the diff, **descends** into compound entries whose frame
   lines (the literal runs: ``loop``/``if``/``par`` headers, ``with``,
   ``else``, ``end``) all survived and repairs only the damaged child
   block, and re-lexes/re-parses just the remaining gap lines
   standalone.  A mid-file keystroke inside a 200-line ``loop`` thus
   re-parses a handful of lines, not the loop.
3. Region extents are closed over multi-line block comments (a comment
   never straddles a region boundary), which makes standalone parsing
   of any gap equivalent to the full lex; any parse failure abandons
   the repair at that level (entry → region → whole file → cold run).
4. The spliced program is re-numbered (pre-order ``nid``s), re-bound,
   and the bounded/liveness passes run over per-region memos: a region
   whose content and binder-visible environment signature (exports of
   all preceding regions, :func:`repro.sema.symbols
   .declaration_signature`) are unchanged replays its memoized
   diagnostics; damaged regions and their dependents recompute.
5. The whole-program DFA passes re-run only when the program's token
   signature actually changed: on an identical token stream (an edit to
   comments/whitespace) every DFA-derived diagnostic — conflicts with
   witnesses, stuck states, resource bounds — replays with rebased
   spans; when only ``NUM`` literals changed and the cached run had no
   conflicts the DFA is replayed too (the automaton is
   literal-independent; only witness realization is value-sensitive),
   though the bounds recompute (array sizes live in NUM literals).
   Anything else rebuilds.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field, replace
from typing import Optional

from ..dfa.actions import Conflict
from ..lang import ast
from ..lang.errors import CeuError, SourcePos, SourceSpan
from ..lang.lexer import Lexer
from ..lang.parser import Parser
from ..lang.rebase import shift_span, shift_subtree
from ..lang.tokens import TokKind, Token
from ..codegen.memlayout import HOST, TARGET16, build_layout
from ..sema import bind
from ..sema.bounded import COMPLETIONS, CZ, seq_outcomes, statement_outcomes
from ..sema.symbols import declaration_signature
from .bounds import ResourceBounds, compute_trail_bounds
from .diagnostics import Diagnostic, Report
from .engine import dfa_stage, front_end_error
from .passes import _CollectingSink, bounds_pass, liveness_pass


class _Fallback(Exception):
    """Internal: abandon the fast path, run cold (always sound)."""


def _vals(tokens: list[Token], masked: bool = False) -> tuple:
    """Position-free token signature: ``(kind, text)`` pairs, skipping
    the semantically-void ``;`` separators and EOF.  With ``masked``,
    NUM literal texts collapse to ``#`` (the DFA is literal-independent,
    so a masked-equal program has an identical automaton)."""
    out = []
    for t in tokens:
        if t.kind is TokKind.EOF or (t.kind is TokKind.SYM
                                     and t.text == ";"):
            continue
        if masked and t.kind is TokKind.NUM:
            out.append((t.kind.value, "#"))
        else:
            out.append((t.kind.value, t.text))
    return tuple(out)


def _comment_ranges(lexer: Lexer) -> list[tuple[int, int]]:
    """Line ranges of multi-line block comments (deduplicated)."""
    return sorted({(c.start.line, c.end.line) for c in lexer.comments
                   if c.end.line > c.start.line})


def _close_extent(lo: int, hi: int,
                  comments: list[tuple[int, int]]) -> tuple[int, int]:
    """Extend ``[lo, hi]`` until no multi-line comment straddles it."""
    changed = True
    while changed:
        changed = False
        for clo, chi in comments:
            if clo <= hi and chi >= lo:
                if clo < lo:
                    lo, changed = clo, True
                if chi > hi:
                    hi, changed = chi, True
    return lo, hi


def _copy_diag(diag: Diagnostic) -> Diagnostic:
    return Diagnostic(code=diag.code, message=diag.message, span=diag.span,
                      notes=list(diag.notes), witness=diag.witness,
                      data=diag.data)


@dataclass
class _Entry:
    """One statement of one block, with enough structure to repair
    damage *inside* it without re-parsing the whole statement.

    ``template`` (compound statements only) is the statement's token
    stream split into literal runs and child-block slots, e.g. a
    ``loop`` is ``[lit("loop do"), blk(0), lit("end")]``.  Literal
    segments are mutable lists ``["lit", raw, masked, line_lo,
    line_hi]`` (lines ``None`` when the run is empty); block slots are
    ``["blk", index]`` into :attr:`blocks`.  By construction the
    template always alternates lit/blk/lit/…, so every block slot has a
    literal neighbour on both sides — those neighbours' lines are the
    *frame* that must survive an edit for the descent to be legal."""

    stmt: ast.Stmt
    lo: int                            # 1-based comment-closed extent
    hi: int
    raw: tuple                         # token signature of the extent
    masked: tuple
    template: Optional[list] = None
    blocks: list = field(default_factory=list)


@dataclass
class _BlockNode:
    block: ast.Block
    entries: list[_Entry]


@dataclass
class _Region:
    """One cached top-level region: a maximal run of top-level
    statements whose (comment-closed) line extents overlap."""

    entries: list[_Entry]
    lo: int                            # 1-based line extent, inclusive
    hi: int
    raw: tuple                         # token signature of the extent
    masked: tuple
    exports: tuple = ()                # declaration signatures, in order
    env_sig: Optional[tuple] = None    # env the bounded memo was keyed on
    #: per-statement bounded memo: (outcomes, [Diagnostic], tight_count)
    bounded: Optional[list] = None

    @property
    def stmts(self) -> list[ast.Stmt]:
        return [entry.stmt for entry in self.entries]


@dataclass
class _DfaMemo:
    raw: tuple
    masked: tuple
    dfa: object
    states: int
    transitions: int
    #: (code, Conflict, Witness, first_nid, second_nid) in emission order
    conflicts: list
    #: (message, anchor_nid | None) in emission order
    stuck: list
    replayable: bool
    #: the ResourceBounds of the memoized run (replayed on raw-equal
    #: token streams with per-trail lines rebased; NUM literals carry
    #: array sizes, so masked-equal is not enough)
    bounds: object = None

    @property
    def had_conflicts(self) -> bool:
        return bool(self.conflicts)


class IncrementalAnalyzer:
    """Re-analyze successive versions of one buffer, reusing everything
    an edit did not damage.  ``analyze()`` output is byte-identical to
    :func:`~repro.analysis.engine.run_analysis` on every call."""

    def __init__(self, filename: str = "<ceu>", max_states: int = 20_000,
                 witnesses: bool = True, verify_witnesses: bool = True):
        self.filename = filename
        self.max_states = max_states
        self.witnesses = witnesses
        self.verify_witnesses = verify_witnesses
        self.stats: dict[str, int] = {
            "analyses": 0, "full_runs": 0, "full_fallbacks": 0,
            "regions_reused": 0, "regions_recovered": 0,
            "regions_reparsed": 0,
            "entries_reused": 0, "entries_reparsed": 0, "descents": 0,
            "bounded_hits": 0, "bounded_misses": 0,
            "dfa_replays": 0, "dfa_rebuilds": 0, "bounds_replays": 0,
            "bind_reuses": 0,
        }
        self._primed = False
        #: True when the last splice changed the program's *structure*
        #: (statement objects added/removed) as opposed to only shifting
        #: surviving subtrees — a pure-shift edit keeps nids, the walk
        #: list and the binder tables valid
        self._struct_dirty = True
        self._nodes: Optional[list] = None
        self._source: Optional[str] = None
        self._lines: list[str] = []
        self._line_starts: list[int] = []          # 1-based, [0] unused
        self._program: Optional[ast.Program] = None
        self._regions: list[_Region] = []
        self._dfa_memo: Optional[_DfaMemo] = None
        #: the :class:`~repro.sema.binder.BoundProgram` of the last
        #: successful bind, or ``None`` after a front-end error — the LSP
        #: server resolves go-to-definition against it
        self.last_bound = None

    # ------------------------------------------------------------- entry
    def analyze(self, source: str) -> Report:
        self.stats["analyses"] += 1
        if self._primed:
            try:
                return self._analyze_spliced(source)
            except _Fallback:
                self.stats["full_fallbacks"] += 1
            except Exception:
                # the fast path must never be less correct than cold
                self.stats["full_fallbacks"] += 1
        return self._analyze_cold(source)

    # --------------------------------------------------------- cold path
    def _analyze_cold(self, source: str) -> Report:
        self.stats["full_runs"] += 1
        self._primed = False
        self._struct_dirty = True
        report = Report(filename=self.filename)
        try:
            lexer = Lexer(source, self.filename)
            toks = list(lexer.tokens())
            parser = Parser(source, self.filename, tokens=toks,
                            track_extents=True)
            program = parser.parse_program()
        except CeuError as err:
            front_end_error(report, err)
            self._source = source
            self.last_bound = None
            return report
        regions = self._regions_from_parse(parser, toks,
                                           _comment_ranges(lexer))
        self._install(source, program, regions)
        return self._pipeline(report)

    def _install(self, source: str, program: ast.Program,
                 regions: list[_Region]) -> None:
        self._source = source
        self._lines = source.splitlines(keepends=True)
        starts = [0, 0]
        for line in self._lines:
            starts.append(starts[-1] + len(line))
        self._line_starts = starts
        self._program = program
        self._regions = regions
        self._primed = True

    # ------------------------------------------------------- entry build
    def _build_entry(self, stmt: ast.Stmt, s: int, e: int,
                     toks: list[Token], parser: Parser,
                     comments: list[tuple[int, int]]) -> _Entry:
        chunk = toks[s:e]
        lo, hi = _close_extent(chunk[0].span.start.line,
                               chunk[-1].span.end.line, comments)
        entry = _Entry(stmt=stmt, lo=lo, hi=hi,
                       raw=_vals(chunk), masked=_vals(chunk, masked=True))
        cands = []
        for node in stmt.walk():
            if isinstance(node, ast.Block):
                rng = parser.block_ranges.get(id(node))
                if rng is not None and s <= rng[0] and rng[1] <= e:
                    cands.append((rng[0], rng[1], node))
        if not cands:
            return entry
        # block token ranges nest properly; keep only the outermost ones
        cands.sort(key=lambda c: (c[0], -c[1]))
        template: list = []
        blocks: list[_BlockNode] = []
        pos = s
        for bs, be, blk in cands:
            if bs < pos:
                continue               # nested inside the previous block
            template.append(self._lit_seg(toks, pos, bs))
            template.append(["blk", len(blocks)])
            blocks.append(_BlockNode(block=blk, entries=[
                self._build_entry(st, ms, me, toks, parser, comments)
                for st, ms, me in parser.block_marks.get(id(blk), [])]))
            pos = be
        template.append(self._lit_seg(toks, pos, e))
        entry.template = template
        entry.blocks = blocks
        return entry

    @staticmethod
    def _lit_seg(toks: list[Token], a: int, b: int) -> list:
        chunk = toks[a:b]
        if chunk:
            return ["lit", _vals(chunk), _vals(chunk, masked=True),
                    chunk[0].span.start.line, chunk[-1].span.end.line]
        return ["lit", (), (), None, None]

    @staticmethod
    def _resig(entry: _Entry) -> None:
        """Recompute an entry's token signature from its template after
        a child block was repaired."""
        raw: list = []
        masked: list = []
        for seg in entry.template:
            if seg[0] == "lit":
                raw.extend(seg[1])
                masked.extend(seg[2])
            else:
                for child in entry.blocks[seg[1]].entries:
                    raw.extend(child.raw)
                    masked.extend(child.masked)
        entry.raw = tuple(raw)
        entry.masked = tuple(masked)

    # ------------------------------------------------------ region build
    def _regions_from_parse(self, parser: Parser, toks: list[Token],
                            comments: list[tuple[int, int]]
                            ) -> list[_Region]:
        groups: list[list] = []        # [lo, hi, [entry, ...]]
        for stmt, s, e in parser.toplevel_marks:
            entry = self._build_entry(stmt, s, e, toks, parser, comments)
            if groups and entry.lo <= groups[-1][1]:
                groups[-1][1] = max(groups[-1][1], entry.hi)
                groups[-1][2].append(entry)
            else:
                groups.append([entry.lo, entry.hi, [entry]])
        # comment closure can make a later extent reach back over an
        # earlier group's lines; merge until stable
        merged = True
        while merged:
            merged = False
            out: list[list] = []
            for g in groups:
                if out and g[0] <= out[-1][1]:
                    out[-1][1] = max(out[-1][1], g[1])
                    out[-1][2].extend(g[2])
                    merged = True
                else:
                    out.append(g)
            groups = out
        regions = []
        for lo, hi, entries in groups:
            regions.append(_Region(
                entries=entries, lo=lo, hi=hi,
                raw=tuple(v for en in entries for v in en.raw),
                masked=tuple(v for en in entries for v in en.masked),
                exports=tuple(sig for en in entries
                              if (sig := declaration_signature(en.stmt)))))
        return regions

    # ------------------------------------------------------ splice path
    def _analyze_spliced(self, source: str) -> Report:
        new_lines = source.splitlines(keepends=True)
        matcher = difflib.SequenceMatcher(None, self._lines, new_lines,
                                          autojunk=False)
        line_map: dict[int, int] = {}
        for a, b, size in matcher.get_matching_blocks():
            for k in range(size):
                line_map[a + k + 1] = b + k + 1
        new_starts = [0, 0]
        for line in new_lines:
            new_starts.append(new_starts[-1] + len(line))

        self._struct_dirty = False
        kept: list[_Region] = []
        old_ext = [(r.lo, r.hi) for r in self._regions]
        for i, region in enumerate(self._regions):
            if self._extent_survives(region.lo, region.hi, line_map):
                dline = line_map[region.lo] - region.lo
                doff = (new_starts[line_map[region.lo]]
                        - self._line_starts[region.lo])
                self._shift_region(region, dline, doff)
                kept.append(region)
                self.stats["regions_reused"] += 1
                continue
            # recovery window: the region's own endpoints when they
            # survived, else bounded by the (old) neighbour regions'
            # boundary lines — an edit on a region's first or last line
            # must not disable repair of the rest of it
            win_lo = line_map.get(region.lo)
            if win_lo is None:
                if i == 0:
                    win_lo = 1
                else:
                    prev_hi = line_map.get(old_ext[i - 1][1])
                    win_lo = None if prev_hi is None else prev_hi + 1
            win_hi = line_map.get(region.hi)
            if win_hi is None:
                if i == len(self._regions) - 1:
                    win_hi = len(new_lines)
                else:
                    next_lo = line_map.get(old_ext[i + 1][0])
                    win_hi = None if next_lo is None else next_lo - 1
            if (win_lo is not None and win_hi is not None
                    and self._recover_region(region, win_lo, win_hi,
                                             line_map, new_lines,
                                             new_starts)):
                kept.append(region)
                self.stats["regions_recovered"] += 1
            else:
                # the region's new lines fall into a gap and reparse
                self._struct_dirty = True

        # gaps: new lines not covered by a kept region
        covered: list[tuple[int, int]] = sorted(
            (r.lo, r.hi) for r in kept)
        for (alo, ahi), (blo, bhi) in zip(covered, covered[1:]):
            if blo <= ahi:
                raise _Fallback("kept regions overlap")
        fresh: list[_Region] = []
        cursor = 1
        total = len(new_lines)
        for lo, hi in covered + [(total + 1, total + 1)]:
            if cursor < lo:
                fresh.extend(self._parse_gap(cursor, min(lo - 1, total),
                                             new_lines, new_starts))
            cursor = hi + 1
        regions = sorted(kept + fresh, key=lambda r: r.lo)
        for prev, nxt in zip(regions, regions[1:]):
            if nxt.lo <= prev.hi:
                raise _Fallback("spliced regions overlap")
        stmts = [stmt for region in regions for stmt in region.stmts]
        if not stmts:
            raise _Fallback("empty program")

        program = self._program
        program.body.stmts = stmts
        program.body.span = stmts[0].span.merge(stmts[-1].span)
        program.span = program.body.span
        self._install(source, program, regions)
        return self._pipeline(Report(filename=self.filename))

    @staticmethod
    def _extent_survives(lo: int, hi: int,
                         line_map: dict[int, int]) -> bool:
        base = line_map.get(lo)
        if base is None:
            return False
        return all(line_map.get(l) == base + (l - lo)
                   for l in range(lo + 1, hi + 1))

    def _parse_gap(self, lo: int, hi: int, new_lines: list[str],
                   new_starts: list[int]) -> list[_Region]:
        if lo > hi:
            return []
        text = "".join(new_lines[lo - 1:hi])
        try:
            lexer = Lexer(text, self.filename)
            toks = list(lexer.tokens())
            parser = Parser(text, self.filename, tokens=toks,
                            track_extents=True)
            parser.parse_program()
        except CeuError:
            raise _Fallback("gap does not parse standalone")
        regions = self._regions_from_parse(parser, toks,
                                           _comment_ranges(lexer))
        if regions:
            self._struct_dirty = True
        for region in regions:
            self._shift_region(region, lo - 1, new_starts[lo])
            self.stats["regions_reparsed"] += 1
        return regions

    # --------------------------------------------------------- shifting
    def _shift_entry(self, entry: _Entry, dline: int, doff: int,
                     shift_ast: bool = True) -> None:
        """Move an entry (extents, template lines, recursively its
        children) by a constant delta; ``shift_ast`` shifts the AST
        subtree too — ``False`` for nested entries, whose nodes are
        already covered by the parent's ``shift_subtree``."""
        if dline == 0 and doff == 0:
            return
        if shift_ast:
            shift_subtree(entry.stmt, dline, doff)
        entry.lo += dline
        entry.hi += dline
        if entry.template is not None:
            for seg in entry.template:
                if seg[0] == "lit" and seg[3] is not None:
                    seg[3] += dline
                    seg[4] += dline
        for bnode in entry.blocks:
            for child in bnode.entries:
                self._shift_entry(child, dline, doff, shift_ast=False)

    def _shift_region(self, region: _Region, dline: int,
                      doff: int) -> None:
        if dline == 0 and doff == 0:
            return
        region.lo += dline
        region.hi += dline
        for entry in region.entries:
            self._shift_entry(entry, dline, doff)
        if region.bounded is not None:
            for _out, diags, _tight in region.bounded:
                for diag in diags:
                    diag.span = shift_span(diag.span, dline, doff)
                    diag.notes = [(label, shift_span(span, dline, doff))
                                  for label, span in diag.notes]

    def _map_span(self, span: SourceSpan, line_map: dict[int, int],
                  new_starts: list[int]) -> SourceSpan:
        """Rebase a span whose endpoint *lines* survived the diff but
        may have moved by different amounts (content between them was
        repaired)."""
        def mp(pos: SourcePos) -> SourcePos:
            nl = line_map[pos.line]
            return SourcePos(nl, pos.col, pos.offset
                             + (new_starts[nl]
                                - self._line_starts[pos.line]))
        return SourceSpan(mp(span.start), mp(span.end), span.filename)

    # ------------------------------------------------- damage recovery
    def _recover_region(self, region: _Region, win_lo: int, win_hi: int,
                        line_map: dict[int, int], new_lines: list[str],
                        new_starts: list[int]) -> bool:
        """Repair a damaged region through its entry tree.  On failure
        the region is simply dropped (its lines re-parse as a gap);
        partially-shifted state is unreachable afterwards."""
        got = self._recover_entries(
            region.entries, win_lo, win_hi,
            line_map, new_lines, new_starts)
        if not got:
            return False
        region.entries = got
        region.lo = got[0].lo
        region.hi = got[-1].hi
        region.raw = tuple(v for en in got for v in en.raw)
        region.masked = tuple(v for en in got for v in en.masked)
        region.exports = tuple(sig for en in got
                               if (sig := declaration_signature(en.stmt)))
        region.bounded = None
        region.env_sig = None
        return True

    def _recover_entries(self, entries: list[_Entry], win_lo: int,
                         win_hi: int, line_map: dict[int, int],
                         new_lines: list[str], new_starts: list[int]
                         ) -> Optional[list[_Entry]]:
        """Repair one block's entry list within its new line window
        ``[win_lo, win_hi]``: shift survivors, descend into damaged
        compound entries, re-parse the remaining gap lines.  Returns the
        new entry list, or ``None`` when the damage cannot be contained
        at this level."""
        for a, b in zip(entries, entries[1:]):
            if b.lo <= a.hi:
                return None            # overlapping closures: punt
        kept: list[_Entry] = []
        for entry in entries:
            if self._extent_survives(entry.lo, entry.hi, line_map):
                dline = line_map[entry.lo] - entry.lo
                doff = (new_starts[line_map[entry.lo]]
                        - self._line_starts[entry.lo])
                self._shift_entry(entry, dline, doff)
                kept.append(entry)
                self.stats["entries_reused"] += 1
            elif self._descend(entry, line_map, new_lines, new_starts):
                kept.append(entry)
                self.stats["descents"] += 1
            else:
                # dropped — its lines become part of a gap below
                self._struct_dirty = True
        covered = sorted((en.lo, en.hi) for en in kept)
        if covered and (covered[0][0] < win_lo
                        or covered[-1][1] > win_hi):
            return None
        for (alo, ahi), (blo, bhi) in zip(covered, covered[1:]):
            if blo <= ahi:
                return None
        result = list(kept)
        cursor = win_lo
        for lo, hi in covered + [(win_hi + 1, win_hi + 1)]:
            if cursor < lo:
                got = self._parse_entry_gap(cursor, min(lo - 1, win_hi),
                                            new_lines, new_starts)
                if got is None:
                    return None
                result.extend(got)
            cursor = hi + 1
        result.sort(key=lambda en: en.lo)
        for a, b in zip(result, result[1:]):
            if b.lo <= a.hi:
                return None
        return result

    def _descend(self, entry: _Entry, line_map: dict[int, int],
                 new_lines: list[str], new_starts: list[int]) -> bool:
        """Repair damage *inside* a compound statement whose frame (the
        literal token runs between child blocks) survived: recover each
        child block within its own window, then rebase the frame nodes
        line by line."""
        if entry.template is None or not entry.blocks:
            return False
        if entry.lo not in line_map or entry.hi not in line_map:
            return False
        for seg in entry.template:
            if seg[0] == "lit" and seg[3] is not None:
                for line in range(seg[3], seg[4] + 1):
                    if line not in line_map:
                        return False
        for idx, seg in enumerate(entry.template):
            if seg[0] != "blk":
                continue
            prev = entry.template[idx - 1]
            nxt = entry.template[idx + 1]
            if prev[3] is None or nxt[3] is None:
                return False           # no line to anchor the window on
            bnode = entry.blocks[seg[1]]
            got = self._recover_entries(
                bnode.entries, line_map[prev[4]] + 1,
                line_map[nxt[3]] - 1, line_map, new_lines, new_starts)
            if not got:
                return False           # empty blocks don't round-trip
            bnode.entries = got
            bnode.block.stmts = [en.stmt for en in got]
            bnode.block.span = got[0].stmt.span.merge(got[-1].stmt.span)
        # frame nodes: everything in the statement's subtree that is not
        # inside a child block; their endpoint lines all survived, but
        # possibly with different deltas, so rebase per line.  The
        # traversal prunes at child-block roots, so its cost is the
        # frame size, not the subtree size.
        block_ids = {id(bnode.block) for bnode in entry.blocks}
        frame: list[ast.Node] = []
        stack: list[ast.Node] = [entry.stmt]
        while stack:
            node = stack.pop()
            frame.append(node)
            for child in node.children():
                if id(child) not in block_ids:
                    stack.append(child)
        for node in frame:
            span = node.span
            if span.start.line == 0:
                continue               # unknown span: leave untouched
            if (span.start.line not in line_map
                    or span.end.line not in line_map):
                return False
        for node in frame:
            if node.span.start.line == 0:
                continue
            node.span = self._map_span(node.span, line_map, new_starts)
        for seg in entry.template:
            if seg[0] == "lit" and seg[3] is not None:
                seg[3] = line_map[seg[3]]
                seg[4] = line_map[seg[4]]
        entry.lo = line_map[entry.lo]
        entry.hi = line_map[entry.hi]
        self._resig(entry)
        return True

    def _parse_entry_gap(self, lo: int, hi: int, new_lines: list[str],
                         new_starts: list[int]
                         ) -> Optional[list[_Entry]]:
        if lo > hi:
            return []
        text = "".join(new_lines[lo - 1:hi])
        try:
            lexer = Lexer(text, self.filename)
            toks = list(lexer.tokens())
            parser = Parser(text, self.filename, tokens=toks,
                            track_extents=True)
            parser.parse_program()
        except CeuError:
            return None
        comments = _comment_ranges(lexer)
        entries = [self._build_entry(stmt, s, e, toks, parser, comments)
                   for stmt, s, e in parser.toplevel_marks]
        if entries:
            self._struct_dirty = True
        for entry in entries:
            self._shift_entry(entry, lo - 1, new_starts[lo])
            self.stats["entries_reparsed"] += 1
        return entries

    # ---------------------------------------------------------- pipeline
    def _pipeline(self, report: Report) -> Report:
        """Bind + passes over the installed program, mirroring
        :func:`run_analysis` stage for stage.  The tree is walked once;
        ``nid``s are pre-order positions, so the walk list doubles as
        the nid → node map for DFA replay."""
        program = self._program
        if (not self._struct_dirty and self._nodes is not None
                and self.last_bound is not None):
            # pure-shift edit: same statement objects in the same order,
            # so nids, the walk list and every binder table still hold
            # (spans were rebased in place)
            nodes = self._nodes
            bound = self.last_bound
            report.stages.append("parse")
            report.stages.append("bind")
            self.stats["bind_reuses"] += 1
        else:
            nodes = list(program.walk())
            for i, node in enumerate(nodes, start=1):
                node.nid = i
            report.stages.append("parse")
            try:
                bound = bind(program)
            except CeuError as err:
                front_end_error(report, err)
                self.last_bound = None
                self._nodes = None
                return report
            report.stages.append("bind")
            self.last_bound = bound
            self._nodes = nodes

        tight_loops = self._bounded_over_regions(bound, report)
        liveness_pass(bound, report, nodes=nodes)
        if tight_loops:
            return report

        flat_raw = tuple(v for r in self._regions for v in r.raw)
        flat_masked = tuple(v for r in self._regions for v in r.masked)
        memo = self._dfa_memo
        if (memo is not None and memo.replayable
                and (flat_raw == memo.raw
                     or (flat_masked == memo.masked
                         and not memo.had_conflicts))):
            self._replay_dfa(memo, bound, report, nodes, flat_raw)
            self.stats["dfa_replays"] += 1
        else:
            self._rebuild_dfa(bound, report, flat_raw, flat_masked,
                              nodes)
            self.stats["dfa_rebuilds"] += 1
        return report

    def _bounded_over_regions(self, bound, report: Report) -> int:
        """Replicates ``analyze_bounded``'s top-level block walk over the
        per-region memos, byte-identically: same diagnostics, in the
        same order, same tight-loop count."""
        entries: list[tuple] = []      # (stmt, outcomes, diags, tight)
        env: list[tuple] = []
        for region in self._regions:
            cur_env = tuple(env)
            if region.bounded is None or region.env_sig != cur_env:
                memo = []
                for stmt in region.stmts:
                    scratch = Report(filename=self.filename)
                    sink = _CollectingSink(scratch)
                    out = statement_outcomes(stmt, bound, sink)
                    memo.append((out, scratch.diagnostics,
                                 sink.tight_loops))
                region.bounded = memo
                region.env_sig = cur_env
                self.stats["bounded_misses"] += 1
            else:
                self.stats["bounded_hits"] += 1
            for stmt, entry in zip(region.stmts, region.bounded):
                entries.append((stmt, *entry))
            env.extend(region.exports)

        sink = _CollectingSink(report)
        tight_total = 0
        acc = frozenset({CZ})
        cut = False
        for i, (stmt, out, diags, tight) in enumerate(entries):
            for diag in diags:
                report.diagnostics.append(_copy_diag(diag))
            tight_total += tight
            if cut:
                continue
            acc = seq_outcomes(acc, out)
            if not acc & COMPLETIONS:
                rest = [e[0] for e in entries[i + 1:]]
                if rest:
                    sink.unreachable(rest[0], len(rest))
                cut = True
        report.stages.append("bounded")
        return tight_total + sink.tight_loops

    # ------------------------------------------------------- DFA caching
    def _replay_dfa(self, memo: _DfaMemo, bound, report: Report,
                    nodes: list[ast.Node], flat_raw: tuple) -> None:
        report.stages.append("dfa")
        report.dfa_states = memo.states
        report.dfa_transitions = memo.transitions
        for code, conflict, witness, nid1, nid2 in memo.conflicts:
            first = replace(conflict.first, span=nodes[nid1 - 1].span)
            second = replace(conflict.second, span=nodes[nid2 - 1].span)
            current = Conflict(first, second, conflict.trigger,
                               conflict.state_index)
            report.add(code, current.message(), first.span,
                       notes=[(second.describe(), second.span)],
                       witness=witness)
        report.stages.append("conflicts")
        for message, nid in memo.stuck:
            span = (nodes[nid - 1].span if nid is not None
                    else SourceSpan.point(0, 0, filename=report.filename))
            report.add("CEU-W305", message, span)
        report.stages.append("stuck")
        if memo.bounds is not None:
            bounds = self._replay_bounds(memo, bound, nodes, flat_raw)
            report.bounds = bounds
            report.add("CEU-I501",
                       f"static resource bounds: {bounds.summary()}",
                       SourceSpan.point(0, 0, filename=report.filename),
                       data=bounds.as_dict())
            report.stages.append("bounds")
            self.stats["bounds_replays"] += 1
            return
        bounds_pass(bound, memo.dfa, report)

    def _replay_bounds(self, memo: _DfaMemo, bound,
                       nodes: list[ast.Node],
                       flat_raw: tuple) -> ResourceBounds:
        """Rebuild the memoized :class:`ResourceBounds` without folding
        over the DFA again (the per-state maxima depend only on the —
        unchanged — automaton).  Raw-equal token streams keep the memory
        figures too and only rebase the per-trail source extents;
        masked-equal streams may have changed array sizes, so the
        layouts and per-trail attribution recompute from the binder."""
        old = memo.bounds
        if flat_raw == memo.raw:
            frames = [bound.program.body]
            frames.extend(blk for node in nodes
                          if isinstance(node, ast.ParStmt)
                          for blk in node.blocks)
            if len(frames) == len(old.per_trail):
                return replace(old, per_trail=tuple(
                    replace(t, line=blk.span.start.line,
                            end_line=blk.span.end.line)
                    for t, blk in zip(old.per_trail, frames)))
        host = build_layout(bound, HOST)
        t16 = build_layout(bound, TARGET16)
        return ResourceBounds(
            max_trails=old.max_trails,
            max_armed_timers=old.max_armed_timers,
            max_async_jobs=old.max_async_jobs,
            max_internal_emits=old.max_internal_emits,
            mem_slots=len(bound.variables),
            mem_bytes_host=host.total,
            mem_bytes_target16=t16.total,
            dfa_states=old.dfa_states,
            dfa_transitions=old.dfa_transitions,
            per_trail=compute_trail_bounds(bound, host, t16))

    def _rebuild_dfa(self, bound, report: Report, flat_raw: tuple,
                     flat_masked: tuple, nodes: list[ast.Node]) -> None:
        result = dfa_stage(self._source, bound, report,
                           max_states=self.max_states,
                           witnesses=self.witnesses,
                           verify_witnesses=self.verify_witnesses)
        if result is None:             # budget exceeded: CEU-W401 path
            self._dfa_memo = None
            return
        dfa, conflict_entries, stuck_entries = result
        span_to_nid: dict[SourceSpan, int] = {}
        for node in nodes:
            span_to_nid.setdefault(node.span, node.nid)
        replayable = True
        conflicts = []
        for code, conflict, witness in conflict_entries:
            nid1 = span_to_nid.get(conflict.first.span)
            nid2 = span_to_nid.get(conflict.second.span)
            if nid1 is None or nid2 is None:
                replayable = False
                break
            conflicts.append((code, conflict, witness, nid1, nid2))
        self._dfa_memo = _DfaMemo(
            raw=flat_raw, masked=flat_masked, dfa=dfa,
            states=dfa.state_count(),
            transitions=dfa.transition_count(),
            conflicts=conflicts, stuck=list(stuck_entries),
            replayable=replayable, bounds=report.bounds)
