"""Unified static-analysis engine (docs/ANALYSIS.md).

Turns the compiler's prototype first-error-and-raise analyses
(:mod:`repro.sema.bounded`, :mod:`repro.dfa`) into a diagnostics
subsystem: a pass pipeline over a ``BoundProgram`` + DFA that
*accumulates* typed diagnostics with source spans, attaches replayable
witnesses to nondeterminism conflicts, derives static resource bounds
from the DFA, and renders text / JSON / SARIF 2.1.0 reports
(``repro lint``).
"""

from .bounds import ResourceBounds, TrailBounds, compute_bounds, \
    compute_trail_bounds
from .diagnostics import Diagnostic, Report, Severity
from .engine import run_analysis
from .incremental import IncrementalAnalyzer
from .sarif import sarif_json, to_sarif
from .witness import Witness

__all__ = [
    "Diagnostic", "Report", "Severity",
    "ResourceBounds", "TrailBounds", "compute_bounds",
    "compute_trail_bounds",
    "Witness",
    "run_analysis", "IncrementalAnalyzer",
    "to_sarif", "sarif_json",
]
