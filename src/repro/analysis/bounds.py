"""Static resource bounds derived from the DFA (§4.2, §6).

The temporal analysis "covers exactly all possible paths", so per-state
maxima over the explored configurations are sound upper bounds on what
the runtime can ever hold live:

* **trails** — configuration entries (awaiting trails, suspended parallel
  owners, the root) bound the scheduler's live-trail count;
* **armed timers** — ``time``/``tunk`` entries per state (one heap entry
  per armed trail on the VM, one gate in the generated C);
* **async jobs** — ``async`` entries per state;
* **internal-emit depth** — the most internal emits any single abstract
  reaction performs bounds both the per-reaction emit count and the §2.2
  emit-stack depth (each nested emit pushes at most once);
* **memory** — slots are keyed per symbol (re-declaration reuses the
  slot), so the variable count bounds the VM store and the ABI layouts
  bound the flat C vector.

The fuzz oracle ``static-bounds`` (:mod:`repro.fuzz.oracles`) checks
every generated program's observed high-water marks against these; the C
emitter embeds them as ``_Static_assert``-checked capacity constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.memlayout import HOST, TARGET16, TargetABI, build_layout
from ..dfa.builder import Dfa
from ..lang import ast
from ..sema.binder import BoundProgram

_TIMERISH = ("time", "tunk")


@dataclass(frozen=True)
class TrailBounds:
    """Static memory attribution for one trail frame — the root block or
    one branch of a ``par`` (anywhere in the program).  Variables of a
    frame are those declared in its subtree *excluding* nested parallel
    branches, which own their declarations; frame byte figures therefore
    tile the §4.2 side-by-side layout.  The LSP hover surfaces these
    per-construct figures."""

    label: str                 # "root" | "par/or branch 2" | ...
    line: int                  # 1-based source extent of the frame
    end_line: int
    mem_slots: int
    mem_bytes_host: int
    mem_bytes_target16: int

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "line": self.line,
            "end_line": self.end_line,
            "mem_slots": self.mem_slots,
            "mem_bytes_host": self.mem_bytes_host,
            "mem_bytes_target16": self.mem_bytes_target16,
        }

    def summary(self) -> str:
        return (f"{self.label}: slots={self.mem_slots} "
                f"bytes(host)={self.mem_bytes_host} "
                f"bytes(target16)={self.mem_bytes_target16}")


@dataclass(frozen=True)
class ResourceBounds:
    max_trails: int
    max_armed_timers: int
    max_async_jobs: int
    max_internal_emits: int
    mem_slots: int
    mem_bytes_host: int
    mem_bytes_target16: int
    dfa_states: int
    dfa_transitions: int
    per_trail: tuple[TrailBounds, ...] = ()

    def mem_bytes(self, abi: TargetABI) -> int:
        return (self.mem_bytes_target16 if abi.name == "target16"
                else self.mem_bytes_host)

    def as_dict(self) -> dict:
        return {
            "max_trails": self.max_trails,
            "max_armed_timers": self.max_armed_timers,
            "max_async_jobs": self.max_async_jobs,
            "max_internal_emits": self.max_internal_emits,
            "mem_slots": self.mem_slots,
            "mem_bytes_host": self.mem_bytes_host,
            "mem_bytes_target16": self.mem_bytes_target16,
            "dfa_states": self.dfa_states,
            "dfa_transitions": self.dfa_transitions,
            "per_trail": [t.as_dict() for t in self.per_trail],
        }

    def trail_at(self, line: int) -> "TrailBounds | None":
        """The innermost frame whose extent covers ``line`` (hover)."""
        best = None
        for trail in self.per_trail:
            if trail.line <= line <= trail.end_line:
                if (best is None
                        or (trail.end_line - trail.line
                            <= best.end_line - best.line)):
                    best = trail
        return best

    def summary(self) -> str:
        return (f"trails<={self.max_trails} "
                f"timers<={self.max_armed_timers} "
                f"asyncs<={self.max_async_jobs} "
                f"emit-depth<={self.max_internal_emits} "
                f"mem-slots<={self.mem_slots} "
                f"mem-bytes(host)<={self.mem_bytes_host}")


def _frame_vars(block: ast.Block, bound: BoundProgram) -> list:
    """Variable symbols declared in a frame's subtree, excluding nested
    ``par`` branches (each branch is its own frame)."""
    syms: list = []

    def visit_stmt(s: ast.Node) -> None:
        if isinstance(s, ast.DeclVar):
            syms.extend(bound.sym_of_decl[d.nid] for d in s.decls)
            for d in s.decls:
                if d.init is not None and not isinstance(d.init, ast.Exp):
                    visit_stmt(d.init)
        elif isinstance(s, ast.If):
            visit_block(s.then)
            if s.orelse is not None:
                visit_block(s.orelse)
        elif isinstance(s, (ast.Loop, ast.DoBlock, ast.AsyncBlock)):
            visit_block(s.body)
        elif isinstance(s, ast.Assign) and not isinstance(s.value, ast.Exp):
            visit_stmt(s.value)
        # ParStmt: nested frames own their declarations

    def visit_block(b: ast.Block) -> None:
        for stmt in b.stmts:
            visit_stmt(stmt)

    visit_block(block)
    return syms


def compute_trail_bounds(bound: BoundProgram, host=None,
                         t16=None) -> tuple[TrailBounds, ...]:
    """Per-frame memory attribution: the root block plus every branch of
    every ``par``, in deterministic pre-order.  Callers that already
    built the ABI layouts may pass them to avoid rebuilding."""
    host = build_layout(bound, HOST) if host is None else host
    t16 = build_layout(bound, TARGET16) if t16 is None else t16
    frames: list[tuple[str, ast.Block]] = [("root", bound.program.body)]
    for node in bound.program.walk():
        if isinstance(node, ast.ParStmt):
            for i, blk in enumerate(node.blocks, start=1):
                frames.append((f"{node.keyword} branch {i}", blk))
    out = []
    for label, blk in frames:
        syms = _frame_vars(blk, bound)
        out.append(TrailBounds(
            label=label,
            line=blk.span.start.line,
            end_line=blk.span.end.line,
            mem_slots=len(syms),
            mem_bytes_host=sum(host.sizes[s] for s in syms),
            mem_bytes_target16=sum(t16.sizes[s] for s in syms),
        ))
    return tuple(out)


def compute_bounds(bound: BoundProgram, dfa: Dfa) -> ResourceBounds:
    """Fold per-state maxima out of an explored DFA."""
    max_trails = 1  # the root trail exists from boot
    max_timers = 0
    max_asyncs = 0
    for state in dfa.states:
        trails = len(state.config)
        timers = 0
        asyncs = 0
        for _path, entry in state.config:
            tag = entry[0]
            if tag in _TIMERISH:
                timers += 1
            elif tag == "async":
                asyncs += 1
        max_trails = max(max_trails, trails)
        max_timers = max(max_timers, timers)
        max_asyncs = max(max_asyncs, asyncs)
    return ResourceBounds(
        max_trails=max_trails,
        max_armed_timers=max_timers,
        max_async_jobs=max_asyncs,
        max_internal_emits=dfa.max_internal_emits,
        mem_slots=len(bound.variables),
        mem_bytes_host=build_layout(bound, HOST).total,
        mem_bytes_target16=build_layout(bound, TARGET16).total,
        dfa_states=dfa.state_count(),
        dfa_transitions=dfa.transition_count(),
        per_trail=compute_trail_bounds(bound),
    )
