"""Static resource bounds derived from the DFA (§4.2, §6).

The temporal analysis "covers exactly all possible paths", so per-state
maxima over the explored configurations are sound upper bounds on what
the runtime can ever hold live:

* **trails** — configuration entries (awaiting trails, suspended parallel
  owners, the root) bound the scheduler's live-trail count;
* **armed timers** — ``time``/``tunk`` entries per state (one heap entry
  per armed trail on the VM, one gate in the generated C);
* **async jobs** — ``async`` entries per state;
* **internal-emit depth** — the most internal emits any single abstract
  reaction performs bounds both the per-reaction emit count and the §2.2
  emit-stack depth (each nested emit pushes at most once);
* **memory** — slots are keyed per symbol (re-declaration reuses the
  slot), so the variable count bounds the VM store and the ABI layouts
  bound the flat C vector.

The fuzz oracle ``static-bounds`` (:mod:`repro.fuzz.oracles`) checks
every generated program's observed high-water marks against these; the C
emitter embeds them as ``_Static_assert``-checked capacity constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.memlayout import HOST, TARGET16, TargetABI, build_layout
from ..dfa.builder import Dfa
from ..sema.binder import BoundProgram

_TIMERISH = ("time", "tunk")


@dataclass(frozen=True)
class ResourceBounds:
    max_trails: int
    max_armed_timers: int
    max_async_jobs: int
    max_internal_emits: int
    mem_slots: int
    mem_bytes_host: int
    mem_bytes_target16: int
    dfa_states: int
    dfa_transitions: int

    def mem_bytes(self, abi: TargetABI) -> int:
        return (self.mem_bytes_target16 if abi.name == "target16"
                else self.mem_bytes_host)

    def as_dict(self) -> dict:
        return {
            "max_trails": self.max_trails,
            "max_armed_timers": self.max_armed_timers,
            "max_async_jobs": self.max_async_jobs,
            "max_internal_emits": self.max_internal_emits,
            "mem_slots": self.mem_slots,
            "mem_bytes_host": self.mem_bytes_host,
            "mem_bytes_target16": self.mem_bytes_target16,
            "dfa_states": self.dfa_states,
            "dfa_transitions": self.dfa_transitions,
        }

    def summary(self) -> str:
        return (f"trails<={self.max_trails} "
                f"timers<={self.max_armed_timers} "
                f"asyncs<={self.max_async_jobs} "
                f"emit-depth<={self.max_internal_emits} "
                f"mem-slots<={self.mem_slots} "
                f"mem-bytes(host)<={self.mem_bytes_host}")


def compute_bounds(bound: BoundProgram, dfa: Dfa) -> ResourceBounds:
    """Fold per-state maxima out of an explored DFA."""
    max_trails = 1  # the root trail exists from boot
    max_timers = 0
    max_asyncs = 0
    for state in dfa.states:
        trails = len(state.config)
        timers = 0
        asyncs = 0
        for _path, entry in state.config:
            tag = entry[0]
            if tag in _TIMERISH:
                timers += 1
            elif tag == "async":
                asyncs += 1
        max_trails = max(max_trails, trails)
        max_timers = max(max_timers, timers)
        max_asyncs = max(max_asyncs, asyncs)
    return ResourceBounds(
        max_trails=max_trails,
        max_armed_timers=max_timers,
        max_async_jobs=max_asyncs,
        max_internal_emits=dfa.max_internal_emits,
        mem_slots=len(bound.variables),
        mem_bytes_host=build_layout(bound, HOST).total,
        mem_bytes_target16=build_layout(bound, TARGET16).total,
        dfa_states=dfa.state_count(),
        dfa_transitions=dfa.transition_count(),
    )
