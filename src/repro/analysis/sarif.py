"""SARIF 2.1.0 export (https://docs.oasis-open.org/sarif/sarif/v2.1.0/).

One ``run`` per invocation, one ``result`` per diagnostic across all
analyzed files.  The rule registry is emitted in full (sorted by code)
so rule indices are stable regardless of which diagnostics fired —
output is byte-identical across runs on the same input.
"""

from __future__ import annotations

import json
from typing import Iterable

from ..lang.errors import SourceSpan
from .diagnostics import RULES, Diagnostic, Report

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://docs.oasis-open.org/sarif/sarif/v2.1.0/cos02/"
                "schemas/sarif-schema-2.1.0.json")

#: SARIF `level` per diagnostic severity
_LEVEL = {"error": "error", "warning": "warning", "note": "note"}


def _rules() -> list[dict]:
    out = []
    for code in sorted(RULES):
        severity, description = RULES[code]
        out.append({
            "id": code,
            "shortDescription": {"text": description},
            "defaultConfiguration": {"level": _LEVEL[severity]},
        })
    return out


_RULE_INDEX = {code: i for i, code in enumerate(sorted(RULES))}


def _location(span: SourceSpan, uri: str) -> dict:
    physical: dict = {"artifactLocation": {"uri": uri}}
    if span.start.line > 0:
        region = {"startLine": span.start.line,
                  "startColumn": span.start.col}
        if span.end.line >= span.start.line and span.end.line > 0:
            region["endLine"] = span.end.line
            region["endColumn"] = span.end.col
        physical["region"] = region
    return {"physicalLocation": physical}


def _result(diag: Diagnostic, uri: str) -> dict:
    out: dict = {
        "ruleId": diag.code,
        "ruleIndex": _RULE_INDEX[diag.code],
        "level": _LEVEL[diag.severity],
        "message": {"text": diag.message},
        "locations": [_location(diag.span, uri)],
    }
    if diag.notes:
        related = []
        for label, span in diag.notes:
            loc = _location(span, uri)
            loc["message"] = {"text": label}
            related.append(loc)
        out["relatedLocations"] = related
    properties: dict = {}
    if diag.witness is not None:
        properties["witness"] = diag.witness.as_dict()
    if diag.data is not None:
        properties["data"] = diag.data
    if properties:
        out["properties"] = properties
    return out


def to_sarif(reports: Iterable[Report]) -> dict:
    # global (path, line, col, severity, code) order across all files, so
    # the emitted results never depend on argument or pass ordering
    pairs: list[tuple[Report, Diagnostic]] = []
    for report in reports:
        for diag in report.diagnostics:
            pairs.append((report, diag))
    pairs.sort(key=lambda pair: (pair[0].filename, pair[1].sort_key()))
    results = [_result(diag, report.filename) for report, diag in pairs]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://github.com/repro/repro/docs/ANALYSIS.md",
                    "version": "1.0.0",
                    "rules": _rules(),
                },
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def sarif_json(reports: Iterable[Report]) -> str:
    return json.dumps(to_sarif(reports), indent=2, sort_keys=False) + "\n"
