"""The analysis driver: front end + pass pipeline → Report.

Unlike the compiling entry points (:func:`repro.core.analyze`), the
engine never raises on program defects: front-end failures become
CEU-E001/E002/E003 diagnostics, analysis-budget blow-ups become
CEU-W401, and every pass that can still run does.
"""

from __future__ import annotations

from ..dfa import build_dfa
from ..lang.errors import (AnalysisBudgetExceeded, AsyncError, BindError,
                           CeuError, LexError, ParseError)
from ..lang.parser import parse
from ..sema import bind
from .diagnostics import Report
from .passes import (bounded_pass, bounds_pass, conflict_pass,
                     liveness_pass, stuck_pass)


def _front_end_code(err: CeuError) -> str:
    if isinstance(err, (LexError, ParseError)):
        return "CEU-E001"
    if isinstance(err, AsyncError):
        return "CEU-E003"
    if isinstance(err, BindError):
        return "CEU-E002"
    return "CEU-E002"


def run_analysis(source: str, filename: str = "<ceu>",
                 max_states: int = 20_000, witnesses: bool = True,
                 verify_witnesses: bool = True) -> Report:
    """Run the full pass pipeline over one source buffer."""
    report = Report(filename=filename)

    try:
        program = parse(source, filename)
        report.stages.append("parse")
        bound = bind(program)
        report.stages.append("bind")
    except CeuError as err:
        report.add(_front_end_code(err), f"{err.kind}: {err.message}",
                   err.span)
        return report

    tight_loops = bounded_pass(bound, report)
    liveness_pass(bound, report)

    if tight_loops:
        # the abstract machine would not terminate on a tight loop; the
        # DFA passes only run on bounded programs
        return report

    try:
        dfa = build_dfa(bound, max_states=max_states)
    except AnalysisBudgetExceeded as err:
        report.add("CEU-W401",
                   f"{err.message} — conflict/deadlock/bounds results "
                   f"are unavailable for this program", err.span)
        return report
    report.stages.append("dfa")
    report.dfa_states = dfa.state_count()
    report.dfa_transitions = dfa.transition_count()

    conflict_pass(source, bound, dfa, report, witnesses=witnesses,
                  verify=verify_witnesses)
    stuck_pass(bound, dfa, report)
    bounds_pass(bound, dfa, report)
    return report
