"""The analysis driver: front end + pass pipeline → Report.

Unlike the compiling entry points (:func:`repro.core.analyze`), the
engine never raises on program defects: front-end failures become
CEU-E001/E002/E003 diagnostics, analysis-budget blow-ups become
CEU-W401, and every pass that can still run does.
"""

from __future__ import annotations

from typing import Optional

from ..dfa import build_dfa
from ..lang.ast import renumber
from ..lang.errors import (AnalysisBudgetExceeded, AsyncError, BindError,
                           CeuError, LexError, ParseError)
from ..lang.parser import parse
from ..sema import bind
from .diagnostics import Report
from .passes import (bounded_pass, bounds_pass, conflict_pass,
                     liveness_pass, stuck_pass)


def _front_end_code(err: CeuError) -> str:
    if isinstance(err, (LexError, ParseError)):
        return "CEU-E001"
    if isinstance(err, AsyncError):
        return "CEU-E003"
    if isinstance(err, BindError):
        return "CEU-E002"
    return "CEU-E002"


def front_end_error(report: Report, err: CeuError) -> None:
    """Record a lex/parse/bind failure as its CEU-E00x diagnostic."""
    report.add(_front_end_code(err), f"{err.kind}: {err.message}",
               err.span)


def dfa_stage(source: str, bound, report: Report,
              max_states: int = 20_000, witnesses: bool = True,
              verify_witnesses: bool = True) -> Optional[tuple]:
    """Build the temporal DFA and run the whole-program passes over it.

    Returns ``(dfa, conflict_entries, stuck_entries)`` — the entries are
    the structured findings each pass emitted, which the incremental
    analyzer memoizes for replay — or ``None`` when the state budget was
    exceeded (a CEU-W401 diagnostic has been reported instead).
    """
    try:
        dfa = build_dfa(bound, max_states=max_states)
    except AnalysisBudgetExceeded as err:
        report.add("CEU-W401",
                   f"{err.message} — conflict/deadlock/bounds results "
                   f"are unavailable for this program", err.span)
        return None
    report.stages.append("dfa")
    report.dfa_states = dfa.state_count()
    report.dfa_transitions = dfa.transition_count()

    conflict_entries = conflict_pass(source, bound, dfa, report,
                                     witnesses=witnesses,
                                     verify=verify_witnesses)
    stuck_entries = stuck_pass(bound, dfa, report)
    bounds_pass(bound, dfa, report)
    return dfa, conflict_entries, stuck_entries


def run_analysis(source: str, filename: str = "<ceu>",
                 max_states: int = 20_000, witnesses: bool = True,
                 verify_witnesses: bool = True) -> Report:
    """Run the full pass pipeline over one source buffer."""
    report = Report(filename=filename)

    try:
        program = parse(source, filename)
    except CeuError as err:
        front_end_error(report, err)
        return report
    renumber(program)
    report.stages.append("parse")

    try:
        bound = bind(program)
    except CeuError as err:
        front_end_error(report, err)
        return report
    report.stages.append("bind")

    tight_loops = bounded_pass(bound, report)
    liveness_pass(bound, report)

    if tight_loops:
        # the abstract machine would not terminate on a tight loop; the
        # DFA passes only run on bounded programs
        return report

    dfa_stage(source, bound, report, max_states=max_states,
              witnesses=witnesses, verify_witnesses=verify_witnesses)
    return report
